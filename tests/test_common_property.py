"""Edge-case property tests for ``common/bitops.py`` and ``common/fifo.py``.

Width-boundary algebra for the bit helpers (every width 1..64, the
extremes of each range, involution/inverse laws) and a randomized
operation-sequence check of the bounded FIFO against a plain-deque
model (full/empty/wraparound invariants, conservation of items).
"""

import pytest
from collections import deque

from repro.common.bitops import (bit_length64, extract_bits, flip_bit, mask,
                                 parity, popcount, sign_extend, to_signed,
                                 to_unsigned)
from repro.common.errors import FifoError, SimulationError
from repro.common.fifo import DualChannelFifo, Fifo
from repro.common.prng import DeterministicRng


# -- bitops ----------------------------------------------------------------

@pytest.mark.quick
def test_signed_unsigned_inverse_at_every_width():
    for bits in range(1, 65):
        top = mask(bits)
        half = 1 << (bits - 1)
        boundary = {0, 1, half - 1, half, top - 1, top}
        for value in boundary:
            value &= top
            signed = to_signed(value, bits)
            assert -(1 << (bits - 1)) <= signed < (1 << (bits - 1))
            assert to_unsigned(signed, bits) == value
            # Sign-extending to 64 bits preserves the signed value.
            assert to_signed(sign_extend(value, bits)) == signed


def test_signed_unsigned_inverse_random():
    rng = DeterministicRng("bitops/rand", name="prop")
    for _ in range(2_000):
        bits = rng.randint(1, 64)
        value = rng.bit64() & mask(bits)
        assert to_unsigned(to_signed(value, bits), bits) == value


def test_mask_boundaries():
    assert mask(0) == 0
    assert mask(1) == 1
    assert mask(64) == (1 << 64) - 1
    with pytest.raises(SimulationError):
        mask(-1)


def test_flip_bit_involution_and_parity():
    rng = DeterministicRng("bitops/flip", name="prop")
    for _ in range(500):
        value = rng.bit64()
        bit = rng.bit_index(64)
        flipped = flip_bit(value, bit)
        assert flipped != value
        assert flip_bit(flipped, bit) == value
        # One flip always toggles parity and changes popcount by one.
        assert parity(flipped) == parity(value) ^ 1
        assert abs(popcount(flipped) - popcount(value)) == 1
    with pytest.raises(SimulationError):
        flip_bit(0, 64)
    with pytest.raises(SimulationError):
        flip_bit(0, -1)


def test_extract_bits_recomposition():
    rng = DeterministicRng("bitops/extract", name="prop")
    for _ in range(500):
        value = rng.bit64()
        split = rng.randint(0, 63)
        low = extract_bits(value, split, 0)
        high = extract_bits(value, 63, split + 1) if split < 63 else 0
        assert (high << (split + 1)) | low == value
    with pytest.raises(SimulationError):
        extract_bits(0, 0, 1)


def test_sign_extend_boundaries():
    assert sign_extend(0x80, 8) == to_unsigned(-128)
    assert sign_extend(0x7F, 8) == 0x7F
    assert sign_extend(1, 1) == mask(64)
    assert sign_extend(0xFFFF, 16, 16) == 0xFFFF
    with pytest.raises(SimulationError):
        sign_extend(0, 33, 32)
    assert bit_length64(-1) == 64  # unsigned view of all-ones


# -- fifo ------------------------------------------------------------------

@pytest.mark.quick
def test_fifo_random_ops_match_deque_model():
    """Random push/pop/peek/drain/clear sequences against a model."""
    rng = DeterministicRng("fifo/model", name="prop")
    for trial in range(30):
        capacity = rng.choice([1, 2, 3, 5, 8, None])
        fifo = Fifo(capacity, name=f"t{trial}")
        model = deque()
        pushed = popped = 0
        for step in range(400):
            roll = rng.random()
            if roll < 0.45:
                item = (trial, step)
                if capacity is not None and len(model) >= capacity:
                    assert fifo.full
                    assert not fifo.try_push(item)
                    with pytest.raises(FifoError):
                        fifo.push(item)
                else:
                    assert not fifo.full
                    fifo.push(item)
                    model.append(item)
                    pushed += 1
            elif roll < 0.80:
                if model:
                    assert fifo.peek() == model[0]
                    assert fifo.pop() == model.popleft()
                    popped += 1
                else:
                    assert fifo.empty
                    with pytest.raises(FifoError):
                        fifo.pop()
                    with pytest.raises(FifoError):
                        fifo.peek()
            elif roll < 0.90:
                limit = rng.randint(0, 4)
                drained = fifo.drain(limit)
                expect = [model.popleft()
                          for _ in range(min(limit, len(model)))]
                assert drained == expect
                popped += len(drained)
            elif roll < 0.93:
                fifo.clear()
                model.clear()
            # Invariants after every step.
            assert len(fifo) == len(model)
            assert fifo.empty == (not model)
            assert list(fifo) == list(model)
            if capacity is not None:
                assert 0 <= len(fifo) <= capacity
                assert fifo.free_slots == capacity - len(model)
                assert fifo.full == (len(model) == capacity)
            assert fifo.high_watermark <= (capacity or 400)
        assert fifo.total_pushed == pushed
        assert fifo.total_popped >= popped  # drain() pops via pop()


def test_fifo_wraparound_capacity_one():
    """Tightest wraparound: capacity 1 cycles full/empty every op."""
    fifo = Fifo(1, name="unit")
    for i in range(100):
        assert fifo.empty and not fifo.full
        fifo.push(i)
        assert fifo.full and not fifo.empty
        assert not fifo.try_push(i)
        assert fifo.pop() == i
    assert fifo.total_pushed == fifo.total_popped == 100
    assert fifo.high_watermark == 1


def test_fifo_rejects_degenerate_capacity():
    with pytest.raises(FifoError):
        Fifo(0)
    with pytest.raises(FifoError):
        Fifo(-2)


def test_dual_channel_fifo_independent_backpressure():
    rng = DeterministicRng("fifo/dual", name="prop")
    buf = DualChannelFifo(2, 3, name="dc")
    status, runtime = deque(), deque()
    for step in range(300):
        roll = rng.random()
        if roll < 0.35 and len(status) < 2:
            buf.status.push(step)
            status.append(step)
        elif roll < 0.6 and len(runtime) < 3:
            buf.runtime.push(step)
            runtime.append(step)
        elif roll < 0.8 and status:
            assert buf.status.pop() == status.popleft()
        elif runtime:
            assert buf.runtime.pop() == runtime.popleft()
        assert buf.occupancy() == (len(status), len(runtime))
        assert buf.empty == (not status and not runtime)
        assert buf.can_accept(2 - len(status), 3 - len(runtime))
        assert not buf.can_accept(status_packets=3 - len(status) + 1)
