"""Tests for statistics helpers, the area model and report rendering."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.area import (
    AreaModel,
    boom_area_mm2,
    lockstep_scale_factor,
    meek_area_report,
    performance_per_area,
    rocket_area_mm2,
)
from repro.analysis.report import format_table, render_histogram
from repro.analysis.stats import (
    coverage_within,
    density_histogram,
    geomean,
    mean,
    percentile,
)
from repro.common.config import (
    BigCoreConfig,
    default_meek_config,
    default_rocket_config,
    optimized_rocket_config,
)
from repro.common.errors import SimulationError

POSITIVE = st.floats(min_value=0.01, max_value=1e6)


class TestStats:
    def test_geomean_known(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_geomean_empty_rejected(self):
        with pytest.raises(SimulationError):
            geomean([])

    def test_geomean_nonpositive_rejected(self):
        with pytest.raises(SimulationError):
            geomean([1.0, 0.0])

    @given(st.lists(POSITIVE, min_size=1, max_size=30))
    def test_geomean_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) * 0.999 <= g <= max(values) * 1.001

    @given(st.lists(POSITIVE, min_size=1, max_size=30))
    def test_geomean_below_arithmetic_mean(self, values):
        assert geomean(values) <= mean(values) * 1.0001

    def test_percentile_bounds(self):
        values = [1, 2, 3, 4, 5]
        assert percentile(values, 0.0) == 1
        assert percentile(values, 1.0) == 5
        assert percentile(values, 0.5) == 3

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 0.25) == pytest.approx(2.5)

    def test_coverage_within(self):
        assert coverage_within([1, 2, 3, 10], 3) == pytest.approx(0.75)

    def test_density_histogram_sums_to_one(self):
        bins = density_histogram([10, 20, 30, 250, 900], 100)
        assert sum(d for _, d in bins) == pytest.approx(1.0)

    def test_density_histogram_overflow_bin(self):
        bins = density_histogram([50, 5000], 100, max_value=200)
        assert bins[-1][1] == pytest.approx(0.5)

    def test_density_histogram_empty(self):
        assert density_histogram([], 100) == []


class TestAreaModel:
    def test_boom_matches_table3(self):
        assert boom_area_mm2() == pytest.approx(2.811, abs=0.01)

    def test_optimized_rocket_matches_table3(self):
        assert rocket_area_mm2(optimized_rocket_config()) == \
            pytest.approx(0.092, abs=0.002)

    def test_default_rocket_matches_dsn18(self):
        assert rocket_area_mm2(default_rocket_config()) == \
            pytest.approx(0.078, abs=0.002)

    def test_meek_overhead_is_25_8_percent(self):
        report = meek_area_report(default_meek_config())
        assert report["overhead_fraction"] == pytest.approx(0.258, abs=0.005)

    def test_wrapper_is_4_3_percent_of_boom(self):
        model = AreaModel()
        assert model.big_wrapper_mm2() / boom_area_mm2() == \
            pytest.approx(0.043, abs=0.002)

    def test_scaled_config_smaller_area(self):
        assert boom_area_mm2(BigCoreConfig().scaled(0.5)) < boom_area_mm2()

    def test_area_monotone_in_scale(self):
        areas = [boom_area_mm2(BigCoreConfig().scaled(f))
                 for f in (0.3, 0.5, 0.7, 0.9)]
        assert areas == sorted(areas)

    def test_lockstep_factor_converges(self):
        config = default_meek_config()
        factor = lockstep_scale_factor(config)
        pair = 2 * boom_area_mm2(config.big_core.scaled(factor))
        budget = AreaModel().meek_total_mm2(config)
        assert pair == pytest.approx(budget, rel=0.03)

    def test_performance_per_area_positive(self):
        assert performance_per_area(0.5) > 0

    def test_performance_per_area_validates(self):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            performance_per_area(0.0)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xx", 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.500" in text

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.startswith("My Table")
        assert "=" * len("My Table") in text

    def test_render_histogram(self):
        text = render_histogram([(0, 0.8), (200, 0.2)])
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") > lines[1].count("#")

    def test_render_empty_histogram(self):
        assert "empty" in render_histogram([])
