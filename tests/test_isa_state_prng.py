"""Tests for architectural state, memory and the deterministic PRNG."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.common.prng import DeterministicRng
from repro.isa.state import ArchState, Memory, bits_to_float, float_to_bits

U64 = st.integers(0, (1 << 64) - 1)


class TestFloatBits:
    @given(st.floats(allow_nan=False))
    def test_roundtrip(self, value):
        assert bits_to_float(float_to_bits(value)) == value

    def test_nan_pattern_preserved(self):
        bits = float_to_bits(float("nan"))
        roundtrip = float_to_bits(bits_to_float(bits))
        assert roundtrip == bits

    @given(U64)
    def test_bits_roundtrip(self, bits):
        value = bits_to_float(bits)
        if value == value:  # non-NaN patterns are exact
            assert float_to_bits(value) == bits


class TestMemory:
    def test_default_zero(self):
        assert Memory().load_word(0x1234) == 0

    @given(st.integers(0, 1 << 30), U64)
    def test_word_roundtrip(self, addr, value):
        mem = Memory()
        mem.store_word(addr, value)
        assert mem.load_word(addr) == value

    @given(st.integers(0, 1 << 20).map(lambda a: a * 2),
           st.integers(0, 0xFFFF))
    def test_halfword_roundtrip(self, addr, value):
        mem = Memory()
        mem.store(addr, value, 2)
        assert mem.load(addr, 2) == value

    def test_misaligned_rejected(self):
        with pytest.raises(SimulationError):
            Memory().load(0x1001, 2)
        with pytest.raises(SimulationError):
            Memory().store(0x1004, 0, 8)

    def test_copy_is_independent(self):
        mem = Memory()
        mem.store_word(0x100, 7)
        clone = mem.copy()
        clone.store_word(0x100, 9)
        assert mem.load_word(0x100) == 7

    def test_adjacent_words_independent(self):
        mem = Memory()
        mem.store_word(0x100, 1)
        mem.store_word(0x108, 2)
        assert mem.load_word(0x100) == 1


class TestArchState:
    def test_x0_immutable(self):
        state = ArchState()
        state.write_int(0, 123)
        assert state.read_int(0) == 0

    def test_register_masking(self):
        state = ArchState()
        state.write_int(1, 1 << 70)
        assert state.read_int(1) == 0

    def test_snapshot_apply_roundtrip(self):
        state = ArchState()
        for i in range(1, 32):
            state.write_int(i, i * 1000)
            state.write_fp(i, i * 7)
        ints, fps = state.register_file_snapshot()
        other = ArchState()
        other.apply_register_snapshot(ints, fps)
        assert other.int_regs == state.int_regs
        assert other.fp_regs == state.fp_regs

    def test_apply_forces_x0_zero(self):
        state = ArchState()
        corrupted = [9] * 32
        state.apply_register_snapshot(corrupted, [0] * 32)
        assert state.read_int(0) == 0

    def test_apply_wrong_shape_rejected(self):
        with pytest.raises(SimulationError):
            ArchState().apply_register_snapshot([0] * 5, [0] * 32)

    def test_copy_shares_or_clones_memory(self):
        state = ArchState()
        state.memory.store_word(0x10, 1)
        shared = state.copy(share_memory=True)
        assert shared.memory is state.memory
        cloned = state.copy(share_memory=False)
        assert cloned.memory is not state.memory
        assert cloned.memory.load_word(0x10) == 1

    def test_csr_default_zero(self):
        assert ArchState().read_csr(0x300) == 0


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint(0, 100) for _ in range(20)] == \
            [b.randint(0, 100) for _ in range(20)]

    def test_fork_independent_of_sibling(self):
        parent = DeterministicRng(42)
        child_a = parent.fork("alpha")
        child_b = parent.fork("beta")
        assert child_a.seed != child_b.seed

    def test_fork_deterministic(self):
        a = DeterministicRng(42).fork("x")
        b = DeterministicRng(42).fork("x")
        assert a.randint(0, 10**9) == b.randint(0, 10**9)

    def test_bit_index_range(self):
        rng = DeterministicRng(1)
        for _ in range(100):
            assert 0 <= rng.bit_index(64) < 64

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_bernoulli_extremes(self, p):
        rng = DeterministicRng(3)
        if p == 0.0:
            assert not rng.bernoulli(0.0)
        if p == 1.0:
            assert rng.bernoulli(1.0)
