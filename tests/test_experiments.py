"""Smoke + shape tests for the experiment drivers (small inputs).

The full-size regenerations live in ``benchmarks/``; here we verify the
drivers run end-to-end, produce well-formed rows, and keep the paper's
qualitative orderings even at reduced scale.
"""

import pytest

from repro.experiments import (
    fig6_performance,
    fig7_latency,
    fig8_scalability,
    fig9_backpressure,
    fig10_perf_area,
    tab3_area,
)

SMALL = 5000
WORKLOADS = ["hmmer", "swaptions"]
PARSEC_SUBSET = ["blackscholes", "swaptions"]


class TestFig6:
    def test_rows_and_formatting(self):
        rows = fig6_performance.run(dynamic_instructions=SMALL,
                                    workloads=WORKLOADS)
        assert len(rows) == 2
        for row in rows:
            assert row.meek >= 0.99
            assert row.lockstep > 1.0
            assert row.nzdc is None or row.nzdc > 1.0
        text = fig6_performance.format_results(rows)
        assert "hmmer" in text and "MEEK" in text

    def test_nzdc_failures_respected(self):
        rows = fig6_performance.run(dynamic_instructions=SMALL,
                                    workloads=["gcc"])
        assert rows[0].nzdc is None

    def test_ordering_meek_best(self):
        rows = fig6_performance.run(dynamic_instructions=SMALL,
                                    workloads=["hmmer"])
        row = rows[0]
        assert row.meek < row.lockstep < row.nzdc


class TestFig7:
    def test_campaign_produces_latencies(self):
        rows = fig7_latency.run(dynamic_instructions=SMALL,
                                runs_per_workload=2,
                                injection_rate=0.05,
                                workloads=PARSEC_SUBSET)
        assert sum(r.injections for r in rows) > 0
        agg = fig7_latency.aggregate(rows)
        assert agg["detection_rate"] > 0.3
        for row in rows:
            for latency in row.latencies_ns:
                assert latency >= 0.0

    def test_histogram_normalized(self):
        rows = fig7_latency.run(dynamic_instructions=SMALL,
                                runs_per_workload=1,
                                injection_rate=0.05,
                                workloads=["dedup"])
        bins = fig7_latency.histogram(rows)
        if bins:
            assert sum(d for _, d in bins) == pytest.approx(1.0)

    def test_formatting(self):
        rows = fig7_latency.run(dynamic_instructions=SMALL,
                                runs_per_workload=1,
                                injection_rate=0.05,
                                workloads=["dedup"])
        text = fig7_latency.format_results(rows)
        assert "aggregate" in text


class TestFig8:
    def test_scaling_direction(self):
        rows = fig8_scalability.run(dynamic_instructions=SMALL,
                                    core_counts=(2, 6),
                                    workloads=PARSEC_SUBSET)
        for row in rows:
            assert row.slowdowns[2] >= row.slowdowns[6] - 0.01
        means = fig8_scalability.geomeans(rows, (2, 6))
        assert means[2] >= means[6]

    def test_formatting(self):
        rows = fig8_scalability.run(dynamic_instructions=SMALL,
                                    core_counts=(2, 4),
                                    workloads=["swaptions"])
        text = fig8_scalability.format_results(rows, (2, 4))
        assert "2-core" in text


class TestFig9:
    def test_axi_worse_than_f2(self):
        rows = fig9_backpressure.run(dynamic_instructions=SMALL,
                                     workloads=PARSEC_SUBSET)
        means = fig9_backpressure.geomeans(rows)
        assert means["axi"] > means["f2"]

    def test_fraction_fields_nonnegative(self):
        rows = fig9_backpressure.run(dynamic_instructions=SMALL,
                                     workloads=["dedup"])
        for row in rows:
            assert row.collecting_fraction >= 0
            assert row.forwarding_fraction >= 0
            assert row.little_core_fraction >= 0


class TestFig10:
    def test_swaptions_benefits_most(self):
        rows = fig10_perf_area.run(dynamic_instructions=SMALL,
                                   workloads=PARSEC_SUBSET)
        by_name = {r.name: r for r in rows}
        assert by_name["swaptions"].improvement > \
            by_name["blackscholes"].improvement - 0.5

    def test_optimized_never_slower(self):
        rows = fig10_perf_area.run(dynamic_instructions=SMALL,
                                   workloads=PARSEC_SUBSET)
        for row in rows:
            assert row.optimized_ipc >= row.default_ipc * 0.99


class TestTab3:
    def test_report_keys(self):
        report = tab3_area.run()
        assert report["overhead_fraction"] == pytest.approx(0.258, abs=0.005)
        assert report["dsn18"]["little_count"] == 12

    def test_formatting(self):
        text = tab3_area.format_results(tab3_area.run())
        assert "25.8%" in text
        assert "Cortex-A57" in text
