"""Persistent compilation cache + warm execution service.

Satellite coverage for the warm path: stale-key invalidation when the
generator sources change, corrupted/truncated cache-file fallback,
concurrent-writer safety across processes, the disable switch, and the
service/pool lifecycle on top.
"""

import marshal
import multiprocessing
import os
import subprocess
import sys

import pytest

from repro.perf import cache as cache_mod
from repro.perf.cache import (CodeCache, cached_compile,
                              disk_cache_enabled, source_fingerprint,
                              stepper_cache)


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    """A private cache dir + fresh singleton, restored afterwards."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_DISK_CACHE", raising=False)
    cache_mod.reset_stepper_cache()
    yield tmp_path
    cache_mod.reset_stepper_cache()


def _make_code(value):
    return compile(f"def fn():\n    return {value}\n", "<test>", "exec")


def _run_code(code):
    namespace = {}
    exec(code, namespace)
    return namespace["fn"]()


class TestCodeCache:
    def test_round_trip_through_disk(self, tmp_path):
        path = str(tmp_path / "steppers.marshal")
        cache = CodeCache(path)
        cache.put("k", _make_code(42))
        assert cache.flush()
        fresh = CodeCache(path)  # a new process's view
        assert _run_code(fresh.get("k")) == 42

    def test_missing_file_is_cold(self, tmp_path):
        cache = CodeCache(str(tmp_path / "absent.marshal"))
        assert cache.get("k") is None
        assert len(cache) == 0

    @pytest.mark.parametrize("payload", [
        b"garbage that is not a cache",
        b"RPRC\x01truncated-marshal",
        marshal.dumps({"no": "magic"}),
        b"RPRC\x01" + marshal.dumps([1, 2, 3]),       # not a dict
        b"RPRC\x01" + marshal.dumps({"k": "notcode"}),  # wrong value type
        b"",
    ])
    def test_corrupt_file_falls_back_to_cold(self, tmp_path, payload):
        path = tmp_path / "steppers.marshal"
        path.write_bytes(payload)
        cache = CodeCache(str(path))
        assert cache.get("k") is None  # no exception, just a miss
        cache.put("k", _make_code(7))
        assert cache.flush()  # overwrites the bad file with a healthy one
        assert _run_code(CodeCache(str(path)).get("k")) == 7

    def test_truncated_after_valid_write(self, tmp_path):
        path = tmp_path / "steppers.marshal"
        cache = CodeCache(str(path))
        cache.put("k", _make_code(1))
        cache.flush()
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        assert CodeCache(str(path)).get("k") is None

    def test_flush_merges_with_existing_entries(self, tmp_path):
        path = str(tmp_path / "steppers.marshal")
        first = CodeCache(path)
        first.put("a", _make_code(1))
        first.flush()
        second = CodeCache(path)
        second.put("b", _make_code(2))
        second.flush()
        merged = CodeCache(path)
        assert _run_code(merged.get("a")) == 1
        assert _run_code(merged.get("b")) == 2

    def test_flush_survives_unwritable_directory(self, tmp_path):
        cache = CodeCache(str(tmp_path / "no" / "such" / "dir" / "c.m"))
        cache.put("k", _make_code(3))
        # Point the file somewhere uncreatable on POSIX.
        cache.path = "/proc/repro-definitely-not-writable/c.m"
        assert cache.flush() is False  # degraded, not raised


def _concurrent_writer(path, worker):
    cache = CodeCache(path)
    code = compile(f"def fn():\n    return {worker}\n", "<w>", "exec")
    for round_ in range(5):
        cache.put(f"w{worker}-r{round_}", code)
        cache._dirty = True
        cache.flush()


class TestConcurrentWriters:
    def test_parallel_flushes_never_corrupt(self, tmp_path):
        """Campaign workers warm up at once: whatever interleaving the
        atomic-replace race produces, the file must stay parseable and
        every surviving entry must be a working code object."""
        path = str(tmp_path / "steppers.marshal")
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        workers = [ctx.Process(target=_concurrent_writer,
                               args=(path, worker))
                   for worker in range(4)]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=30)
            assert proc.exitcode == 0
        final = CodeCache(path)
        assert len(final) > 0
        for key in list(final._entries):
            assert _run_code(final.get(key)) is not None


class TestFingerprint:
    def test_extra_changes_digest(self):
        assert source_fingerprint() != source_fingerprint(extra=b"v2")

    def test_ops_source_change_invalidates_wholesale(self, isolated_cache,
                                                     monkeypatch):
        """Editing the expression table must orphan every cached
        stepper: the digest keys the *file name*, so a source change
        leaves the stale entries unreachable."""
        cache_a = stepper_cache()
        cache_a.put("big:add:fast", _make_code(1))
        cache_a.flush()
        monkeypatch.setattr(cache_mod, "_generator_sources",
                            lambda: [b"edited ops table", b"", b""])
        cache_mod.reset_stepper_cache()
        cache_b = stepper_cache()
        assert cache_b.path != cache_a.path
        assert cache_b.get("big:add:fast") is None

    def test_python_version_in_digest(self, monkeypatch):
        digest_now = source_fingerprint()
        monkeypatch.setattr(cache_mod.sys, "version_info", (2, 7, 0))
        assert source_fingerprint() != digest_now


class TestStepperCacheSwitch:
    def test_disable_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_DISK_CACHE", "1")
        cache_mod.reset_stepper_cache()
        assert not disk_cache_enabled()
        cache = stepper_cache()
        cache.put("k", _make_code(5))
        assert cache.get("k") is None
        assert cache.flush() is False
        assert list(tmp_path.iterdir()) == []
        cache_mod.reset_stepper_cache()

    def test_cache_dir_env_override(self, isolated_cache):
        assert cache_mod.cache_dir() == str(isolated_cache)

    def test_cached_compile_skips_build_when_warm(self, isolated_cache):
        calls = []

        def build():
            calls.append(1)
            return "def maker():\n    return 99\n"

        code = cached_compile("test:maker", build, "<t>")
        assert calls == [1]
        stepper_cache().flush()
        cache_mod.reset_stepper_cache()  # simulate a fresh process
        warm = cached_compile("test:maker", build, "<t>")
        assert calls == [1]  # never rebuilt
        assert _run_code_maker(warm) == _run_code_maker(code) == 99


def _run_code_maker(code):
    namespace = {}
    exec(code, namespace)
    return namespace["maker"]()


class TestWarmStartEquivalence:
    def test_cold_and_warm_processes_agree(self, tmp_path):
        """A subprocess with an empty cache and one reading the cache
        it wrote must produce identical simulation results."""
        script = (
            "from repro.workloads import generate_program, get_profile\n"
            "from repro.difftest.golden import run_golden\n"
            "from repro.core.system import run_vanilla\n"
            "p = generate_program(get_profile('dedup'), "
            "dynamic_instructions=2000, seed=3)\n"
            "g = run_golden(p); v = run_vanilla(p)\n"
            "print(g.instructions, g.state.pc, v.cycles, "
            "sum(v.state.int_regs))\n")
        env = dict(os.environ, REPRO_CACHE_DIR=str(tmp_path))
        env.pop("REPRO_NO_DISK_CACHE", None)
        outputs = []
        for _ in range(2):
            proc = subprocess.run([sys.executable, "-c", script], env=env,
                                  capture_output=True, text=True,
                                  timeout=120)
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert any(name.startswith("steppers-")
                   for name in os.listdir(tmp_path))


class TestExecutionService:
    def test_warm_is_idempotent(self):
        from repro.perf.service import ExecutionService
        service = ExecutionService()
        assert service.warm() > 0
        assert service.warm() == 0

    def test_serial_needs_no_pool(self, monkeypatch):
        from repro.perf.service import ExecutionService
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        service = ExecutionService()
        assert service.pool(1) is None
        assert service.pool(None) is None

    def test_pool_reused_then_rebuilt_on_jobs_change(self):
        from repro.perf.service import ExecutionService
        service = ExecutionService()
        try:
            pool2 = service.pool(2)
            assert service.pool(2) is pool2
            pool3 = service.pool(3)
            assert pool3 is not pool2
            assert pool3.jobs == 3
        finally:
            service.shutdown()

    def test_service_campaign_matches_serial(self):
        from repro.campaign import CampaignPoint, CampaignSpec, run_campaign
        from repro.perf.service import ExecutionService

        def spec():
            return CampaignSpec(
                name="svc",
                points=[CampaignPoint(task="meek", workload="dedup",
                                      instructions=800, seed=s,
                                      params={"cores": 2})
                        for s in range(3)])

        serial = run_campaign(spec(), jobs=1)
        service = ExecutionService()
        try:
            pooled = service.run_campaign(spec(), jobs=2)
            again = service.run_campaign(spec(), jobs=2)  # pool reuse
        finally:
            service.shutdown()
        assert pooled.all_ok and again.all_ok
        assert pooled.metrics() == serial.metrics()
        assert again.metrics() == serial.metrics()
