"""Cross-cutting property tests over the whole stack.

These are the invariants that make the reproduction trustworthy:
determinism, functional equivalence between the three execution engines
(big core, little core, checker replay), conservation of log entries,
and the soundness/latency properties of detection.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigcore.core import run_program
from repro.common.config import default_meek_config
from repro.common.prng import DeterministicRng
from repro.core.faults import FaultInjector
from repro.core.system import MeekSystem, run_vanilla
from repro.littlecore.core import LittleCore
from repro.workloads import generate_program, get_profile

WORKLOAD_NAMES = st.sampled_from(["hmmer", "dedup", "blackscholes",
                                  "swaptions", "sjeng"])


@settings(max_examples=6, deadline=None)
@given(name=WORKLOAD_NAMES, seed=st.integers(0, 20))
def test_three_engines_agree_architecturally(name, seed):
    """Big core, little core and (implicitly, via verification) the
    checker all compute the same architectural result."""
    program = generate_program(get_profile(name),
                               dynamic_instructions=1500, seed=seed)
    big = run_program(program)
    little = LittleCore().run(program)
    assert big.state.int_regs == little.state.int_regs
    assert big.state.fp_regs == little.state.fp_regs
    meek = MeekSystem(default_meek_config()).run(program)
    assert meek.all_segments_verified
    assert meek.big.state.int_regs == big.state.int_regs


@settings(max_examples=6, deadline=None)
@given(name=WORKLOAD_NAMES, seed=st.integers(0, 20))
def test_log_entry_conservation(name, seed):
    """Every committed memory/CSR operation produces exactly one log
    entry, and every entry is consumed by its checker."""
    program = generate_program(get_profile(name),
                               dynamic_instructions=1500, seed=seed)
    meek = MeekSystem(default_meek_config()).run(program)
    deu_records = meek.controller.deu.runtime_records
    segment_entries = sum(s.num_entries for s in meek.segments)
    assert deu_records == segment_entries
    consumed = sum(meek.controller.checkers[s.seg_id].next_entry
                   for s in meek.segments)
    assert consumed == segment_entries


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 100))
def test_detection_latency_properties(seed):
    """Detections always postdate injections; latencies are finite and
    bounded by the run's drain time."""
    program = generate_program(get_profile("ferret"),
                               dynamic_instructions=4000, seed=0)
    injector = FaultInjector(DeterministicRng(seed), rate=0.02)
    meek = MeekSystem(default_meek_config(), injector=injector).run(program)
    for record in injector.injections:
        if record.detected:
            assert record.detect_cycle >= record.cycle
            assert record.detect_cycle <= meek.drain_cycle + 1000


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(0, 50))
def test_vanilla_equals_meek_functionally(seed):
    """MEEK changes *when* commits happen, never *what* they compute."""
    program = generate_program(get_profile("bzip2"),
                               dynamic_instructions=1500, seed=seed)
    vanilla = run_vanilla(program)
    meek = MeekSystem(default_meek_config()).run(program)
    assert meek.big.state.int_regs == vanilla.state.int_regs
    assert meek.big.instructions == vanilla.instructions


def test_segment_boundaries_partition_commit_stream():
    """Segments tile the committed instruction stream with no overlap
    and no gap, in commit order."""
    program = generate_program(get_profile("gcc"),
                               dynamic_instructions=5000)
    meek = MeekSystem(default_meek_config()).run(program)
    assert sum(s.instr_count for s in meek.segments) == meek.instructions
    closes = [s.close_cycle for s in meek.segments]
    assert closes == sorted(closes)
    starts = [s.start_cycle for s in meek.segments]
    for close, next_start in zip(closes, starts[1:]):
        assert next_start >= close


def test_checker_finish_after_segment_close():
    program = generate_program(get_profile("hmmer"),
                               dynamic_instructions=4000)
    meek = MeekSystem(default_meek_config()).run(program)
    for verdict in meek.verdicts:
        segment = meek.segments[verdict.seg_id]
        assert verdict.finish_cycle >= segment.close_cycle
