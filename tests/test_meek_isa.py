"""Tests for the MEEK-ISA definition (Table I) and its integration."""

import pytest

from repro.isa import MEEK_OPS, assemble, decode, encode
from repro.isa.meek import (
    CHECK_DISABLE,
    CHECK_ENABLE,
    MODE_APPLICATION,
    MODE_CHECK,
    MeekOp,
    is_big_core_op,
    is_little_core_op,
    privilege_level,
)


class TestTableI:
    def test_seven_instructions(self):
        assert len(MEEK_OPS) == 7
        assert {op.value for op in MeekOp} == set(MEEK_OPS)

    def test_privilege_split_matches_table1(self):
        # Priv 1: b.hook, b.check, l.mode; Priv 0: the rest.
        assert privilege_level("b.hook") == 1
        assert privilege_level("b.check") == 1
        assert privilege_level("l.mode") == 1
        assert privilege_level("l.record") == 0
        assert privilege_level("l.apply") == 0
        assert privilege_level("l.jal") == 0
        assert privilege_level("l.rslt") == 0

    def test_core_group_helpers(self):
        assert is_big_core_op("b.hook")
        assert not is_big_core_op("l.mode")
        assert is_little_core_op("l.rslt")
        assert not is_little_core_op("b.check")

    def test_descriptions_match_paper_wording(self):
        assert "Hook big core" in MEEK_OPS["b.hook"][1]
        assert "check results" in MEEK_OPS["l.rslt"][1]

    def test_mode_and_check_constants(self):
        assert MODE_APPLICATION == 0
        assert MODE_CHECK == 1
        assert CHECK_DISABLE == 0
        assert CHECK_ENABLE == 1


class TestEncodingIntegration:
    def test_all_meek_ops_assemble_and_roundtrip(self):
        program = assemble("""
            b.hook a0, a1
            b.check a0
            l.mode a0, a1
            l.record sp
            l.apply a0
            l.jal a0
            l.rslt a0
        """)
        assert len(program) == 7
        for instr in program.instructions:
            assert decode(encode(instr)) == instr

    def test_custom0_opcode_space(self):
        program = assemble("b.hook a0, a1")
        word = encode(program.instructions[0])
        assert word & 0x7F == 0b0001011

    def test_distinct_encodings(self):
        program = assemble("""
            b.hook a0, a1
            b.check a0
            l.mode a0, a1
            l.record a0
            l.apply a0
            l.jal a0
            l.rslt a0
        """)
        words = [encode(i) for i in program.instructions]
        assert len(set(words)) == 7
