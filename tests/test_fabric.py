"""Tests for packets, DC-Buffers and the two fabrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.config import AxiConfig, FabricConfig
from repro.fabric.axi import AxiInterconnect
from repro.fabric.base import build_fabric
from repro.fabric.dcbuffer import DcBufferModel
from repro.fabric.hmnoc import HmNocFabric, IdealFabric, _grid_positions
from repro.fabric.packets import (
    Packet,
    PacketKind,
    RUNTIME_RECORD_BITS,
    RuntimeEntry,
    RuntimeKind,
    STATUS_RECORD_BITS,
    StatusSnapshot,
)


def runtime_packet(dests=(0,), cycle=0):
    entry = RuntimeEntry(RuntimeKind.LOAD, 0x2000, 0xDEAD, 8)
    return Packet(PacketKind.RUNTIME, entry, seg_id=0, created_cycle=cycle,
                  dests=dests)


def status_packet(dests=(0, 1), cycle=0):
    snap = StatusSnapshot(0, 0, 0x1000, [0] * 32, [0] * 32, {})
    return Packet(PacketKind.STATUS, snap, seg_id=0, created_cycle=cycle,
                  dests=dests)


class TestPackets:
    def test_runtime_size(self):
        assert runtime_packet().size_bits == RUNTIME_RECORD_BITS

    def test_status_size(self):
        assert status_packet().size_bits == STATUS_RECORD_BITS

    def test_status_is_much_larger(self):
        assert STATUS_RECORD_BITS > 25 * RUNTIME_RECORD_BITS

    def test_flit_counts_by_width(self):
        pkt = runtime_packet()
        assert pkt.flit_count(256) == 1
        assert pkt.flit_count(128) == 2

    def test_status_flits(self):
        pkt = status_packet()
        assert pkt.flit_count(256) == -(-STATUS_RECORD_BITS // 256)

    def test_entry_parity_roundtrip(self):
        entry = RuntimeEntry(RuntimeKind.STORE, 0x100, 0xFF, 8)
        assert entry.parity_ok

    def test_entry_parity_detects_flip(self):
        entry = RuntimeEntry(RuntimeKind.STORE, 0x100, 0xFF, 8)
        entry.data ^= 1
        assert not entry.parity_ok

    def test_entry_copy_independent(self):
        entry = RuntimeEntry(RuntimeKind.LOAD, 0x100, 1, 8)
        clone = entry.copy()
        clone.data = 99
        assert entry.data == 1

    def test_snapshot_matches(self):
        snap = StatusSnapshot(0, 0, 0x1000, list(range(32)), [0] * 32,
                              {0x300: 7})
        assert snap.matches(list(range(32)), [0] * 32, {0x300: 7}, 0x1000)

    def test_snapshot_detects_register_diff(self):
        snap = StatusSnapshot(0, 0, 0x1000, [0] * 32, [0] * 32, {})
        regs = [0] * 32
        regs[5] = 1
        assert not snap.matches(regs, [0] * 32, {}, 0x1000)

    def test_snapshot_detects_pc_diff(self):
        snap = StatusSnapshot(0, 0, 0x1000, [0] * 32, [0] * 32, {})
        assert not snap.matches([0] * 32, [0] * 32, {}, 0x1004)

    def test_snapshot_detects_csr_diff(self):
        snap = StatusSnapshot(0, 0, 0x1000, [0] * 32, [0] * 32, {0x300: 5})
        assert not snap.matches([0] * 32, [0] * 32, {0x300: 6}, 0x1000)


class TestDcBuffer:
    def test_no_stall_with_room(self):
        buf = DcBufferModel(4, 4)
        assert buf.push("runtime", [10.0], now=5) == 5

    def test_stall_when_full(self):
        buf = DcBufferModel(4, 2)
        # Two flits pending far in the future fill the runtime channel.
        buf.push("runtime", [100.0, 101.0], now=0)
        stall_until = buf.push("runtime", [102.0], now=1)
        assert stall_until == 100.0
        assert buf.stall_cycles == 99.0

    def test_drained_flits_free_slots(self):
        buf = DcBufferModel(4, 2)
        buf.push("runtime", [10.0, 11.0], now=0)
        # By cycle 20 both have been accepted; no stall.
        assert buf.push("runtime", [25.0, 26.0], now=20) == 20

    def test_channels_independent(self):
        buf = DcBufferModel(1, 1)
        buf.push("status", [100.0], now=0)
        assert buf.push("runtime", [100.0], now=0) == 0

    def test_occupancy(self):
        buf = DcBufferModel(8, 8)
        buf.push("runtime", [50.0, 60.0], now=0)
        assert buf.occupancy("runtime", 0) == 2
        assert buf.occupancy("runtime", 55) == 1
        assert buf.occupancy("runtime", 70) == 0

    @given(st.lists(st.floats(min_value=1, max_value=1e4), min_size=1,
                    max_size=40))
    def test_push_never_returns_past(self, accepts):
        buf = DcBufferModel(4, 4)
        result = buf.push("runtime", sorted(accepts), now=0)
        assert result >= 0


class TestHmNoc:
    def make(self, cores=4):
        return HmNocFabric(FabricConfig(), cores)

    def test_grid_excludes_origin(self):
        assert (0, 0) not in _grid_positions(8)

    def test_two_packets_per_cycle(self):
        fabric = self.make()
        reports = [fabric.send(runtime_packet(), 0) for _ in range(8)]
        # 8 single-flit packets at 2/cycle finish within ~4 cycles.
        assert reports[-1].last_accept <= 5

    def test_bandwidth_queueing(self):
        fabric = self.make()
        first = fabric.send(status_packet(dests=(0,)), 0)
        second = fabric.send(runtime_packet(), 0)
        # The runtime packet queues behind the multi-flit status one.
        assert second.accept_times[0] > first.accept_times[0]

    def test_multicast_sends_once(self):
        single = self.make()
        multi = self.make()
        r1 = single.send(status_packet(dests=(0,)), 0)
        r2 = multi.send(status_packet(dests=(0, 1)), 0)
        assert len(r1.accept_times) == len(r2.accept_times)
        assert set(r2.delivery_times) == {0, 1}

    def test_delivery_after_accept(self):
        fabric = self.make()
        report = fabric.send(runtime_packet(), 10)
        assert report.delivery_times[0] > report.last_accept

    def test_farther_cores_deliver_later(self):
        fabric = self.make(cores=6)
        report = fabric.send(status_packet(dests=(0, 5)), 0)
        assert report.delivery_times[5] >= report.delivery_times[0]

    def test_utilization_bounded(self):
        fabric = self.make()
        for _ in range(10):
            fabric.send(runtime_packet(), 0)
        assert 0.0 < fabric.utilization(100) <= 1.0


class TestAxi:
    def make(self, cores=4):
        return AxiInterconnect(AxiConfig(), cores)

    def test_slower_than_f2(self):
        axi = self.make()
        noc = HmNocFabric(FabricConfig(), 4)
        pkt_a = status_packet(dests=(0,))
        pkt_b = status_packet(dests=(0,))
        assert (axi.send(pkt_a, 0).last_accept
                > noc.send(pkt_b, 0).last_accept)

    def test_unicast_duplicates_transfers(self):
        axi = self.make()
        one = axi.send(runtime_packet(dests=(0,)), 0)
        axi2 = self.make()
        two = axi2.send(runtime_packet(dests=(0, 1)), 0)
        assert len(two.accept_times) == 2 * len(one.accept_times)

    def test_runs_in_slow_domain(self):
        axi = self.make()
        report = axi.send(runtime_packet(), 0)
        # 2 flits of a 137-bit record over a 128-bit bus at 1.6 GHz:
        # 2 beats x 2 big cycles each.
        assert report.last_accept == pytest.approx(4.0)


class TestFactory:
    def test_builds_all_kinds(self):
        assert isinstance(build_fabric(FabricConfig(), 4), HmNocFabric)
        assert isinstance(build_fabric(AxiConfig(), 4), AxiInterconnect)
        ideal = FabricConfig(kind="ideal", width_bits=512,
                             packets_per_cycle=8)
        assert isinstance(build_fabric(ideal, 4), IdealFabric)
