"""Tests for the campaign engine (spec, executor, results, CLI).

The three contract tests the subsystem was built around:

* sharded execution is bit-identical to serial execution,
* resume-from-JSONL skips completed points,
* a worker exception is a failed point, not a crashed campaign.
"""

import json

import pytest

from repro.campaign import (
    CampaignPoint,
    CampaignSpec,
    PointResult,
    PointTimeout,
    ResultStore,
    aggregate,
    format_summary,
    run_campaign,
    task,
)
from repro.cli import main
from repro.common.errors import ConfigError
from repro.common.prng import DeterministicRng

SMALL = 1500

# -- throwaway tasks (serial executor shares this process, so module
# state observes evaluations) ---------------------------------------------

CALLS = []


@task("test_echo")
def _echo_task(point, campaign_name=""):
    CALLS.append(point.point_id)
    return {"value": point.params.get("value", 0) * 2,
            "workload": point.workload}


@task("test_boom")
def _boom_task(point, campaign_name=""):
    if point.params.get("explode"):
        raise ValueError("intentional failure")
    return {"value": 1}


@task("test_sleep")
def _sleep_task(point, campaign_name=""):
    import time
    time.sleep(float(point.params.get("sleep_s", 10.0)))
    return {"value": 1}


@task("test_die")
def _die_task(point, campaign_name=""):
    if point.params.get("die"):
        import os
        os._exit(3)  # hard shard death: no exception, no result row
    return {"value": 1}


def small_spec(workloads=("dedup", "hmmer"), seeds=(0, 1)):
    return CampaignSpec.grid("t", workloads=workloads, seeds=seeds,
                             instructions=SMALL,
                             configs=[{"cores": 2}])


@pytest.mark.quick
class TestSpec:
    def test_point_id_canonical_and_param_order_independent(self):
        a = CampaignPoint(task="meek", workload="dedup", instructions=100,
                          seed=1, params={"cores": 2, "fabric": "f2"})
        b = CampaignPoint(task="meek", workload="dedup", instructions=100,
                          seed=1, params={"fabric": "f2", "cores": 2})
        assert a.point_id == b.point_id
        assert a.point_id == "meek/dedup/100/1/cores=2/fabric=f2"

    def test_grid_expansion_and_baseline(self):
        spec = small_spec()
        # per (workload, seed): one vanilla + one meek point
        assert len(spec.points) == 2 * 2 * 2
        tasks = [p.task for p in spec.points]
        assert tasks.count("vanilla") == 4
        assert tasks.count("meek") == 4

    def test_injection_grid(self):
        spec = CampaignSpec.grid("t", workloads=["dedup"],
                                 instructions=SMALL, trials=3,
                                 injection={"rate": 0.01})
        inject_points = [p for p in spec.points if p.task == "inject"]
        assert len(inject_points) == 3
        assert {p.params["trial"] for p in inject_points} == {0, 1, 2}

    def test_duplicate_points_rejected(self):
        point = CampaignPoint(task="vanilla", workload="dedup",
                              instructions=SMALL)
        with pytest.raises(ConfigError):
            CampaignSpec(name="t", points=[point, point]).validate()

    def test_non_scalar_params_rejected(self):
        with pytest.raises(ConfigError):
            CampaignPoint(task="meek", workload="dedup",
                          params={"config": {"cores": 2}})

    def test_json_round_trip(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        loaded = CampaignSpec.from_file(path)
        assert [p.point_id for p in loaded.points] == \
            [p.point_id for p in spec.points]

    def test_grid_shorthand_file(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({
            "name": "sweep", "workloads": ["dedup"], "seeds": [0, 1],
            "instructions": SMALL, "configs": [{"cores": 2}],
            "injection": {"rate": 0.05}, "trials": 2}))
        spec = CampaignSpec.from_file(path)
        assert len(spec.points) == 4
        assert all(p.task == "inject" for p in spec.points)

    def test_rng_key_stable_across_processes(self):
        # fork() derivation must not depend on PYTHONHASHSEED: two
        # streams with the same key always agree.
        a = DeterministicRng("campaign/x", name="a").fork("salt")
        b = DeterministicRng("campaign/x", name="b").fork("salt")
        assert [a.bit64() for _ in range(4)] == \
            [b.bit64() for _ in range(4)]


class TestExecutor:
    def test_sharded_identical_to_serial(self):
        """Contract (a): same spec, same metrics, any job count."""
        spec = small_spec()
        serial = run_campaign(spec, jobs=1)
        sharded = run_campaign(spec, jobs=3, chunk_size=1)
        assert serial.all_ok and sharded.all_ok
        assert serial.metrics() == sharded.metrics()
        assert [r.point_id for r in serial.results] == \
            [r.point_id for r in sharded.results]

    def test_persistent_pool_reused_across_campaigns(self):
        """Contract (a) extended to the warm path: one pool, many
        campaigns, still bit-identical to serial — and the pool stays
        open between them (the executor must not close what it does
        not own)."""
        from repro.campaign.executor import WorkerPool

        specs = [small_spec(workloads=("dedup",), seeds=(s, s + 1))
                 for s in range(3)]
        serial = [run_campaign(spec, jobs=1).metrics() for spec in specs]
        with WorkerPool(2) as pool:
            for spec, expect in zip(specs, serial):
                result = run_campaign(spec, pool=pool, chunk_size=1)
                assert result.all_ok
                assert result.metrics() == expect
                assert pool.healthy  # still alive for the next campaign

    def test_pool_single_pending_point_stays_serial(self):
        """A one-point campaign never pays pool streaming even when a
        pool is supplied (matches the jobs>1 serial short-circuit)."""
        from repro.campaign.executor import WorkerPool

        spec = CampaignSpec(name="one", points=[
            CampaignPoint(task="test_echo", params={"value": 3})])
        CALLS.clear()
        with WorkerPool(2) as pool:
            result = run_campaign(spec, pool=pool)
        assert result.all_ok and result.metrics()[0]["value"] == 6
        assert CALLS  # evaluated in-process, not in a shard

    def test_closed_pool_rejects_runs(self):
        from repro.campaign.executor import WorkerPool

        pool = WorkerPool(2)
        pool.close()
        assert not pool.healthy
        with pytest.raises(RuntimeError):
            pool.run("x", [(0, CampaignPoint(task="test_echo"))])

    def test_partial_shard_death_terminates_not_hangs(self):
        """One shard hard-exiting (os._exit, no traceback, no result)
        must not wedge the run: survivors drain the queued chunks,
        only the lost chunk's point becomes WorkerDied, and the pool
        reports unhealthy so its owner rebuilds it."""
        points = [CampaignPoint(task="test_die", workload=f"w{i}",
                                params={"die": i == 1})
                  for i in range(6)]
        spec = CampaignSpec(name="die", points=points)
        result = run_campaign(spec, jobs=2, chunk_size=1)
        assert len(result.results) == 6
        dead = [r for r in result.results if not r.ok]
        assert dead and all("WorkerDied" in r.error for r in dead)
        assert result.results[1] in dead

    def test_pool_factory_not_invoked_when_nothing_pending(self, tmp_path):
        """The service hands run_campaign a pool *factory*; a campaign
        with at most one pending point must never invoke it (no
        workers forked for a fully-resumed run)."""
        points = [CampaignPoint(task="test_echo", params={"value": 1})]
        spec = CampaignSpec(name="lazy", points=points)

        def factory():
            raise AssertionError("pool factory invoked for 1 point")

        result = run_campaign(spec, jobs=4, pool=factory)
        assert result.all_ok

    def test_resume_skips_completed_points(self, tmp_path):
        """Contract (b): points recorded OK are not re-evaluated."""
        path = tmp_path / "results.jsonl"
        points = [CampaignPoint(task="test_echo", workload=f"w{i}",
                                params={"value": i}) for i in range(4)]
        spec = CampaignSpec(name="resume", points=points)

        CALLS.clear()
        with ResultStore(path=str(path)) as store:
            first = run_campaign(spec, jobs=1, store=store)
        assert first.all_ok and len(CALLS) == 4

        CALLS.clear()
        with ResultStore(path=str(path)) as store:
            second = run_campaign(spec, jobs=1, store=store,
                                  resume_from=str(path))
        assert CALLS == []  # nothing re-ran
        assert second.metrics() == first.metrics()

    def test_resume_reruns_failed_and_missing_points(self, tmp_path):
        path = tmp_path / "results.jsonl"
        points = [CampaignPoint(task="test_echo", workload=f"w{i}",
                                params={"value": i}) for i in range(4)]
        spec = CampaignSpec(name="resume2", points=points)
        # Seed the store with one OK row and one failed row.
        with ResultStore(path=str(path)) as store:
            store.append(run_campaign(
                CampaignSpec(name="resume2", points=points[:1]),
                jobs=1).results[0])
            from repro.campaign import PointResult
            store.append(PointResult(point_id=points[1].point_id,
                                     index=1, ok=False, error="boom"))
        CALLS.clear()
        result = run_campaign(spec, jobs=1, resume_from=str(path))
        assert result.all_ok
        # point 0 skipped; points 1 (failed), 2, 3 (missing) re-ran
        assert len(CALLS) == 3 and points[0].point_id not in CALLS

    def test_worker_exception_is_failed_point_not_crash(self):
        """Contract (c): exceptions are captured per point."""
        points = [CampaignPoint(task="test_boom", workload=f"w{i}",
                                params={"explode": i == 1})
                  for i in range(4)]
        spec = CampaignSpec(name="boom", points=points)
        for jobs in (1, 2):
            result = run_campaign(spec, jobs=jobs)
            assert not result.all_ok
            assert len(result.failed) == 1
            failure = result.results[1]
            assert failure.ok is False
            assert "ValueError" in failure.error
            assert "intentional failure" in failure.error
            assert all(r.ok for i, r in enumerate(result.results)
                       if i != 1)

    def test_point_timeout_becomes_failed_point(self):
        points = [CampaignPoint(task="test_sleep",
                                params={"sleep_s": 5.0}),
                  CampaignPoint(task="test_echo", params={"value": 7})]
        spec = CampaignSpec(name="slow", points=points)
        result = run_campaign(spec, jobs=1, point_timeout_s=0.2)
        assert result.results[0].ok is False
        assert PointTimeout.__name__ in result.results[0].error
        assert result.results[1].ok
        assert result.results[1].metrics["value"] == 14

    def test_unknown_task_is_failed_point(self):
        spec = CampaignSpec(name="bad", points=[
            CampaignPoint(task="no_such_task")])
        result = run_campaign(spec, jobs=1)
        assert result.results[0].ok is False
        assert "no_such_task" in result.results[0].error


@pytest.mark.quick
class TestResults:
    def test_aggregate_counts(self):
        points = [CampaignPoint(task="test_boom", workload=f"w{i}",
                                params={"explode": i == 0})
                  for i in range(3)]
        result = run_campaign(CampaignSpec(name="agg", points=points),
                              jobs=1)
        summary = aggregate(result.results)
        assert summary["points"] == 3
        assert summary["ok"] == 2
        assert summary["failed"] == 1

    def test_summary_deterministic_and_marks_failures(self):
        points = [CampaignPoint(task="test_boom", workload=f"w{i}",
                                params={"explode": i == 1})
                  for i in range(2)]
        spec = CampaignSpec(name="sum", points=points)
        a = format_summary(spec, run_campaign(spec, jobs=1).results)
        b = format_summary(spec, run_campaign(spec, jobs=2).results)
        assert a == b
        assert "FAILED" in a

    def test_store_appends_and_loads(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        spec = CampaignSpec(name="store", points=[
            CampaignPoint(task="test_echo", params={"value": 3})])
        with ResultStore(path=str(path)) as store:
            run_campaign(spec, jobs=1, store=store)
        loaded = ResultStore.load(str(path))
        [(point_id, row)] = loaded.items()
        assert point_id == spec.points[0].point_id
        assert row.metrics["value"] == 6
        assert ResultStore.completed_ids(str(path)) == {point_id}

    def test_load_skips_corrupt_trailing_line(self, tmp_path):
        """A campaign killed mid-write leaves a truncated final row;
        resume must skip it (with a warning) and re-run that point."""
        path = tmp_path / "rows.jsonl"
        points = [CampaignPoint(task="test_echo", workload=f"w{i}",
                                params={"value": i}) for i in range(3)]
        spec = CampaignSpec(name="trunc", points=points)
        with ResultStore(path=str(path)) as store:
            run_campaign(spec, jobs=1, store=store)
        # Truncate the last row mid-JSON, as a kill -9 would.
        text = path.read_text(encoding="utf-8")
        lines = text.strip().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n"
                        + lines[-1][:len(lines[-1]) // 2],
                        encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="corrupt result row"):
            loaded = ResultStore.load(str(path))
        assert set(loaded) == {p.point_id for p in points[:2]}
        # Resume re-runs exactly the point whose row was lost, and the
        # recovery row starts on a fresh line (not merged into the
        # truncated one) so the healed file loads completely.
        CALLS.clear()
        with pytest.warns(RuntimeWarning):
            with ResultStore(path=str(path)) as store:
                result = run_campaign(spec, jobs=1, store=store,
                                      resume_from=str(path))
        assert result.all_ok
        assert CALLS == [points[2].point_id]
        with pytest.warns(RuntimeWarning):  # truncated line remains
            healed = ResultStore.load(str(path))
        assert set(healed) == {p.point_id for p in points}

    def test_load_skips_interior_garbage_rows(self, tmp_path):
        """Non-JSON garbage and rows missing required keys are skipped
        without losing the valid rows around them."""
        path = tmp_path / "rows.jsonl"
        good = PointResult(point_id="p/ok", index=0, ok=True,
                           metrics={"v": 1})
        path.write_text(
            "not json at all\n"
            + json.dumps({"unrelated": True}) + "\n"
            + json.dumps(good.to_row()) + "\n",
            encoding="utf-8")
        with pytest.warns(RuntimeWarning) as caught:
            loaded = ResultStore.load(str(path))
        assert len(caught) == 2
        assert set(loaded) == {"p/ok"}
        assert loaded["p/ok"].metrics == {"v": 1}


class TestSimulationTasks:
    def test_meek_task_matches_direct_run(self):
        from repro.common.config import default_meek_config
        from repro.core.system import MeekSystem
        from repro.workloads import generate_program, get_profile

        point = CampaignPoint(task="meek", workload="dedup",
                              instructions=SMALL, params={"cores": 2})
        [metrics] = run_campaign(
            CampaignSpec(name="direct", points=[point]),
            jobs=1).metrics()
        program = generate_program(get_profile("dedup"),
                                   dynamic_instructions=SMALL, seed=0)
        direct = MeekSystem(
            default_meek_config(num_little_cores=2)).run(program)
        assert metrics["cycles"] == direct.cycles
        assert metrics["verified"] is True

    def test_run_result_stats_carry_fault_counts(self):
        from repro.common.config import default_meek_config
        from repro.core.faults import FaultInjector
        from repro.core.system import MeekSystem
        from repro.workloads import generate_program, get_profile

        program = generate_program(get_profile("dedup"),
                                   dynamic_instructions=3000, seed=0)
        plain = MeekSystem(default_meek_config()).run(program)
        assert plain.stats()["injections"] == 0
        assert plain.stats()["detected"] == 0

        injector = FaultInjector(DeterministicRng("stats/fault"),
                                 rate=0.05)
        faulted = MeekSystem(default_meek_config(),
                             injector=injector).run(program)
        stats = faulted.stats()
        assert stats["injections"] == len(injector.injections)
        assert stats["detected"] == injector.detected_count


class TestCli:
    @pytest.mark.quick
    def test_campaign_parser(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["campaign", "--workloads", "dedup,ferret", "--seeds", "0,1",
             "--cores", "2,4", "--jobs", "4"])
        assert args.workloads == ["dedup", "ferret"]
        assert args.seeds == [0, 1]
        assert args.cores == [2, 4]
        assert args.jobs == 4

    def test_campaign_jobs_output_identical(self, capsys):
        argv = ["campaign", "--workloads", "dedup", "--instructions",
                str(SMALL), "--cores", "2"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        sharded_out = capsys.readouterr().out
        assert serial_out == sharded_out
        assert "Campaign — cli" in serial_out
        assert "vanilla/dedup" in serial_out

    def test_campaign_without_grid_is_usage_error(self, capsys):
        assert main(["campaign"]) == 2

    def test_campaign_spec_file(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "filespec", "workloads": ["dedup"],
            "instructions": SMALL, "include_baseline": False}))
        assert main(["campaign", "--spec", str(path)]) == 0
        out = capsys.readouterr().out
        assert "filespec" in out and "meek/dedup" in out

    def test_inject_reports_counts_when_zero_rate(self, capsys):
        # Satellite regression: zero injections must still print the
        # detected line instead of collapsing the whole print.
        code = main(["inject", "dedup", "--instructions", "2000",
                     "--trials", "1", "--rate", "0.0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "injections      : 0" in out
        assert "detected        : 0 (no injections)" in out

    def test_inject_cores_fabric_flags(self, capsys):
        code = main(["inject", "dedup", "--instructions", "3000",
                     "--trials", "1", "--rate", "0.05",
                     "--cores", "2", "--fabric", "axi", "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "injections" in out


class TestExperimentsThroughEngine:
    def test_fig6_sharded_matches_serial(self):
        from repro.experiments import fig6_performance
        serial = fig6_performance.run(dynamic_instructions=SMALL,
                                      workloads=["hmmer"], jobs=1)
        sharded = fig6_performance.run(dynamic_instructions=SMALL,
                                       workloads=["hmmer"], jobs=2)
        assert serial == sharded
        assert serial[0].meek < serial[0].lockstep

    def test_fig8_sharded_matches_serial(self):
        from repro.experiments import fig8_scalability
        serial = fig8_scalability.run(dynamic_instructions=SMALL,
                                      core_counts=(2, 4),
                                      workloads=["swaptions"], jobs=1)
        sharded = fig8_scalability.run(dynamic_instructions=SMALL,
                                       core_counts=(2, 4),
                                       workloads=["swaptions"], jobs=2)
        assert serial == sharded


class TestAbort:
    """The ``abort`` hook: stop at a point boundary, keep the partial
    store, resume to a bit-identical whole."""

    def abort_after(self, store, n):
        return lambda: len(store.rows) >= n

    def full_rows(self, spec):
        result = run_campaign(spec)
        return {r.point_id: (r.ok, r.metrics) for r in result.results}

    def test_serial_abort_keeps_partial_and_raises(self, tmp_path):
        from repro.campaign import CampaignAborted
        spec = small_spec()
        out = str(tmp_path / "aborted.jsonl")
        with ResultStore(path=out) as store:
            with pytest.raises(CampaignAborted) as err:
                run_campaign(spec, store=store,
                             abort=self.abort_after(store, 2))
        assert err.value.completed == 2
        assert len(ResultStore.load(out)) == 2

    def test_resume_after_abort_matches_uninterrupted(self, tmp_path):
        from repro.campaign import CampaignAborted
        spec = small_spec()
        out = str(tmp_path / "aborted.jsonl")
        with ResultStore(path=out) as store:
            with pytest.raises(CampaignAborted):
                run_campaign(spec, store=store,
                             abort=self.abort_after(store, 1))
        with ResultStore(path=out) as store:
            result = run_campaign(spec, store=store, resume_from=out)
        assert len(result.results) == len(spec.points)
        got = {r.point_id: (r.ok, r.metrics) for r in result.results}
        assert got == self.full_rows(spec)

    def test_pool_abort_raises_and_next_campaign_identical(self, tmp_path):
        from repro.campaign import CampaignAborted
        spec = small_spec(workloads=("dedup", "hmmer"), seeds=(0, 1, 2))
        out = str(tmp_path / "pool-aborted.jsonl")
        with ResultStore(path=out) as store:
            with pytest.raises(CampaignAborted):
                run_campaign(spec, jobs=2, store=store, chunk_size=1,
                             abort=self.abort_after(store, 1))
        assert 1 <= len(ResultStore.load(out)) < len(spec.points)
        # a fresh sharded campaign right after is undisturbed
        result = run_campaign(spec, jobs=2)
        got = {r.point_id: (r.ok, r.metrics) for r in result.results}
        assert got == self.full_rows(spec)

    def test_abort_publishes_aborted_live_state(self, tmp_path):
        from repro.campaign import CampaignAborted
        from repro.obs.live import LiveStatus, load_status
        spec = small_spec()
        status = str(tmp_path / "status.json")
        live = LiveStatus(spec.name, total=len(spec.points), path=status)
        with pytest.raises(CampaignAborted):
            run_campaign(spec, live=live, abort=lambda: True)
        snap = load_status(status)
        assert snap["state"] == "aborted"

    def test_no_abort_hook_changes_nothing(self):
        spec = small_spec()
        plain = run_campaign(spec)
        hooked = run_campaign(spec, abort=lambda: False)
        assert ([r.metrics for r in plain.results]
                == [r.metrics for r in hooked.results])


@pytest.mark.quick
class TestBatchGuardAlarm:
    def test_batch_alarm_disarmed_before_scalar_fallback(
            self, monkeypatch):
        """A batch failure must disarm the batch itimer *before* the
        scalar fallback runs: a still-pending batch alarm firing in a
        gap between the per-point guards would escape every guard and
        kill the whole evaluation loop (shard or remote runner)."""
        import signal

        from repro.campaign import work

        if not hasattr(signal, "SIGALRM"):
            pytest.skip("platform has no SIGALRM")
        before = signal.getsignal(signal.SIGALRM)
        observed = []

        def spy_eval(point, index, campaign_name, timeout_s, worker_id):
            observed.append((signal.getitimer(signal.ITIMER_REAL),
                             signal.getsignal(signal.SIGALRM)))
            return PointResult(point_id=point.point_id, index=index,
                               ok=True, metrics={})

        def boom(points, campaign_name=""):
            raise RuntimeError("kernel fell over")

        monkeypatch.setattr(work, "evaluate_guarded", spy_eval)
        monkeypatch.setattr(work, "run_inject_batch", boom)
        group = [(i, CampaignPoint(task="test_echo", workload="w",
                                   instructions=1, seed=i))
                 for i in range(2)]
        results, stats = work.evaluate_batch_guarded(group, "c", 5.0,
                                                     "w0")
        assert stats is None and len(results) == 2
        for timer, handler in observed:
            assert timer == (0.0, 0.0)
            assert handler == before
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)
        assert signal.getsignal(signal.SIGALRM) == before
