"""Tests for the little core: MSU, pipeline timing, standalone runs."""

import pytest

from repro.common.config import default_rocket_config, optimized_rocket_config
from repro.common.errors import SimulationError
from repro.isa import assemble
from repro.isa.instructions import Instruction
from repro.littlecore.core import LittleCore
from repro.littlecore.msu import Mode, ModeSwitchUnit
from repro.littlecore.pipeline import LittleCorePipeline


class TestMsu:
    def test_starts_in_application_mode(self):
        msu = ModeSwitchUnit(0)
        assert msu.mode is Mode.APPLICATION
        assert not msu.routes_to_lsl()

    def test_mode_switch(self):
        msu = ModeSwitchUnit(0)
        msu.set_mode(Mode.CHECK)
        assert msu.is_checking
        assert msu.routes_to_lsl()

    def test_mode_switch_counted(self):
        msu = ModeSwitchUnit(0)
        msu.set_mode(Mode.CHECK)
        msu.set_mode(Mode.CHECK)   # no-op
        msu.set_mode(Mode.APPLICATION)
        assert msu.mode_switches == 2

    def test_mode_from_int(self):
        msu = ModeSwitchUnit(0)
        msu.set_mode(1)
        assert msu.mode is Mode.CHECK

    def test_hook_unhook(self):
        msu = ModeSwitchUnit(3)
        msu.hook(0)
        assert msu.hooked_big_core == 0
        msu.unhook()
        assert msu.hooked_big_core is None

    def test_record_apply_roundtrip(self):
        msu = ModeSwitchUnit(0)
        msu.record_registers(("snapshot",))
        assert msu.recorded_registers() == ("snapshot",)

    def test_apply_before_record_raises(self):
        with pytest.raises(SimulationError):
            ModeSwitchUnit(0).recorded_registers()


class TestPipelineTiming:
    def step_many(self, pipeline, op, count, **kwargs):
        instr = assemble(op).instructions[0]
        last = 0
        for i in range(count):
            last = pipeline.step(instr, 0x1000, **kwargs)
        return last

    def test_single_issue_rate(self):
        p = LittleCorePipeline(clock_ratio=2)
        instr = Instruction("add", rd=1, rs1=0, rs2=0)
        p.step(instr, 0x1000)
        start = p.time
        p.step(instr, 0x1000)
        assert p.time - start == 2  # one little cycle per instruction

    def test_dependent_load_use_bubble(self):
        p = LittleCorePipeline(clock_ratio=2)
        load = Instruction("ld", rd=5, rs1=2, imm=0)
        use = Instruction("add", rd=6, rs1=5, rs2=5)
        p.step(load, 0x1000)
        before = p.time
        complete = p.step(use, 0x1004)
        assert complete > before + 2  # stalled on the loaded value

    def test_divider_blocks(self):
        opt = LittleCorePipeline(optimized_rocket_config(), clock_ratio=2)
        div = Instruction("div", rd=5, rs1=1, rs2=2)
        first = opt.step(div, 0x1000)
        second = opt.step(div, 0x1004)
        assert second - first >= optimized_rocket_config().div_latency * 2

    def test_unrolled_divider_faster(self):
        default = LittleCorePipeline(default_rocket_config(), clock_ratio=2)
        opt = LittleCorePipeline(optimized_rocket_config(), clock_ratio=2)
        div = Instruction("div", rd=5, rs1=1, rs2=2)
        use = Instruction("add", rd=6, rs1=5, rs2=5)
        default.step(div, 0x1000)
        t_default = default.step(use, 0x1004)
        opt.step(div, 0x1000)
        t_opt = opt.step(use, 0x1004)
        assert t_opt < t_default

    def test_pipelined_fpu_overlaps(self):
        opt = LittleCorePipeline(optimized_rocket_config(), clock_ratio=2)
        blocking = LittleCorePipeline(default_rocket_config(), clock_ratio=2)
        fp = Instruction("fadd.d", rd=1, rs1=2, rs2=3)
        for _ in range(10):
            opt.step(fp, 0x1000)
            blocking.step(fp, 0x1000)
        assert opt.time < blocking.time

    def test_taken_branch_penalty(self):
        p = LittleCorePipeline(clock_ratio=2)
        branch = Instruction("beq", rs1=0, rs2=0, imm=8)
        nop = Instruction("addi")
        p.step(branch, 0x1000, taken_branch=True)
        after_taken = p.time
        p2 = LittleCorePipeline(clock_ratio=2)
        p2.step(branch, 0x1000, taken_branch=False)
        assert after_taken > p2.time

    def test_icache_miss_penalty(self):
        p = LittleCorePipeline(clock_ratio=2)
        nop = Instruction("addi")
        p.step(nop, 0x1000)
        t0 = p.time
        p.step(nop, 0x1004)       # same line: hit
        hit_delta = p.time - t0
        t1 = p.time
        p.step(nop, 0x9000)       # new line: miss
        miss_delta = p.time - t1
        assert miss_delta > hit_delta

    def test_load_waits_for_lsl_delivery(self):
        p = LittleCorePipeline(clock_ratio=2)
        load = Instruction("ld", rd=5, rs1=2, imm=0)
        complete = p.step(load, 0x1000, load_data_available=500)
        assert complete >= 500

    def test_reset_to_moves_forward_only(self):
        p = LittleCorePipeline(clock_ratio=2)
        p.reset_to(100)
        assert p.time == 100
        p.reset_to(50)
        assert p.time == 100


class TestLittleCoreRun:
    def test_functional_result_matches_big_core(self):
        from repro.bigcore.core import run_program
        program = assemble("""
            li t0, 0
            li t1, 50
            li t3, 0x2000
        loop:
            sd t0, 0(t3)
            ld t2, 0(t3)
            add t4, t4, t2
            addi t0, t0, 1
            bne t0, t1, loop
            ecall
        """)
        little = LittleCore().run(program)
        big = run_program(program)
        assert little.state.int_regs == big.state.int_regs

    def test_little_core_slower_than_big(self):
        from repro.bigcore.core import run_program
        program = assemble("\n".join(
            ["li t0, 0", "li t1, 300", "loop:"]
            + ["add t2, t2, t0", "xor t3, t2, t0", "mul t4, t2, t3"] * 3
            + ["addi t0, t0, 1", "bne t0, t1, loop", "ecall"]))
        little = LittleCore(clock_ratio=2).run(program)
        big = run_program(program)
        assert little.cycles > big.cycles

    def test_optimized_faster_on_divisions(self):
        program = assemble("""
            li t0, 0
            li t1, 100
        loop:
            ori t2, t0, 1
            div t3, t1, t2
            addi t0, t0, 1
            bne t0, t1, loop
            ecall
        """)
        opt = LittleCore(optimized_rocket_config(), clock_ratio=1)
        default = LittleCore(default_rocket_config(), clock_ratio=1)
        assert opt.run(program).cycles < default.run(program).cycles

    def test_max_instructions(self):
        program = assemble("""
        loop:
            addi t0, t0, 1
            jal x0, loop
        """)
        result = LittleCore().run(program, max_instructions=100)
        assert result.instructions == 100
        assert result.halted_by == "limit"

    def test_ipc_below_one_per_little_cycle(self):
        program = assemble("\n".join(["add t2, t0, t1"] * 200 + ["ecall"]))
        result = LittleCore(clock_ratio=1).run(program)
        assert result.ipc <= 1.0
