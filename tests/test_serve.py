"""Robustness and determinism tests for the ``repro serve`` master.

The contract under test, layer by layer:

* the persistence units — rid counter, run registry, scheduler — are
  monotonic, crash-safe, and enforce the run-state machine;
* a live master executes submitted campaigns to done, streams rows,
  orders the queue by priority, and keeps every client's run id
  distinct;
* the failure drills: a client dying mid-stream never touches its
  run, a SIGKILLed pool worker surfaces as ``WorkerDied`` failures
  (not a dead master), and a master killed mid-campaign restarts into
  a resume that finishes the same run id with rows bit-identical to a
  campaign that never saw a master at all.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro.campaign import (CampaignPoint, CampaignSpec, ResultStore,
                            run_campaign, task)
from repro.perf.service import ExecutionService
from repro.serve import scheduler as sched
from repro.serve.client import ServeClient, ServeError, find_socket
from repro.serve.master import Master, contact_path, read_contact
from repro.serve.scheduler import (
    BadTransition,
    RidCounter,
    RunRecord,
    RunRegistry,
    Scheduler,
    UnknownRun,
)

SMALL = 1500


# -- throwaway tasks (workers fork from this process, so registration
# here is visible to every shard) ------------------------------------------


@task("serve_echo")
def _serve_echo(point, campaign_name=""):
    return {"value": point.seed * 100 + point.params.get("k", 0),
            "workload": point.workload}


@task("serve_sleep")
def _serve_sleep(point, campaign_name=""):
    time.sleep(float(point.params.get("sleep_s", 0.05)))
    return {"value": point.seed}


@task("serve_kill")
def _serve_kill(point, campaign_name=""):
    if point.params.get("kill"):
        os.kill(os.getpid(), signal.SIGKILL)  # a real worker SIGKILL
    return {"value": point.seed}


def echo_spec(name="srv", n=4, k=0):
    return CampaignSpec(name=name, points=[
        CampaignPoint(
            task="serve_echo", workload="w", instructions=100,
            seed=seed, params={"k": k})
        for seed in range(n)])


def sleep_spec(name="slow", n=20, sleep_s=0.05):
    return CampaignSpec(name=name, points=[
        CampaignPoint(
            task="serve_sleep", workload="w", instructions=100,
            seed=seed, params={"sleep_s": sleep_s})
        for seed in range(n)])


def rows_of(store_path):
    """The store reduced to its deterministic content."""
    results = ResultStore.load(store_path)
    return {pid: (r.ok, r.metrics, r.error)
            for pid, r in results.items()}


def direct_rows(spec, jobs=None):
    """The same spec run with no master anywhere near it."""
    with tempfile.NamedTemporaryFile(suffix=".jsonl",
                                     delete=False) as handle:
        path = handle.name
    os.unlink(path)
    try:
        with ResultStore(path=path) as store:
            run_campaign(spec, jobs=jobs, store=store)
        return rows_of(path)
    finally:
        if os.path.exists(path):
            os.unlink(path)


def wait_for(predicate, timeout=30.0, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def wait_state(client, rid, states, timeout=30.0):
    return wait_for(
        lambda: (lambda run: run if run["state"] in states else None)(
            client.status(rid)["run"]),
        timeout=timeout, message=f"run {rid} -> {states}")


@pytest.fixture()
def state_dir():
    return tempfile.mkdtemp(prefix="sv", dir="/tmp")


@pytest.fixture()
def master(state_dir):
    instance = Master(state_dir=state_dir, service=ExecutionService())
    instance.start()
    yield instance
    instance.stop()


@pytest.fixture()
def client(master):
    with ServeClient(master.socket_path) as instance:
        yield instance


# -- persistence units -----------------------------------------------------


@pytest.mark.quick
class TestRidCounter:
    def test_monotonic(self, state_dir):
        counter = RidCounter(os.path.join(state_dir, "rid"))
        assert [counter.next() for _ in range(3)] == [1, 2, 3]

    def test_survives_restart(self, state_dir):
        path = os.path.join(state_dir, "rid")
        assert RidCounter(path).next() == 1
        assert RidCounter(path).next() == 2  # a new "master"

    def test_corrupt_counter_restarts_at_zero(self, state_dir):
        path = os.path.join(state_dir, "rid")
        with open(path, "w") as handle:
            handle.write("not a number")
        assert RidCounter(path).next() == 1

    def test_persisted_before_handed_out(self, state_dir):
        path = os.path.join(state_dir, "rid")
        counter = RidCounter(path)
        counter.next()
        # A crash right now must not reuse rid 1.
        assert RidCounter(path).next() == 2


@pytest.mark.quick
class TestRunRegistry:
    def record(self, rid=1, **overrides):
        fields = dict(rid=rid, name="r", spec={"name": "r", "points": []},
                      priority=2, store="s.jsonl", points_total=3)
        fields.update(overrides)
        return RunRecord(**fields)

    def test_round_trip(self, state_dir):
        registry = RunRegistry(state_dir)
        record = self.record(completed=2, failed=1, error="boom")
        registry.save(record)
        loaded = registry.load(1)
        assert loaded.to_dict() == record.to_dict()

    def test_interrupt_is_transient(self, state_dir):
        registry = RunRegistry(state_dir)
        record = self.record()
        record.interrupt = "cancel"
        registry.save(record)
        assert registry.load(1).interrupt is None

    def test_load_all_sorted_and_corruption_tolerant(self, state_dir):
        registry = RunRegistry(state_dir)
        for rid in (3, 1, 2):
            registry.save(self.record(rid=rid))
        os.makedirs(registry.runs_dir, exist_ok=True)
        with open(os.path.join(registry.runs_dir, "2.json"), "w") as h:
            h.write("{ truncated")
        with open(os.path.join(registry.runs_dir,
                               "9.results.status.json"), "w") as h:
            h.write("{}")  # a live-status sibling, not a record
        assert [r.rid for r in registry.load_all()] == [1, 3]

    def test_load_missing_returns_none(self, state_dir):
        assert RunRegistry(state_dir).load(42) is None


@pytest.mark.quick
class TestScheduler:
    def scheduler(self, state_dir):
        return Scheduler(RunRegistry(state_dir),
                         RidCounter(os.path.join(state_dir, "rid")))

    def submit(self, scheduler, priority=0):
        return scheduler.submit("r", {"name": "r", "points": []},
                                priority=priority)

    def test_submit_assigns_increasing_rids(self, state_dir):
        scheduler = self.scheduler(state_dir)
        assert [self.submit(scheduler).rid for _ in range(3)] == [1, 2, 3]

    def test_priority_order_with_rid_ties(self, state_dir):
        scheduler = self.scheduler(state_dir)
        self.submit(scheduler, priority=0)    # rid 1
        self.submit(scheduler, priority=10)   # rid 2
        self.submit(scheduler, priority=10)   # rid 3
        self.submit(scheduler, priority=-5)   # rid 4
        order = [scheduler.next_run(timeout=0).rid for _ in range(4)]
        assert order == [2, 3, 1, 4]

    def test_next_run_times_out_empty(self, state_dir):
        assert self.scheduler(state_dir).next_run(timeout=0.01) is None

    def test_cancel_queued_is_immediate_and_lazy_deleted(self, state_dir):
        scheduler = self.scheduler(state_dir)
        record = self.submit(scheduler)
        other = self.submit(scheduler)
        assert scheduler.cancel(record.rid).state == sched.CANCELLED
        popped = scheduler.next_run(timeout=0)
        assert popped.rid == other.rid  # stale heap entry skipped
        assert scheduler.next_run(timeout=0) is None

    def test_cancel_running_sets_interrupt_only(self, state_dir):
        scheduler = self.scheduler(state_dir)
        record = self.submit(scheduler)
        scheduler.next_run(timeout=0)
        result = scheduler.cancel(record.rid)
        assert result.state == sched.RUNNING
        assert result.interrupt == "cancel"

    def test_cancel_done_raises_bad_transition(self, state_dir):
        scheduler = self.scheduler(state_dir)
        record = self.submit(scheduler)
        scheduler.next_run(timeout=0)
        scheduler.finish(record.rid, sched.DONE)
        with pytest.raises(BadTransition):
            scheduler.cancel(record.rid)

    def test_pause_queued_then_requeue(self, state_dir):
        scheduler = self.scheduler(state_dir)
        record = self.submit(scheduler)
        assert scheduler.pause(record.rid).state == sched.PAUSED
        assert scheduler.next_run(timeout=0) is None
        assert scheduler.requeue(record.rid).state == sched.QUEUED
        assert scheduler.next_run(timeout=0).rid == record.rid

    def test_requeue_done_rejected(self, state_dir):
        scheduler = self.scheduler(state_dir)
        record = self.submit(scheduler)
        scheduler.next_run(timeout=0)
        scheduler.finish(record.rid, sched.DONE)
        with pytest.raises(BadTransition):
            scheduler.requeue(record.rid)

    def test_unknown_rid_raises(self, state_dir):
        scheduler = self.scheduler(state_dir)
        with pytest.raises(UnknownRun):
            scheduler.cancel(99)
        with pytest.raises(UnknownRun):
            scheduler.get(99)

    def test_finish_back_to_queued_is_poppable(self, state_dir):
        scheduler = self.scheduler(state_dir)
        record = self.submit(scheduler)
        scheduler.next_run(timeout=0)
        scheduler.finish(record.rid, sched.QUEUED, completed=2)
        assert scheduler.next_run(timeout=0).rid == record.rid

    def test_recover_requeues_interrupted_only(self, state_dir):
        scheduler = self.scheduler(state_dir)
        interrupted = self.submit(scheduler)       # rid 1
        finished = self.submit(scheduler)          # rid 2
        never_ran = self.submit(scheduler)         # rid 3
        assert scheduler.next_run(timeout=0).rid == interrupted.rid
        record = scheduler.next_run(timeout=0)     # rid 2
        scheduler.finish(record.rid, sched.DONE)
        # a fresh scheduler over the same registry: the crash case
        fresh = self.scheduler(state_dir)
        requeued = {r.rid for r in fresh.recover()}
        assert requeued == {interrupted.rid, never_ran.rid}
        states = {r["rid"]: r["state"] for r in fresh.queue_snapshot()}
        assert states[interrupted.rid] == sched.QUEUED
        assert states[finished.rid] == sched.DONE

    def test_counts(self, state_dir):
        scheduler = self.scheduler(state_dir)
        self.submit(scheduler)
        self.submit(scheduler)
        scheduler.next_run(timeout=0)
        assert scheduler.counts() == {"queued": 1, "running": 1}


# -- the live master -------------------------------------------------------


@pytest.mark.quick
class TestMasterBasics:
    def test_hello_reports_identity(self, master, client):
        hello = client.hello()
        assert hello["schema"] == 1
        assert hello["pid"] == os.getpid()
        assert hello["state_dir"] == master.state_dir
        assert hello["runs"] == {}
        assert hello["pool"] is None  # nothing sharded yet

    def test_contact_file_written_and_removed(self, state_dir):
        master = Master(state_dir=state_dir, service=ExecutionService())
        master.start()
        try:
            contact = read_contact(state_dir)
            assert contact["socket"] == master.socket_path
            assert contact["pid"] == os.getpid()
            assert find_socket(state_dir=state_dir) == master.socket_path
        finally:
            master.stop()
        assert read_contact(state_dir) is None
        assert not os.path.exists(master.socket_path)

    def test_second_master_refuses_live_socket(self, master, state_dir):
        second = Master(state_dir=state_dir, service=ExecutionService())
        with pytest.raises(RuntimeError, match="another master"):
            second.start()

    def test_stale_socket_evicted(self, state_dir):
        first = Master(state_dir=state_dir, service=ExecutionService())
        first.start()
        first.stop()
        # leave a stale socket file behind deliberately
        with open(os.path.join(state_dir, "serve.sock"), "w"):
            pass
        second = Master(state_dir=state_dir, service=ExecutionService())
        second.start()
        try:
            with ServeClient(second.socket_path) as probe:
                assert probe.hello()["schema"] == 1
        finally:
            second.stop()

    def test_submit_runs_to_done_and_streams(self, client):
        spec = echo_spec(n=3)
        submitted = client.submit(spec.to_dict(), stream=True)
        assert submitted["rid"] == 1
        # the executor thread may have claimed — or with a warm pool
        # even finished — the run by the time the response is built
        assert submitted["state"] in ("queued", "running", "done")
        assert submitted["points"] == 3
        events = list(client.events(rid=1))
        assert events[0]["event"] == "state"
        assert events[0]["state"] == "running"
        point_rows = [e["row"] for e in events
                      if e["event"] == "point"]
        assert len(point_rows) == 3
        assert all(row["ok"] for row in point_rows)
        assert events[-1]["event"] == "state"
        assert events[-1]["state"] == "done"
        assert events[-1]["failed"] == 0

    def test_store_rows_match_directly_run_campaign(self, client):
        spec = echo_spec(n=4)
        submitted = client.submit(spec.to_dict())
        wait_state(client, submitted["rid"], ("done",))
        assert rows_of(submitted["store"]) == direct_rows(spec)

    def test_queue_and_status_rpcs(self, client):
        submitted = client.submit(echo_spec(n=2).to_dict(), priority=7)
        run = wait_state(client, submitted["rid"], ("done",))
        assert run["priority"] == 7
        assert run["completed"] == 2
        runs = client.queue()
        assert [r["rid"] for r in runs] == [submitted["rid"]]
        info = client.status(submitted["rid"])
        assert info["run"]["state"] == "done"
        assert info["status"] is None  # not executing any more

    def test_status_snapshot_carries_rid_while_running(self, client):
        submitted = client.submit(sleep_spec(n=10).to_dict())
        rid = submitted["rid"]
        snap = wait_for(
            lambda: client.status(rid)["status"],
            message="live snapshot")
        assert snap["rid"] == rid
        assert snap["campaign"] == "slow"
        wait_state(client, rid, ("done",))

    def test_distinct_rids_across_concurrent_clients(self, master):
        rids = []
        lock = threading.Lock()

        def submitter(tag):
            with ServeClient(master.socket_path) as mine:
                for i in range(5):
                    got = mine.submit(
                        echo_spec(name=f"c{tag}-{i}", n=1).to_dict())
                    with lock:
                        rids.append(got["rid"])

        threads = [threading.Thread(target=submitter, args=(t,))
                   for t in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(rids) == list(range(1, 16))

    def test_submit_while_shutting_down_rejected(self, master, client):
        master._shutdown.set()
        with pytest.raises(ServeError) as err:
            client.submit(echo_spec(n=1).to_dict())
        assert err.value.code == "shutting_down"


class TestMasterScheduling:
    def test_priority_preempts_queue_order(self, client):
        blocker = client.submit(sleep_spec(n=15, sleep_s=0.05).to_dict())
        wait_state(client, blocker["rid"], ("running",))
        low = client.submit(echo_spec(name="low", n=1).to_dict(),
                            priority=0)
        high = client.submit(echo_spec(name="high", n=1).to_dict(),
                             priority=10)
        for submitted in (blocker, low, high):
            wait_state(client, submitted["rid"], ("done",))
        started = {r["name"]: r["started_unix"]
                   for r in client.queue()}
        assert started["high"] <= started["low"]

    def test_determinism_two_clients_overlapping_grids(self, master):
        """The acceptance drill: two clients, overlapping sharded
        grids, different priorities — every run's rows bit-identical
        to the same spec run serially with no master involved."""
        spec_a = echo_spec(name="grid-a", n=6, k=1)
        spec_b = CampaignSpec(name="grid-b", points=(
            echo_spec(name="grid-b", n=4, k=1).points
            + echo_spec(name="grid-b", n=3, k=2).points))
        submissions = {}

        def submit(tag, spec, priority):
            with ServeClient(master.socket_path) as mine:
                submissions[tag] = mine.submit(
                    spec.to_dict(), priority=priority, jobs=2)

        threads = [
            threading.Thread(target=submit, args=("a", spec_a, 1)),
            threading.Thread(target=submit, args=("b", spec_b, 5)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert submissions["a"]["rid"] != submissions["b"]["rid"]
        with ServeClient(master.socket_path) as probe:
            for tag in ("a", "b"):
                run = wait_state(probe, submissions[tag]["rid"],
                                 ("done",))
                assert run["failed"] == 0
        # sharded-via-master == serial-no-master, per point
        assert rows_of(submissions["a"]["store"]) == direct_rows(spec_a)
        assert rows_of(submissions["b"]["store"]) == direct_rows(spec_b)

    def test_cancel_running_then_requeue_completes_identically(
            self, client):
        spec = sleep_spec(n=15, sleep_s=0.05)
        submitted = client.submit(spec.to_dict())
        rid = submitted["rid"]
        wait_for(lambda: client.status(rid)["run"]["completed"] >= 2,
                 message="a few points done")
        result = client.cancel(rid)
        assert result["interrupt"] == "cancel"
        run = wait_state(client, rid, ("cancelled",))
        assert 0 < run["completed"] < len(spec.points)
        partial = len(rows_of(submitted["store"]))
        assert partial == run["completed"]
        # requeue resumes from the store: the finished whole equals a
        # run that was never interrupted
        client.requeue(rid)
        run = wait_state(client, rid, ("done",))
        assert run["resumed"] == partial
        assert rows_of(submitted["store"]) == direct_rows(spec)

    def test_pause_then_requeue(self, client):
        spec = sleep_spec(n=12, sleep_s=0.05)
        submitted = client.submit(spec.to_dict())
        rid = submitted["rid"]
        wait_for(lambda: client.status(rid)["run"]["completed"] >= 1,
                 message="first point done")
        client.pause(rid)
        run = wait_state(client, rid, ("paused",))
        assert run["completed"] < len(spec.points)
        client.requeue(rid)
        run = wait_state(client, rid, ("done",))
        assert run["completed"] == len(spec.points)

    def test_cancel_queued_never_runs(self, client):
        blocker = client.submit(sleep_spec(n=8).to_dict())
        victim = client.submit(echo_spec(n=2).to_dict())
        result = client.cancel(victim["rid"])
        assert result["state"] == "cancelled"
        wait_state(client, blocker["rid"], ("done",))
        run = client.status(victim["rid"])["run"]
        assert run["state"] == "cancelled"
        assert run["completed"] == 0
        assert not os.path.exists(victim["store"])


class TestMasterFailureDrills:
    def test_client_death_mid_stream_leaves_run_alive(self, master):
        victim = ServeClient(master.socket_path)
        submitted = victim.submit(sleep_spec(n=10).to_dict(),
                                  stream=True)
        rid = submitted["rid"]
        events = victim.events(rid=rid)
        assert next(events)["event"] == "state"   # saw it start
        next(events)                              # saw a point land
        victim.close()                            # client dies mid-run
        with ServeClient(master.socket_path) as witness:
            run = wait_state(witness, rid, ("done",))
            assert run["completed"] == 10
            assert run["failed"] == 0
        assert len(rows_of(submitted["store"])) == 10

    def test_worker_sigkill_drains_not_dies(self, master, client):
        points = [
            CampaignPoint(
                task="serve_kill", workload="w", instructions=100,
                seed=seed, params={"kill": seed == 3})
            for seed in range(8)
        ]
        spec = CampaignSpec(name="killer", points=points)
        submitted = client.submit(spec.to_dict(), jobs=2)
        run = wait_state(client, submitted["rid"], ("done",))
        assert run["failed"] >= 1
        rows = rows_of(submitted["store"])
        dead = [error for ok, _, error in rows.values()
                if not ok]
        assert dead and all("WorkerDied" in error for error in dead)
        # the pool is rebuilt: the next sharded run is untouched
        clean = echo_spec(name="after", n=4)
        second = client.submit(clean.to_dict(), jobs=2)
        run = wait_state(client, second["rid"], ("done",))
        assert run["failed"] == 0
        assert rows_of(second["store"]) == direct_rows(clean)

    def test_graceful_shutdown_requeues_in_flight_run(self, state_dir):
        master = Master(state_dir=state_dir, service=ExecutionService())
        master.start()
        spec = sleep_spec(n=20, sleep_s=0.05)
        with ServeClient(master.socket_path) as client:
            submitted = client.submit(spec.to_dict())
            rid = submitted["rid"]
            wait_for(
                lambda: client.status(rid)["run"]["completed"] >= 2,
                message="points landing")
        master.stop()
        record = RunRegistry(state_dir).load(rid)
        assert record.state == "queued"     # not lost, not done
        assert 0 < record.completed < len(spec.points)
        assert len(rows_of(submitted["store"])) == record.completed

    def test_restarted_master_resumes_same_rid(self, state_dir):
        first = Master(state_dir=state_dir, service=ExecutionService())
        first.start()
        spec = sleep_spec(n=16, sleep_s=0.05)
        with ServeClient(first.socket_path) as client:
            submitted = client.submit(spec.to_dict())
            rid = submitted["rid"]
            wait_for(
                lambda: client.status(rid)["run"]["completed"] >= 2,
                message="points landing")
        first.stop()
        partial = len(rows_of(submitted["store"]))
        assert 0 < partial < len(spec.points)

        second = Master(state_dir=state_dir, service=ExecutionService())
        recovered = second.start()
        try:
            assert [r.rid for r in recovered] == [rid]
            with ServeClient(second.socket_path) as client:
                run = wait_state(client, rid, ("done",))
                assert run["completed"] == len(spec.points)
                assert run["resumed"] >= partial
                # a fresh submit never reuses the old rid
                again = client.submit(echo_spec(n=1).to_dict())
                assert again["rid"] == rid + 1
        finally:
            second.stop()
        assert rows_of(submitted["store"]) == direct_rows(spec)

    def test_shutdown_rpc_stops_serving(self, state_dir):
        master = Master(state_dir=state_dir, service=ExecutionService())
        master.start()
        try:
            with ServeClient(master.socket_path) as client:
                reply = client.shutdown()
                assert reply["stopping"] is True
            wait_for(lambda: master._shutdown.is_set(),
                     message="shutdown flag")
        finally:
            master.stop()


@pytest.mark.slow
class TestMasterSubprocess:
    """The full acceptance drill with a real daemon process: SIGTERM
    mid-campaign, restart, resume completes under the same rid."""

    def spawn(self, state_dir):
        env = dict(os.environ, PYTHONPATH="src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--state-dir", state_dir],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, cwd=os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))), env=env)
        socket_path = os.path.join(state_dir, "serve.sock")
        wait_for(lambda: os.path.exists(socket_path), timeout=60.0,
                 message="master socket")
        return process, socket_path

    def test_sigterm_restart_resume(self, state_dir):
        # Enough points that the run cannot race to completion in
        # the gap between "first point landed" and SIGTERM delivery.
        spec = CampaignSpec.grid(
            "accept", workloads=("dedup", "hmmer"),
            seeds=(0, 1, 2, 3, 4, 5),
            instructions=SMALL, configs=[{"cores": 2}])
        process, socket_path = self.spawn(state_dir)
        try:
            with ServeClient(socket_path, timeout=120.0) as client:
                submitted = client.submit(spec.to_dict())
                rid = submitted["rid"]
                wait_for(
                    lambda: client.status(rid)["run"]["completed"] >= 1,
                    timeout=120.0, message="first point")
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=60.0) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        record = RunRegistry(state_dir).load(rid)
        assert record.state == "queued"
        partial = len(rows_of(submitted["store"]))
        assert partial >= 1

        process, socket_path = self.spawn(state_dir)
        try:
            with ServeClient(socket_path, timeout=120.0) as client:
                run = wait_state(client, rid, ("done",),
                                 timeout=120.0)
                assert run["completed"] == len(spec.points)
                assert run["failed"] == 0
                assert run["resumed"] >= partial
                client.shutdown()
            assert process.wait(timeout=60.0) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        assert rows_of(submitted["store"]) == direct_rows(spec)
