"""repro.difftest — generator, harness, shrinker, campaign/CLI wiring."""

import json
import os

import pytest

from repro.campaign import CampaignPoint, CampaignSpec, run_campaign
from repro.cli import main
from repro.common.prng import DeterministicRng
from repro.difftest import (FuzzConfig, diff_program, evaluate_fuzz_point,
                            fuzz_program_for_point, generate_fuzz_program,
                            run_golden, shrink_fuzz_program, shrink_lines,
                            snapshot, write_artifact)
from repro.difftest.progen import INT_POOL


def _point(index=0, seed=0, params=None, instructions=10_000):
    merged = {"index": index}
    if params:
        merged.update(params)
    return CampaignPoint(task="difftest", workload="fuzz",
                         instructions=instructions, seed=seed, params=merged)


# -- program generation ----------------------------------------------------

class TestProgramGeneration:

    def test_deterministic_in_rng_key(self):
        one = generate_fuzz_program(DeterministicRng("k", name="g"))
        two = generate_fuzz_program(DeterministicRng("k", name="g"))
        assert one.lines == two.lines
        assert one.data_words == two.data_words

    def test_different_keys_differ(self):
        one = generate_fuzz_program(DeterministicRng("k1", name="g"))
        two = generate_fuzz_program(DeterministicRng("k2", name="g"))
        assert one.lines != two.lines

    @pytest.mark.quick
    def test_programs_assemble_and_terminate(self):
        for seed in range(5):
            fuzz = generate_fuzz_program(
                DeterministicRng(f"gen/{seed}", name="g"))
            program = fuzz.build()
            result = run_golden(program, max_instructions=10_000)
            assert result.halted_by in ("ecall", "end")

    def test_reserved_registers_untouched(self):
        """x28-x31 (Nzdc scratch) and x2-x4 never appear."""
        fuzz = generate_fuzz_program(DeterministicRng("resv", name="g"))
        program = fuzz.build()
        for instr in program.instructions:
            spec = instr.spec
            for field, used in (("rd", spec.writes_int_rd),
                                ("rs1", spec.reads_int_rs1),
                                ("rs2", spec.reads_int_rs2)):
                if used:
                    assert getattr(instr, field) <= 27
            if spec.writes_fp_rd or spec.reads_fp_rs1 or spec.reads_fp_rs2:
                for field in ("rd", "rs1", "rs2"):
                    assert getattr(instr, field) <= 27

    def test_weights_respected(self):
        config = FuzzConfig(weights={"alu": 1}, body_instructions=40)
        fuzz = generate_fuzz_program(DeterministicRng("w", name="g"),
                                     config)
        program = fuzz.build()
        # alu-only weights: ALU body plus the fixed scaffolding — the
        # li/fcvt.d.l prologue (alu+fp), the terminating ecall, and the
        # helper functions' ret (jump).  No loads/stores/branches/
        # mul/div/csr may appear.
        classes = {i.spec.iclass.value for i in program.instructions}
        assert classes <= {"alu", "fp", "system", "jump"}, classes

    def test_rejects_bad_weight_configs(self):
        with pytest.raises(ValueError, match="unknown instruction"):
            FuzzConfig(weights={"laod": 5})  # typo'd class name
        with pytest.raises(ValueError, match="must be positive"):
            FuzzConfig(weights={"alu": 0})
        with pytest.raises(ValueError, match="multiple of 8"):
            FuzzConfig(data_window_bytes=100)

    def test_cli_instructions_zero_uses_default_cap(self, capsys,
                                                    tmp_path):
        code = main(["difftest", "--self-check", "--instructions", "0",
                     "--artifacts", str(tmp_path / "arts")])
        out = capsys.readouterr().out
        assert code == 0
        shrunk_line = [l for l in out.splitlines()
                       if l.startswith("shrunk")][0]
        assert int(shrunk_line.split("->")[1].split()[0]) <= 10

    def test_loads_stay_in_data_window(self):
        config = FuzzConfig(data_window_bytes=256)
        fuzz = generate_fuzz_program(DeterministicRng("win", name="g"),
                                     config)
        program = fuzz.build()
        for instr in program.instructions:
            if instr.spec.is_mem and instr.rs1 == 20:
                assert 0 <= instr.imm < 256


# -- the differential harness ----------------------------------------------

class TestHarness:

    @pytest.mark.quick
    def test_clean_programs_do_not_diverge(self):
        for seed in range(3):
            fuzz = generate_fuzz_program(
                DeterministicRng(f"clean/{seed}", name="g"))
            report = diff_program(fuzz.build())
            assert not report.divergent, report.mismatches
            assert set(report.outcomes) == {"golden", "bigcore",
                                            "littlecore", "meek", "nzdc"}

    def test_snapshot_comparison_flags_each_field(self):
        from repro.difftest import compare_snapshots
        from repro.isa.state import ArchState
        a, b = ArchState(), ArchState()
        b.write_int(7, 42)
        b.write_fp(3, 9)
        b.write_csr(0x300, 1)
        b.memory.store(0x100, 5, 8)
        b.pc = 4
        mismatches = compare_snapshots("x", snapshot(a), snapshot(b))
        kinds = " ".join(mismatches)
        assert "x7" in kinds and "f3" in kinds and "csr" in kinds
        assert "mem[0x100]" in kinds and "pc" in kinds
        assert len(mismatches) == 5
        assert compare_snapshots("x", snapshot(a), snapshot(b),
                                 skip_int=(7,), skip_fp=(3,),
                                 skip_pc=True) == mismatches[3:5]

    @pytest.mark.quick
    def test_fault_injection_self_check_detects(self):
        """A corrupted forwarded SRCP must surface as a divergence
        through the genuine checking machinery."""
        fuzz = generate_fuzz_program(DeterministicRng("fault", name="g"))
        report = diff_program(fuzz.build(), fault_rate=1.0,
                              fault_key="t/fault", fault_targets="pc")
        assert report.injections >= 1
        assert report.detected >= 1
        assert report.divergent
        assert any(m.startswith("meek-replay") for m in report.mismatches)

    def test_fault_free_meek_replay_verifies(self):
        fuzz = generate_fuzz_program(DeterministicRng("ok", name="g"))
        report = diff_program(fuzz.build())
        assert report.outcomes["meek"].verified
        assert report.injections == 0

    def test_broken_transform_caught(self):
        """Sanity: a deliberately wrong program diverges loudly."""
        from repro.isa.assembler import assemble
        good = assemble("addi x5, x0, 7\necall")
        bad_lines = ["addi x5, x0, 8", "ecall"]
        ref = run_golden(good)
        got = run_golden(assemble("\n".join(bad_lines)))
        from repro.difftest import compare_snapshots
        assert compare_snapshots("mut", snapshot(ref.state),
                                 snapshot(got.state))


# -- shrinking -------------------------------------------------------------

class TestShrinker:

    def test_shrinks_to_predicate_core(self):
        """Predicate 'a mul instruction survives' leaves ~1 mul."""
        fuzz = generate_fuzz_program(DeterministicRng("shrink", name="g"))

        def predicate(program):
            return any(i.op == "mul" for i in program.instructions)

        assert predicate(fuzz.build())
        result, small = shrink_fuzz_program(fuzz, predicate)
        program = small.build()
        assert predicate(program)
        muls = sum(1 for i in program.instructions if i.op == "mul")
        assert muls == 1
        assert result.instructions < result.original_instructions
        assert result.instructions <= 3  # mul + protected ecall (+slack)

    def test_result_always_satisfies_predicate(self):
        lines = [f"    addi x5, x5, {i}" for i in range(1, 9)]
        lines.append("    ecall")

        def predicate(candidate):
            return any("addi x5, x5, 3" in line for line in candidate)

        result = shrink_lines(lines, {8}, predicate)
        assert predicate(result.lines)
        assert result.instructions == 2  # the addi + protected ecall

    def test_unreferenced_labels_swept(self):
        fuzz = generate_fuzz_program(DeterministicRng("labels", name="g"))
        result, small = shrink_fuzz_program(
            fuzz, lambda program: len(program) >= 1)
        assert not any(line.strip().endswith(":") for line in small.lines
                       if "helper" in line or "skip" in line
                       or "loop" in line)

    @pytest.mark.quick
    def test_fault_self_check_shrinks_small(self):
        """The acceptance property: a fault reproducer minimizes to a
        handful of instructions."""
        fuzz = generate_fuzz_program(DeterministicRng("sc", name="g"))

        def predicate(program):
            report = diff_program(program, fault_rate=1.0,
                                  fault_key="sc/fault",
                                  fault_targets="pc")
            return any(m.startswith("meek-replay")
                       for m in report.mismatches)

        assert predicate(fuzz.build())
        result, small = shrink_fuzz_program(fuzz, predicate)
        assert result.instructions <= 10
        assert predicate(small.build())

    def test_shrink_identical_through_warm_service(self, monkeypatch):
        """Routing ddmin through the pre-warmed execution service (the
        CLI's path: cached steppers reused across every candidate
        program) must select exactly the candidates the naive
        slow-kernel shrink selects — the reducer's decisions are a
        pure function of the harness verdicts, so the line sequences
        must match."""
        from repro.perf.service import ExecutionService

        config = FuzzConfig(body_instructions=40,
                            weights={"alu": 3, "load": 1, "store": 1})

        def fresh_fuzz():
            return generate_fuzz_program(
                DeterministicRng("warm-shrink", name="g"), config)

        def predicate(program):
            report = diff_program(program, fault_rate=1.0,
                                  fault_key="warm-shrink/fault",
                                  fault_targets="pc")
            return any(m.startswith("meek-replay")
                       for m in report.mismatches)

        ExecutionService().warm()  # the warm path under test
        monkeypatch.delenv("REPRO_SLOW_KERNEL", raising=False)
        warm_result, warm_small = shrink_fuzz_program(fresh_fuzz(),
                                                      predicate)
        monkeypatch.setenv("REPRO_SLOW_KERNEL", "1")
        slow_result, slow_small = shrink_fuzz_program(fresh_fuzz(),
                                                      predicate)
        assert warm_result.lines == slow_result.lines
        assert warm_result.instructions == slow_result.instructions
        assert warm_small.lines == slow_small.lines

    def test_artifact_roundtrip(self, tmp_path):
        path = write_artifact(str(tmp_path), "task/a/b",
                              {"source": ["    ecall"], "n": 1})
        with open(path, encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["point_id"] == "task/a/b"
        assert record["source"] == ["    ecall"]
        # Same point overwrites, different point gets a new file.
        write_artifact(str(tmp_path), "task/a/b", {"n": 2})
        write_artifact(str(tmp_path), "task/other", {"n": 3})
        assert len(os.listdir(tmp_path)) == 2


# -- campaign + CLI wiring -------------------------------------------------

class TestCampaignWiring:

    @pytest.mark.quick
    def test_task_registered_and_deterministic(self):
        metrics_a = evaluate_fuzz_point(_point(3, seed=7))
        metrics_b = evaluate_fuzz_point(_point(3, seed=7),
                                        campaign_name="other-name")
        assert metrics_a == metrics_b  # identity-derived RNG
        assert metrics_a["divergent"] is False
        assert metrics_a["instructions"] > 50

    def test_program_regeneration_matches_point(self):
        point = _point(5, seed=11)
        one = fuzz_program_for_point(point)
        two = fuzz_program_for_point(point)
        assert one.lines == two.lines

    def test_sharded_matches_serial(self):
        spec = CampaignSpec(
            name="difftest-test",
            points=[_point(i, seed=2) for i in range(4)])
        serial = run_campaign(spec, jobs=1)
        sharded = run_campaign(spec, jobs=2)
        assert serial.metrics() == sharded.metrics()
        assert all(not m["divergent"] for m in serial.metrics())

    @pytest.mark.quick
    def test_cli_difftest_runs_clean(self, capsys):
        code = main(["difftest", "--programs", "3", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "programs        : 3" in out
        assert "divergent       : 0" in out

    def test_cli_difftest_self_check(self, capsys, tmp_path,
                                     monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["difftest", "--self-check",
                     "--artifacts", "arts"])
        out = capsys.readouterr().out
        assert code == 0
        assert "divergence      : meek-replay" in out
        assert "shrunk          : " in out
        shrunk_line = [l for l in out.splitlines()
                       if l.startswith("shrunk")][0]
        final = int(shrunk_line.split("->")[1].split()[0])
        assert final <= 10
        artifacts = os.listdir(tmp_path / "arts")
        assert len(artifacts) == 1

    def test_cli_difftest_resume(self, tmp_path, capsys):
        out_path = str(tmp_path / "rows.jsonl")
        assert main(["difftest", "--programs", "2", "--out",
                     out_path]) == 0
        capsys.readouterr()
        with open(out_path, encoding="utf-8") as handle:
            first_rows = [json.loads(l) for l in handle if l.strip()]
        assert len(first_rows) == 2
        # Resume re-runs nothing; the file does not grow.
        assert main(["difftest", "--programs", "2", "--out", out_path,
                     "--resume"]) == 0
        with open(out_path, encoding="utf-8") as handle:
            rows = [json.loads(l) for l in handle if l.strip()]
        assert len(rows) == 2


# -- the deep sweep (run with `pytest -m fuzz`) ----------------------------

@pytest.mark.fuzz
def test_deep_differential_sweep():
    """Hundreds of programs across weight emphases; any divergence is a
    real cross-model bug."""
    emphases = {
        "default": None,
        "memory": {"alu": 4, "load": 8, "store": 8, "branch": 2,
                   "loop": 1, "call": 1, "csr": 1},
        "control": {"alu": 4, "branch": 8, "loop": 4, "call": 4,
                    "load": 2, "store": 2},
        "fp": {"alu": 2, "fp": 8, "fpdiv": 4, "fpmove": 4, "load": 2,
               "store": 2},
        "division": {"alu": 2, "div": 8, "mul": 4, "load": 1,
                     "store": 1},
    }
    failures = []
    for name, weights in emphases.items():
        config = FuzzConfig(weights=weights) if weights else None
        for seed in range(40):
            rng = DeterministicRng(f"deep/{name}/{seed}", name="g")
            fuzz = generate_fuzz_program(rng, config)
            report = diff_program(fuzz.build())
            if report.divergent:
                failures.append((name, seed, report.mismatches[:4]))
    assert not failures, failures


@pytest.mark.fuzz
def test_deep_fault_sweep_detects_every_pc_fault():
    """PC corruption of forwarded SRCPs is always detected."""
    for seed in range(25):
        rng = DeterministicRng(f"deepfault/{seed}", name="g")
        fuzz = generate_fuzz_program(rng)
        report = diff_program(fuzz.build(), fault_rate=1.0,
                              fault_key=f"deepfault/{seed}",
                              fault_targets="pc")
        assert report.injections >= 1
        assert report.detected == report.injections, seed
        assert report.divergent
