"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "hmmer"])
        assert args.cores == 4
        assert args.fabric == "f2"

    def test_run_overrides(self):
        args = build_parser().parse_args(
            ["run", "mcf", "--cores", "6", "--fabric", "axi"])
        assert args.cores == 6
        assert args.fabric == "axi"

    def test_bad_fabric_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "mcf", "--fabric", "pcie"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "tab3"])
        assert args.name == "tab3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "swaptions" in out and "mcf" in out

    def test_run_small(self, capsys):
        code = main(["run", "hmmer", "--instructions", "3000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "slowdown" in out
        assert "all verified    : True" in out

    def test_inject_small(self, capsys):
        code = main(["inject", "dedup", "--instructions", "4000",
                     "--trials", "1", "--rate", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "injections" in out

    def test_figure_tab3(self, capsys):
        assert main(["figure", "tab3"]) == 0
        assert "25.8%" in capsys.readouterr().out


class TestBatch:
    def test_batch_parses(self):
        args = build_parser().parse_args(["batch", "-", "--keep-going"])
        assert args.command == "batch" and args.keep_going

    def test_batch_runs_commands_in_one_process(self, tmp_path, capsys):
        script = tmp_path / "cmds.txt"
        script.write_text(
            "# comment lines and blanks are skipped\n"
            "\n"
            "list\n"
            "repro run hmmer --instructions 2000\n")
        assert main(["batch", str(script)]) == 0
        out = capsys.readouterr().out
        assert "swaptions" in out          # from `list`
        assert "slowdown" in out           # from `run`
        assert "2 command(s), 0 failed" in out

    def test_batch_stops_on_failure_without_keep_going(self, tmp_path,
                                                       capsys):
        script = tmp_path / "cmds.txt"
        script.write_text("definitely-not-a-command\nlist\n")
        assert main(["batch", str(script)]) == 1
        out = capsys.readouterr().out
        assert "swaptions" not in out      # second line never ran

    def test_batch_keep_going_runs_rest(self, tmp_path, capsys):
        script = tmp_path / "cmds.txt"
        script.write_text("definitely-not-a-command\nlist\n")
        assert main(["batch", str(script), "--keep-going"]) == 1
        out = capsys.readouterr().out
        assert "swaptions" in out
        assert "1 failed" in out

    def test_batch_malformed_line_is_counted_failure(self, tmp_path,
                                                     capsys):
        """An unbalanced quote must be a per-line failure (honouring
        --keep-going), never an uncaught shlex traceback."""
        script = tmp_path / "cmds.txt"
        script.write_text('run swaptions --note "oops\nlist\n')
        assert main(["batch", str(script), "--keep-going"]) == 1
        out = capsys.readouterr().out
        assert "swaptions" in out  # the good line still ran
        assert "1 failed" in out

    def test_batch_handler_exception_is_counted_failure(self, tmp_path,
                                                        capsys):
        """A command whose handler raises (e.g. unknown workload ->
        ConfigError) fails that line only; --keep-going proceeds."""
        script = tmp_path / "cmds.txt"
        script.write_text("run nosuchworkload --instructions 100\nlist\n")
        assert main(["batch", str(script), "--keep-going"]) == 1
        out = capsys.readouterr().out
        assert "swaptions" in out  # `list` still ran
        assert "2 command(s), 1 failed" in out

    def test_batch_rejects_nesting(self, tmp_path):
        inner = tmp_path / "inner.txt"
        inner.write_text("list\n")
        outer = tmp_path / "outer.txt"
        outer.write_text(f"batch {inner}\n")
        assert main(["batch", str(outer)]) == 1

    def test_batch_missing_file(self, capsys):
        assert main(["batch", "/no/such/command/file"]) == 2
        assert "cannot read" in capsys.readouterr().err
