"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "hmmer"])
        assert args.cores == 4
        assert args.fabric == "f2"

    def test_run_overrides(self):
        args = build_parser().parse_args(
            ["run", "mcf", "--cores", "6", "--fabric", "axi"])
        assert args.cores == 6
        assert args.fabric == "axi"

    def test_bad_fabric_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "mcf", "--fabric", "pcie"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "tab3"])
        assert args.name == "tab3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "swaptions" in out and "mcf" in out

    def test_run_small(self, capsys):
        code = main(["run", "hmmer", "--instructions", "3000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "slowdown" in out
        assert "all verified    : True" in out

    def test_inject_small(self, capsys):
        code = main(["inject", "dedup", "--instructions", "4000",
                     "--trials", "1", "--rate", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "injections" in out

    def test_figure_tab3(self, capsys):
        assert main(["figure", "tab3"]) == 0
        assert "25.8%" in capsys.readouterr().out


class TestBatch:
    def test_batch_parses(self):
        args = build_parser().parse_args(["batch", "-", "--keep-going"])
        assert args.command == "batch" and args.keep_going

    def test_batch_runs_commands_in_one_process(self, tmp_path, capsys):
        script = tmp_path / "cmds.txt"
        script.write_text(
            "# comment lines and blanks are skipped\n"
            "\n"
            "list\n"
            "repro run hmmer --instructions 2000\n")
        assert main(["batch", str(script)]) == 0
        out = capsys.readouterr().out
        assert "swaptions" in out          # from `list`
        assert "slowdown" in out           # from `run`
        assert "2 command(s), 0 failed" in out

    def test_batch_stops_on_failure_without_keep_going(self, tmp_path,
                                                       capsys):
        script = tmp_path / "cmds.txt"
        script.write_text("definitely-not-a-command\nlist\n")
        assert main(["batch", str(script)]) == 1
        out = capsys.readouterr().out
        assert "swaptions" not in out      # second line never ran

    def test_batch_keep_going_runs_rest(self, tmp_path, capsys):
        script = tmp_path / "cmds.txt"
        script.write_text("definitely-not-a-command\nlist\n")
        assert main(["batch", str(script), "--keep-going"]) == 1
        out = capsys.readouterr().out
        assert "swaptions" in out
        assert "1 failed" in out

    def test_batch_malformed_line_is_counted_failure(self, tmp_path,
                                                     capsys):
        """An unbalanced quote must be a per-line failure (honouring
        --keep-going), never an uncaught shlex traceback."""
        script = tmp_path / "cmds.txt"
        script.write_text('run swaptions --note "oops\nlist\n')
        assert main(["batch", str(script), "--keep-going"]) == 1
        out = capsys.readouterr().out
        assert "swaptions" in out  # the good line still ran
        assert "1 failed" in out

    def test_batch_handler_exception_is_counted_failure(self, tmp_path,
                                                        capsys):
        """A command whose handler raises (e.g. unknown workload ->
        ConfigError) fails that line only; --keep-going proceeds."""
        script = tmp_path / "cmds.txt"
        script.write_text("run nosuchworkload --instructions 100\nlist\n")
        assert main(["batch", str(script), "--keep-going"]) == 1
        out = capsys.readouterr().out
        assert "swaptions" in out  # `list` still ran
        assert "2 command(s), 1 failed" in out

    def test_batch_rejects_nesting(self, tmp_path):
        inner = tmp_path / "inner.txt"
        inner.write_text("list\n")
        outer = tmp_path / "outer.txt"
        outer.write_text(f"batch {inner}\n")
        assert main(["batch", str(outer)]) == 1

    def test_batch_missing_file(self, capsys):
        assert main(["batch", "/no/such/command/file"]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestWatchCommand:
    def test_watch_parses(self):
        args = build_parser().parse_args(
            ["watch", "r.jsonl", "--once", "--interval", "0.5"])
        assert args.command == "watch"
        assert args.once and args.interval == 0.5

    def test_watch_once_on_finished_campaign(self, tmp_path, capsys):
        """campaign --out publishes status.json; watch --once reads it."""
        out = tmp_path / "results.jsonl"
        assert main(["campaign", "--workloads", "hmmer", "--seeds", "0",
                     "--instructions", "2000", "--out", str(out)]) == 0
        assert (tmp_path / "results.jsonl.status.json").exists()
        capsys.readouterr()
        assert main(["watch", "--once", str(out)]) == 0
        view = capsys.readouterr().out
        assert "finished" in view
        assert "points    : 2/2" in view
        assert "instrs" in view

    def test_watch_once_in_flight_sharded_campaign(self, tmp_path):
        """The acceptance path: a sharded campaign is *running* in
        another process while `repro watch --once` renders its live
        percentiles/throughput/shard table from status.json."""
        import os
        import subprocess
        import sys
        import time

        import repro
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = (src_dir + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src_dir)
        out = tmp_path / "inflight.jsonl"
        status = tmp_path / "inflight.jsonl.status.json"
        argv = [sys.executable, "-m", "repro", "campaign",
                "--workloads", "hmmer,dedup", "--seeds", "0,1",
                "--task", "inject", "--trials", "4",
                "--instructions", "4000", "--jobs", "2",
                "--out", str(out)]
        proc = subprocess.Popen(argv, env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 60.0
            while not status.exists() and time.monotonic() < deadline:
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
            assert status.exists(), "campaign never published status.json"
            watched = subprocess.run(
                [sys.executable, "-m", "repro", "watch", "--once",
                 str(out)],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                timeout=60.0)
            assert watched.returncode == 0, watched.stderr.decode()
            view = watched.stdout.decode()
            assert "campaign cli —" in view
            assert "points    :" in view
            assert "rate      :" in view
        finally:
            assert proc.wait(timeout=120.0) == 0

    def test_watch_missing_path_fails(self, tmp_path, capsys):
        assert main(["watch", "--once", "--wait", "0",
                     str(tmp_path / "absent.jsonl")]) == 2
        assert "watch:" in capsys.readouterr().err


class TestBenchTrend:
    def test_trend_flags_parse(self):
        args = build_parser().parse_args(["bench", "--trend"])
        assert args.trend and args.history.endswith("BENCH_history.jsonl")

    def test_trend_empty_history(self, tmp_path, capsys):
        assert main(["bench", "--trend", "--history",
                     str(tmp_path / "none.jsonl")]) == 0
        assert "no history" in capsys.readouterr().out

    def test_trend_renders_recorded_runs(self, tmp_path, capsys):
        from repro.perf.history import append_history

        history = tmp_path / "hist.jsonl"
        for meek in (2.0, 2.2, 1.9):
            result = {"workloads": {"hmmer": {"meek": {
                          "instrs_per_s": 100_000.0 * meek}}},
                      "kernels": {"meek_speedup": meek,
                                  "vanilla_speedup": 2.4},
                      "config": {"instructions": 20_000, "cores": 4}}
            append_history(result, path=str(history), sha="abc1234")
        assert main(["bench", "--trend", "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "kernels/meek_speedup" in out
        assert "hmmer/meek/instrs_per_s" in out
        assert "+" in out or "-" in out  # the change column rendered


# -- the serve family: serve / submit / queue / cancel / watch-by-rid ------


class TestServeParser:
    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--jobs", "4", "--state-dir", "/tmp/sd",
             "--socket", "/tmp/sd/s.sock", "--events", "ev.jsonl"])
        assert args.command == "serve"
        assert args.jobs == 4 and not args.stop
        assert args.state_dir == "/tmp/sd"

    def test_serve_stop_flag(self):
        args = build_parser().parse_args(["serve", "--stop"])
        assert args.stop

    def test_submit_shares_campaign_grid_flags(self):
        args = build_parser().parse_args(
            ["submit", "--workloads", "dedup,hmmer", "--seeds", "0,1",
             "--cores", "2,4", "--priority", "5", "--detach",
             "--jobs", "2"])
        assert args.command == "submit"
        assert args.workloads == ["dedup", "hmmer"]
        assert args.cores == [2, 4]
        assert args.priority == 5 and args.detach

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit", "--spec", "s.json"])
        assert args.priority == 0
        assert not args.detach
        assert args.socket is None and args.state_dir is None

    def test_queue_parses(self):
        args = build_parser().parse_args(["queue", "--socket", "/tmp/x"])
        assert args.command == "queue" and args.socket == "/tmp/x"

    def test_cancel_rid_and_modes(self):
        args = build_parser().parse_args(["cancel", "7", "--pause"])
        assert args.rid == 7 and args.pause and not args.requeue
        with pytest.raises(SystemExit):  # mutually exclusive
            build_parser().parse_args(["cancel", "7", "--pause",
                                       "--requeue"])

    def test_watch_takes_serve_flags(self):
        args = build_parser().parse_args(
            ["watch", "3", "--state-dir", "/tmp/sd", "--once"])
        assert args.path == "3" and args.state_dir == "/tmp/sd"

    def test_batch_rejects_serve_line(self, tmp_path, capsys):
        script = tmp_path / "cmds.txt"
        script.write_text("serve --jobs 2\nlist\n")
        assert main(["batch", str(script), "--keep-going"]) == 1
        out = capsys.readouterr()
        assert "start the master outside the batch" in out.err
        assert "swaptions" in out.out  # the rest of the batch still ran

    def test_batch_jobs_flag_parses(self):
        args = build_parser().parse_args(["batch", "x.txt",
                                          "--jobs", "4"])
        assert args.jobs == 4

    def test_batch_jobs_fans_out_and_replays_in_order(self, tmp_path,
                                                      capsys):
        script = tmp_path / "cmds.txt"
        script.write_text("# comment\nlist\nlist\n")
        assert main(["batch", str(script), "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("swaptions") >= 2
        assert "2 command(s), 0 failed" in out

    def test_batch_jobs_counts_failures(self, tmp_path, capsys):
        script = tmp_path / "cmds.txt"
        script.write_text("list\nrun nosuchworkload\n")
        assert main(["batch", str(script), "--jobs", "2"]) == 1
        out = capsys.readouterr()
        assert "1 failed" in out.out

    def test_batch_jobs_blocks_runner_lines(self, tmp_path, capsys):
        script = tmp_path / "cmds.txt"
        script.write_text("runner --connect 127.0.0.1:9\n")
        assert main(["batch", str(script), "--jobs", "2"]) == 1
        assert "cannot run inside a batch" in capsys.readouterr().err

    def test_runner_parser_requires_connect(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["runner"])
        args = build_parser().parse_args(
            ["runner", "--connect", "host:7100", "--name", "r1",
             "--max-chunks", "3", "--idle-exit", "5"])
        assert args.connect == "host:7100" and args.name == "r1"
        assert args.max_chunks == 3 and args.idle_exit == 5.0

    def test_runner_without_master_fails_cleanly(self, capsys):
        code = main(["runner", "--connect", "127.0.0.1:1",
                     "--no-reconnect"])
        assert code == 2
        assert "runner:" in capsys.readouterr().err

    def test_campaign_runner_flags_parse(self):
        args = build_parser().parse_args(
            ["campaign", "--workloads", "dedup", "--runners", "7100",
             "--min-runners", "2", "--runner-wait", "5"])
        assert args.runners == "7100"
        assert args.min_runners == 2 and args.runner_wait == 5.0


class TestEventsSummarize:
    def _log(self, tmp_path):
        from repro.obs.events import EventLog

        path = str(tmp_path / "events.jsonl")
        log = EventLog(path)
        log.emit("campaign_start", campaign="c", points=2, pending=2,
                 resumed=0)
        log.emit("chunk_lease", worker=0, chunk=0, points=2)
        log.emit("point_complete", worker=0, point_id="p/slow",
                 ok=True, elapsed_s=0.5)
        log.emit("point_complete", worker=0, point_id="p/fast",
                 ok=False, elapsed_s=0.1)
        log.emit("campaign_end", campaign="c", dur_s=0.7, failed=1)
        return path

    def test_summarize_reports_all_sections(self, tmp_path, capsys):
        path = self._log(tmp_path)
        assert main(["events", "summarize", path]) == 0
        out = capsys.readouterr().out
        assert "wall time by phase" in out
        assert "campaigns" in out and "shards and runners" in out
        assert "chunks    : 1 lease(s), 2 point(s)" in out
        assert "p/slow" in out and "FAIL" in out

    def test_top_limits_the_slowest_table(self, tmp_path, capsys):
        path = self._log(tmp_path)
        assert main(["events", "summarize", path, "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "slowest 1 point(s)" in out
        assert "p/fast" not in out  # only the slowest survives

    def test_empty_log_fails_cleanly(self, tmp_path, capsys):
        empty = tmp_path / "none.jsonl"
        empty.write_text("")
        assert main(["events", "summarize", str(empty)]) == 2
        assert "no events" in capsys.readouterr().err


class TestServeCommands:
    @pytest.fixture()
    def serve_env(self, monkeypatch):
        import tempfile

        from repro.perf.service import ExecutionService
        from repro.serve.master import Master

        state_dir = tempfile.mkdtemp(prefix="sc", dir="/tmp")
        monkeypatch.setenv("REPRO_SERVE_DIR", state_dir)
        monkeypatch.delenv("REPRO_SERVE_SOCKET", raising=False)
        master = Master(state_dir=state_dir, service=ExecutionService())
        master.start()
        yield master
        master.stop()

    def spec_file(self, tmp_path, n=3):
        import json

        from repro.campaign import task

        @task("cli_serve_echo")
        def _cli_serve_echo(point, campaign_name=""):
            return {"value": point.seed + 1}

        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "cli-serve", "points": [
                {"task": "cli_serve_echo", "workload": "w",
                 "instructions": 100, "seed": seed}
                for seed in range(n)]}))
        return str(path)

    def test_submit_streams_rows_and_summary(self, serve_env, tmp_path,
                                             capsys):
        assert main(["submit", "--spec",
                     self.spec_file(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "submitted run 1: cli-serve (3 points" in out
        assert "3/3 ok" in out

    def test_submit_detach_just_prints_rid(self, serve_env, tmp_path,
                                           capsys):
        assert main(["submit", "--detach", "--spec",
                     self.spec_file(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "submitted run 1" in out
        assert "ok" not in out  # no summary: we did not wait

    def test_queue_lists_runs_after_submit(self, serve_env, tmp_path,
                                           capsys):
        assert main(["submit", "--spec", self.spec_file(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["queue"]) == 0
        out = capsys.readouterr().out
        assert "cli-serve" in out and "done" in out
        assert "master pid" in out

    def test_cancel_finished_run_is_bad_state(self, serve_env, tmp_path,
                                              capsys):
        assert main(["submit", "--spec", self.spec_file(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cancel", "1"]) == 2
        assert "bad_state" in capsys.readouterr().err

    def test_cancel_unknown_rid_not_found(self, serve_env, capsys):
        assert main(["cancel", "99"]) == 2
        assert "not_found" in capsys.readouterr().err

    def test_watch_rid_live_over_socket(self, serve_env, tmp_path,
                                        capsys):
        assert main(["submit", "--spec", self.spec_file(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["watch", "1", "--once"]) == 0
        view = capsys.readouterr().out
        assert "run 1" in view and "cli-serve" in view

    def test_watch_rid_falls_back_to_store_after_master_dies(
            self, serve_env, tmp_path, capsys):
        assert main(["submit", "--spec", self.spec_file(tmp_path)]) == 0
        serve_env.stop()                     # master gone; store remains
        capsys.readouterr()
        assert main(["watch", "1", "--once", "--wait", "2"]) == 0
        view = capsys.readouterr().out
        assert "cli-serve" in view
        assert "points    : 3/3" in view

    def test_watch_unknown_rid_fails_cleanly(self, serve_env, capsys):
        assert main(["watch", "42", "--once", "--wait", "0"]) == 2
        assert "42" in capsys.readouterr().err

    def test_submit_without_master_fails_cleanly(self, monkeypatch,
                                                 tmp_path, capsys):
        import tempfile

        monkeypatch.setenv("REPRO_SERVE_DIR",
                           tempfile.mkdtemp(prefix="nm", dir="/tmp"))
        monkeypatch.delenv("REPRO_SERVE_SOCKET", raising=False)
        assert main(["submit", "--spec",
                     self.spec_file(tmp_path)]) == 2
        assert "no master" in capsys.readouterr().err

    def test_serve_stop_without_master_fails_cleanly(self, monkeypatch,
                                                     capsys):
        import tempfile

        monkeypatch.setenv("REPRO_SERVE_DIR",
                           tempfile.mkdtemp(prefix="nm", dir="/tmp"))
        monkeypatch.delenv("REPRO_SERVE_SOCKET", raising=False)
        assert main(["serve", "--stop"]) == 2
        assert "cannot stop" in capsys.readouterr().err

    def test_serve_stop_shuts_down_live_master(self, serve_env, capsys):
        assert main(["serve", "--stop"]) == 0
        out = capsys.readouterr().out
        assert "shutdown requested" in out
        import time

        deadline = time.monotonic() + 10.0
        while (not serve_env._shutdown.is_set()
               and time.monotonic() < deadline):
            time.sleep(0.02)
        assert serve_env._shutdown.is_set()

    def test_submit_bad_spec_is_rejected_before_rid(self, serve_env,
                                                    tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{ not json")
        assert main(["submit", "--spec", str(bad)]) == 2
        assert "bad spec" in capsys.readouterr().err
        assert serve_env.scheduler.counter.value == 0


class TestWatchAbortedState:
    def test_watch_treats_aborted_as_terminal(self, tmp_path):
        import io

        from repro.obs.live import LiveStatus
        from repro.obs.watch import watch

        status = tmp_path / "status.json"
        live = LiveStatus("abandoned", total=5, path=str(status))
        live.publish(force=True)
        live.aborted()
        stream = io.StringIO()
        # not --once: the loop must still return because "aborted"
        # is terminal (a hang here is the regression)
        assert watch(str(status), interval_s=0.01, once=False,
                     stream=stream, max_wait_s=1.0) == 0
        assert "aborted" in stream.getvalue()

    def test_render_snapshot_shows_rid(self):
        from repro.obs.watch import render_snapshot

        view = render_snapshot({"campaign": "c", "state": "running",
                                "rid": 9, "points": {"total": 4},
                                "updated_unix": 0.0}, now_unix=1.0)
        assert view.splitlines()[0].startswith("run 9 · campaign c")
