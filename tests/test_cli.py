"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "hmmer"])
        assert args.cores == 4
        assert args.fabric == "f2"

    def test_run_overrides(self):
        args = build_parser().parse_args(
            ["run", "mcf", "--cores", "6", "--fabric", "axi"])
        assert args.cores == 6
        assert args.fabric == "axi"

    def test_bad_fabric_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "mcf", "--fabric", "pcie"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "tab3"])
        assert args.name == "tab3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "swaptions" in out and "mcf" in out

    def test_run_small(self, capsys):
        code = main(["run", "hmmer", "--instructions", "3000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "slowdown" in out
        assert "all verified    : True" in out

    def test_inject_small(self, capsys):
        code = main(["inject", "dedup", "--instructions", "4000",
                     "--trials", "1", "--rate", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "injections" in out

    def test_figure_tab3(self, capsys):
        assert main(["figure", "tab3"]) == 0
        assert "25.8%" in capsys.readouterr().out
