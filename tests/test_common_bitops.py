"""Unit tests for repro.common.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bitops import (
    extract_bits,
    flip_bit,
    mask,
    parity,
    popcount,
    sign_extend,
    to_signed,
    to_unsigned,
)
from repro.common.errors import SimulationError

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small(self):
        assert mask(4) == 0b1111

    def test_word(self):
        assert mask(64) == (1 << 64) - 1

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            mask(-1)


class TestSignedness:
    def test_to_signed_positive(self):
        assert to_signed(5, 8) == 5

    def test_to_signed_negative(self):
        assert to_signed(0xFF, 8) == -1

    def test_to_signed_min(self):
        assert to_signed(0x80, 8) == -128

    def test_to_unsigned_negative(self):
        assert to_unsigned(-1, 8) == 0xFF

    @given(U64)
    def test_roundtrip(self, value):
        assert to_unsigned(to_signed(value)) == value

    def test_sign_extend_widens(self):
        assert sign_extend(0x8, 4, 8) == 0xF8

    def test_sign_extend_positive(self):
        assert sign_extend(0x7, 4, 8) == 0x7

    def test_sign_extend_narrowing_rejected(self):
        with pytest.raises(SimulationError):
            sign_extend(1, 16, 8)


class TestExtractBits:
    def test_low_nibble(self):
        assert extract_bits(0xABCD, 3, 0) == 0xD

    def test_high_nibble(self):
        assert extract_bits(0xABCD, 15, 12) == 0xA

    def test_single_bit(self):
        assert extract_bits(0b100, 2, 2) == 1

    def test_bad_range_rejected(self):
        with pytest.raises(SimulationError):
            extract_bits(0, 0, 1)

    @given(U64, st.integers(0, 63), st.integers(0, 63))
    def test_width_bound(self, value, a, b):
        hi, lo = max(a, b), min(a, b)
        assert extract_bits(value, hi, lo) <= mask(hi - lo + 1)


class TestFlipBit:
    def test_flips(self):
        assert flip_bit(0, 3) == 8

    def test_involution(self):
        assert flip_bit(flip_bit(0xDEAD, 7), 7) == 0xDEAD

    @given(U64, st.integers(0, 63))
    def test_always_changes_value(self, value, bit):
        assert flip_bit(value, bit) != value

    @given(U64, st.integers(0, 63))
    def test_changes_exactly_one_bit(self, value, bit):
        assert popcount(flip_bit(value, bit) ^ value) == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(SimulationError):
            flip_bit(0, 64)


class TestParity:
    def test_zero(self):
        assert parity(0) == 0

    def test_single_bit(self):
        assert parity(1) == 1

    def test_two_bits(self):
        assert parity(0b11) == 0

    @given(U64, st.integers(0, 63))
    def test_flip_changes_parity(self, value, bit):
        assert parity(flip_bit(value, bit)) != parity(value)
