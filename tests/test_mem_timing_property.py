"""Property tests for the memory-timing layer.

The idle-skipping refactor moved DRAM and MSHR occupancy tracking onto
min-heaps (fast-forward past retired requests instead of rebuilding the
in-flight list per access).  These tests pin the invariants that change
was most likely to disturb: heap-vs-naive equivalence under random
(including non-monotonic) request sequences, monotonic completion
clocks, bounded in-flight windows, and LRU eviction consistency.
"""

import pytest

from repro.common.errors import SimulationError
from repro.common.prng import DeterministicRng
from repro.mem.cache import CacheModel
from repro.mem.dram import DramModel


class _CacheConfig:
    """Minimal cache config for direct CacheModel construction."""

    def __init__(self, name="prop", num_sets=8, ways=2, line_bytes=64,
                 hit_latency=2, mshrs=2):
        self.name = name
        self.num_sets = num_sets
        self.ways = ways
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency
        self.mshrs = mshrs


class _NaiveDram:
    """The pre-refactor list-rebuild DRAM model (reference)."""

    def __init__(self, latency_cycles, max_requests):
        self.latency_cycles = latency_cycles
        self.max_requests = max_requests
        self._busy_until = []
        self.queue_stall_cycles = 0

    def access(self, now):
        active = [t for t in self._busy_until if t > now]
        self._busy_until = active
        start = now
        if len(active) >= self.max_requests:
            earliest = min(active)
            self.queue_stall_cycles += earliest - now
            start = earliest
        completion = start + self.latency_cycles
        self._busy_until.append(completion)
        return completion


class _NaiveMshr:
    """The pre-refactor list-rebuild MSHR allocator (reference)."""

    def __init__(self, mshrs):
        self.mshrs = mshrs
        self._busy = []
        self.stall_cycles = 0

    def allocate(self, now, completion):
        active = [t for t in self._busy if t > now]
        self._busy = active
        if len(active) >= self.mshrs:
            earliest = min(active)
            delay = earliest - now
            self.stall_cycles += delay
            completion += delay
        self._busy.append(completion)
        return completion


def _request_stream(rng, length, monotonic):
    now = 0
    for _ in range(length):
        if monotonic:
            now += rng.randint(0, 40)
        else:
            # Out-of-order issue: hierarchy levels see non-monotonic
            # timestamps (a load can issue before an earlier ifetch
            # completes).
            now = max(0, now + rng.randint(-25, 40))
        yield now


@pytest.mark.parametrize("monotonic", [True, False])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_dram_heap_matches_naive_model(monotonic, seed):
    rng = DeterministicRng(f"dram/{seed}/{monotonic}")
    dram = DramModel(latency_cycles=30, max_requests=4)
    naive = _NaiveDram(latency_cycles=30, max_requests=4)
    for now in _request_stream(rng, 2_000, monotonic):
        assert dram.access(now) == naive.access(now)
    assert dram.queue_stall_cycles == naive.queue_stall_cycles


@pytest.mark.quick
def test_dram_completion_clock_monotonic_invariants():
    rng = DeterministicRng("dram/invariants")
    dram = DramModel(latency_cycles=50, max_requests=8)
    last_stall = 0
    for now in _request_stream(rng, 3_000, monotonic=True):
        completion = dram.access(now)
        # Fixed service latency is a hard lower bound.
        assert completion >= now + dram.latency_cycles
        # Stall accounting only ever accumulates.
        assert dram.queue_stall_cycles >= last_stall
        last_stall = dram.queue_stall_cycles
        # The in-flight window is bounded by the request limit
        # (entries retired by `now` have been fast-forwarded away).
        assert len(dram._busy_until) <= dram.max_requests + 1


def test_dram_queue_backpressure_exact():
    dram = DramModel(latency_cycles=10, max_requests=2)
    assert dram.access(0) == 10
    assert dram.access(0) == 10
    # Window full: the third request queues behind the earliest.
    assert dram.access(0) == 20
    assert dram.queue_stall_cycles == 10
    # Once time passes the completions, the window drains.
    assert dram.access(25) == 35


@pytest.mark.parametrize("monotonic", [True, False])
@pytest.mark.parametrize("seed", [3, 4])
def test_mshr_heap_matches_naive_model(monotonic, seed):
    rng = DeterministicRng(f"mshr/{seed}/{monotonic}")
    cache = CacheModel(_CacheConfig(mshrs=2))
    naive = _NaiveMshr(mshrs=2)
    for now in _request_stream(rng, 2_000, monotonic):
        completion = now + rng.randint(0, 60)
        assert (cache.mshr_allocate(now, completion)
                == naive.allocate(now, completion))
    assert cache.mshr_stall_cycles == naive.stall_cycles


@pytest.mark.quick
def test_mshr_allocate_invariants():
    cache = CacheModel(_CacheConfig(mshrs=2))
    # Completion can never precede issue.
    with pytest.raises(SimulationError):
        cache.mshr_allocate(10, 5)
    # An MSHR conflict can only push completion later, monotonically.
    first = cache.mshr_allocate(0, 20)
    second = cache.mshr_allocate(0, 20)
    third = cache.mshr_allocate(0, 20)
    assert first == 20 and second == 20
    assert third >= 20 + 20  # delayed behind the earliest in-flight miss
    assert cache.mshr_stall_cycles == 20


def test_cache_eviction_and_writeback_consistency():
    """LRU fills never exceed the way count, evictions are counted
    exactly, and a filled line hits until evicted."""
    config = _CacheConfig(num_sets=4, ways=2, line_bytes=64)
    cache = CacheModel(config)
    rng = DeterministicRng("cache/evict")
    fills = 0
    for _ in range(3_000):
        addr = rng.randint(0, 255) * 64
        if rng.randint(0, 1):
            cache.fill(addr)
            fills += 1
            assert cache.probe(addr), "a filled line must be resident"
        else:
            hit = cache.probe(addr)
            assert cache.lookup(addr) == hit
            if hit:
                # MRU after a hit: an immediate fill must not evict it.
                cache.fill(addr)
        for ways in cache._sets:
            assert len(ways) <= config.ways
            assert len(set(ways)) == len(ways), "duplicate resident tags"
    assert cache.evictions <= fills
    assert cache.hits + cache.misses == cache.accesses


@pytest.mark.quick
def test_cache_lru_order_is_preserved():
    cache = CacheModel(_CacheConfig(num_sets=1, ways=2, line_bytes=64))
    a, b, c = 0 * 64, 1 * 64, 2 * 64
    cache.fill(a)
    cache.fill(b)
    assert cache.lookup(a)      # a becomes MRU
    cache.fill(c)               # evicts b (LRU), not a
    assert cache.probe(a)
    assert not cache.probe(b)
    assert cache.probe(c)
    assert cache.evictions == 1


def test_cache_probe_does_not_mutate():
    cache = CacheModel(_CacheConfig(num_sets=2, ways=2))
    cache.fill(0)
    hits, misses = cache.hits, cache.misses
    sets_before = [list(ways) for ways in cache._sets]
    cache.probe(0)
    cache.probe(4096)
    assert cache.hits == hits and cache.misses == misses
    assert [list(ways) for ways in cache._sets] == sets_before


def test_cache_flush_clears_mshrs_and_lines():
    cache = CacheModel(_CacheConfig())
    cache.fill(0)
    cache.mshr_allocate(0, 5)
    cache.flush()
    assert not cache.probe(0)
    assert cache._mshr_busy_until == []
