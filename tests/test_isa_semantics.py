"""Unit tests for the functional executor."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bitops import to_signed, to_unsigned
from repro.common.errors import PrivilegeError
from repro.isa import ArchState, Memory, assemble, execute
from repro.isa.state import bits_to_float, float_to_bits

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
I64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)


def run(source, state=None, max_steps=10_000, meek_handler=None):
    """Assemble and run to completion (ecall/ebreak or falling off)."""
    program = assemble(source)
    if state is None:
        state = ArchState(pc=program.entry_pc)
    else:
        state.pc = program.entry_pc
    program.data.apply(state.memory)
    for _ in range(max_steps):
        instr = program.fetch(state.pc)
        if instr is None:
            return state
        result = execute(instr, state, meek_handler=meek_handler)
        if result.trap:
            return state
    raise AssertionError("program did not terminate")


class TestIntegerAlu:
    def test_add_wraps(self):
        state = ArchState()
        state.write_int(1, (1 << 64) - 1)
        state.write_int(2, 1)
        run("add x3, x1, x2", state)
        assert state.read_int(3) == 0

    def test_sub(self):
        state = ArchState()
        state.write_int(1, 5)
        state.write_int(2, 7)
        run("sub x3, x1, x2", state)
        assert to_signed(state.read_int(3)) == -2

    def test_x0_stays_zero(self):
        state = run("addi x0, x0, 5")
        assert state.read_int(0) == 0

    def test_logic_ops(self):
        state = ArchState()
        state.write_int(1, 0b1100)
        state.write_int(2, 0b1010)
        run("""
            and x3, x1, x2
            or  x4, x1, x2
            xor x5, x1, x2
        """, state)
        assert state.read_int(3) == 0b1000
        assert state.read_int(4) == 0b1110
        assert state.read_int(5) == 0b0110

    def test_shifts(self):
        state = ArchState()
        state.write_int(1, to_unsigned(-8))
        run("""
            srai x2, x1, 1
            srli x3, x1, 1
            slli x4, x1, 1
        """, state)
        assert to_signed(state.read_int(2)) == -4
        assert state.read_int(3) == to_unsigned(-8) >> 1
        assert to_signed(state.read_int(4)) == -16

    def test_slt_signed_vs_unsigned(self):
        state = ArchState()
        state.write_int(1, to_unsigned(-1))
        state.write_int(2, 1)
        run("""
            slt  x3, x1, x2
            sltu x4, x1, x2
        """, state)
        assert state.read_int(3) == 1  # -1 < 1 signed
        assert state.read_int(4) == 0  # 0xFFF..F > 1 unsigned

    def test_lui_auipc(self):
        state = run("lui x1, 0x12345")
        assert state.read_int(1) == 0x12345000

    @given(I64, I64)
    def test_add_matches_python(self, a, b):
        state = ArchState()
        state.write_int(1, to_unsigned(a))
        state.write_int(2, to_unsigned(b))
        run("add x3, x1, x2", state)
        assert to_signed(state.read_int(3)) == to_signed(to_unsigned(a + b))


class TestMulDiv:
    def test_mul(self):
        state = ArchState()
        state.write_int(1, 7)
        state.write_int(2, 6)
        run("mul x3, x1, x2", state)
        assert state.read_int(3) == 42

    def test_div_negative(self):
        state = ArchState()
        state.write_int(1, to_unsigned(-7))
        state.write_int(2, 2)
        run("div x3, x1, x2", state)
        assert to_signed(state.read_int(3)) == -3  # trunc toward zero

    def test_div_by_zero_gives_minus_one(self):
        state = ArchState()
        state.write_int(1, 99)
        run("div x3, x1, x0", state)
        assert to_signed(state.read_int(3)) == -1

    def test_divu_by_zero_gives_all_ones(self):
        state = ArchState()
        state.write_int(1, 99)
        run("divu x3, x1, x0", state)
        assert state.read_int(3) == (1 << 64) - 1

    def test_rem_by_zero_gives_dividend(self):
        state = ArchState()
        state.write_int(1, 99)
        run("rem x3, x1, x0", state)
        assert state.read_int(3) == 99

    def test_div_overflow(self):
        state = ArchState()
        state.write_int(1, 1 << 63)  # INT64_MIN
        state.write_int(2, to_unsigned(-1))
        run("div x3, x1, x2", state)
        assert state.read_int(3) == 1 << 63

    @given(I64, I64)
    def test_div_rem_identity(self, a, b):
        state = ArchState()
        state.write_int(1, to_unsigned(a))
        state.write_int(2, to_unsigned(b))
        run("""
            div x3, x1, x2
            rem x4, x1, x2
        """, state)
        if b != 0 and not (a == -(1 << 63) and b == -1):
            q = to_signed(state.read_int(3))
            r = to_signed(state.read_int(4))
            assert q * b + r == a


class TestMemory:
    def test_store_load_roundtrip(self):
        state = ArchState()
        state.write_int(1, 0x2000)
        state.write_int(2, 0xDEADBEEF)
        run("""
            sd x2, 0(x1)
            ld x3, 0(x1)
        """, state)
        assert state.read_int(3) == 0xDEADBEEF

    def test_subword_sign_extension(self):
        state = ArchState()
        state.write_int(1, 0x2000)
        state.write_int(2, 0xFF)
        run("""
            sb x2, 0(x1)
            lb x3, 0(x1)
            lbu x4, 0(x1)
        """, state)
        assert to_signed(state.read_int(3)) == -1
        assert state.read_int(4) == 0xFF

    def test_word_access(self):
        state = ArchState()
        state.write_int(1, 0x2000)
        state.write_int(2, 0x1_FFFF_FFFF)
        run("""
            sw x2, 4(x1)
            lwu x3, 4(x1)
        """, state)
        assert state.read_int(3) == 0xFFFF_FFFF

    def test_memory_bytes_independent(self):
        mem = Memory()
        mem.store(0x100, 0xAA, 1)
        mem.store(0x101, 0xBB, 1)
        assert mem.load(0x100, 1) == 0xAA
        assert mem.load(0x101, 1) == 0xBB
        assert mem.load(0x100, 2) == 0xBBAA


class TestControlFlow:
    def test_loop_counts(self):
        state = run("""
            li t0, 0
            li t1, 10
        loop:
            addi t0, t0, 1
            bne t0, t1, loop
        """)
        assert state.read_int(5) == 10

    def test_jal_links(self):
        state = run("""
            jal ra, target
            ecall
        target:
            li a0, 1
        """)
        assert state.read_int(10) == 1
        assert state.read_int(1) != 0

    def test_jalr_returns(self):
        state = run("""
            li a0, 0
            call func
            addi a0, a0, 100
            ecall
        func:
            addi a0, a0, 1
            ret
        """)
        assert state.read_int(10) == 101

    def test_branch_not_taken_falls_through(self):
        state = run("""
            li t0, 1
            beqz t0, skip
            li a0, 7
        skip:
            ecall
        """)
        assert state.read_int(10) == 7


class TestFloatingPoint:
    def put(self, state, reg, value):
        state.write_fp(reg, float_to_bits(value))

    def test_fadd(self):
        state = ArchState()
        self.put(state, 1, 1.5)
        self.put(state, 2, 2.25)
        run("fadd.d f3, f1, f2", state)
        assert bits_to_float(state.read_fp(3)) == 3.75

    def test_fdiv_by_zero_is_inf(self):
        state = ArchState()
        self.put(state, 1, 1.0)
        self.put(state, 2, 0.0)
        run("fdiv.d f3, f1, f2", state)
        assert bits_to_float(state.read_fp(3)) == float("inf")

    def test_fsqrt_negative_is_nan(self):
        state = ArchState()
        self.put(state, 1, -4.0)
        run("fsqrt.d f2, f1", state)
        result = bits_to_float(state.read_fp(2))
        assert result != result

    def test_fp_compare(self):
        state = ArchState()
        self.put(state, 1, 1.0)
        self.put(state, 2, 2.0)
        run("""
            flt.d x1, f1, f2
            feq.d x2, f1, f2
            fle.d x3, f1, f1
        """, state)
        assert state.read_int(1) == 1
        assert state.read_int(2) == 0
        assert state.read_int(3) == 1

    def test_fmv_roundtrip(self):
        state = ArchState()
        state.write_int(1, float_to_bits(3.5))
        run("""
            fmv.d.x f1, x1
            fmv.x.d x2, f1
        """, state)
        assert state.read_int(2) == float_to_bits(3.5)

    def test_fcvt(self):
        state = ArchState()
        state.write_int(1, 7)
        run("""
            fcvt.d.l f1, x1
            fcvt.l.d x2, f1
        """, state)
        assert state.read_int(2) == 7

    def test_fld_fsd(self):
        state = ArchState()
        state.write_int(1, 0x3000)
        self.put(state, 1, 2.5)
        run("""
            fsd f1, 0(x1)
            fld f2, 0(x1)
        """, state)
        assert bits_to_float(state.read_fp(2)) == 2.5

    @given(st.floats(allow_nan=False, allow_infinity=False),
           st.floats(allow_nan=False, allow_infinity=False))
    def test_fadd_matches_python(self, a, b):
        state = ArchState()
        self.put(state, 1, a)
        self.put(state, 2, b)
        run("fadd.d f3, f1, f2", state)
        assert bits_to_float(state.read_fp(3)) == a + b


class TestCsrAndSystem:
    def test_csrrw_swaps(self):
        state = ArchState()
        state.write_int(1, 0x55)
        state.write_csr(0x300, 0xAA)
        run("csrrw x2, mstatus, x1", state)
        assert state.read_int(2) == 0xAA
        assert state.read_csr(0x300) == 0x55

    def test_csrrs_sets_bits(self):
        state = ArchState()
        state.write_int(1, 0x0F)
        state.write_csr(0x300, 0xF0)
        run("csrrs x2, mstatus, x1", state)
        assert state.read_csr(0x300) == 0xFF

    def test_ecall_traps(self):
        program = assemble("ecall")
        state = ArchState(pc=program.entry_pc)
        result = execute(program.fetch(state.pc), state)
        assert result.trap == "ecall"


class TestMeekPrivilege:
    def test_privileged_op_in_user_mode_raises(self):
        program = assemble("b.check a0")
        state = ArchState(pc=program.entry_pc, priv_kernel=False)
        with pytest.raises(PrivilegeError):
            execute(program.fetch(state.pc), state)

    def test_privileged_op_in_kernel_mode_ok(self):
        program = assemble("b.check a0")
        state = ArchState(pc=program.entry_pc, priv_kernel=True)
        result = execute(program.fetch(state.pc), state)
        assert result.meek_op == "b.check"

    def test_user_op_allowed(self):
        program = assemble("l.record sp")
        state = ArchState(pc=program.entry_pc, priv_kernel=False)
        result = execute(program.fetch(state.pc), state)
        assert result.meek_op == "l.record"

    def test_meek_handler_pc_override(self):
        program = assemble("l.jal a0")
        state = ArchState(pc=program.entry_pc)
        state.write_int(10, 0x4000)

        def handler(instr, st):
            return st.read_int(instr.rs1)

        result = execute(program.fetch(state.pc), state,
                         meek_handler=handler)
        assert result.next_pc == 0x4000
        assert state.pc == 0x4000


class TestExecResultMetadata:
    def test_load_reports_address_and_value(self):
        program = assemble("ld x2, 8(x1)")
        state = ArchState(pc=program.entry_pc)
        state.write_int(1, 0x2000)
        state.memory.store_word(0x2008, 1234)
        result = execute(program.fetch(state.pc), state)
        assert result.is_load
        assert result.mem_addr == 0x2008
        assert result.mem_value == 1234

    def test_store_reports_address_and_value(self):
        program = assemble("sd x2, 0(x1)")
        state = ArchState(pc=program.entry_pc)
        state.write_int(1, 0x2000)
        state.write_int(2, 77)
        result = execute(program.fetch(state.pc), state)
        assert result.is_store
        assert result.mem_addr == 0x2000
        assert result.mem_value == 77

    def test_branch_reports_taken(self):
        program = assemble("beq x0, x0, 8")
        state = ArchState(pc=program.entry_pc)
        result = execute(program.fetch(state.pc), state)
        assert result.taken
        assert result.next_pc == program.entry_pc + 8
