"""Tests for workload profiles and the program generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigcore.core import run_program
from repro.common.errors import ConfigError
from repro.isa.instructions import InstrClass
from repro.workloads import (
    InstructionMix,
    all_profiles,
    generate_program,
    get_profile,
)
from repro.workloads.profiles import PARSEC_ORDER, SPEC_ORDER


class TestInstructionMix:
    def test_default_sums_to_one(self):
        assert InstructionMix().total == pytest.approx(1.0, abs=1e-3)

    def test_bad_sum_rejected(self):
        with pytest.raises(ConfigError):
            InstructionMix(alu=0.9, load=0.5, store=0.0, branch=0.0,
                           mul=0.0, call=0.0, csr=0.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            InstructionMix(alu=1.25, load=-0.25, store=0.0, branch=0.0,
                           mul=0.0, call=0.0, csr=0.0)

    def test_memory_fraction(self):
        mix = InstructionMix()
        assert mix.memory_fraction == pytest.approx(
            mix.load + mix.store + mix.csr)


class TestProfiles:
    def test_all_twenty_present(self):
        assert len(SPEC_ORDER) == 12
        assert len(PARSEC_ORDER) == 8
        assert len(all_profiles()) == 20

    def test_paper_order(self):
        assert SPEC_ORDER[0] == "perlbench"
        assert PARSEC_ORDER[-1] == "swaptions"

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError):
            get_profile("doom-eternal")

    def test_suite_filter(self):
        assert all(p.suite == "parsec" for p in all_profiles("parsec"))
        with pytest.raises(ConfigError):
            all_profiles("geekbench")

    def test_swaptions_is_division_heavy(self):
        swaptions = get_profile("swaptions")
        others = [p for p in all_profiles("parsec")
                  if p.name != "swaptions"]
        assert all(swaptions.mix.fpdiv > p.mix.fpdiv for p in others)

    def test_mcf_is_pointer_chasing(self):
        assert get_profile("mcf").pointer_chase
        assert get_profile("mcf").working_set_kb >= 4096

    def test_big_code_benchmarks_exceed_little_icache(self):
        # The Sec. V-F observation: SPEC code footprints overflow the
        # 4 KB little-core I-cache (1024 instructions).
        for name in ("gcc", "perlbench", "xalancbmk"):
            assert get_profile(name).body_instructions > 1024

    def test_working_sets_are_powers_of_two(self):
        for profile in all_profiles():
            ws = profile.working_set_kb
            assert ws & (ws - 1) == 0, profile.name


class TestGenerator:
    def test_deterministic(self):
        a = generate_program(get_profile("hmmer"), 5000, seed=3)
        b = generate_program(get_profile("hmmer"), 5000, seed=3)
        assert a.instructions == b.instructions

    def test_seed_changes_program(self):
        a = generate_program(get_profile("hmmer"), 5000, seed=1)
        b = generate_program(get_profile("hmmer"), 5000, seed=2)
        assert a.instructions != b.instructions

    def test_dynamic_count_close_to_target(self):
        program = generate_program(get_profile("bzip2"), 20_000)
        result = run_program(program)
        assert result.halted_by == "ecall"
        assert 0.6 * 20_000 < result.instructions < 1.6 * 20_000

    def test_reserved_registers_untouched(self):
        # x28-x31 / f28-f31 are reserved for the Nzdc transform.
        for name in ("hmmer", "swaptions", "mcf"):
            program = generate_program(get_profile(name), 3000)
            for instr in program.instructions:
                spec = instr.spec
                if spec.writes_int_rd:
                    assert instr.rd < 28, (name, instr)
                if spec.writes_fp_rd:
                    assert instr.rd < 28, (name, instr)

    def test_mix_realized_approximately(self):
        profile = get_profile("hmmer")
        program = generate_program(profile, 10_000)
        counts = {}
        for instr in program.instructions:
            counts[instr.spec.iclass] = counts.get(instr.spec.iclass, 0) + 1
        total = len(program.instructions)
        load_fraction = counts.get(InstrClass.LOAD, 0) / total
        # Support instructions dilute the mix; stay within a loose band.
        assert abs(load_fraction - profile.mix.load) < 0.12

    def test_fp_profile_contains_fp_ops(self):
        program = generate_program(get_profile("blackscholes"), 5000)
        classes = {i.spec.iclass for i in program.instructions}
        assert InstrClass.FP in classes
        assert InstrClass.FPDIV in classes

    def test_int_profile_contains_no_fp_compute(self):
        program = generate_program(get_profile("bzip2"), 5000)
        body_classes = {i.spec.iclass for i in program.instructions}
        assert InstrClass.FPDIV not in body_classes

    def test_branch_offsets_encodable(self):
        from repro.isa import encode
        for name in ("gcc", "xalancbmk"):  # the largest bodies
            program = generate_program(get_profile(name), 3000)
            for instr in program.instructions:
                encode(instr)  # raises DecodeError on overflow

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_generated_programs_terminate(self, seed):
        program = generate_program(get_profile("dedup"), 2000, seed=seed)
        result = run_program(program, max_instructions=20_000)
        assert result.halted_by == "ecall"

    def test_pointer_chase_spreads_addresses(self):
        program = generate_program(get_profile("mcf"), 8000)
        addrs = set()

        def hook(event):
            if event.result.mem_addr is not None:
                addrs.add(event.result.mem_addr >> 6)
            return event.commit_cycle

        run_program(program, commit_hook=hook)
        assert len(addrs) > 200  # touches many distinct lines

    def test_high_locality_reuses_lines(self):
        program = generate_program(get_profile("hmmer"), 8000)
        result = run_program(program)
        assert result.memory_stats["l1d"]["miss_rate"] < 0.10
