"""Tests for the Sec. IV-B programming model (coordinator functions)."""

import pytest

from repro.common.config import default_meek_config
from repro.common.errors import SimulationError
from repro.common.prng import DeterministicRng
from repro.core.faults import FaultInjector
from repro.isa import assemble
from repro.isa.meek import MODE_APPLICATION, MODE_CHECK
from repro.osmodel.coordinator import CheckedProcess, run_checked
from repro.osmodel.scheduler import MeekDevice
from repro.osmodel.syscall import KernelInterface


def make_kernel(cores=4):
    device = MeekDevice(num_little_cores=cores)
    return device, KernelInterface(device)


PROGRAM = assemble("""
    li   t0, 0
    li   t1, 500
    li   t2, 0x2000
loop:
    sd   t0, 0(t2)
    ld   t3, 0(t2)
    add  t4, t4, t3
    addi t2, t2, 8
    addi t0, t0, 1
    bne  t0, t1, loop
    ecall
""", name="coordinated")


class TestConstructorDestructor:
    def test_constructor_hooks_and_sets_check_mode(self):
        device, kernel = make_kernel()
        process = CheckedProcess(kernel, checker_cores=(0, 1, 2, 3))
        checkers = process.construct(big_core_id=0)
        assert device.hooks == {0: 0, 1: 0, 2: 0, 3: 0}
        assert all(mode == MODE_CHECK for mode in device.modes.values())
        assert len(checkers) == 4
        assert all(c.pinned_core is not None for c in checkers)

    def test_constructor_uses_syscalls(self):
        _, kernel = make_kernel()
        process = CheckedProcess(kernel, checker_cores=(0, 1))
        process.construct()
        assert kernel.syscalls == 4  # 2 hooks + 2 mode switches

    def test_double_construct_rejected(self):
        _, kernel = make_kernel()
        process = CheckedProcess(kernel, checker_cores=(0,))
        process.construct()
        with pytest.raises(SimulationError):
            process.construct()

    def test_destructor_releases_cores(self):
        device, kernel = make_kernel()
        process = CheckedProcess(kernel, checker_cores=(0, 1))
        process.construct()
        process.destruct()
        assert device.modes[0] == MODE_APPLICATION
        assert device.modes[1] == MODE_APPLICATION

    def test_verify_before_construct_rejected(self):
        _, kernel = make_kernel()
        process = CheckedProcess(kernel, checker_cores=(0,))
        with pytest.raises(SimulationError):
            process.verify(None)


class TestVerification:
    def test_clean_run_verified(self):
        outcome, meek = run_checked(PROGRAM)
        assert outcome.verified
        assert outcome.segments_checked == len(meek.segments)
        assert outcome.faults == []
        assert outcome.handler_invocations == 0

    def test_faulty_run_invokes_handler(self):
        handled = []
        injector = FaultInjector(DeterministicRng(5), rate=0.05)
        outcome, meek = run_checked(PROGRAM, injector=injector,
                                    fault_handler=handled.append)
        if meek.detections:  # campaign landed at least one live fault
            assert not outcome.verified
            assert outcome.handler_invocations == len(outcome.faults)
            assert handled
            report = handled[0]
            assert report.reason
            assert report.detect_cycle > 0
            assert 0 <= report.little_core < 4

    def test_fault_report_names_segment(self):
        injector = FaultInjector(DeterministicRng(5), rate=0.05)
        outcome, meek = run_checked(PROGRAM, injector=injector)
        for fault in outcome.faults:
            assert 0 <= fault.seg_id < len(meek.segments)

    def test_run_checked_builds_default_kernel(self):
        outcome, _ = run_checked(PROGRAM)
        assert outcome.segments_checked > 0
