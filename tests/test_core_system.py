"""Integration tests for the full MEEK system.

The strongest invariant of the whole reproduction: in a fault-free run
the checkers, which genuinely re-execute every segment and compare
against the log and the register checkpoints, must never flag an error
— across every workload, fabric, and core count.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import default_meek_config
from repro.core.segments import SegmentEndReason
from repro.core.system import MeekSystem, run_vanilla, slowdown
from repro.isa import assemble
from repro.workloads import generate_program, get_profile


def small_workload(name="hmmer", instructions=4000, seed=0):
    return generate_program(get_profile(name),
                            dynamic_instructions=instructions, seed=seed)


MIXED_PROGRAM = assemble("""
    li   t0, 0
    li   t1, 400
    li   t2, 0x2000
    li   t5, 7
    fcvt.d.l f1, t5
    fcvt.d.l f2, t1
loop:
    sd   t0, 0(t2)
    ld   t3, 0(t2)
    fadd.d f1, f1, f2
    fsd  f1, 8(t2)
    fld  f3, 8(t2)
    ori  t4, t3, 1
    div  t5, t1, t4
    csrrs t6, 0x300, x0
    addi t2, t2, 16
    addi t0, t0, 1
    bne  t0, t1, loop
    ecall
""")


class TestFaultFreeVerification:
    def test_mixed_program_verifies(self):
        result = MeekSystem(default_meek_config()).run(MIXED_PROGRAM)
        assert result.all_segments_verified
        assert result.detections == []
        assert len(result.segments) >= 2

    @pytest.mark.parametrize("workload", ["hmmer", "mcf", "swaptions",
                                          "blackscholes", "gcc"])
    def test_workloads_verify(self, workload):
        program = small_workload(workload)
        result = MeekSystem(default_meek_config()).run(program)
        assert result.all_segments_verified, (
            f"{workload}: false positive {result.detections}")

    @pytest.mark.parametrize("fabric", ["f2", "axi", "ideal"])
    def test_all_fabrics_verify(self, fabric):
        program = small_workload()
        config = default_meek_config(fabric_kind=fabric)
        result = MeekSystem(config).run(program)
        assert result.all_segments_verified

    @pytest.mark.parametrize("cores", [1, 2, 3, 4, 6, 8])
    def test_all_core_counts_verify(self, cores):
        program = small_workload()
        config = default_meek_config(num_little_cores=cores)
        result = MeekSystem(config).run(program)
        assert result.all_segments_verified

    @given(seed=st.integers(0, 30))
    @settings(max_examples=8, deadline=None)
    def test_random_workloads_verify(self, seed):
        program = small_workload("ferret", instructions=2500, seed=seed)
        result = MeekSystem(default_meek_config()).run(program)
        assert result.all_segments_verified


class TestSegmentation:
    def test_every_instruction_covered(self):
        result = MeekSystem(default_meek_config()).run(MIXED_PROGRAM)
        assert sum(s.instr_count for s in result.segments) == \
            result.instructions

    def test_final_segment_is_trap_or_end(self):
        result = MeekSystem(default_meek_config()).run(MIXED_PROGRAM)
        last = result.segments[-1]
        assert last.end_reason in (SegmentEndReason.KERNEL_TRAP,
                                   SegmentEndReason.PROGRAM_END)

    def test_lsl_full_closes_segments(self):
        result = MeekSystem(default_meek_config()).run(MIXED_PROGRAM)
        reasons = {s.end_reason for s in result.segments}
        assert SegmentEndReason.LSL_FULL in reasons

    def test_timeout_trigger(self):
        # A compute-only loop logs almost nothing: segments close at
        # the 5000-instruction timeout.
        program = assemble("""
            li t0, 0
            li t1, 4000
        loop:
            add t2, t2, t0
            xor t3, t2, t0
            addi t0, t0, 1
            bne t0, t1, loop
            ecall
        """)
        result = MeekSystem(default_meek_config()).run(program)
        reasons = [s.end_reason for s in result.segments]
        assert SegmentEndReason.TIMEOUT in reasons
        timed_out = [s for s in result.segments
                     if s.end_reason is SegmentEndReason.TIMEOUT]
        assert all(s.instr_count == 5000 for s in timed_out)

    def test_segments_alternate_cores(self):
        result = MeekSystem(default_meek_config()).run(MIXED_PROGRAM)
        cores = [s.assigned_core for s in result.segments]
        assert all(a != b for a, b in zip(cores, cores[1:]))

    def test_entries_match_memory_and_csr_ops(self):
        result = MeekSystem(default_meek_config()).run(MIXED_PROGRAM)
        total_entries = sum(s.num_entries for s in result.segments)
        # 4 memory ops + 1 CSR op per iteration of MIXED_PROGRAM.
        assert total_entries == 400 * 5


class TestTiming:
    def test_meek_never_faster_than_vanilla(self):
        program = small_workload()
        vanilla = run_vanilla(program)
        meek = MeekSystem(default_meek_config()).run(program)
        assert meek.cycles >= vanilla.cycles

    def test_checking_disabled_matches_vanilla(self):
        from dataclasses import replace
        program = small_workload()
        vanilla = run_vanilla(program)
        config = replace(default_meek_config(), checking_enabled=False)
        meek = MeekSystem(config).run(program)
        assert meek.cycles == vanilla.cycles
        assert meek.segments == []

    def test_fewer_cores_never_faster(self):
        program = small_workload("swaptions", instructions=6000)
        two = MeekSystem(default_meek_config(num_little_cores=2)).run(program)
        six = MeekSystem(default_meek_config(num_little_cores=6)).run(program)
        assert two.cycles >= six.cycles

    def test_drain_not_before_big_core_end(self):
        result = MeekSystem(default_meek_config()).run(MIXED_PROGRAM)
        assert result.drain_cycle >= result.cycles

    def test_determinism(self):
        program = small_workload()
        a = MeekSystem(default_meek_config()).run(program)
        b = MeekSystem(default_meek_config()).run(program)
        assert a.cycles == b.cycles
        assert len(a.segments) == len(b.segments)

    def test_stall_accounting_nonnegative(self):
        result = MeekSystem(default_meek_config()).run(MIXED_PROGRAM)
        for reason, cycles in result.controller.stall_cycles.items():
            assert cycles >= 0, reason


class TestStatsSurface:
    def test_stats_dict(self):
        result = MeekSystem(default_meek_config()).run(MIXED_PROGRAM)
        stats = result.stats()
        assert stats["instructions"] == result.instructions
        assert stats["controller"]["segments"] == len(result.segments)
        assert stats["controller"]["deu"]["status_records"] >= \
            len(result.segments)

    def test_slowdown_helper(self):
        program = small_workload()
        vanilla = run_vanilla(program)
        meek = MeekSystem(default_meek_config()).run(program)
        assert slowdown(meek, vanilla) == pytest.approx(
            meek.cycles / vanilla.cycles)
