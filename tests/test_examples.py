"""Every example must run to completion as a script.

Examples are user-facing documentation; a broken example is a broken
promise, so they are executed (briefly) under the test suite.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "fault_injection_campaign", "scaling_checkers",
            "os_deadlock", "compare_detection_schemes",
            "mixed_threads"} <= names
