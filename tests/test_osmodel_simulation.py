"""Tests for mixed-workload scheduling on the little cores."""

import pytest

from repro.common.config import default_meek_config
from repro.core.system import MeekSystem
from repro.osmodel.simulation import (
    BackgroundThread,
    CONTEXT_SWITCH_CYCLES,
    MixedWorkloadSchedule,
    validate_schedule,
)
from repro.workloads import generate_program, get_profile


@pytest.fixture(scope="module")
def meek_result():
    program = generate_program(get_profile("dedup"),
                               dynamic_instructions=6000)
    return MeekSystem(default_meek_config()).run(program)


class TestIntervals:
    def test_busy_intervals_cover_all_segments(self, meek_result):
        schedule = MixedWorkloadSchedule(meek_result)
        total = sum(len(v) for v in schedule._busy.values())
        assert total == len(meek_result.segments)

    def test_busy_intervals_sorted_disjoint(self, meek_result):
        schedule = MixedWorkloadSchedule(meek_result)
        for intervals in schedule._busy.values():
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2

    def test_gaps_complement_busy(self, meek_result):
        schedule = MixedWorkloadSchedule(meek_result)
        for core in range(schedule.num_cores):
            busy = sum(e - s for s, e in schedule._busy[core])
            idle = sum(e - s for s, e in schedule.idle_gaps(core))
            assert busy + idle == pytest.approx(schedule.horizon, rel=1e-6)

    def test_utilization_in_range(self, meek_result):
        schedule = MixedWorkloadSchedule(meek_result)
        for core in range(schedule.num_cores):
            assert 0.0 <= schedule.verification_utilization(core) <= 1.0


class TestScheduling:
    def test_small_threads_finish(self, meek_result):
        schedule = MixedWorkloadSchedule(meek_result)
        threads = [BackgroundThread(f"bg{i}", required_cycles=200)
                   for i in range(3)]
        schedule.schedule(threads)
        assert all(t.done for t in threads)
        assert all(t.finish_cycle is not None for t in threads)

    def test_no_overlap_with_verification(self, meek_result):
        schedule = MixedWorkloadSchedule(meek_result)
        threads = [BackgroundThread(f"bg{i}", required_cycles=3000)
                   for i in range(6)]
        schedule.schedule(threads)
        assert validate_schedule(schedule, threads)

    def test_oversized_thread_partial(self, meek_result):
        schedule = MixedWorkloadSchedule(meek_result)
        huge = BackgroundThread("huge", required_cycles=10 ** 9)
        schedule.schedule([huge])
        assert not huge.done
        assert huge.completed_cycles > 0

    def test_context_switch_charged(self, meek_result):
        schedule = MixedWorkloadSchedule(meek_result)
        thread = BackgroundThread("bg", required_cycles=100)
        schedule.schedule([thread])
        core, start, _ = thread.slices[0]
        gap_start = next(s for s, e in schedule.idle_gaps(core)
                         if s <= start < e + 1)
        assert start >= gap_start + CONTEXT_SWITCH_CYCLES

    def test_report_shape(self, meek_result):
        schedule = MixedWorkloadSchedule(meek_result)
        threads = [BackgroundThread("bg", required_cycles=500)]
        schedule.schedule(threads)
        report = schedule.report(threads)
        assert report["threads_finished"] == 1
        assert 0.0 <= report["background_utilization"] <= 1.0

    def test_little_cores_have_spare_capacity(self, meek_result):
        # The utilization argument: with 4 cores on a well-behaved
        # workload, verification leaves real idle capacity.
        schedule = MixedWorkloadSchedule(meek_result)
        threads = [BackgroundThread(f"bg{i}", required_cycles=2000)
                   for i in range(4)]
        schedule.schedule(threads)
        report = schedule.report(threads)
        assert report["background_cycles"] > 0
