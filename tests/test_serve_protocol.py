"""Property and fuzz tests for the ``repro serve`` wire protocol.

Three layers, in increasing realism:

* pure round-trips — every method's request, plus responses, errors,
  and stream events survive ``encode``/``decode``/``parse_request``;
* adversarial parsing — truncated JSON, non-objects, mistyped and
  unknown fields, oversized lines, byte-at-a-time framing — each maps
  to the documented structured error, never an uncaught exception;
* a live master on a real socket fed garbage: every frame gets exactly
  one structured error, the connection and the master survive, and a
  rejected ``submit`` never leaks a run id.
"""

import json
import os
import socket
import tempfile
import time

import pytest

from repro.perf.service import ExecutionService
from repro.serve import protocol
from repro.serve.master import Master
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    LineReader,
    Oversized,
    ProtocolError,
    decode,
    encode,
    error_response,
    parse_request,
    request,
    response,
    stream_event,
)

# Representative valid params per method (used by the round-trip
# parameterization below).
VALID_REQUESTS = {
    "hello": {},
    "submit": {"spec": {"name": "s", "points": []}, "priority": 3,
               "jobs": 2, "point_timeout_s": 1.5, "chunk_size": 4,
               "stream": True, "out": "results.jsonl"},
    "queue": {},
    "status": {"rid": 7},
    "cancel": {"rid": 1},
    "pause": {"rid": 2},
    "requeue": {"rid": 3},
    "subscribe": {"rid": 4},
    "shutdown": {},
    "runner_register": {"name": "node3", "pid": 4242, "slots": 1},
    "runner_lease": {"runner": 1},
    "runner_row": {"runner": 1, "chunk": 0, "epoch": 2,
                   "row": {"point_id": "p", "index": 0, "ok": True}},
    "runner_heartbeat": {"runner": 1},
}


@pytest.mark.quick
class TestRoundTrip:
    @pytest.mark.parametrize("method", sorted(protocol.METHOD_PARAMS))
    def test_every_method_round_trips(self, method):
        params = VALID_REQUESTS[method]
        wire = encode(request(method, params, request_id=42))
        assert wire.endswith(b"\n") and wire.count(b"\n") == 1
        rid, got_method, got_params = parse_request(decode(wire[:-1]))
        assert rid == 42
        assert got_method == method
        assert got_params == params

    def test_methods_table_covers_all_valid_requests(self):
        assert set(VALID_REQUESTS) == set(protocol.METHOD_PARAMS)

    def test_response_round_trip(self):
        wire = encode(response(9, {"rid": 1, "state": "queued"}))
        obj = decode(wire[:-1])
        assert obj == {"id": 9, "ok": True,
                       "result": {"rid": 1, "state": "queued"}}

    def test_error_response_round_trip(self):
        wire = encode(error_response(None, protocol.E_BAD_PARAMS, "nope"))
        obj = decode(wire[:-1])
        assert obj["id"] is None and obj["ok"] is False
        assert obj["error"] == {"code": "bad_params", "message": "nope"}

    def test_stream_event_round_trip(self):
        wire = encode(stream_event(5, "point", row={"point_id": "x"}))
        obj = decode(wire[:-1])
        assert obj == {"stream": 5, "event": "point",
                       "row": {"point_id": "x"}}

    def test_string_and_null_ids_accepted(self):
        for request_id in ("abc", None):
            rid, _, _ = parse_request(
                decode(encode(request("hello", request_id=request_id))[:-1]))
            assert rid == request_id

    def test_encode_is_compact_single_line(self):
        wire = encode({"a": [1, 2], "b": "x\ny"})
        assert wire.count(b"\n") == 1  # embedded newline is escaped
        assert b": " not in wire and b", " not in wire

    def test_oversized_encode_rejected(self):
        with pytest.raises(ProtocolError) as err:
            encode({"blob": "x" * MAX_LINE_BYTES})
        assert err.value.code == protocol.E_OVERSIZED


def _bad_code(raw):
    """Parse ``raw`` like the master would; return the error code."""
    try:
        parse_request(decode(raw))
    except ProtocolError as exc:
        return exc.code
    raise AssertionError(f"{raw!r} unexpectedly parsed")


@pytest.mark.quick
class TestAdversarialParsing:
    @pytest.mark.parametrize("raw", [
        b"{",                           # truncated object
        b'{"id": 1, "method": "hel',    # truncated mid-string
        b"not json at all",
        b'{"a": 1,}',                   # trailing comma
        b"\xff\xfe\x00",                # invalid UTF-8
        b"",
    ])
    def test_unparseable_lines(self, raw):
        assert _bad_code(raw) == protocol.E_PARSE

    @pytest.mark.parametrize("raw", [
        b"[1, 2, 3]",
        b'"just a string"',
        b"42",
        b"null",
        b"true",
    ])
    def test_non_object_frames(self, raw):
        assert _bad_code(raw) == protocol.E_BAD_REQUEST

    @pytest.mark.parametrize("frame", [
        {},                                  # no method at all
        {"id": 1},
        {"id": 1, "method": 7},              # method wrong type
        {"id": 1, "method": None},
        {"id": 1, "method": "hello", "params": [1]},   # params not dict
        {"id": 1, "method": "hello", "params": "x"},
        {"id": [1], "method": "hello"},      # id wrong type
        {"id": {"n": 1}, "method": "hello"},
        {"id": 1.5, "method": "hello"},
        {"id": True, "method": "hello"},     # bool is not an int here
    ])
    def test_bad_frame_shapes(self, frame):
        with pytest.raises(ProtocolError) as err:
            parse_request(frame)
        assert err.value.code == protocol.E_BAD_REQUEST

    def test_unknown_method(self):
        with pytest.raises(ProtocolError) as err:
            parse_request({"id": 1, "method": "fire_the_missiles"})
        assert err.value.code == protocol.E_UNKNOWN_METHOD
        assert "submit" in err.value.message  # names the known ones

    @pytest.mark.parametrize("params", [
        {"rid": "1"},            # string where int expected
        {"rid": 1.0},            # float where int expected
        {"rid": True},           # bool sneaking in as int
        {"rid": None},           # not nullable
        {},                      # missing required
        {"rid": 1, "extra": 2},  # unknown parameter
    ])
    def test_cancel_param_violations(self, params):
        with pytest.raises(ProtocolError) as err:
            parse_request({"id": 1, "method": "cancel", "params": params})
        assert err.value.code == protocol.E_BAD_PARAMS

    @pytest.mark.parametrize("params", [
        {},                                       # spec is required
        {"spec": []},                             # spec wrong type
        {"spec": "name"},
        {"spec": {}, "priority": "high"},         # priority wrong type
        {"spec": {}, "priority": True},
        {"spec": {}, "jobs": 1.5},                # jobs must be int
        {"spec": {}, "stream": 1},                # stream must be bool
        {"spec": {}, "stream": None},             # and not nullable
        {"spec": {}, "out": 7},                   # out must be str
        {"spec": {}, "point_timeout_s": "3"},
    ])
    def test_submit_param_violations(self, params):
        with pytest.raises(ProtocolError) as err:
            parse_request({"id": 1, "method": "submit", "params": params})
        assert err.value.code == protocol.E_BAD_PARAMS

    def test_submit_nullable_params_accept_null(self):
        _, _, params = parse_request({
            "id": 1, "method": "submit",
            "params": {"spec": {}, "jobs": None, "point_timeout_s": None,
                       "chunk_size": None, "out": None}})
        assert params["jobs"] is None

    def test_status_rid_is_optional(self):
        _, _, params = parse_request({"id": 1, "method": "status"})
        assert params == {}

    def test_point_timeout_accepts_int_and_float(self):
        for value in (3, 3.5):
            parse_request({"id": 1, "method": "submit",
                           "params": {"spec": {},
                                      "point_timeout_s": value}})

    def test_oversized_decode_rejected(self):
        with pytest.raises(ProtocolError) as err:
            decode(b"x" * (MAX_LINE_BYTES + 1))
        assert err.value.code == protocol.E_OVERSIZED


@pytest.mark.quick
class TestLineReader:
    def test_single_line(self):
        reader = LineReader()
        assert reader.feed(b'{"a":1}\n') == [b'{"a":1}']

    def test_multiple_lines_one_feed(self):
        reader = LineReader()
        assert reader.feed(b"one\ntwo\nthree\n") == [b"one", b"two",
                                                    b"three"]

    def test_partial_line_held_back(self):
        reader = LineReader()
        assert reader.feed(b'{"a"') == []
        assert reader.feed(b":1}\n") == [b'{"a":1}']

    def test_byte_at_a_time(self):
        reader = LineReader()
        got = []
        for byte in b'{"id":1}\n{"id":2}\n':
            got.extend(reader.feed(bytes([byte])))
        assert got == [b'{"id":1}', b'{"id":2}']

    def test_blank_lines_skipped(self):
        reader = LineReader()
        assert reader.feed(b"\n \n\t\nreal\n") == [b"real"]

    def test_line_at_exact_budget_passes(self):
        reader = LineReader(max_line=8)
        assert reader.feed(b"12345678\n") == [b"12345678"]

    def test_line_over_budget_is_one_marker(self):
        reader = LineReader(max_line=8)
        items = reader.feed(b"123456789\n")
        assert len(items) == 1 and isinstance(items[0], Oversized)
        assert items[0].size == 9

    def test_newline_free_flood_reports_once_and_discards(self):
        reader = LineReader(max_line=8)
        items = reader.feed(b"x" * 20)
        assert len(items) == 1 and isinstance(items[0], Oversized)
        # keep flooding: already reported, nothing new, nothing kept
        assert reader.feed(b"y" * 50) == []
        assert len(reader._buffer) == 0  # memory stays bounded

    def test_recovery_after_oversized(self):
        reader = LineReader(max_line=8)
        assert isinstance(reader.feed(b"z" * 9)[0], Oversized)
        # the poisoned line ends; the next line parses normally
        assert reader.feed(b"zzz\ngood\n") == [b"good"]

    def test_oversized_then_good_in_one_chunk(self):
        reader = LineReader(max_line=8)
        items = reader.feed(b"123456789\nok\n")
        assert isinstance(items[0], Oversized)
        assert items[1:] == [b"ok"]

    def test_split_oversized_across_feeds(self):
        reader = LineReader(max_line=8)
        assert reader.feed(b"12345") == []
        items = reader.feed(b"6789a")   # budget breaks here
        assert len(items) == 1 and isinstance(items[0], Oversized)
        assert reader.feed(b"bc\nfine\n") == [b"fine"]


# -- live fuzz against a real master over a real socket --------------------


@pytest.fixture(scope="module")
def fuzz_master():
    state_dir = tempfile.mkdtemp(prefix="fz", dir="/tmp")
    master = Master(state_dir=state_dir, service=ExecutionService())
    master.start()
    yield master
    master.stop()


class RawConn:
    """A raw byte-level client (no protocol help beyond buffering)."""

    def __init__(self, master, timeout=10.0):
        self.conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.conn.settimeout(timeout)
        self.conn.connect(master.socket_path)
        self.buffer = b""

    def sendall(self, raw):
        self.conn.sendall(raw)

    def read_line(self):
        while b"\n" not in self.buffer:
            data = self.conn.recv(65536)
            assert data, "master closed the connection"
            self.buffer += data
        line, _, self.buffer = self.buffer.partition(b"\n")
        return json.loads(line)

    def close(self):
        self.conn.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()


def raw_conn(master, timeout=10.0):
    return RawConn(master, timeout=timeout)


def transact(conn, raw):
    """Send raw bytes, read one response line back."""
    conn.sendall(raw)
    return conn.read_line()


def read_line(conn):
    return conn.read_line()


def master_alive(master):
    """The master still answers a well-formed hello on a new socket."""
    with raw_conn(master) as conn:
        reply = transact(conn, encode(request("hello", request_id=1)))
    return reply["ok"]


@pytest.mark.quick
class TestLiveMasterFuzz:
    @pytest.mark.parametrize("raw,code", [
        (b"garbage\n", "parse_error"),
        (b'{"truncated": \n', "parse_error"),
        (b"\xff\xfe garbage \xff\n", "parse_error"),
        (b"[1,2,3]\n", "bad_request"),
        (b'"string frame"\n', "bad_request"),
        (b'{"id": 1, "method": "nope"}\n', "unknown_method"),
        (b'{"id": 1, "method": "cancel", "params": {"rid": true}}\n',
         "bad_params"),
        (b'{"id": 1, "method": "submit", "params": {}}\n', "bad_params"),
        (b'{"id": true, "method": "hello"}\n', "bad_request"),
    ])
    def test_malformed_frame_gets_structured_error(self, fuzz_master,
                                                   raw, code):
        with raw_conn(fuzz_master) as conn:
            reply = transact(conn, raw)
            assert reply["ok"] is False
            assert reply["error"]["code"] == code
            # same connection still serves a good request afterwards
            reply = transact(conn, encode(request("hello",
                                                  request_id=2)))
            assert reply["ok"] and reply["id"] == 2

    def test_error_echoes_request_id_when_recoverable(self, fuzz_master):
        with raw_conn(fuzz_master) as conn:
            reply = transact(
                conn, b'{"id": 77, "method": "definitely_not"}\n')
            assert reply["id"] == 77
            reply = transact(conn, b'{"id": "str-id", "method": "x"}\n')
            assert reply["id"] == "str-id"
            # unparseable frames cannot echo an id
            reply = transact(conn, b"{{{\n")
            assert reply["id"] is None

    def test_oversized_line_survives_connection(self, fuzz_master):
        with raw_conn(fuzz_master, timeout=30.0) as conn:
            flood = b"x" * (MAX_LINE_BYTES + 100) + b"\n"
            reply = transact(conn, flood)
            assert reply["ok"] is False
            assert reply["error"]["code"] == "oversized"
            reply = transact(conn, encode(request("queue",
                                                  request_id=3)))
            assert reply["ok"] and reply["result"]["runs"] == []

    def test_interleaved_partial_writes(self, fuzz_master):
        wire = encode(request("hello", request_id=5))
        with raw_conn(fuzz_master) as conn:
            for start in range(0, len(wire), 3):
                conn.sendall(wire[start:start + 3])
                time.sleep(0.002)
            reply = read_line(conn)
            assert reply["ok"] and reply["id"] == 5

    def test_pipelined_requests_answered_in_order(self, fuzz_master):
        wire = b"".join(encode(request("hello", request_id=i))
                        for i in range(1, 6))
        with raw_conn(fuzz_master) as conn:
            conn.sendall(wire)
            for expected in range(1, 6):
                assert read_line(conn)["id"] == expected

    def test_rejected_submit_leaks_no_rid(self, fuzz_master):
        bad_specs = [
            {},                                  # no name/points
            {"name": "x"},                       # no points or grid
            {"name": "x", "points": [[]]},       # a point is not a dict
        ]
        before = fuzz_master.scheduler.counter.value
        with raw_conn(fuzz_master) as conn:
            for i, spec in enumerate(bad_specs):
                reply = transact(conn, encode(request(
                    "submit", {"spec": spec}, request_id=i)))
                assert reply["ok"] is False
                assert reply["error"]["code"] == "bad_params"
        assert fuzz_master.scheduler.counter.value == before
        assert fuzz_master.scheduler.queue_snapshot() == []

    def test_unknown_rid_everywhere(self, fuzz_master):
        with raw_conn(fuzz_master) as conn:
            for method in ("status", "cancel", "pause", "requeue",
                           "subscribe"):
                reply = transact(conn, encode(request(
                    method, {"rid": 999}, request_id=1)))
                assert reply["ok"] is False
                assert reply["error"]["code"] == "not_found"

    def test_abrupt_disconnect_mid_frame(self, fuzz_master):
        conn = raw_conn(fuzz_master)
        conn.sendall(b'{"id": 1, "method": "hel')   # never finished
        conn.close()                                 # client vanishes
        time.sleep(0.1)
        assert master_alive(fuzz_master)

    def test_random_binary_noise(self, fuzz_master):
        from repro.common.prng import DeterministicRng
        rng = DeterministicRng("serve-fuzz")
        with raw_conn(fuzz_master, timeout=30.0) as conn:
            for trial in range(20):
                size = rng.randint(1, 200)
                noise = bytes(rng.randint(0, 255) for _ in range(size))
                conn.sendall(noise.replace(b"\n", b" ") + b"\n")
                reply = read_line(conn)
                assert reply["ok"] is False, noise
        assert master_alive(fuzz_master)

    def test_master_survived_the_whole_battery(self, fuzz_master):
        # Runs last in file order within the class; a sanity seal.
        assert master_alive(fuzz_master)
        assert fuzz_master.scheduler.queue_snapshot() == []
