"""Tests for the DEU and controller-level behaviours."""

import pytest

from repro.bigcore.deu import DataExtractionUnit
from repro.common.config import default_meek_config
from repro.core.controller import StallReason
from repro.core.system import MeekSystem
from repro.fabric.packets import RuntimeKind
from repro.isa import ArchState, assemble, execute


class _FakeEvent:
    def __init__(self, instr, result):
        self.instr = instr
        self.result = result


def commit(source):
    """Execute one instruction and wrap it as a commit event."""
    program = assemble(source)
    state = ArchState(pc=program.entry_pc)
    state.write_int(1, 0x2000)
    state.write_int(2, 0x55)
    instr = program.fetch(state.pc)
    result = execute(instr, state)
    return _FakeEvent(instr, result)


class TestDeu:
    def test_load_extracted(self):
        deu = DataExtractionUnit()
        entry = deu.extract_runtime(commit("ld x3, 0(x1)"))
        assert entry.rkind is RuntimeKind.LOAD
        assert entry.addr == 0x2000

    def test_store_extracted_with_data(self):
        deu = DataExtractionUnit()
        entry = deu.extract_runtime(commit("sd x2, 8(x1)"))
        assert entry.rkind is RuntimeKind.STORE
        assert entry.addr == 0x2008
        assert entry.data == 0x55

    def test_csr_extracted(self):
        deu = DataExtractionUnit()
        entry = deu.extract_runtime(commit("csrrs x3, 0x300, x0"))
        assert entry.rkind is RuntimeKind.CSR
        assert entry.addr == 0x300

    def test_alu_not_extracted(self):
        deu = DataExtractionUnit()
        assert deu.extract_runtime(commit("add x3, x1, x2")) is None

    def test_branch_not_extracted(self):
        deu = DataExtractionUnit()
        assert deu.extract_runtime(commit("beq x0, x0, 8")) is None

    def test_disabled_extracts_nothing(self):
        deu = DataExtractionUnit()
        deu.set_enabled(False)
        assert deu.extract_runtime(commit("ld x3, 0(x1)")) is None
        state = ArchState()
        assert deu.extract_status(state, 0, 0, 0) is None

    def test_status_snapshot_contents(self):
        deu = DataExtractionUnit()
        state = ArchState()
        state.write_int(5, 99)
        state.write_csr(0x300, 7)
        snap = deu.extract_status(state, rcp_id=3, seg_id=1, next_pc=0x1234)
        assert snap.int_regs[5] == 99
        assert snap.csrs[0x300] == 7
        assert snap.pc == 0x1234
        assert snap.rcp_id == 3

    def test_extraction_latency(self):
        # 64 registers over 4 read ports + a cycle for CSR slots.
        deu = DataExtractionUnit(prf_read_ports=4)
        assert deu.status_extraction_cycles == 17
        wide = DataExtractionUnit(prf_read_ports=8)
        assert wide.status_extraction_cycles < 17

    def test_parity_checked_on_forward(self):
        deu = DataExtractionUnit()
        deu.extract_runtime(commit("ld x3, 0(x1)"))
        assert deu.parity_checks == 1
        assert deu.parity_errors == 0

    def test_sequence_numbers_increase(self):
        deu = DataExtractionUnit()
        first = deu.extract_runtime(commit("ld x3, 0(x1)"))
        second = deu.extract_runtime(commit("ld x3, 0(x1)"))
        assert second.seq == first.seq + 1


class TestControllerStallAccounting:
    def run_mixed(self, fabric_kind="f2", cores=4):
        program = assemble("""
            li   t0, 0
            li   t1, 800
            li   t2, 0x2000
        loop:
            sd   t0, 0(t2)
            ld   t3, 0(t2)
            add  t4, t4, t3
            addi t2, t2, 8
            addi t0, t0, 1
            bne  t0, t1, loop
            ecall
        """)
        config = default_meek_config(num_little_cores=cores,
                                     fabric_kind=fabric_kind)
        return MeekSystem(config).run(program)

    def test_collecting_stalls_proportional_to_rcps(self):
        result = self.run_mixed()
        per_rcp = result.controller.deu.status_extraction_cycles
        expected = per_rcp * len(result.segments)
        assert result.stall_cycles(StallReason.COLLECTING) == expected

    def test_axi_forwarding_stalls_dominate(self):
        f2 = self.run_mixed("f2")
        axi = self.run_mixed("axi")
        assert (axi.stall_cycles(StallReason.FORWARDING)
                > 5 * f2.stall_cycles(StallReason.FORWARDING))

    def test_single_core_serializes(self):
        one = self.run_mixed(cores=1)
        four = self.run_mixed(cores=4)
        assert (one.stall_cycles(StallReason.LITTLE_CORE)
                > four.stall_cycles(StallReason.LITTLE_CORE))

    def test_controller_stats_end_reasons_sum(self):
        result = self.run_mixed()
        stats = result.controller.stats()
        assert sum(stats["end_reasons"].values()) == stats["segments"]

    def test_rcp_count_is_segments_plus_initial(self):
        result = self.run_mixed()
        stats = result.controller.stats()
        assert stats["rcp_count"] == stats["segments"] + 1
