"""Tests for the OoO big-core timing model."""

import pytest

from repro.bigcore.core import BigCore, run_program
from repro.common.config import BigCoreConfig
from repro.common.errors import SimulationError
from repro.isa import assemble


def loop_program(body, iterations=200, prologue=""):
    return assemble(f"""
        {prologue}
        li t0, 0
        li t1, {iterations}
    loop:
        {body}
        addi t0, t0, 1
        bne t0, t1, loop
        ecall
    """)


class TestFunctionalCorrectness:
    def test_architectural_state_matches_reference(self):
        program = loop_program("add t2, t2, t0\nslli t3, t0, 2")
        result = run_program(program)
        # Reference: sum of 0..199 in t2.
        assert result.state.read_int(7) == sum(range(200))
        assert result.halted_by == "ecall"

    def test_memory_state_correct(self):
        program = assemble("""
            li t0, 0x2000
            li t1, 123
            sd t1, 0(t0)
            sd t1, 8(t0)
            ecall
        """)
        result = run_program(program)
        assert result.state.memory.load_word(0x2008) == 123

    def test_instruction_count(self):
        program = assemble("nop\nnop\nnop\necall")
        result = run_program(program)
        assert result.instructions == 4

    def test_max_instructions_limit(self):
        program = loop_program("nop", iterations=10_000)
        result = run_program(program, max_instructions=500)
        assert result.instructions == 500
        assert result.halted_by == "limit"

    def test_runs_off_end_without_trap(self):
        program = assemble("addi t0, zero, 1")
        result = run_program(program)
        assert result.halted_by == "end"


class TestTimingBehaviour:
    def test_ilp_extracts_parallelism(self):
        # Independent adds reach multi-issue IPC; a serial chain is ~1.
        independent = loop_program(
            "add t2, t0, t1\nadd t3, t0, t1\nadd t4, t0, t1\n"
            "add t5, t0, t1")
        chained = loop_program(
            "add t2, t2, t0\nadd t2, t2, t0\nadd t2, t2, t0\n"
            "add t2, t2, t0")
        ipc_ind = run_program(independent).ipc
        ipc_chain = run_program(chained).ipc
        assert ipc_ind > ipc_chain * 1.2

    def test_commit_width_bounds_ipc(self):
        program = loop_program("add t2, t0, t1\n" * 8)
        result = run_program(program)
        assert result.ipc <= BigCoreConfig().commit_width

    def test_divider_serializes(self):
        fast = run_program(loop_program("add t2, t0, t1"))
        slow = run_program(loop_program("div t2, t0, t1"))
        assert slow.cycles > fast.cycles * 2

    def test_cache_misses_slow_execution(self):
        # Strided walk over 8 MB vs repeatedly touching one line.
        big = loop_program("ld t2, 0(t3)\nadd t3, t3, t4",
                           prologue="li t3, 0x100000\nli t4, 4096")
        small = loop_program("ld t2, 0(t3)",
                             prologue="li t3, 0x100000\nli t4, 0")
        assert run_program(big).cycles > run_program(small).cycles

    def test_mispredicted_branches_cost_cycles(self):
        # Data-dependent branches driven by an LCG vs a fixed pattern.
        random_branches = loop_program("""
            mul  t6, t6, t4
            addi t6, t6, 1013
            srli t5, t6, 13
            andi t5, t5, 1
            beq  t5, zero, 8
            add  t2, t2, t0
        """, prologue="li t6, 12345\nli t4, 1103515245")
        biased = loop_program("""
            mul  t6, t6, t4
            addi t6, t6, 1013
            andi t5, zero, 1
            beq  t5, zero, 8
            add  t2, t2, t0
        """, prologue="li t6, 12345\nli t4, 1103515245")
        r_rand = run_program(random_branches)
        r_bias = run_program(biased)
        assert r_rand.predictor_stats["mispredict_rate"] > 0.1
        assert r_bias.cycles < r_rand.cycles

    def test_scaled_core_is_slower(self):
        program = loop_program("add t2, t0, t1\nadd t3, t0, t1\n"
                               "ld t4, 0(t5)\nxor t6, t2, t3",
                               prologue="li t5, 0x2000")
        full = run_program(program)
        scaled = run_program(program, config=BigCoreConfig().scaled(0.4))
        assert scaled.cycles > full.cycles
        # Same architectural outcome regardless of configuration.
        assert scaled.state.int_regs == full.state.int_regs

    def test_cycles_monotone_in_instructions(self):
        short = run_program(loop_program("nop", iterations=50))
        long = run_program(loop_program("nop", iterations=500))
        assert long.cycles > short.cycles


class TestCommitHook:
    def test_hook_sees_every_commit_in_order(self):
        program = assemble("addi t0, zero, 1\naddi t1, zero, 2\necall")
        seen = []

        def hook(event):
            seen.append((event.index, event.instr.op))
            return event.commit_cycle

        run_program(program, commit_hook=hook)
        assert seen == [(0, "addi"), (1, "addi"), (2, "ecall")]

    def test_hook_commit_times_monotone(self):
        program = loop_program("add t2, t0, t1\nld t3, 0(t4)",
                               prologue="li t4, 0x2000")
        times = []
        run_program(program,
                    commit_hook=lambda e: times.append(e.commit_cycle)
                    or e.commit_cycle)
        assert times == sorted(times)

    def test_hook_stall_slows_core(self):
        program = loop_program("add t2, t0, t1", iterations=300)
        plain = run_program(program)

        def stall(event):
            return event.commit_cycle + 2

        stalled = run_program(loop_program("add t2, t0, t1", iterations=300),
                              commit_hook=stall)
        assert stalled.cycles > plain.cycles * 1.5

    def test_hook_cannot_move_commit_backwards(self):
        program = assemble("nop\necall")
        with pytest.raises(SimulationError):
            run_program(program, commit_hook=lambda e: e.commit_cycle - 1)

    def test_hook_none_return_keeps_time(self):
        program = assemble("nop\necall")
        result = run_program(program, commit_hook=lambda e: None)
        assert result.instructions == 2

    def test_commit_slots_within_width(self):
        program = loop_program("add t2, t0, t1\n" * 6)
        slots = []
        run_program(program,
                    commit_hook=lambda e: slots.append(e.commit_slot)
                    or e.commit_cycle)
        assert max(slots) < BigCoreConfig().commit_width


class TestDeterminism:
    def test_identical_runs_identical_cycles(self):
        program = loop_program("add t2, t2, t0\nld t3, 0(t4)",
                               prologue="li t4, 0x2000")
        a = run_program(program)
        b = run_program(program)
        assert a.cycles == b.cycles
        assert a.predictor_stats == b.predictor_stats
