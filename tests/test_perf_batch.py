"""Batched-lockstep-kernel differential suite.

The batch kernel (:mod:`repro.perf.batch`) advances N fault-injection
points in lockstep with SoA state, shared decode, and per-lane
divergence eviction; the segment memo (:mod:`repro.core.segmemo`)
skips re-executing clean checker replay bursts.  Both are pure
performance layers: these tests hold every path **bit-identical** to
the scalar kernel with both layers off — per-point metrics rows
(including injection/detection streams, latencies and coverage cells),
persisted coverage.json artifacts, across every workload profile,
every canonical fault model, forced mid-run evictions, batch widths
1/2/7/64, and sharded + resumed campaigns with batching on.
"""

import json
import os

import pytest

from repro.campaign.executor import (_batch_units, resolve_batch_lanes,
                                     run_campaign)
from repro.campaign.spec import CampaignPoint, CampaignSpec
from repro.campaign.tasks import (_PROGRAM_CACHE, batch_group_key,
                                  run_inject_batch, run_inject_point)
from repro.core import segmemo
from repro.core.faults import CANONICAL_MODEL_SPECS
from repro.workloads import all_profiles

PROFILE_NAMES = [profile.name for profile in all_profiles()]


def _fresh(monkeypatch, no_segmemo=False, no_batch=False):
    """Reset every cross-run cache the perf layers key on."""
    monkeypatch.setenv("REPRO_NO_SEGMEMO", "1" if no_segmemo else "0")
    monkeypatch.setenv("REPRO_NO_BATCH", "1" if no_batch else "0")
    _PROGRAM_CACHE.clear()
    segmemo.clear()


def _points(workload, trials, instructions=1_500, rate=0.01, seed=0,
            model=None, targets=None):
    params = {"rate": rate}
    if model is not None:
        params["fault_model"] = model
    if targets is not None:
        params["fault_targets"] = targets
    return [CampaignPoint(task="inject", workload=workload,
                          instructions=instructions, seed=seed,
                          params={**params, "trial": trial,
                                  "rng_key": f"{seed}/{workload}/{trial}"})
            for trial in range(trials)]


def _scalar_rows(points, monkeypatch):
    """Reference rows: scalar kernel, memo off, caches cold per point —
    the exact pre-batch campaign loop."""
    _fresh(monkeypatch, no_segmemo=True)
    rows = []
    for point in points:
        _PROGRAM_CACHE.clear()
        rows.append(json.dumps(run_inject_point(point, "t"),
                               sort_keys=True))
    return rows


def _batch_rows(points, monkeypatch):
    _fresh(monkeypatch)
    metrics, _ = run_inject_batch(points, "t")
    return [json.dumps(m, sort_keys=True) for m in metrics]


@pytest.mark.parametrize("profile_name", PROFILE_NAMES)
def test_every_workload_profile_batch_bit_identical(profile_name,
                                                    monkeypatch):
    points = _points(profile_name, 3)
    assert _batch_rows(points, monkeypatch) == _scalar_rows(points,
                                                            monkeypatch)


@pytest.mark.parametrize("model_spec", CANONICAL_MODEL_SPECS)
def test_every_fault_model_batch_bit_identical(model_spec, monkeypatch):
    """Injection/detection streams and coverage cells survive batching
    under every canonical fault model (the coverage comparison is part
    of the row: ``metrics["coverage"]`` serializes into it)."""
    points = _points("ferret", 4, instructions=2_000, model=model_spec,
                     targets="all")
    scalar = _scalar_rows(points, monkeypatch)
    assert any(json.loads(row)["injections"] for row in scalar), \
        "fault model injected nothing — the comparison would be vacuous"
    assert _batch_rows(points, monkeypatch) == scalar


def test_scalar_memo_bit_identical(monkeypatch):
    """The segment memo alone (scalar kernel) changes nothing — cold
    store, then warm store on a second pass over the same points."""
    points = _points("bodytrack", 4, instructions=2_500)
    reference = _scalar_rows(points, monkeypatch)
    _fresh(monkeypatch)
    cold = [json.dumps(run_inject_point(p, "t"), sort_keys=True)
            for p in points]
    warm = [json.dumps(run_inject_point(p, "t"), sort_keys=True)
            for p in points]
    assert cold == reference
    assert warm == reference


@pytest.mark.parametrize("lanes", [1, 2, 7, 64])
def test_batch_widths_bit_identical(lanes, monkeypatch):
    """Any grouping of the same 14 points produces the same rows."""
    points = _points("gcc", 14, instructions=1_200)
    reference = _scalar_rows(points, monkeypatch)
    _fresh(monkeypatch)
    rows = [None] * len(points)
    for start in range(0, len(points), lanes):
        group = points[start:start + lanes]
        metrics, _ = run_inject_batch(group, "t")
        for offset, m in enumerate(metrics):
            rows[start + offset] = json.dumps(m, sort_keys=True)
    assert rows == reference


def test_forced_eviction_hook_bit_identical(monkeypatch):
    """Lanes forced out mid-run rerun scalar from cycle 0 — including
    lane 0, the lane most likely to lead in-flight memo recordings."""
    from repro.perf import batch as batch_kernel

    points = _points("dedup", 5, instructions=2_000)
    reference = _scalar_rows(points, monkeypatch)
    _fresh(monkeypatch)
    # >= because the hook is only consulted at per-lane events (entry
    # instructions, dormancy fires): the first event past the threshold
    # evicts, and eviction removes the lane, so each fires exactly once.
    monkeypatch.setattr(batch_kernel, "force_eviction_hook",
                        lambda lane, index: lane in (0, 3) and index >= 700)
    metrics, stats = run_inject_batch(points, "t")
    assert [json.dumps(m, sort_keys=True) for m in metrics] == reference
    assert stats["evictions"].get("forced") == 2


def test_forced_eviction_env_bit_identical(monkeypatch):
    """``REPRO_BATCH_FORCE_EVICT`` takes exact (lane, index) pairs, so
    probe a clean run for real per-lane event indices first."""
    from repro.perf import batch as batch_kernel

    points = _points("hmmer", 4, instructions=1_500)
    reference = _scalar_rows(points, monkeypatch)
    _fresh(monkeypatch)
    seen = []
    monkeypatch.setattr(batch_kernel, "force_eviction_hook",
                        lambda lane, index: seen.append((lane, index)) or
                        False)
    metrics, _ = run_inject_batch(points, "t")
    assert [json.dumps(m, sort_keys=True) for m in metrics] == reference
    lane1 = sorted(i for lane, i in seen if lane == 1)
    lane2 = sorted(i for lane, i in seen if lane == 2)
    assert lane1 and lane2, "no per-lane events to force-evict at"

    _fresh(monkeypatch)
    monkeypatch.setattr(batch_kernel, "force_eviction_hook", None)
    monkeypatch.setenv(
        "REPRO_BATCH_FORCE_EVICT",
        f"1:{lane1[len(lane1) // 2]},2:{lane2[len(lane2) // 2]}")
    metrics, stats = run_inject_batch(points, "t")
    assert [json.dumps(m, sort_keys=True) for m in metrics] == reference
    assert stats["evictions"].get("forced") == 2


class TestCampaignIntegration:
    """Batching as a campaign execution strategy: serial, sharded, and
    resumed runs all byte-identical to the scalar serial reference."""

    def spec(self):
        points = (_points("streamcluster", 6, instructions=1_500)
                  + _points("mcf", 6, instructions=1_500))
        return CampaignSpec(name="batchcmp", points=points)

    def reference(self, monkeypatch, tmp_path):
        from repro.obs.live import LiveStatus

        _fresh(monkeypatch, no_segmemo=True, no_batch=True)
        spec = self.spec()
        status = str(tmp_path / "ref.status.json")
        live = LiveStatus(spec.name, total=len(spec.points), path=status)
        result = run_campaign(spec, batch=1, live=live)
        assert result.all_ok
        coverage = status[:-len(".status.json")] + ".coverage.json"
        with open(coverage, "rb") as handle:
            cov_bytes = handle.read()
        return ([json.dumps(m, sort_keys=True) for m in result.metrics()],
                cov_bytes)

    def batched(self, monkeypatch, tmp_path, tag, jobs=None,
                abort_after=None):
        from repro.campaign.executor import CampaignAborted
        from repro.campaign.results import ResultStore
        from repro.obs.live import LiveStatus

        _fresh(monkeypatch)
        spec = self.spec()
        store_path = str(tmp_path / f"{tag}.jsonl")
        status = store_path + ".status.json"
        if abort_after is not None:
            with ResultStore(path=store_path) as store:
                with pytest.raises(CampaignAborted):
                    run_campaign(spec, jobs=jobs, batch=4, store=store,
                                 abort=lambda: len(store.rows)
                                 >= abort_after)
        with ResultStore(path=store_path) as store:
            live = LiveStatus(spec.name, total=len(spec.points),
                              path=status)
            result = run_campaign(spec, jobs=jobs, batch=4, store=store,
                                  resume_from=store_path, live=live)
        assert result.all_ok
        coverage = store_path + ".coverage.json"
        with open(coverage, "rb") as handle:
            cov_bytes = handle.read()
        return ([json.dumps(m, sort_keys=True) for m in result.metrics()],
                cov_bytes)

    def test_serial_sharded_resumed_byte_identical(self, monkeypatch,
                                                   tmp_path):
        ref_rows, ref_cov = self.reference(monkeypatch, tmp_path)
        serial = self.batched(monkeypatch, tmp_path, "serial")
        assert serial == (ref_rows, ref_cov)
        sharded = self.batched(monkeypatch, tmp_path, "sharded", jobs=2)
        assert sharded == (ref_rows, ref_cov)
        resumed = self.batched(monkeypatch, tmp_path, "resumed",
                               abort_after=5)
        assert resumed == (ref_rows, ref_cov)

    def test_no_batch_env_disables_grouping(self, monkeypatch):
        _fresh(monkeypatch, no_batch=True)
        assert resolve_batch_lanes(None) == 1
        assert resolve_batch_lanes(64) == 1


class TestGrouping:
    def test_resolve_batch_lanes(self, monkeypatch):
        from repro.perf.batch import DEFAULT_BATCH_LANES

        monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert resolve_batch_lanes(None) == DEFAULT_BATCH_LANES
        assert resolve_batch_lanes("auto") == DEFAULT_BATCH_LANES
        assert resolve_batch_lanes(7) == 7
        assert resolve_batch_lanes(1) == 1
        monkeypatch.setenv("REPRO_BATCH", "5")
        assert resolve_batch_lanes(None) == 5

    def test_batch_units_group_compatible_points_only(self):
        inject = _points("dedup", 5, instructions=1_000)
        other_cfg = _points("dedup", 1, instructions=2_000)
        meek = CampaignPoint(task="meek", workload="dedup",
                             instructions=1_000, seed=0, params={})
        pairs = list(enumerate(inject + other_cfg + [meek]))
        units = _batch_units(pairs, lanes=3)
        sizes = sorted(len(unit) for unit in units)
        # 5 compatible points at width 3 -> [3, 2]; the different
        # instruction count and the meek point stay scalar.
        assert sizes == [1, 1, 2, 3]
        assert all(
            len({batch_group_key(point) for _, point in unit}) == 1
            for unit in units if len(unit) > 1)

    def test_batch_group_key_ignores_lane_params_only(self):
        a, b = _points("dedup", 2, rate=0.01)
        assert batch_group_key(a) == batch_group_key(b)
        c = _points("dedup", 1, rate=0.02)[0]
        assert batch_group_key(a) == batch_group_key(c)
        d = _points("dedup", 1, instructions=9_999)[0]
        assert batch_group_key(a) != batch_group_key(d)


class TestBatchObservability:
    def test_live_status_batch_section_and_watch_line(self):
        from repro.obs.live import LiveStatus
        from repro.obs.watch import render_snapshot

        live = LiveStatus("obs", total=4, path=None)
        live.batch({"lanes": 4, "instructions": 100, "occupancy": 0.75,
                    "evictions": {"divergence": 1}})
        live.batch({"lanes": 4, "instructions": 100, "occupancy": 1.0,
                    "evictions": {}})
        snap = live.snapshot()
        assert snap["batch"] == {
            "batches": 2,
            "lanes": 8,
            "mean_lanes_active": 3.5,
            "evictions": 1,
            "evictions_by_cause": {"divergence": 1},
        }
        rendered = render_snapshot(snap)
        assert "batch" in rendered
        assert "divergence 1" in rendered

    def test_registry_instruments(self):
        from repro.obs.live import LiveStatus
        from repro.obs.metrics import get_registry, reset_registry

        reset_registry()
        try:
            live = LiveStatus("obs", total=1, path=None)
            live.batch({"lanes": 8, "instructions": 10, "occupancy": 0.5,
                        "evictions": {"forced": 2}})
            snapshot = get_registry().snapshot()
            assert snapshot["counters"]["batch.batches"] == 1
            assert snapshot["counters"]["batch.lanes"] == 8
            assert snapshot["counters"]["batch.evictions"] == 2
            assert snapshot["counters"]["batch.evictions.forced"] == 2
            assert snapshot["gauges"]["batch.lanes_active"] == 4.0
        finally:
            reset_registry()
