"""Every one of the 20 evaluated workloads, end-to-end under MEEK.

Small slices, but full-stack: generation, vanilla baseline, MEEK run,
verification, segment accounting — for each SPECint06 and PARSEC
profile the paper evaluates.
"""

import pytest

from repro.common.config import default_meek_config
from repro.core.system import MeekSystem, run_vanilla
from repro.workloads import generate_program
from repro.workloads.profiles import PARSEC_ORDER, SPEC_ORDER

ALL_WORKLOADS = SPEC_ORDER + PARSEC_ORDER


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_workload_end_to_end(name):
    program = generate_program(
        __import__("repro.workloads", fromlist=["get_profile"])
        .get_profile(name), dynamic_instructions=2500)
    vanilla = run_vanilla(program)
    assert vanilla.halted_by == "ecall"
    assert vanilla.ipc > 0.05

    meek = MeekSystem(default_meek_config()).run(program)
    # Functional equivalence with the baseline.
    assert meek.big.state.int_regs == vanilla.state.int_regs
    # Complete, error-free verification.
    assert meek.all_segments_verified, meek.detections
    assert sum(s.instr_count for s in meek.segments) == meek.instructions
    # MEEK never speeds the big core up.
    assert meek.cycles >= vanilla.cycles
