"""Direct unit tests for CheckerRun (segment re-execution)."""

import pytest

from repro.common.bitops import flip_bit
from repro.common.config import LslConfig
from repro.core.checker import CheckerRun
from repro.core.lsl import LoadStoreLog
from repro.core.segments import Segment, SegmentEndReason
from repro.fabric.packets import RuntimeEntry, RuntimeKind, StatusSnapshot
from repro.isa import ArchState, assemble, execute
from repro.isa.state import Memory
from repro.littlecore.pipeline import LittleCorePipeline


def build_segment(source, corrupt=None, one_behind=True):
    """Execute ``source`` on a reference state, log its memory ops and
    checkpoints exactly as the DEU would, then build a CheckerRun.

    ``corrupt(segment)`` may mutate the logged data before replay.
    """
    program = assemble(source)
    state = ArchState(pc=program.entry_pc)
    program.data.apply(state.memory)
    srcp = StatusSnapshot(0, 0, program.entry_pc,
                          *state.register_file_snapshot(), state.csrs)
    segment = Segment(seg_id=0, start_pc=program.entry_pc, srcp=srcp,
                      srcp_delivery=0, assigned_core=0, start_cycle=0)
    seq = 0
    cycle = 0
    while True:
        instr = program.fetch(state.pc)
        if instr is None:
            break
        result = execute(instr, state)
        cycle += 1
        if result.is_load or result.is_store:
            kind = RuntimeKind.LOAD if result.is_load else RuntimeKind.STORE
            seq += 1
            entry = RuntimeEntry(kind, result.mem_addr, result.mem_value,
                                 result.mem_size, seq=seq)
            segment.add_entry(entry, delivery_cycle=cycle)
        elif result.csr_addr is not None:
            seq += 1
            entry = RuntimeEntry(RuntimeKind.CSR, result.csr_addr,
                                 result.rd_value, 8, seq=seq)
            segment.add_entry(entry, delivery_cycle=cycle)
        segment.instr_count += 1
        if result.trap:
            break
    ercp = StatusSnapshot(1, 1, state.pc, *state.register_file_snapshot(),
                          state.csrs)
    if corrupt is not None:
        corrupt(segment, ercp)
    segment.close(cycle, SegmentEndReason.PROGRAM_END, ercp,
                  ercp_delivery=cycle + 5, end_pc=state.pc)
    pipeline = LittleCorePipeline(clock_ratio=2)
    lsl = LoadStoreLog(LslConfig(), core_id=0)
    for delivery in segment.entry_deliveries:
        lsl.record_delivery(delivery)
    checker = CheckerRun(segment, program, pipeline, lsl,
                         one_instruction_behind=one_behind)
    return checker


CLEAN = """
    li t0, 0
    li t1, 30
    li t2, 0x2000
loop:
    sd t0, 0(t2)
    ld t3, 0(t2)
    add t4, t4, t3
    addi t2, t2, 8
    addi t0, t0, 1
    bne t0, t1, loop
"""


class TestCleanReplay:
    def test_clean_segment_verifies(self):
        checker = build_segment(CLEAN)
        verdict = checker.advance()
        assert verdict is not None and verdict.ok

    def test_all_entries_consumed(self):
        checker = build_segment(CLEAN)
        checker.advance()
        assert checker.next_entry == len(checker.segment.entries)

    def test_finish_after_ercp_delivery(self):
        checker = build_segment(CLEAN)
        verdict = checker.advance()
        assert verdict.finish_cycle >= checker.segment.ercp_delivery

    def test_csr_replay_verifies(self):
        checker = build_segment("csrrs t0, 0x300, x0\ncsrrs t1, 0x300, x0")
        assert checker.advance().ok

    def test_fp_segment_verifies(self):
        checker = build_segment("""
            li t0, 5
            li t5, 0x2000
            fcvt.d.l f1, t0
            fadd.d f2, f1, f1
            fsd f2, 0(t5)
            fld f3, 0(t5)
        """)
        assert checker.advance().ok


class TestCorruptedReplay:
    def corrupt_entry(self, index, field, bit):
        def mutate(segment, ercp):
            entry = segment.entries[index]
            if field == "data":
                entry.data = flip_bit(entry.data, bit)
            else:
                entry.addr = flip_bit(entry.addr, bit)
        return mutate

    def test_store_data_corruption_detected(self):
        checker = build_segment(CLEAN,
                                corrupt=self.corrupt_entry(0, "data", 3))
        verdict = checker.advance()
        assert not verdict.ok
        assert verdict.reason == "store-data-mismatch"

    def test_store_addr_corruption_detected(self):
        checker = build_segment(CLEAN,
                                corrupt=self.corrupt_entry(0, "addr", 5))
        verdict = checker.advance()
        assert verdict.reason == "store-address-mismatch"

    def test_load_addr_corruption_detected(self):
        checker = build_segment(CLEAN,
                                corrupt=self.corrupt_entry(1, "addr", 4))
        verdict = checker.advance()
        assert verdict.reason == "load-address-mismatch"

    def test_load_data_corruption_reaches_ercp(self):
        # Entry 1 is the first load; its value feeds t4, which lives to
        # the end of the segment.
        checker = build_segment(CLEAN,
                                corrupt=self.corrupt_entry(1, "data", 7))
        verdict = checker.advance()
        assert not verdict.ok
        assert verdict.reason == "ercp-register-mismatch"
        assert verdict.detect_cycle >= checker.segment.ercp_delivery

    def test_ercp_register_corruption_detected(self):
        def mutate(segment, ercp):
            regs = list(ercp.int_regs)
            regs[29] = flip_bit(regs[29], 11)  # t4, the accumulator
            ercp.int_regs = tuple(regs)
        checker = build_segment(CLEAN, corrupt=mutate)
        assert checker.advance().reason == "ercp-register-mismatch"

    def test_srcp_pc_corruption_detected(self):
        def mutate(segment, ercp):
            segment.srcp.pc = segment.srcp.pc + 8  # replay starts late
        checker = build_segment(CLEAN, corrupt=mutate)
        verdict = checker.advance()
        assert not verdict.ok

    def test_wild_srcp_pc_detected_as_fetch_error(self):
        def mutate(segment, ercp):
            segment.srcp.pc = 0xDEAD_0000
        checker = build_segment(CLEAN, corrupt=mutate)
        verdict = checker.advance()
        assert verdict.reason in ("pc-out-of-program", "pc-misaligned",
                                  "log-exhausted")


class TestIncrementalAdvance:
    def test_blocks_until_closed(self):
        program = assemble("addi t0, zero, 1\naddi t1, zero, 2")
        state = ArchState(pc=program.entry_pc)
        srcp = StatusSnapshot(0, 0, program.entry_pc,
                              *state.register_file_snapshot(), {})
        segment = Segment(0, program.entry_pc, srcp, 0, 0, 0)
        pipeline = LittleCorePipeline(clock_ratio=2)
        lsl = LoadStoreLog(LslConfig(), core_id=0)
        checker = CheckerRun(segment, program, pipeline, lsl)
        # Nothing committed yet: the checker cannot run.
        assert checker.advance() is None
        assert checker.executed == 0
        # One commit, one-behind: still cannot run.
        segment.instr_count = 1
        assert checker.advance() is None
        # Second commit: may now replay the first instruction.
        segment.instr_count = 2
        assert checker.advance() is None
        assert checker.executed == 1

    def test_one_behind_disabled_allows_catchup(self):
        program = assemble("addi t0, zero, 1\naddi t1, zero, 2")
        state = ArchState(pc=program.entry_pc)
        srcp = StatusSnapshot(0, 0, program.entry_pc,
                              *state.register_file_snapshot(), {})
        segment = Segment(0, program.entry_pc, srcp, 0, 0, 0)
        checker = CheckerRun(segment, program,
                             LittleCorePipeline(clock_ratio=2),
                             LoadStoreLog(LslConfig(), core_id=0),
                             one_instruction_behind=False)
        segment.instr_count = 1
        checker.advance()
        assert checker.executed == 1
