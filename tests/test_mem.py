"""Unit tests for the memory hierarchy models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.config import CacheConfig, MemoryHierarchyConfig
from repro.common.errors import SimulationError
from repro.mem.cache import CacheModel
from repro.mem.dram import DramModel
from repro.mem.hierarchy import AccessKind, MemoryHierarchy


def small_cache(size=1024, ways=2, mshrs=2):
    return CacheModel(CacheConfig("test", size_bytes=size, ways=ways,
                                  mshrs=mshrs))


class TestCacheModel:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(0x1000)
        cache.fill(0x1000)
        assert cache.lookup(0x1000)

    def test_same_line_hits(self):
        cache = small_cache()
        cache.fill(0x1000)
        assert cache.lookup(0x1010)  # same 64-byte line
        assert cache.lookup(0x103F)

    def test_different_line_misses(self):
        cache = small_cache()
        cache.fill(0x1000)
        assert not cache.lookup(0x1040)

    def test_lru_eviction(self):
        cache = small_cache(size=256, ways=2)  # 2 sets
        # Three lines mapping to the same set: evict the LRU.
        sets = cache.num_sets
        line = 64
        a, b, c = 0, sets * line, 2 * sets * line
        cache.fill(a)
        cache.fill(b)
        cache.lookup(a)          # a is now MRU
        cache.fill(c)            # evicts b
        assert cache.probe(a)
        assert not cache.probe(b)
        assert cache.probe(c)

    def test_eviction_counted(self):
        cache = small_cache(size=128, ways=1)
        line = 64
        cache.fill(0)
        cache.fill(cache.num_sets * line)
        assert cache.evictions == 1

    def test_invalidate(self):
        cache = small_cache()
        cache.fill(0x1000)
        cache.invalidate(0x1000)
        assert not cache.probe(0x1000)

    def test_flush(self):
        cache = small_cache()
        cache.fill(0x1000)
        cache.flush()
        assert not cache.probe(0x1000)

    def test_miss_rate(self):
        cache = small_cache()
        cache.lookup(0x1000)
        cache.fill(0x1000)
        cache.lookup(0x1000)
        assert cache.miss_rate == pytest.approx(0.5)

    def test_mshr_queueing(self):
        cache = small_cache(mshrs=2)
        # Two misses in flight are fine; a third queues.
        assert cache.mshr_allocate(0, 100) == 100
        assert cache.mshr_allocate(0, 100) == 100
        delayed = cache.mshr_allocate(0, 100)
        assert delayed == 200
        assert cache.mshr_stall_cycles == 100

    def test_mshr_frees_after_completion(self):
        cache = small_cache(mshrs=1)
        cache.mshr_allocate(0, 50)
        assert cache.mshr_allocate(60, 110) == 110

    def test_mshr_rejects_time_travel(self):
        cache = small_cache()
        with pytest.raises(SimulationError):
            cache.mshr_allocate(100, 50)

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200))
    def test_fill_then_probe_holds(self, addrs):
        cache = CacheModel(CacheConfig("prop", size_bytes=1 << 16, ways=4))
        for addr in addrs:
            cache.fill(addr)
        # The most recently filled address is always present (capacity
        # is far larger than the sample).
        assert cache.probe(addrs[-1])


class TestDram:
    def test_fixed_latency(self):
        dram = DramModel(latency_cycles=100, max_requests=2)
        assert dram.access(10) == 110

    def test_window_queueing(self):
        dram = DramModel(latency_cycles=100, max_requests=2)
        dram.access(0)
        dram.access(0)
        assert dram.access(0) == 200
        assert dram.queue_stall_cycles == 100

    def test_window_drains(self):
        dram = DramModel(latency_cycles=100, max_requests=1)
        dram.access(0)
        assert dram.access(150) == 250


class TestHierarchy:
    def test_l1_hit_latency(self):
        h = MemoryHierarchy()
        h.l1d.fill(0x1000)
        assert h.access(0x1000, 0) == h.config.l1d.hit_latency

    def test_cold_miss_goes_to_dram(self):
        h = MemoryHierarchy()
        latency = h.access(0x40_0000, 0)
        assert latency > h.config.llc.hit_latency
        assert h.dram.requests == 1

    def test_second_access_hits_l1(self):
        h = MemoryHierarchy()
        h.access(0x1000, 0)
        assert h.access(0x1000, 100) == h.config.l1d.hit_latency

    def test_l2_hit_path(self):
        h = MemoryHierarchy()
        h.l2.fill(0x9000)
        latency = h.access(0x9000, 0)
        assert latency == (h.config.l1d.hit_latency
                           + h.config.l2.hit_latency)

    def test_ifetch_uses_l1i(self):
        h = MemoryHierarchy()
        h.access(0x1000, 0, AccessKind.IFETCH)
        assert h.l1i.accesses == 1
        assert h.l1d.accesses == 0

    def test_next_line_prefetch(self):
        h = MemoryHierarchy()
        h.access(0x2000, 0)  # miss: prefetches 0x2040 and 0x2080
        assert h.access(0x2040, 50) == h.config.l1d.hit_latency
        assert h.access(0x2080, 60) == h.config.l1d.hit_latency

    def test_no_prefetch_on_ifetch(self):
        h = MemoryHierarchy()
        h.access(0x2000, 0, AccessKind.IFETCH)
        assert not h.l1i.probe(0x2040)

    def test_shared_l2(self):
        shared = MemoryHierarchy()
        other = MemoryHierarchy(shared_l2=shared)
        other.access(0x5000, 0)
        # The shared L2 saw the fill.
        assert shared.l2.probe(0x5000)

    def test_stats_shape(self):
        h = MemoryHierarchy()
        h.access(0x1000, 0)
        stats = h.stats()
        assert set(stats) == {"l1i", "l1d", "l2", "llc", "dram"}
