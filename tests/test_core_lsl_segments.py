"""Tests for the Load-Store Log occupancy model and segments."""

import pytest

from repro.common.config import LslConfig
from repro.common.errors import SimulationError
from repro.core.lsl import LoadStoreLog
from repro.core.segments import Segment, SegmentEndReason
from repro.fabric.packets import StatusSnapshot


def make_lsl(entries=4):
    return LoadStoreLog(LslConfig(size_bytes=entries * 16), core_id=0)


def make_snapshot(pc=0x1000):
    return StatusSnapshot(0, 0, pc, [0] * 32, [0] * 32, {})


class TestLoadStoreLog:
    def test_capacity_from_config(self):
        assert make_lsl(4).capacity == 4
        assert LoadStoreLog(LslConfig(), core_id=0).capacity == 256

    def test_occupancy_counts_delivered_unconsumed(self):
        lsl = make_lsl()
        lsl.record_delivery(10)
        lsl.record_delivery(20)
        assert lsl.occupancy(5) == 0
        assert lsl.occupancy(15) == 1
        assert lsl.occupancy(25) == 2

    def test_consumption_drains(self):
        lsl = make_lsl()
        lsl.record_delivery(10)
        lsl.record_consumption(30)
        assert lsl.occupancy(20) == 1
        assert lsl.occupancy(30) == 0

    def test_outstanding_counts_in_flight(self):
        lsl = make_lsl()
        lsl.record_delivery(100)  # still in flight at t=0
        assert lsl.outstanding(0) == 1
        assert lsl.occupancy(0) == 0

    def test_would_overflow(self):
        lsl = make_lsl(entries=2)
        lsl.record_delivery(0)
        lsl.record_delivery(0)
        assert lsl.would_overflow(1)

    def test_over_consumption_rejected(self):
        lsl = make_lsl()
        lsl.record_delivery(0)
        lsl.record_consumption(1)
        with pytest.raises(SimulationError):
            lsl.record_consumption(2)

    def test_monotonic_clamping(self):
        lsl = make_lsl()
        lsl.record_delivery(50)
        lsl.record_delivery(10)  # fabric preserves ordering
        assert lsl.occupancy(50) == 2

    def test_bind_segment_resets(self):
        lsl = make_lsl()
        lsl.record_delivery(0)
        lsl.bind_segment()
        assert lsl.occupancy(100) == 0
        assert lsl.total_entries == 1  # lifetime statistic survives

    def test_peak_occupancy_tracked(self):
        lsl = make_lsl()
        for _ in range(3):
            lsl.record_delivery(0)
        lsl.occupancy(10)
        assert lsl.peak_occupancy == 3


class TestSegment:
    def test_lifecycle(self):
        seg = Segment(0, 0x1000, make_snapshot(), srcp_delivery=5,
                      assigned_core=1, start_cycle=10)
        assert not seg.closed
        seg.close(100, SegmentEndReason.TIMEOUT, make_snapshot(0x2000),
                  ercp_delivery=110, end_pc=0x2000)
        assert seg.closed
        assert seg.end_reason is SegmentEndReason.TIMEOUT
        assert seg.ercp_delivery == 110

    def test_entry_bookkeeping(self):
        seg = Segment(0, 0x1000, make_snapshot(), 0, 0, 0)
        seg.add_entry("entry", 42)
        assert seg.num_entries == 1
        assert seg.entry_deliveries == [42]

    def test_repr_stable(self):
        seg = Segment(3, 0x1000, make_snapshot(), 0, 2, 0)
        assert "Segment(3" in repr(seg)
