"""Unit + property tests for the 32-bit encoder/decoder."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import DecodeError
from repro.isa import decode, encode
from repro.isa.instructions import Fmt, Instruction, SPECS

REG = st.integers(0, 31)
IMM12 = st.integers(-2048, 2047)
IMM20U = st.integers(0, (1 << 20) - 1)
SHAMT = st.integers(0, 63)
BIMM = st.integers(-2048, 2047).map(lambda v: v * 2)
JIMM = st.integers(-(1 << 19), (1 << 19) - 1).map(lambda v: v * 2)
CSR = st.integers(0, 4095)
ZIMM = st.integers(0, 31)

_R_OPS = [n for n, s in SPECS.items() if s.fmt == Fmt.R]
_I_OPS = [n for n, s in SPECS.items() if s.fmt == Fmt.I]
_LOAD_OPS = [n for n, s in SPECS.items() if s.fmt == Fmt.LOAD]
_S_OPS = [n for n, s in SPECS.items() if s.fmt == Fmt.S]
_B_OPS = [n for n, s in SPECS.items() if s.fmt == Fmt.B]
_SHIFT_OPS = [n for n, s in SPECS.items() if s.fmt == Fmt.SHIFT]
_FR_OPS = [n for n, s in SPECS.items() if s.fmt == Fmt.FR]
_MEEK_OPS = [n for n, s in SPECS.items()
             if s.fmt in (Fmt.M2R, Fmt.M1R, Fmt.MRD)]


def roundtrip(instr):
    decoded = decode(encode(instr))
    assert decoded == instr, f"{instr} -> {encode(instr):#010x} -> {decoded}"


class TestRoundTripProperties:
    @given(st.sampled_from(_R_OPS), REG, REG, REG)
    def test_r_type(self, op, rd, rs1, rs2):
        roundtrip(Instruction(op, rd=rd, rs1=rs1, rs2=rs2))

    @given(st.sampled_from(_I_OPS), REG, REG, IMM12)
    def test_i_type(self, op, rd, rs1, imm):
        roundtrip(Instruction(op, rd=rd, rs1=rs1, imm=imm))

    @given(st.sampled_from(_LOAD_OPS), REG, REG, IMM12)
    def test_loads(self, op, rd, rs1, imm):
        roundtrip(Instruction(op, rd=rd, rs1=rs1, imm=imm))

    @given(st.sampled_from(_S_OPS), REG, REG, IMM12)
    def test_stores(self, op, rs1, rs2, imm):
        roundtrip(Instruction(op, rs1=rs1, rs2=rs2, imm=imm))

    @given(st.sampled_from(_B_OPS), REG, REG, BIMM)
    def test_branches(self, op, rs1, rs2, imm):
        roundtrip(Instruction(op, rs1=rs1, rs2=rs2, imm=imm))

    @given(st.sampled_from(_SHIFT_OPS), REG, REG, SHAMT)
    def test_shifts(self, op, rd, rs1, shamt):
        roundtrip(Instruction(op, rd=rd, rs1=rs1, imm=shamt))

    @given(st.sampled_from(["lui", "auipc"]), REG, IMM20U)
    def test_upper_immediates(self, op, rd, imm):
        roundtrip(Instruction(op, rd=rd, imm=imm))

    @given(REG, JIMM)
    def test_jal(self, rd, imm):
        roundtrip(Instruction("jal", rd=rd, imm=imm))

    @given(st.sampled_from(_FR_OPS), REG, REG, REG)
    def test_fp_register_ops(self, op, rd, rs1, rs2):
        roundtrip(Instruction(op, rd=rd, rs1=rs1, rs2=rs2))

    @given(st.sampled_from(["csrrw", "csrrs"]), REG, REG, CSR)
    def test_csr(self, op, rd, rs1, csr):
        roundtrip(Instruction(op, rd=rd, rs1=rs1, imm=csr))

    @given(REG, ZIMM, CSR)
    def test_csrrwi(self, rd, zimm, csr):
        roundtrip(Instruction("csrrwi", rd=rd, rs1=zimm, imm=csr))

    @given(st.sampled_from(_MEEK_OPS), REG, REG, REG)
    def test_meek_extension(self, op, rd, rs1, rs2):
        spec = SPECS[op]
        if spec.fmt == Fmt.MRD:
            roundtrip(Instruction(op, rd=rd))
        elif spec.fmt == Fmt.M1R:
            roundtrip(Instruction(op, rs1=rs1))
        else:
            roundtrip(Instruction(op, rs1=rs1, rs2=rs2))


class TestSystemEncodings:
    def test_ecall(self):
        assert encode(Instruction("ecall")) == 0x00000073
        assert decode(0x00000073).op == "ecall"

    def test_ebreak(self):
        assert encode(Instruction("ebreak")) == 0x00100073
        assert decode(0x00100073).op == "ebreak"

    def test_known_golden_words(self):
        # Cross-checked against the RISC-V spec encoding tables.
        assert encode(Instruction("add", rd=1, rs1=2, rs2=3)) == 0x003100B3
        assert encode(Instruction("addi", rd=1, rs1=2, imm=10)) == 0x00A10093
        assert encode(Instruction("ld", rd=10, rs1=2, imm=8)) == 0x00813503
        assert encode(Instruction("sd", rs1=2, rs2=10, imm=8)) == 0x00A13423

    def test_meek_uses_custom0_opcode(self):
        word = encode(Instruction("b.hook", rs1=1, rs2=2))
        assert word & 0x7F == 0b0001011


class TestErrors:
    def test_immediate_overflow_rejected(self):
        with pytest.raises(DecodeError):
            encode(Instruction("addi", rd=1, rs1=1, imm=4096))

    def test_odd_branch_offset_rejected(self):
        with pytest.raises(DecodeError):
            encode(Instruction("beq", rs1=1, rs2=2, imm=3))

    def test_undecodable_word_rejected(self):
        with pytest.raises(DecodeError):
            decode(0xFFFFFFFF)

    def test_garbage_opcode_rejected(self):
        with pytest.raises(DecodeError):
            decode(0x0000007F)
