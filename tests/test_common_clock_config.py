"""Unit tests for repro.common.clock and repro.common.config."""

import pytest

from repro.common.clock import Clock, ClockDomain
from repro.common.config import (
    AxiConfig,
    BigCoreConfig,
    CacheConfig,
    FabricConfig,
    LittleCoreConfig,
    LslConfig,
    MeekConfig,
    default_meek_config,
    default_rocket_config,
    optimized_rocket_config,
)
from repro.common.errors import ConfigError


class TestClockDomain:
    def test_cycles_to_ns(self):
        big = ClockDomain("big", 3.2e9)
        assert big.cycles_to_ns(32) == pytest.approx(10.0)

    def test_ns_to_cycles(self):
        big = ClockDomain("big", 3.2e9)
        assert big.ns_to_cycles(10.0) == pytest.approx(32)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ConfigError):
            ClockDomain("bad", 0)


class TestClock:
    def make(self):
        big = ClockDomain("big", 3.2e9)
        little = ClockDomain("little", 1.6e9)
        return Clock(big, [little])

    def test_ratio_is_two(self):
        assert self.make().ratio("little") == 2

    def test_slow_domain_edges(self):
        clock = self.make()
        edges = []
        for _ in range(6):
            clock.tick()
            edges.append(clock.domain_ticks("little"))
        assert edges == [False, True, False, True, False, True]

    def test_non_integer_ratio_rejected(self):
        big = ClockDomain("big", 3.2e9)
        odd = ClockDomain("odd", 1.3e9)
        with pytest.raises(ConfigError):
            Clock(big, [odd])

    def test_now_ns(self):
        clock = self.make()
        for _ in range(320):
            clock.tick()
        assert clock.now_ns() == pytest.approx(100.0)


class TestCacheConfig:
    def test_table2_l1d_geometry(self):
        cache = CacheConfig("L1D", size_bytes=32 * 1024, ways=4)
        assert cache.num_sets == 128

    def test_bad_line_size_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", size_bytes=1024, ways=2, line_bytes=48)

    def test_indivisible_size_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", size_bytes=1000, ways=3)


class TestBigCoreConfig:
    def test_table2_defaults(self):
        cfg = BigCoreConfig()
        assert cfg.fetch_width == 4
        assert cfg.rob_entries == 128
        assert cfg.issue_queue_entries == 96
        assert cfg.ldq_entries == 32
        assert cfg.int_phys_regs == 128
        assert cfg.frequency_hz == pytest.approx(3.2e9)

    def test_scaled_shrinks_everything(self):
        cfg = BigCoreConfig().scaled(0.5)
        assert cfg.rob_entries == 64
        assert cfg.fetch_width == 2
        assert cfg.int_alus == 1

    def test_scaled_keeps_minimums(self):
        cfg = BigCoreConfig().scaled(0.05)
        assert cfg.int_alus >= 1
        assert cfg.mem_units >= 1
        assert cfg.rob_entries >= cfg.fetch_width * 4

    def test_scale_factor_validated(self):
        with pytest.raises(ConfigError):
            BigCoreConfig().scaled(0.0)
        with pytest.raises(ConfigError):
            BigCoreConfig().scaled(1.5)


class TestLittleCoreConfig:
    def test_optimized_divider(self):
        # 8-unroll divider: 64/8 + 2 = 10 cycles per divide.
        assert optimized_rocket_config().div_latency == 10

    def test_default_divider_is_slow(self):
        # Default Rocket iterates 1 bit/cycle: 64 + 2 = 66 cycles.
        assert default_rocket_config().div_latency == 66

    def test_default_fpu_blocks(self):
        default = default_rocket_config()
        assert default.fp_occupancy == default.fpu_stages

    def test_optimized_fpu_pipelines(self):
        assert optimized_rocket_config().fp_occupancy == 1

    def test_lsl_entries(self):
        # 4 KB / 16-byte entries = 256 run-time records (Table II).
        assert LslConfig().entries == 256

    def test_lsl_timeout_default(self):
        assert LslConfig().instruction_timeout == 5000


class TestFabricConfig:
    def test_f2_defaults(self):
        fabric = FabricConfig()
        assert fabric.width_bits == 256
        assert fabric.packets_per_cycle == 2
        assert fabric.multicast

    def test_axi_baseline_is_narrow(self):
        axi = AxiConfig()
        assert axi.width_bits == 128
        assert axi.packets_per_cycle == 1
        assert not axi.multicast

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FabricConfig(kind="infiniband")


class TestMeekConfig:
    def test_default_four_little_cores(self):
        assert default_meek_config().num_little_cores == 4

    def test_with_little_cores(self):
        assert default_meek_config().with_little_cores(6).num_little_cores == 6

    def test_axi_variant(self):
        cfg = default_meek_config(fabric_kind="axi")
        assert cfg.fabric.kind == "axi"

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigError):
            MeekConfig(num_little_cores=0)
