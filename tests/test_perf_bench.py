"""Benchmark harness tests: perf-floor smoke, regression logic, and
``repro bench`` CLI acceptance.

The floor tests (marked ``bench``) are canaries for *catastrophic*
slowdowns: thresholds sit far below what any supported machine
delivers (the committed ``BENCH_perf.json`` records >100k MEEK
instrs/sec; the floors are 25-50x lower), so they only trip when a
change fundamentally breaks the fast kernel — which should fail CI
loudly rather than surface as a mysteriously slow suite.
"""

import json
import time

import pytest

from repro.cli import main
from repro.perf.bench import run_bench
from repro.perf.regress import (Violation, check_regression, load_baseline,
                                write_result)


def _throughput(fn, instructions):
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return instructions / best


@pytest.fixture(scope="module")
def swaptions_program():
    from repro.workloads import generate_program, get_profile
    return generate_program(get_profile("swaptions"),
                            dynamic_instructions=8_000, seed=0)


@pytest.mark.bench
def test_perf_floor_golden_model(swaptions_program):
    from repro.difftest.golden import run_golden
    rate = _throughput(lambda: run_golden(swaptions_program), 8_000)
    assert rate > 50_000, (
        f"golden model sustained only {rate:,.0f} instrs/s — the fast "
        "kernel has catastrophically regressed")


@pytest.mark.bench
def test_perf_floor_meek_system(swaptions_program):
    from repro.common.config import default_meek_config
    from repro.core.system import MeekSystem
    config = default_meek_config(num_little_cores=4)
    rate = _throughput(
        lambda: MeekSystem(config).run(swaptions_program), 8_000)
    assert rate > 4_000, (
        f"MEEK end-to-end sustained only {rate:,.0f} instrs/s — the "
        "checked-execution path has catastrophically regressed")


@pytest.mark.bench
def test_perf_floor_vanilla_big_core(swaptions_program):
    from repro.core.system import run_vanilla
    rate = _throughput(lambda: run_vanilla(swaptions_program), 8_000)
    assert rate > 10_000, (
        f"vanilla big core sustained only {rate:,.0f} instrs/s")


# -- regression-harness logic ------------------------------------------------

def _fake_result(rate=100_000.0, speedup=2.0):
    from repro.perf.bench import BENCH_SCHEMA
    return {
        "schema": BENCH_SCHEMA,
        "config": {"instructions": 1000},
        "workloads": {
            "swaptions": {
                "meek": {"wall_s": 0.01, "instructions": 1000,
                         "instrs_per_s": rate},
            },
        },
        "figures": {},
        "kernels": {"workload": "swaptions", "meek_speedup": speedup,
                    "vanilla_speedup": speedup},
    }


class TestCheckRegression:
    def test_identical_results_pass(self):
        base = _fake_result()
        assert check_regression(base, base) == []

    def test_within_tolerance_passes(self):
        base = _fake_result(rate=100_000)
        current = _fake_result(rate=60_000)
        assert check_regression(current, base, tolerance=0.5) == []

    def test_throughput_drop_flagged(self):
        base = _fake_result(rate=100_000)
        current = _fake_result(rate=40_000)
        violations = check_regression(current, base, tolerance=0.5)
        assert len(violations) == 1
        assert "swaptions/meek" in str(violations[0])

    def test_missing_workload_flagged(self):
        base = _fake_result()
        current = _fake_result()
        current["workloads"] = {}
        assert check_regression(current, base)

    def test_kernel_speedup_drop_flagged(self):
        base = _fake_result(speedup=2.0)
        current = _fake_result(speedup=0.9)
        violations = check_regression(current, base, kernel_tolerance=0.25)
        names = [v.metric for v in violations]
        assert "kernels/meek_speedup" in names

    def test_kernel_floor_never_below_one(self):
        # Even with a huge tolerance, dropping below parity with the
        # naive loop is always a regression.
        base = _fake_result(speedup=1.2)
        current = _fake_result(speedup=0.95)
        assert check_regression(current, base, kernel_tolerance=0.9)

    def test_violation_repr(self):
        violation = Violation("m", 100.0, 10.0, 50.0)
        assert "below floor" in str(violation)

    def test_warm_path_ratio_drop_flagged(self):
        base = _fake_result()
        base["warm_start"] = {"warm_speedup": 2.0}
        current = _fake_result()
        current["warm_start"] = {"warm_speedup": 0.8}
        violations = check_regression(current, base, kernel_tolerance=0.5)
        assert "warm_start/warm_speedup" in [v.metric for v in violations]

    def test_skipped_warm_sections_not_flagged(self):
        """--skip-warm-start/--skip-campaign runs leave the sections
        None; --check must treat that as unmeasured, not regressed."""
        base = _fake_result()
        base["warm_start"] = {"warm_speedup": 2.0}
        base["batch"] = {"batch_speedup": 2.0}
        base["campaign"] = {"pool_speedup": 1.5}
        current = _fake_result()  # sections absent entirely
        current["warm_start"] = None
        assert check_regression(current, base) == []


class TestBaselineIo:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        result = _fake_result()
        write_result(result, path)
        assert load_baseline(path) == result

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "old.json"
        result = _fake_result()
        result["schema"] = 99
        path.write_text(json.dumps(result))
        with pytest.raises(ValueError):
            load_baseline(path)


# -- CLI acceptance ----------------------------------------------------------

_BENCH_ARGS = ["bench", "--workloads", "mcf", "--instructions", "1500",
               "--repeat", "1", "--skip-figures", "--skip-kernels",
               "--skip-warm-start", "--skip-campaign"]


@pytest.mark.bench
class TestBenchCli:
    def test_bench_writes_result(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_perf.json")
        assert main(_BENCH_ARGS + ["--out", out]) == 0
        text = capsys.readouterr().out
        assert "Simulation throughput" in text
        written = json.loads((tmp_path / "BENCH_perf.json").read_text())
        assert written["workloads"]["mcf"]["meek"]["instrs_per_s"] > 0

    def test_bench_check_passes_against_own_baseline(self, tmp_path,
                                                     capsys):
        out = str(tmp_path / "BENCH_perf.json")
        assert main(_BENCH_ARGS + ["--out", out]) == 0
        code = main(_BENCH_ARGS + ["--out", "", "--baseline", out,
                                   "--check", "--tolerance", "0.9"])
        assert code == 0
        assert "no regression" in capsys.readouterr().out

    def test_passing_check_leaves_baseline_untouched(self, tmp_path):
        """--check is read-only on the baseline even when it passes —
        otherwise each run ratchets the floor down by the tolerance."""
        out = tmp_path / "BENCH_perf.json"
        assert main(_BENCH_ARGS + ["--out", str(out)]) == 0
        before = out.read_text()
        code = main(_BENCH_ARGS + ["--out", str(out), "--baseline",
                                   str(out), "--check", "--tolerance",
                                   "0.9"])
        assert code == 0
        assert out.read_text() == before

    def test_bench_check_fails_on_inflated_baseline(self, tmp_path,
                                                    capsys):
        out = tmp_path / "BENCH_perf.json"
        assert main(_BENCH_ARGS + ["--out", str(out)]) == 0
        baseline = json.loads(out.read_text())
        for systems in baseline["workloads"].values():
            for metrics in systems.values():
                metrics["instrs_per_s"] *= 1_000
        out.write_text(json.dumps(baseline))
        code = main(_BENCH_ARGS + ["--out", "", "--baseline", str(out),
                                   "--check"])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_check_missing_baseline_is_usage_error(self, tmp_path):
        code = main(_BENCH_ARGS + ["--out", "", "--check", "--baseline",
                                   str(tmp_path / "nope.json")])
        assert code == 2

    def test_failed_check_never_overwrites_its_own_baseline(self,
                                                            tmp_path):
        """Regression: --check + --out on the same file must not
        launder a regression into the new baseline."""
        out = tmp_path / "BENCH_perf.json"
        assert main(_BENCH_ARGS + ["--out", str(out)]) == 0
        baseline = json.loads(out.read_text())
        for systems in baseline["workloads"].values():
            for metrics in systems.values():
                metrics["instrs_per_s"] *= 1_000
        out.write_text(json.dumps(baseline))
        before = out.read_text()
        code = main(_BENCH_ARGS + ["--out", str(out), "--baseline",
                                   str(out), "--check"])
        assert code == 1
        assert out.read_text() == before, "baseline was overwritten"


def test_run_bench_kernel_consistency_guard():
    """run_bench's kernel A/B asserts cycle equality between kernels —
    the bench itself is an equivalence check."""
    result = run_bench(workloads=("mcf",), instructions=1_200, repeat=1,
                       figures=(), kernels=True)
    kernels = result["kernels"]
    assert kernels["fast_meek_s"] > 0 and kernels["slow_meek_s"] > 0
    assert kernels["meek_speedup"] == (kernels["slow_meek_s"]
                                       / kernels["fast_meek_s"])
