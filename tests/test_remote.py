"""Distributed transport drills: TCP runners, mixed fleets, loss.

The contract under test is the one the transport layer exists for:
**rows and coverage artifacts are bit-identical to a serial run no
matter which transport carried the points** — a local pool, two
remote ``repro runner`` processes over loopback TCP, or a mixture of
both — and that contract survives every loss mode the scheduler
models:

* a runner SIGKILLed mid-lease (connection death → immediate requeue);
* a wedged-but-connected runner (lease expiry → requeue);
* a runner that leaves mid-campaign while a second keeps stealing;
* an aborted campaign resumed over a fresh fleet.

Runners here are mostly hosted in threads of this process (they speak
real TCP to a real :class:`RunnerListener`, but share the test's task
registry); the SIGKILL drill uses genuine ``repro runner``
subprocesses because you cannot SIGKILL a thread.
"""

import contextlib
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.analysis.coverage import coverage_path_for
from repro.campaign import (CampaignPoint, CampaignSpec, ResultStore,
                            run_campaign, task)
from repro.campaign.executor import CampaignAborted
from repro.campaign.pool import WorkerPool
from repro.campaign.remote import (RunnerHub, RunnerListener,
                                   parse_address, run_runner)
from repro.campaign.transport import TcpRunnerTransport
from repro.obs.live import attach_live

SMALL = 1500


# -- throwaway tasks (thread-hosted runners evaluate in this process,
# so registration here is visible to them) ---------------------------------


@task("remote_echo")
def _remote_echo(point, campaign_name=""):
    return {"value": point.seed * 10 + point.params.get("k", 0)}


@task("remote_slow")
def _remote_slow(point, campaign_name=""):
    time.sleep(float(point.params.get("sleep_s", 0.5)))
    return {"value": point.seed}


def echo_spec(name="rem", n=10, k=0):
    return CampaignSpec(name=name, points=[
        CampaignPoint(task="remote_echo", workload="w",
                      instructions=100, seed=seed, params={"k": k})
        for seed in range(n)])


def slow_spec(name="rem-slow", n=2, sleep_s=0.5):
    return CampaignSpec(name=name, points=[
        CampaignPoint(task="remote_slow", workload="w",
                      instructions=100, seed=seed,
                      params={"sleep_s": sleep_s})
        for seed in range(n)])


def inject_spec(name="rem-cov", trials=4, instructions=SMALL):
    """Real fault-injection points: runs in subprocess runners too,
    and exercises the coverage.json artifact path."""
    return CampaignSpec(name=name, points=[
        CampaignPoint(task="inject", workload="dedup",
                      instructions=instructions, seed=0,
                      params={"rate": 0.05, "trial": trial,
                              "rng_key": f"rem/{trial}"})
        for trial in range(trials)])


def rows_of(store_path):
    """The store reduced to its deterministic content (bookkeeping
    like elapsed_s and worker excluded by construction)."""
    results = ResultStore.load(store_path)
    return {pid: (r.ok, r.metrics, r.error)
            for pid, r in results.items()}


def workers_of(store_path):
    return {r.worker for r in ResultStore.load(store_path).values()}


def read_bytes(path):
    with open(path, "rb") as handle:
        return handle.read()


def run_to_store(spec, tmp_path, tag, transport=None, jobs=1, **kwargs):
    """One campaign with a file store + live status (so coverage.json
    persists); returns the store path and the campaign result."""
    store_path = str(tmp_path / f"{tag}.jsonl")
    with ResultStore(path=store_path) as store:
        live = attach_live(spec, jobs, store=store)
        result = run_campaign(spec, jobs=jobs, store=store, live=live,
                              transport=transport, **kwargs)
    return store_path, result


# -- thread-hosted runner fleets -------------------------------------------


def _runner_main(address, name, kwargs, outcome):
    try:
        outcome["chunks"] = run_runner(address, name=name, **kwargs)
    except (OSError, ConnectionError) as exc:
        outcome["error"] = exc  # listener teardown; expected


@contextlib.contextmanager
def thread_fleet(count, hub=None, **runner_kwargs):
    """``count`` in-process runners speaking real TCP to a listener."""
    hub = hub if hub is not None else RunnerHub()
    listener = RunnerListener(hub, host="127.0.0.1", port=0).start()
    kwargs = {"poll_s": 0.01, "reconnect": False}
    kwargs.update(runner_kwargs)
    threads, outcomes = [], []
    for i in range(count):
        outcome = {}
        thread = threading.Thread(
            target=_runner_main,
            args=(listener.address, f"t{i}", dict(kwargs), outcome),
            name=f"test-runner-{i}", daemon=True)
        thread.start()
        threads.append(thread)
        outcomes.append(outcome)
    assert hub.wait_for(count, timeout_s=15.0) >= count, \
        "runners never registered"
    try:
        yield hub, listener
    finally:
        listener.stop()
        for thread in threads:
            thread.join(timeout=10.0)


# -- address parsing --------------------------------------------------------


@pytest.mark.quick
class TestParseAddress:
    def test_bare_port_is_loopback_tcp(self):
        assert parse_address("7100") == ("tcp", "127.0.0.1", 7100)

    def test_host_port(self):
        assert parse_address("node3:7100") == ("tcp", "node3", 7100)

    def test_empty_host_defaults_to_loopback(self):
        assert parse_address(":7100") == ("tcp", "127.0.0.1", 7100)

    def test_paths_are_unix_sockets(self):
        assert parse_address("/tmp/x.sock") == ("unix", "/tmp/x.sock",
                                                None)
        # A path with a colon but no numeric port is still a path.
        assert parse_address("/tmp/a:b")[0] == "unix"


# -- byte-identity battery --------------------------------------------------


class TestBitIdentity:
    def test_two_tcp_runners_match_serial(self, tmp_path):
        spec = echo_spec(n=12)
        serial_path, serial = run_to_store(spec, tmp_path, "serial")
        assert serial.all_ok
        with thread_fleet(2) as (hub, _):
            remote_path, remote = run_to_store(
                spec, tmp_path, "remote", chunk_size=2,
                transport=TcpRunnerTransport(hub, poll_s=0.01))
        assert remote.all_ok
        assert rows_of(remote_path) == rows_of(serial_path)
        assert workers_of(remote_path) <= {"t0", "t1"}

    def test_mixed_local_pool_and_runner_match_serial(self, tmp_path):
        spec = echo_spec(name="rem-mixed", n=16, k=3)
        serial_path, _ = run_to_store(spec, tmp_path, "serial")
        with thread_fleet(1) as (hub, _):
            pool = WorkerPool(2)
            try:
                mixed_path, mixed = run_to_store(
                    spec, tmp_path, "mixed", chunk_size=2,
                    transport=TcpRunnerTransport(hub, local_pool=pool,
                                                 poll_s=0.01))
            finally:
                pool.close()
        assert mixed.all_ok
        assert rows_of(mixed_path) == rows_of(serial_path)

    def test_coverage_json_identical_across_transports(self, tmp_path):
        """The acceptance artifact: ``coverage.json`` bytes match
        across serial, local-pool, and all-remote runs."""
        spec = inject_spec(trials=4)
        serial_path, serial = run_to_store(spec, tmp_path, "serial")
        assert serial.all_ok
        pool_path, _ = run_to_store(spec, tmp_path, "pool", jobs=2)
        with thread_fleet(2) as (hub, _):
            remote_path, _ = run_to_store(
                spec, tmp_path, "remote", chunk_size=1,
                transport=TcpRunnerTransport(hub, poll_s=0.01))
        assert rows_of(pool_path) == rows_of(serial_path)
        assert rows_of(remote_path) == rows_of(serial_path)
        reference = read_bytes(coverage_path_for(serial_path))
        assert read_bytes(coverage_path_for(pool_path)) == reference
        assert read_bytes(coverage_path_for(remote_path)) == reference

    def test_abort_then_resume_over_tcp_matches_uninterrupted(
            self, tmp_path):
        # Slow enough that rows trickle into the drain loop one at a
        # time — the abort must genuinely interrupt the campaign.
        spec = inject_spec(name="rem-resume", trials=6,
                           instructions=SMALL * 30)
        ref_path, ref = run_to_store(spec, tmp_path, "ref")
        assert ref.all_ok
        out = str(tmp_path / "tcp.jsonl")
        stop = threading.Event()
        seen = []

        def progress(result):
            seen.append(result)
            if len(seen) >= 2:
                stop.set()

        with thread_fleet(2) as (hub, _):
            with ResultStore(path=out) as store:
                live = attach_live(spec, 2, store=store)
                # batch=1 keeps the points in single-point chunks
                # (they are lane-compatible, so auto-batching would
                # evaluate them all in one kernel call and deliver
                # every row in a single drain — nothing left to
                # abort).  Rows are bit-identical either way.
                with pytest.raises(CampaignAborted):
                    run_campaign(
                        spec, store=store, live=live, progress=progress,
                        abort=stop.is_set, chunk_size=1, batch=1,
                        transport=TcpRunnerTransport(hub, poll_s=0.01))
            aborted_rows = rows_of(out)
            assert 0 < len(aborted_rows) < len(spec.points)
            # Resume over the same fleet finishes the remainder.
            with ResultStore(path=out) as store:
                live = attach_live(spec, 2, store=store)
                result = run_campaign(
                    spec, store=store, live=live, resume_from=out,
                    chunk_size=1,
                    transport=TcpRunnerTransport(hub, poll_s=0.01))
        assert result.all_ok
        assert rows_of(out) == rows_of(ref_path)
        assert read_bytes(coverage_path_for(out)) == \
            read_bytes(coverage_path_for(ref_path))


# -- lease renewal ----------------------------------------------------------


class TestLeaseRenewal:
    def test_in_evaluation_heartbeat_outlives_short_lease(self, tmp_path):
        """A unit slower than the bare lease timeout completes anyway:
        the runner's heartbeat thread renews the lease while the point
        evaluates.  Before the fix this livelocked — the lease expired
        mid-evaluation, its rows were blackholed by the epoch bump,
        and the requeued chunk hit the same wall forever."""
        spec = slow_spec(n=2, sleep_s=0.6)
        serial_path, _ = run_to_store(spec, tmp_path, "serial")
        with thread_fleet(1, heartbeat_s=0.05) as (hub, _):
            # batch=1 keeps chunk_size honoured (auto lanes floor it).
            path, result = run_to_store(
                spec, tmp_path, "slow", chunk_size=1, batch=1,
                transport=TcpRunnerTransport(hub, poll_s=0.01,
                                             lease_timeout_s=0.25))
        assert result.all_ok
        assert rows_of(path) == rows_of(serial_path)

    def test_local_pool_lease_renews_while_shards_alive(self, tmp_path):
        """Mixed-mode local chunks outlive the bare lease timeout:
        live shards renew the ``local`` lease every pump, so a chunk
        whose total runtime exceeds the timeout streams to completion
        instead of expiring mid-chunk and duplicating its tail."""
        spec = slow_spec(name="rem-slow-local", n=3, sleep_s=0.2)
        serial_path, _ = run_to_store(spec, tmp_path, "serial")
        hub = RunnerHub()  # no runners: the pool is the only source
        pool = WorkerPool(1)
        try:
            path, result = run_to_store(
                spec, tmp_path, "local", chunk_size=3, batch=1,
                transport=TcpRunnerTransport(hub, local_pool=pool,
                                             poll_s=0.01,
                                             lease_timeout_s=0.35))
        finally:
            pool.close()
        assert result.all_ok
        assert rows_of(path) == rows_of(serial_path)

    @pytest.mark.quick
    def test_effective_lease_timeout_scales_with_unit_budget(self):
        from repro.campaign.transport import effective_lease_timeout
        # No per-point budget (or no lease timeout at all): unchanged.
        assert effective_lease_timeout(60.0, None, 16) == 60.0
        assert effective_lease_timeout(None, 5.0, 16) is None
        # With a budget, the deadline covers a full batch run plus the
        # scalar re-run of the same group, on top of the base margin.
        assert effective_lease_timeout(60.0, 5.0, 16) == 60.0 + 160.0
        assert effective_lease_timeout(60.0, 5.0, 1) == 70.0


# -- loss drills ------------------------------------------------------------


class TestLoss:
    def test_runner_leaving_mid_campaign_is_harmless(self, tmp_path):
        """t0 evaluates one chunk and disconnects (clean exit); t1
        keeps stealing and finishes the campaign."""
        spec = echo_spec(name="rem-leave", n=12)
        serial_path, _ = run_to_store(spec, tmp_path, "serial")
        with thread_fleet(2, max_chunks=1) as (hub, listener):
            # t0/t1 both exit after one chunk; a third, unrestricted
            # runner joins late and sweeps up whatever remains.
            sweeper = {}
            thread = threading.Thread(
                target=_runner_main,
                args=(listener.address, "sweeper",
                      {"poll_s": 0.01, "reconnect": False}, sweeper),
                daemon=True)
            thread.start()
            assert hub.wait_for(3, timeout_s=15.0) >= 3
            path, result = run_to_store(
                spec, tmp_path, "leave", chunk_size=2,
                transport=TcpRunnerTransport(hub, poll_s=0.01))
        thread.join(timeout=10.0)
        assert result.all_ok
        assert rows_of(path) == rows_of(serial_path)
        assert workers_of(path) <= {"t0", "t1", "sweeper"}

    def test_transient_total_runner_loss_waits_for_rejoin(self, tmp_path):
        """All runners dropping is not instant death: the transport
        grace-waits for a re-registration (the runner client retries
        for ~30s on a blip), and a rejoining runner leases the
        requeued chunks and finishes the campaign — before the fix
        the whole remainder failed as WorkerDied the moment the last
        connection closed."""
        spec = echo_spec(name="rem-blip", n=6)
        serial_path, _ = run_to_store(spec, tmp_path, "serial")
        hub = RunnerHub()
        listener = RunnerListener(hub, host="127.0.0.1", port=0).start()
        try:
            first = {}
            t_first = threading.Thread(
                target=_runner_main,
                args=(listener.address, "first",
                      {"poll_s": 0.01, "reconnect": False,
                       "max_chunks": 1}, first),
                daemon=True)
            t_first.start()
            assert hub.wait_for(1, timeout_s=15.0) >= 1
            outcome = {}

            def campaign():
                try:
                    # batch=1 keeps chunk_size honoured, so the first
                    # runner's single chunk leaves work behind.
                    outcome["path"], outcome["result"] = run_to_store(
                        spec, tmp_path, "blip", chunk_size=2, batch=1,
                        transport=TcpRunnerTransport(
                            hub, poll_s=0.01, runner_grace_s=20.0))
                except BaseException as exc:  # noqa: BLE001 — surface
                    outcome["exc"] = exc      # in the main thread
            t_campaign = threading.Thread(target=campaign, daemon=True)
            t_campaign.start()
            # The only runner evaluates one chunk and disconnects,
            # leaving the fleet empty with work still pending.
            t_first.join(timeout=15.0)
            assert not t_first.is_alive(), "first runner never left"
            assert t_campaign.is_alive(), \
                "campaign ended while the fleet was empty"
            # A replacement joins inside the grace window.
            second = {}
            t_second = threading.Thread(
                target=_runner_main,
                args=(listener.address, "second",
                      {"poll_s": 0.01, "reconnect": False}, second),
                daemon=True)
            t_second.start()
            t_campaign.join(timeout=30.0)
            assert not t_campaign.is_alive(), "campaign wedged"
            assert "exc" not in outcome, outcome.get("exc")
        finally:
            listener.stop()
        assert outcome["result"].all_ok
        assert rows_of(outcome["path"]) == rows_of(serial_path)
        assert workers_of(outcome["path"]) <= {"first", "second"}

    def test_no_fleet_ever_still_fails_fast(self, tmp_path):
        """The grace window only applies to a fleet that existed: a
        campaign pointed at a hub no runner ever registered with fails
        its points as WorkerDied immediately, not after the grace."""
        spec = echo_spec(name="rem-empty", n=4)
        hub = RunnerHub()
        start = time.monotonic()
        path, result = run_to_store(
            spec, tmp_path, "empty",
            transport=TcpRunnerTransport(hub, poll_s=0.01,
                                         runner_grace_s=30.0))
        assert time.monotonic() - start < 5.0
        assert not result.all_ok
        assert all("WorkerDied" in r.error for r in result.results)

    def test_wedged_runner_lease_expires_and_requeues(self, tmp_path):
        """A registered runner that leases a chunk and then never
        reports: its lease deadline lapses, the chunk requeues, and a
        healthy runner re-runs it — rows identical to serial."""
        spec = echo_spec(name="rem-wedge", n=6)
        serial_path, _ = run_to_store(spec, tmp_path, "serial")
        hub = RunnerHub()
        listener = RunnerListener(hub, host="127.0.0.1", port=0).start()
        wedged = hub.register(object(), name="wedged")
        stolen = {}
        failure = {}

        def campaign():
            try:
                stolen["store"], stolen["result"] = run_to_store(
                    spec, tmp_path, "wedge", chunk_size=2,
                    transport=TcpRunnerTransport(hub, poll_s=0.01,
                                                 lease_timeout_s=0.3))
            except BaseException as exc:  # noqa: BLE001 — surface in
                failure["exc"] = exc      # the main thread's assert
        thread = threading.Thread(target=campaign, daemon=True)
        thread.start()
        try:
            # Steal a lease onto the wedged runner the moment the
            # drive attaches, before any healthy runner exists.
            deadline = time.monotonic() + 15.0
            work = None
            while work is None and time.monotonic() < deadline:
                work = hub.lease(wedged)
                if work is None:
                    time.sleep(0.005)
            assert work is not None, "wedged runner never got a lease"
            # Now bring up the healthy runner that must finish
            # everything, including the expired chunk.
            healthy = {}
            runner_thread = threading.Thread(
                target=_runner_main,
                args=(listener.address, "healthy",
                      {"poll_s": 0.01, "reconnect": False}, healthy),
                daemon=True)
            runner_thread.start()
            thread.join(timeout=30.0)
            assert not thread.is_alive(), "campaign wedged"
            assert "exc" not in failure, failure.get("exc")
        finally:
            listener.stop()
        assert stolen["result"].all_ok
        assert rows_of(stolen["store"]) == rows_of(serial_path)
        # Every row came from the healthy runner — the wedged one
        # never reported a thing, so its chunk demonstrably re-ran.
        assert workers_of(stolen["store"]) == {"healthy"}

    @pytest.mark.slow
    def test_sigkill_runner_mid_campaign_rows_identical(self, tmp_path):
        """The CI acceptance drill with real processes: two ``repro
        runner`` subprocesses over loopback TCP, one SIGKILLed while
        the campaign runs; the survivor re-runs the lost lease and the
        store matches the serial reference byte-for-byte."""
        import repro

        spec = inject_spec(name="rem-kill", trials=8)
        serial_path, serial = run_to_store(spec, tmp_path, "serial")
        assert serial.all_ok
        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = (src_dir + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src_dir)
        hub = RunnerHub()
        listener = RunnerListener(hub, host="127.0.0.1", port=0).start()
        procs = [subprocess.Popen(
            [sys.executable, "-m", "repro", "runner",
             "--connect", listener.address, "--name", f"sub{i}",
             "--poll", "0.02", "--no-reconnect"],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL) for i in range(2)]
        try:
            assert hub.wait_for(2, timeout_s=60.0) >= 2, \
                "subprocess runners never registered"
            killed = []

            def progress(result):
                if not killed:
                    procs[0].kill()  # SIGKILL mid-campaign
                    killed.append(True)

            path, result = run_to_store(
                spec, tmp_path, "kill", chunk_size=1, progress=progress,
                transport=TcpRunnerTransport(hub, poll_s=0.02,
                                             lease_timeout_s=60.0))
        finally:
            for proc in procs:
                proc.kill()
                proc.wait(timeout=30.0)
            listener.stop()
        assert killed, "campaign finished before the kill fired"
        assert result.all_ok
        assert rows_of(path) == rows_of(serial_path)
        assert read_bytes(coverage_path_for(path)) == \
            read_bytes(coverage_path_for(serial_path))
