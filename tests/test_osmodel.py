"""Tests for the OS model: locks, scheduler (Alg. 1/2), syscalls and
the Fig. 5 page-fault deadlock."""

import pytest

from repro.common.errors import DeadlockError, PrivilegeError, SimulationError
from repro.isa.meek import CHECK_DISABLE, CHECK_ENABLE, MODE_APPLICATION, MODE_CHECK
from repro.osmodel import (
    DeadlockDetector,
    KernelInterface,
    MeekDevice,
    MeekScheduler,
    Mutex,
    PageFaultScenario,
    Task,
    TaskKind,
    TaskState,
)
from repro.osmodel.scheduler import make_checked_application


class TestMutex:
    def test_acquire_release(self):
        m = Mutex("l")
        a = Task("a")
        assert m.try_acquire(a)
        assert m.owner is a
        m.release(a)
        assert not m.held

    def test_contention_queues(self):
        m = Mutex("l")
        a, b = Task("a"), Task("b")
        m.try_acquire(a)
        assert not m.try_acquire(b)
        assert b in m.waiters

    def test_release_hands_off(self):
        m = Mutex("l")
        a, b = Task("a"), Task("b")
        m.try_acquire(a)
        m.try_acquire(b)
        next_owner = m.release(a)
        assert next_owner is b
        assert m.owner is b

    def test_release_by_non_owner_rejected(self):
        m = Mutex("l")
        a, b = Task("a"), Task("b")
        m.try_acquire(a)
        with pytest.raises(SimulationError):
            m.release(b)

    def test_recursive_acquire_rejected(self):
        m = Mutex("l")
        a = Task("a")
        m.try_acquire(a)
        with pytest.raises(SimulationError):
            m.try_acquire(a)


class TestDeadlockDetector:
    def test_no_cycle(self):
        d = DeadlockDetector()
        a, b = Task("a"), Task("b")
        d.wait(a, b, "lock")
        assert d.find_cycle() is None

    def test_two_cycle(self):
        d = DeadlockDetector()
        a, b = Task("a"), Task("b")
        d.wait(a, b, "lock1")
        d.wait(b, a, "lock2")
        cycle = d.find_cycle()
        assert cycle is not None
        assert len(cycle) == 2

    def test_clear_breaks_cycle(self):
        d = DeadlockDetector()
        a, b = Task("a"), Task("b")
        d.wait(a, b, "x")
        d.wait(b, a, "y")
        d.clear(a)
        assert d.find_cycle() is None

    def test_describe(self):
        d = DeadlockDetector()
        a, b = Task("alpha"), Task("beta")
        d.wait(a, b, "LSL full")
        d.wait(b, a, "page_lock")
        assert "LSL full" in d.describe_cycle()


class TestScheduler:
    def make(self):
        device = MeekDevice(num_little_cores=4)
        return device, MeekScheduler(device)

    def test_algorithm1_op_ordering(self):
        device, sched = self.make()
        app, _ = make_checked_application("app", (0, 1))
        sched.submit(app)
        sched.context_switch_big(current=None)
        ops = [entry[0] for entry in device.op_log]
        # b.check(DISABLE) strictly first, b.check(ENABLE) strictly last.
        assert ops[0] == "b.check" and device.op_log[0][1] == CHECK_DISABLE
        assert ops[-1] == "b.check" and device.op_log[-1][1] == CHECK_ENABLE
        # The hooks happen strictly between the two.
        assert ops[1:-1] == ["b.hook", "b.hook"]

    def test_hooks_only_on_new_release(self):
        device, sched = self.make()
        app, _ = make_checked_application("app", (0, 1, 2, 3))
        sched.submit(app)
        sched.context_switch_big(current=None)
        assert len(device.ops_of("b.hook")) == 4
        # Re-dispatch: context restore, no re-hooking.
        sched.submit(app)
        app.state = TaskState.READY
        sched.context_switch_big(current=None)
        assert len(device.ops_of("b.hook")) == 4

    def test_hook_targets_match_checker_index(self):
        device, sched = self.make()
        app, _ = make_checked_application("app", (1, 3))
        sched.submit(app)
        sched.context_switch_big(current=None)
        assert device.hooks == {1: 0, 3: 0}

    def test_checking_enabled_after_switch(self):
        device, sched = self.make()
        sched.submit(Task("plain"))
        sched.context_switch_big(current=None)
        assert device.checking_enabled
        assert sched.interrupts_enabled

    def test_algorithm2_checker_sets_check_mode(self):
        device, sched = self.make()
        checker = Task("chk", kind=TaskKind.CHECKER, pinned_core=2)
        sched.context_switch_little(2, current=None, next_task=checker)
        assert device.modes[2] == MODE_CHECK

    def test_algorithm2_app_sets_application_mode(self):
        device, sched = self.make()
        device.l_mode(1, MODE_CHECK)
        other = Task("other")
        sched.context_switch_little(1, current=None, next_task=other)
        assert device.modes[1] == MODE_APPLICATION

    def test_checker_pinning_enforced(self):
        device, sched = self.make()
        checker = Task("chk", kind=TaskKind.CHECKER, pinned_core=0)
        with pytest.raises(SimulationError):
            sched.context_switch_little(3, current=None, next_task=checker)

    def test_round_robin_fairness(self):
        device, sched = self.make()
        a, b = Task("a"), Task("b")
        sched.submit(a)
        sched.submit(b)
        first = sched.context_switch_big(current=None)
        second = sched.context_switch_big(current=first)
        assert {first.name, second.name} == {"a", "b"}


class TestSyscalls:
    def test_privileged_op_requires_kernel(self):
        kernel = KernelInterface(MeekDevice())
        with pytest.raises(PrivilegeError):
            kernel.b_check(CHECK_ENABLE, kernel_mode=False)

    def test_syscall_path_allows(self):
        device = MeekDevice()
        kernel = KernelInterface(device)
        kernel.syscall("b.hook", 0, 2)
        assert device.hooks == {2: 0}
        assert kernel.syscalls == 1

    def test_unknown_syscall_rejected(self):
        kernel = KernelInterface(MeekDevice())
        with pytest.raises(PrivilegeError):
            kernel.syscall("l.teleport", 1)

    def test_bad_core_rejected(self):
        kernel = KernelInterface(MeekDevice(num_little_cores=2))
        with pytest.raises(SimulationError):
            kernel.syscall("l.mode", 7, MODE_CHECK)


class TestPageFaultScenario:
    def test_buggy_mode_deadlocks(self):
        result = PageFaultScenario(one_instruction_behind=False).run()
        assert result.deadlocked
        assert "page_lock" in result.cycle_description
        assert "LSL full" in result.cycle_description

    def test_fixed_mode_completes(self):
        result = PageFaultScenario(one_instruction_behind=True).run()
        assert not result.deadlocked
        assert result.main_progress == result.checker_progress

    def test_fixed_mode_checker_never_faults(self):
        result = PageFaultScenario(one_instruction_behind=True).run()
        faults = [entry for entry in result.timeline
                  if "FAULT" in entry[2] or "fault" in entry[2]]
        assert faults == []

    def test_raise_on_deadlock(self):
        with pytest.raises(DeadlockError):
            PageFaultScenario(one_instruction_behind=False).run(
                raise_on_deadlock=True)

    def test_deadlock_robust_to_parameters(self):
        for capacity in (4, 8, 16):
            result = PageFaultScenario(one_instruction_behind=False,
                                       lsl_capacity=capacity).run()
            assert result.deadlocked, f"capacity={capacity}"

    def test_fix_robust_to_parameters(self):
        for capacity in (4, 8, 16):
            result = PageFaultScenario(one_instruction_behind=True,
                                       lsl_capacity=capacity).run()
            assert not result.deadlocked, f"capacity={capacity}"
