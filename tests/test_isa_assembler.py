"""Unit tests for the assembler and program container."""

import pytest

from repro.common.errors import AssemblerError, SimulationError
from repro.isa import assemble
from repro.isa.instructions import Instruction


class TestBasicAssembly:
    def test_simple_add(self):
        program = assemble("add x1, x2, x3")
        assert program.instructions == [Instruction("add", rd=1, rs1=2, rs2=3)]

    def test_abi_names(self):
        program = assemble("add ra, sp, gp")
        assert program.instructions == [Instruction("add", rd=1, rs1=2, rs2=3)]

    def test_immediate_forms(self):
        program = assemble("addi t0, t0, -7")
        instr = program.instructions[0]
        assert instr.imm == -7

    def test_hex_immediate(self):
        program = assemble("addi t0, zero, 0x7f")
        assert program.instructions[0].imm == 0x7F

    def test_load_store_operands(self):
        program = assemble("""
            ld a0, 8(sp)
            sd a0, -16(sp)
        """)
        load, store = program.instructions
        assert (load.rd, load.rs1, load.imm) == (10, 2, 8)
        assert (store.rs2, store.rs1, store.imm) == (10, 2, -16)

    def test_comments_ignored(self):
        program = assemble("""
            # full-line comment
            add x1, x2, x3  // trailing comment
            add x4, x5, x6  # other comment style
        """)
        assert len(program) == 2

    def test_fp_registers(self):
        program = assemble("fadd.d ft0, fa0, fs1")
        instr = program.instructions[0]
        assert (instr.rd, instr.rs1, instr.rs2) == (0, 10, 9)

    def test_csr_by_name(self):
        program = assemble("csrrw a0, mstatus, a1")
        assert program.instructions[0].imm == 0x300

    def test_meek_instructions(self):
        program = assemble("""
            b.hook a0, a1
            b.check a0
            l.mode a0, a1
            l.record sp
            l.apply a0
            l.jal a0
            l.rslt a0
        """)
        assert [i.op for i in program.instructions] == [
            "b.hook", "b.check", "l.mode", "l.record", "l.apply",
            "l.jal", "l.rslt"]


class TestLabels:
    def test_backward_branch(self):
        program = assemble("""
        loop:
            addi t0, t0, 1
            bne t0, t1, loop
        """)
        branch = program.instructions[1]
        assert branch.imm == -4

    def test_forward_branch(self):
        program = assemble("""
            beq t0, t1, done
            addi t0, t0, 1
        done:
            ecall
        """)
        assert program.instructions[0].imm == 8

    def test_label_on_same_line(self):
        program = assemble("entry: addi t0, zero, 1")
        assert program.pc_of_label("entry") == program.base

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a:\na:\n  nop")

    def test_jal_to_label(self):
        program = assemble("""
            jal ra, func
            ecall
        func:
            ret
        """)
        assert program.instructions[0].imm == 8


class TestPseudoInstructions:
    def test_nop(self):
        program = assemble("nop")
        assert program.instructions[0] == Instruction("addi")

    def test_mv(self):
        program = assemble("mv a0, a1")
        assert program.instructions[0] == Instruction("addi", rd=10, rs1=11)

    def test_li_small(self):
        program = assemble("li a0, 42")
        assert len(program) == 1
        assert program.instructions[0].op == "addi"

    def test_li_large_expands(self):
        program = assemble("li a0, 0x12345")
        assert [i.op for i in program.instructions] == ["lui", "addi"]

    def test_li_large_label_offsets_stay_consistent(self):
        program = assemble("""
            li a0, 0x12345
        target:
            j target
        """)
        # The jump must land on itself even though li expanded to two
        # instructions before it.
        assert program.instructions[2].imm == 0

    def test_ret(self):
        program = assemble("ret")
        instr = program.instructions[0]
        assert (instr.op, instr.rd, instr.rs1, instr.imm) == ("jalr", 0, 1, 0)

    def test_beqz(self):
        program = assemble("""
        top:
            beqz t0, top
        """)
        instr = program.instructions[0]
        assert (instr.op, instr.rs2) == ("beq", 0)


class TestErrors:
    def test_unknown_instruction(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate x1, x2")

    def test_unknown_register(self):
        with pytest.raises(AssemblerError):
            assemble("add x1, x2, x99")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("add x1, x2")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError):
            assemble("ld a0, a1")

    def test_bad_immediate(self):
        with pytest.raises(AssemblerError):
            assemble("addi x1, x2, banana")


class TestProgram:
    def test_fetch_by_pc(self):
        program = assemble("add x1, x2, x3\nadd x4, x5, x6")
        assert program.fetch(program.base).op == "add"
        assert program.fetch(program.base + 4).rd == 4

    def test_fetch_past_end_returns_none(self):
        program = assemble("nop")
        assert program.fetch(program.base + 4) is None

    def test_fetch_misaligned_raises(self):
        program = assemble("nop")
        with pytest.raises(SimulationError):
            program.fetch(program.base + 2)

    def test_unknown_label_raises(self):
        with pytest.raises(SimulationError):
            assemble("nop").pc_of_label("missing")

    def test_end_pc(self):
        program = assemble("nop\nnop")
        assert program.end_pc == program.base + 8
