"""Slow-vs-fast kernel differential suite.

``REPRO_SLOW_KERNEL=1`` runs the naive decode-per-instruction loops —
the pre-optimization kernel — while the default fast kernel runs the
decoded closure tables and the exec-compiled steppers of
:mod:`repro.perf`.  These tests hold the two kernels **bit-identical**:
every workload profile and a difftest fuzz sample run through both,
asserting equal cycle counts, architectural state, segment structure,
stall attribution, verdicts, and fault-detection latencies.
"""

import pytest

from repro.common.config import default_meek_config
from repro.common.prng import DeterministicRng
from repro.core.faults import CANONICAL_MODEL_SPECS, FaultInjector
from repro.core.system import MeekSystem, run_vanilla
from repro.difftest.golden import run_golden, snapshot
from repro.difftest.progen import generate_fuzz_program
from repro.isa.state import ArchState
from repro.workloads import all_profiles, generate_program, get_profile

PROFILE_NAMES = [profile.name for profile in all_profiles()]


def _set_kernel(monkeypatch, slow):
    monkeypatch.setenv("REPRO_SLOW_KERNEL", "1" if slow else "0")


def _meek_fingerprint(program, cores=2, injector=None):
    """Everything observable from one MEEK + vanilla execution."""
    vanilla = run_vanilla(program)
    config = default_meek_config(num_little_cores=cores)
    result = MeekSystem(config, injector=injector).run(program)
    state = result.big.state
    return {
        "vanilla": (vanilla.cycles, vanilla.instructions,
                    vanilla.predictor_stats, str(vanilla.memory_stats)),
        "meek": (result.cycles, result.instructions, result.drain_cycle),
        "segments": [(s.seg_id, s.start_cycle, s.close_cycle, s.instr_count,
                      s.end_reason) for s in result.segments],
        "verdicts": [(v.ok, v.finish_cycle, v.detect_cycle, v.reason)
                     for v in result.verdicts],
        "stalls": {r.value: c
                   for r, c in result.controller.stall_cycles.items()},
        "controller": str(result.controller.stats()),
        "int_regs": tuple(state.int_regs),
        "fp_regs": tuple(state.fp_regs),
        "pc": state.pc,
        "csrs": tuple(sorted(state.csrs.items())),
        "memory": tuple(sorted(state.memory.snapshot().items())),
        "detections": result.detections,
        "latencies_ns": result.detection_latencies_ns(),
    }


@pytest.mark.parametrize("profile_name", PROFILE_NAMES)
def test_every_workload_profile_bit_identical(profile_name, monkeypatch):
    program = generate_program(get_profile(profile_name),
                               dynamic_instructions=2_000, seed=3)
    _set_kernel(monkeypatch, slow=True)
    slow = _meek_fingerprint(program)
    _set_kernel(monkeypatch, slow=False)
    fast = _meek_fingerprint(program)
    assert slow == fast


@pytest.mark.quick
def test_swaptions_bit_identical_quick(monkeypatch):
    program = generate_program(get_profile("swaptions"),
                               dynamic_instructions=3_000, seed=0)
    _set_kernel(monkeypatch, slow=True)
    slow = _meek_fingerprint(program, cores=4)
    _set_kernel(monkeypatch, slow=False)
    fast = _meek_fingerprint(program, cores=4)
    assert slow == fast


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_fault_injection_latencies_bit_identical(seed, monkeypatch):
    """Injected faults detect at the same cycle on both kernels."""
    program = generate_program(get_profile("dedup"),
                               dynamic_instructions=4_000, seed=seed)

    def fingerprint():
        injector = FaultInjector(DeterministicRng(f"equiv/{seed}"),
                                 rate=0.02)
        fp = _meek_fingerprint(program, cores=2, injector=injector)
        fp["injections"] = [(r.cycle, r.seg_id, r.target.value, r.bit,
                             r.detected, r.latency_cycles)
                            for r in injector.injections]
        return fp

    _set_kernel(monkeypatch, slow=True)
    slow = fingerprint()
    _set_kernel(monkeypatch, slow=False)
    fast = fingerprint()
    assert slow["injections"] == fast["injections"]
    assert slow["latencies_ns"] == fast["latencies_ns"]
    assert slow == fast


@pytest.mark.parametrize("model_spec", CANONICAL_MODEL_SPECS)
def test_every_fault_model_bit_identical_across_kernels(model_spec,
                                                        monkeypatch):
    """Every registered fault model — including the multi-bit, the
    correlated and the permanent stuck-at — injects, detects and
    resolves identically on the fast and slow kernels, across all
    targets (DC-Buffer and fabric hooks included)."""
    program = generate_program(get_profile("ferret"),
                               dynamic_instructions=4_000, seed=11)

    def fingerprint():
        injector = FaultInjector(DeterministicRng(f"equiv/{model_spec}"),
                                 rate=0.02, targets="all",
                                 model=model_spec)
        fp = _meek_fingerprint(program, cores=2, injector=injector)
        fp["injections"] = [(r.cycle, r.seg_id, r.target.value, r.bits,
                             r.detail, r.model, r.permanent, r.detected,
                             r.latency_cycles)
                            for r in injector.injections]
        return fp

    _set_kernel(monkeypatch, slow=True)
    slow = fingerprint()
    _set_kernel(monkeypatch, slow=False)
    fast = fingerprint()
    assert slow["injections"], f"{model_spec}: the campaign must inject"
    assert slow["injections"] == fast["injections"]
    assert slow == fast


@pytest.mark.parametrize("index", range(6))
def test_difftest_fuzz_sample_bit_identical(index, monkeypatch):
    """A fuzz sample executes identically on both kernels (golden and
    the full MEEK pipeline), covering op mixes the workload generator
    never emits."""
    fuzz = generate_fuzz_program(DeterministicRng(f"equiv-fuzz/{index}"))
    program = fuzz.build()

    def run_both():
        golden = run_golden(program, max_instructions=5_000)
        fp = {"golden": (golden.instructions, golden.halted_by,
                         tuple(sorted(snapshot(golden.state)["mem"].items())),
                         tuple(golden.state.int_regs),
                         tuple(golden.state.fp_regs), golden.state.pc)}
        fp.update(_meek_fingerprint(program))
        return fp

    _set_kernel(monkeypatch, slow=True)
    slow = run_both()
    _set_kernel(monkeypatch, slow=False)
    fast = run_both()
    assert slow == fast


def test_meek_extension_ops_replay_bit_identical(monkeypatch):
    """A checked program containing MEEK-extension ops replays through
    the fused checker closures (regression: the replay maker must bind
    a null MEEK handler)."""
    from repro.isa.assembler import assemble

    source = "\n".join(
        ["addi x5, x0, 7", "addi x6, x0, 5"]
        + ["add x7, x5, x6", "l.rslt x8", "sd x7, 0(x0)",
           "ld x9, 0(x0)"] * 30
        + ["ecall"])
    program = assemble(source, name="meek-ops")

    _set_kernel(monkeypatch, slow=True)
    slow = _meek_fingerprint(program)
    _set_kernel(monkeypatch, slow=False)
    fast = _meek_fingerprint(program)
    assert slow == fast


def test_one_system_many_programs_no_stale_replay(monkeypatch):
    """Reusing one MeekSystem across many distinct programs must never
    serve a stale replay table (regression: the per-pipeline cache was
    keyed by id(), which collides after garbage collection)."""
    _set_kernel(monkeypatch, slow=False)
    system = MeekSystem(default_meek_config(num_little_cores=2))
    for index in range(25):
        program = generate_program(get_profile("mcf"),
                                   dynamic_instructions=400,
                                   seed=1000 + index)
        result = system.run(program)
        assert result.all_segments_verified, (
            f"false divergence on program {index}: stale replay table")


def test_controller_subclass_hook_not_bypassed(monkeypatch):
    """A MeekController subclass overriding commit_hook must have its
    override invoked on the fast kernel (regression: the JIT's scalar
    fast path must only engage for the unmodified controller)."""
    from repro.core.controller import MeekController
    from repro.core.system import MeekSystem

    calls = []

    class CountingController(MeekController):
        def commit_hook(self, event):
            calls.append(event.index)
            return super().commit_hook(event)

    _set_kernel(monkeypatch, slow=False)
    program = generate_program(get_profile("mcf"),
                               dynamic_instructions=500, seed=5)
    system = MeekSystem(default_meek_config(num_little_cores=2))
    baseline = system.run(program)

    monkeypatch.setattr("repro.core.system.MeekController",
                        CountingController)
    system = MeekSystem(default_meek_config(num_little_cores=2))
    result = system.run(program)
    assert len(calls) == result.instructions, \
        "the subclass override was bypassed by the JIT fast path"
    assert result.cycles == baseline.cycles


def test_compiled_closures_match_interpreter_per_op(monkeypatch):
    """Every op's compiled closure leaves state and ExecResult fields
    exactly as the interpreted executor does."""
    from repro.isa.instructions import Instruction, SPECS
    from repro.isa.semantics import execute
    from repro.perf.decode import compile_instruction

    rng = DeterministicRng("per-op")
    result_fields = ("next_pc", "taken", "is_load", "is_store", "mem_addr",
                     "mem_size", "mem_value", "csr_addr", "csr_value",
                     "trap", "meek_op", "wrote_int_rd", "wrote_fp_rd",
                     "rd_value")

    def fresh_state():
        state = ArchState(pc=0x1000, priv_kernel=True)
        for i in range(32):
            state.int_regs[i] = rng.bit64() if i else 0
            state.fp_regs[i] = rng.bit64()
        state.memory.store_word(0x8000, 0x1234_5678_9ABC_DEF0)
        return state

    for op, spec in SPECS.items():
        for trial in range(8):
            rd = rng.randint(0, 31)
            rs1 = rng.randint(0, 31)
            rs2 = rng.randint(0, 31)
            if spec.iclass.value in ("load", "store"):
                imm = 8 * rng.randint(0, 8)
                rs1 = 0  # x0 base: keep addresses aligned and in range
                instr = Instruction(op, rd=rd, rs1=rs1, rs2=rs2,
                                    imm=0x8000 + imm)
            elif spec.fmt.value in ("csr", "csri"):
                instr = Instruction(op, rd=rd, rs1=rs1,
                                    imm=rng.randint(0, 64))
            elif spec.fmt.value == "shift":
                instr = Instruction(op, rd=rd, rs1=rs1,
                                    imm=rng.randint(0, 63))
            else:
                instr = Instruction(op, rd=rd, rs1=rs1, rs2=rs2,
                                    imm=4 * rng.randint(-64, 64))
            state_a = fresh_state()
            state_b = state_a.copy(share_memory=False)

            res_a = execute(instr, state_a)
            res_b = compile_instruction(instr)(state_b, None, None)

            for field in result_fields:
                assert getattr(res_a, field) == getattr(res_b, field), (
                    f"{op} trial {trial}: ExecResult.{field} differs")
            assert state_a.int_regs == state_b.int_regs, op
            assert state_a.fp_regs == state_b.fp_regs, op
            assert state_a.pc == state_b.pc, op
            assert state_a.csrs == state_b.csrs, op
            assert (state_a.memory.snapshot()
                    == state_b.memory.snapshot()), op


@pytest.mark.parametrize("timeout", [1, 2, 3, 7, 64])
def test_tiny_checkpoint_timeouts_bit_identical(timeout, monkeypatch):
    """Hook-path elimination edge cases: the inline dormant-commit
    counter must hand control back to the controller on exactly the
    commit that reaches the checkpoint timeout, for any timeout —
    including 1 (every commit closes a segment, the inline path never
    fires) and values small enough that segments close mid-burst."""
    from dataclasses import replace

    program = generate_program(get_profile("hmmer"),
                               dynamic_instructions=1_200, seed=5)
    config = default_meek_config(num_little_cores=2)
    little = config.little_core
    config = replace(config, little_core=replace(
        little, lsl=replace(little.lsl, instruction_timeout=timeout)))

    def fingerprint():
        result = MeekSystem(config).run(program)
        return ([(s.seg_id, s.instr_count, s.end_reason, s.close_cycle)
                 for s in result.segments],
                result.cycles, str(result.controller.stats()))

    _set_kernel(monkeypatch, slow=False)
    fast = fingerprint()
    _set_kernel(monkeypatch, slow=True)
    assert fast == fingerprint()


def test_checking_disabled_bit_identical(monkeypatch):
    """With the DEU off the fast kernel absorbs every commit inline
    (unbounded budget); timing must still match the slow kernel."""
    from dataclasses import replace

    program = generate_program(get_profile("dedup"),
                               dynamic_instructions=1_500, seed=2)
    config = replace(default_meek_config(num_little_cores=2),
                     checking_enabled=False)

    def run():
        result = MeekSystem(config).run(program)
        return (result.cycles, result.instructions, len(result.segments),
                tuple(result.big.state.int_regs))

    _set_kernel(monkeypatch, slow=False)
    fast = run()
    _set_kernel(monkeypatch, slow=True)
    assert fast == run()


def test_jit_makers_compile_for_every_op():
    """Every op in the ISA compiles in all stepper modes."""
    from repro.isa.instructions import SPECS
    from repro.perf import jit

    for op in SPECS:
        for mode in ("lean", "hooked", "fast"):
            assert jit._big_maker(op, mode) is not None
        assert jit._golden_maker(op) is not None
        assert jit._replay_maker(op) is not None


def test_slow_kernel_env_toggle(monkeypatch):
    from repro.perf.decode import slow_kernel_enabled

    monkeypatch.delenv("REPRO_SLOW_KERNEL", raising=False)
    assert not slow_kernel_enabled()
    monkeypatch.setenv("REPRO_SLOW_KERNEL", "0")
    assert not slow_kernel_enabled()
    monkeypatch.setenv("REPRO_SLOW_KERNEL", "1")
    assert slow_kernel_enabled()
