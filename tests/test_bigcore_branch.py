"""Unit tests for the TAGE-style branch predictor."""

from repro.bigcore.branch import BranchPredictor
from repro.common.config import BigCoreConfig


def make_predictor():
    return BranchPredictor(BigCoreConfig())


class TestDirectionPrediction:
    def test_learns_always_taken(self):
        p = make_predictor()
        outcomes = [p.predict_and_update(0x1000, True, target=0x2000)
                    for _ in range(50)]
        # After warmup, the branch is predicted correctly.
        assert outcomes[-10:] == ["correct"] * 10

    def test_learns_always_not_taken(self):
        p = make_predictor()
        outcomes = [p.predict_and_update(0x1000, False) for _ in range(50)]
        assert outcomes[-10:] == ["correct"] * 10

    def test_learns_short_pattern(self):
        # T T T N repeating: the tagged tables capture it.
        p = make_predictor()
        outcomes = []
        for i in range(400):
            taken = (i % 4) != 3
            outcomes.append(p.predict_and_update(0x1000, taken,
                                                 target=0x2000 if taken
                                                 else None))
        tail = outcomes[-100:]
        accuracy = tail.count("correct") / len(tail)
        assert accuracy > 0.9

    def test_random_stream_mispredicts(self):
        import random
        rng = random.Random(1)
        p = make_predictor()
        mispredicts = 0
        for _ in range(600):
            taken = rng.random() < 0.5
            out = p.predict_and_update(0x1000, taken,
                                       target=0x2000 if taken else None)
            mispredicts += out == "mispredict"
        # Should hover near 50%; definitely not learnable.
        assert mispredicts > 150

    def test_independent_sites(self):
        p = make_predictor()
        for _ in range(60):
            p.predict_and_update(0x1000, True, target=0x2000)
            p.predict_and_update(0x3000, False)
        assert p.predict_and_update(0x1000, True, target=0x2000) == "correct"
        assert p.predict_and_update(0x3000, False) == "correct"


class TestBtb:
    def test_cold_taken_branch_is_bubble_not_mispredict(self):
        p = make_predictor()
        # Train direction first with the same target so the direction
        # is right but the BTB is evicted.
        for _ in range(10):
            p.predict_and_update(0x1000, True, target=0x2000)
        # Thrash the BTB with many other branches.
        for i in range(BigCoreConfig().btb_entries + 10):
            p.predict_and_update(0x100000 + i * 8, True,
                                 target=0x200000 + i * 8)
        outcome = p.predict_and_update(0x1000, True, target=0x2000)
        assert outcome == "btb_bubble"

    def test_btb_capacity_enforced(self):
        p = make_predictor()
        for i in range(600):
            p.predict_and_update(0x1000 + i * 8, True, target=0x2000)
        assert len(p._btb) <= BigCoreConfig().btb_entries


class TestRas:
    def test_call_return_pairs(self):
        p = make_predictor()
        p.predict_call(0x1000, 0x1004)
        assert p.predict_return(0x5000, 0x1004)

    def test_nested_calls(self):
        p = make_predictor()
        p.predict_call(0x1000, 0x1004)
        p.predict_call(0x2000, 0x2004)
        assert p.predict_return(0x6000, 0x2004)
        assert p.predict_return(0x7000, 0x1004)

    def test_wrong_return_mispredicts(self):
        p = make_predictor()
        p.predict_call(0x1000, 0x1004)
        assert not p.predict_return(0x5000, 0x9999)
        assert p.ras_mispredicts == 1

    def test_empty_ras_mispredicts(self):
        p = make_predictor()
        assert not p.predict_return(0x5000, 0x1004)

    def test_ras_overflow_drops_oldest(self):
        config = BigCoreConfig()
        p = BranchPredictor(config)
        for i in range(config.ras_entries + 5):
            p.predict_call(0x1000 + 8 * i, 0x1004 + 8 * i)
        # The newest return addresses still predict correctly.
        assert p.predict_return(0x5000,
                                0x1004 + 8 * (config.ras_entries + 4))


class TestIndirect:
    def test_learns_stable_target(self):
        p = make_predictor()
        p.predict_indirect(0x1000, 0x4000)
        assert p.predict_indirect(0x1000, 0x4000)

    def test_changed_target_mispredicts(self):
        p = make_predictor()
        p.predict_indirect(0x1000, 0x4000)
        assert not p.predict_indirect(0x1000, 0x5000)


class TestStats:
    def test_rate_computation(self):
        p = make_predictor()
        for _ in range(10):
            p.predict_and_update(0x1000, True, target=0x2000)
        stats = p.stats()
        assert stats["branches"] == 10
        assert 0.0 <= stats["mispredict_rate"] <= 1.0
