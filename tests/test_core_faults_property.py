"""Property battery for the fault-model layer.

The invariants every :class:`~repro.core.faults.FaultModel` must hold,
checked across the canonical model sweep rather than one model at a
time:

* upset models (single/burst/correlated) are involutions — applying
  the same flip twice restores the word;
* planned bit positions always land inside the declared word width
  (and PC flips inside the 32-bit PC window), whatever the RNG draws;
* faults only ever touch the *transmitted* copies — the big core's
  architectural state after a saturated campaign is bit-identical to
  an uninjected run;
* the segment guard gap holds for every model, and a permanent model
  arms exactly once;
* two injectors built from equal RNG keys emit identical
  :class:`~repro.core.faults.InjectionRecord` streams;
* a target set with no candidates for an injection point makes that
  point a no-op (regression: the weighted choice used to index an
  empty draw and raise ``IndexError``).
"""

import pytest

from repro.common.errors import ConfigError
from repro.common.prng import DeterministicRng
from repro.core.faults import (
    ALL_TARGET_WEIGHTS,
    CANONICAL_MODEL_SPECS,
    DEFAULT_TARGET_WEIGHTS,
    FaultInjector,
    FaultTarget,
    PC_BIT_HI,
    PC_BIT_LO,
    force_bits,
    parse_fault_model,
    parse_fault_targets,
)
from repro.fabric.packets import (
    Packet,
    PacketKind,
    RuntimeEntry,
    RuntimeKind,
    StatusSnapshot,
)

UPSET_SPECS = ("single", "burst:width=3", "correlated:span=2")


def make_entry(seq=0, addr=0x1000, data=0xDEAD_BEEF):
    return RuntimeEntry(RuntimeKind.LOAD, addr, data, 8, seq=seq)


def make_snapshot(seg_id=0, pc=0x2000):
    return StatusSnapshot(seg_id, seg_id, pc,
                          [0x1111 * i for i in range(32)],
                          [0x2222 * i for i in range(32)], {})


def make_status_packet(seg_id=0):
    return Packet(PacketKind.STATUS, make_snapshot(seg_id), seg_id,
                  created_cycle=0, dests=(1,))


def drive(injector, segments, per_segment_packets=2):
    """Offer runtime + status + dcbuf + fabric packets over many
    segments; returns the record stream as comparable tuples."""
    cycle = 0
    for seg_id in range(segments):
        for _ in range(per_segment_packets):
            injector.maybe_inject_runtime(make_entry(seq=cycle), cycle,
                                          seg_id)
            cycle += 1
        injector.maybe_inject_dcbuf(make_entry(seq=cycle), cycle, seg_id)
        cycle += 1
        injector.maybe_inject_status(make_snapshot(seg_id), cycle, seg_id)
        cycle += 1
        injector.maybe_inject_fabric(make_status_packet(seg_id), cycle)
        cycle += 1
    return [(r.cycle, r.seg_id, r.target, r.bit, r.bits, r.detail,
             r.model, r.permanent) for r in injector.injections]


# -- satellite regression: restricted target sets ---------------------------


@pytest.mark.quick
class TestRestrictedTargets:
    """A target mix that excludes an injection point must make that
    point return ``None`` — never raise on an empty candidate list."""

    def test_status_only_runtime_path_is_noop(self):
        injector = FaultInjector(DeterministicRng(1), rate=1.0,
                                 targets="status")
        entry = make_entry()
        for cycle in range(20):
            assert injector.maybe_inject_runtime(entry, cycle, cycle) \
                is None
        assert entry.addr == 0x1000 and entry.data == 0xDEAD_BEEF
        assert injector.injections == []

    def test_runtime_only_status_path_is_noop(self):
        injector = FaultInjector(DeterministicRng(1), rate=1.0,
                                 targets="runtime")
        snap = make_snapshot()
        baseline = (snap.pc, snap.int_regs, snap.fp_regs)
        for cycle in range(20):
            assert injector.maybe_inject_status(snap, cycle, cycle) is None
        assert (snap.pc, snap.int_regs, snap.fp_regs) == baseline

    def test_single_target_dict_other_paths_noop(self):
        # The original failing shape: an explicit one-target dict.
        injector = FaultInjector(DeterministicRng(2), rate=1.0,
                                 targets={FaultTarget.STATUS_PC: 1})
        assert injector.maybe_inject_runtime(make_entry(), 0, 0) is None
        assert injector.maybe_inject_dcbuf(make_entry(), 1, 0) is None
        assert injector.maybe_inject_fabric(make_status_packet(0), 2) \
            is None
        record = injector.maybe_inject_status(make_snapshot(), 3, 0)
        assert record is not None and record.target is FaultTarget.STATUS_PC

    def test_default_targets_exclude_dcbuf_and_fabric(self):
        injector = FaultInjector(DeterministicRng(3), rate=1.0)
        assert not injector.wants_dcbuf
        assert not injector.wants_fabric
        for cycle in range(20):
            assert injector.maybe_inject_dcbuf(make_entry(), cycle,
                                               cycle) is None
            assert injector.maybe_inject_fabric(
                make_status_packet(cycle), cycle) is None

    def test_fabric_ignores_runtime_packets(self):
        injector = FaultInjector(DeterministicRng(4), rate=1.0,
                                 targets="fabric")
        packet = Packet(PacketKind.RUNTIME, make_entry(), 0,
                        created_cycle=0, dests=(1,))
        assert injector.maybe_inject_fabric(packet, 0) is None


# -- model-plane properties -------------------------------------------------


@pytest.mark.quick
@pytest.mark.parametrize("spec", UPSET_SPECS)
def test_upset_models_are_involutions(spec):
    model = parse_fault_model(spec)
    rng = DeterministicRng(f"involution/{spec}")
    for _ in range(200):
        value = rng.bit64()
        bits = model.plan_bits(rng, 64)
        corrupted = model.apply(value, bits)
        assert corrupted != value  # a flip is never a no-op
        assert model.apply(corrupted, bits) == value


@pytest.mark.quick
@pytest.mark.parametrize("spec", CANONICAL_MODEL_SPECS)
def test_planned_bits_stay_inside_word(spec):
    model = parse_fault_model(spec)
    rng = DeterministicRng(f"bounds/{spec}")
    for _ in range(300):
        bits = model.plan_bits(rng, 64)
        assert bits, "a plan always names at least one bit"
        assert all(0 <= bit < 64 for bit in bits)
        assert list(bits) == sorted(bits)
        pc_bits = model.plan_pc_bits(rng)
        assert all(PC_BIT_LO <= bit <= PC_BIT_HI for bit in pc_bits)


@pytest.mark.quick
def test_burst_is_contiguous_and_respects_narrow_words():
    model = parse_fault_model("burst:width=5")
    rng = DeterministicRng("burst/narrow")
    for width in (3, 5, 8, 64):
        for _ in range(100):
            bits = model.plan_bits(rng, width)
            assert len(bits) == min(5, width)
            assert all(0 <= bit < width for bit in bits)
            assert bits == tuple(range(bits[0], bits[0] + len(bits)))


@pytest.mark.quick
def test_force_bits_is_idempotent_not_involutive():
    rng = DeterministicRng("stuck")
    for _ in range(100):
        value = rng.bit64()
        bits = (rng.bit_index(64),)
        for level in (0, 1):
            once = force_bits(value, bits, level)
            assert force_bits(once, bits, level) == once
            assert (once >> bits[0]) & 1 == level


@pytest.mark.quick
def test_model_and_target_spec_validation():
    for bad in ("burst:width=0", "burst:width=65", "correlated:span=1",
                "correlated:span=33", "stuckat:value=2", "stuckat:bit=64",
                "nosuchmodel", "burst:width", "burst:width=three",
                "single:width=2"):
        with pytest.raises(ConfigError):
            parse_fault_model(bad)
    for bad in ("nosuchgroup", "runtime.nosuch", ",,"):
        with pytest.raises(ConfigError):
            parse_fault_targets(bad)
    assert parse_fault_targets(None) == DEFAULT_TARGET_WEIGHTS
    assert parse_fault_targets("default") == DEFAULT_TARGET_WEIGHTS
    assert parse_fault_targets("all") == ALL_TARGET_WEIGHTS
    assert set(parse_fault_targets("dcbuf,fabric")) == {
        FaultTarget.DCBUF_RUNTIME, FaultTarget.FABRIC_STATUS}
    assert set(parse_fault_targets("runtime.addr")) == {
        FaultTarget.RUNTIME_ADDR}


@pytest.mark.quick
def test_canonical_specs_round_trip():
    for spec in CANONICAL_MODEL_SPECS:
        model = parse_fault_model(spec)
        assert model.spec == spec
        assert parse_fault_model(model.spec).spec == spec


# -- injector-plane properties ----------------------------------------------


@pytest.mark.quick
@pytest.mark.parametrize("spec", CANONICAL_MODEL_SPECS)
def test_guard_gap_invariant(spec):
    injector = FaultInjector(DeterministicRng(f"gap/{spec}"), rate=1.0,
                             targets="all", segment_gap=2, model=spec)
    records = drive(injector, segments=120)
    if parse_fault_model(spec).permanent:
        assert len(records) == 1, "a permanent fault arms exactly once"
        return
    assert records, "rate=1.0 over 120 segments must inject"
    seg_ids = [record[1] for record in records]
    assert all(b - a > 2 for a, b in zip(seg_ids, seg_ids[1:]))


@pytest.mark.quick
@pytest.mark.parametrize("spec", CANONICAL_MODEL_SPECS)
def test_equal_rng_keys_equal_record_streams(spec):
    def stream():
        rng = DeterministicRng("determinism").fork(spec)
        injector = FaultInjector(rng, rate=0.3, targets="all", model=spec)
        return drive(injector, segments=80)

    assert stream() == stream()


@pytest.mark.quick
def test_forked_streams_are_independent():
    parent = DeterministicRng("independence")
    records_a = drive(FaultInjector(parent.fork("a"), rate=0.5), 60)
    # Draining the sibling stream first must not change fork("a").
    parent2 = DeterministicRng("independence")
    drive(FaultInjector(parent2.fork("b"), rate=0.5), 60)
    assert drive(FaultInjector(parent2.fork("a"), rate=0.5), 60) \
        == records_a


@pytest.mark.quick
def test_stuckat_forces_every_later_runtime_packet():
    injector = FaultInjector(DeterministicRng(7), rate=1.0,
                             targets={FaultTarget.RUNTIME_DATA: 1},
                             model="stuckat:bit=5,value=1")
    first = make_entry(data=0)
    record = injector.maybe_inject_runtime(first, 0, 0)
    assert record is not None and record.permanent
    assert first.data == 1 << 5
    for seg_id in range(1, 10):
        entry = make_entry(data=0, addr=0x40)
        assert injector.maybe_inject_runtime(entry, seg_id, seg_id) is None
        assert entry.data == 1 << 5, "the stuck line persists"
        assert entry.addr == 0x40, "only the faulted field is forced"
    assert len(injector.injections) == 1


@pytest.mark.quick
def test_stuckat_pc_forces_every_later_snapshot():
    injector = FaultInjector(DeterministicRng(8), rate=1.0,
                             targets={FaultTarget.STATUS_PC: 1},
                             model="stuckat:bit=4,value=1")
    record = injector.maybe_inject_status(make_snapshot(pc=0x2000), 0, 0)
    assert record is not None
    snap = make_snapshot(seg_id=3, pc=0x2000)
    assert injector.maybe_inject_status(snap, 30, 3) is None
    assert snap.pc == 0x2000 | (1 << 4)


@pytest.mark.quick
def test_permanent_resolution_matches_any_later_segment():
    injector = FaultInjector(DeterministicRng(9), rate=1.0,
                             targets={FaultTarget.RUNTIME_DATA: 1},
                             model="stuckat:bit=0,value=1")
    injector.maybe_inject_runtime(make_entry(data=0), 100, 2)
    # Detection far past seg+1: only a permanent record may claim it.
    injector.resolve_detections([(9, 900, "store-data-mismatch")])
    assert injector.injections[0].detected
    assert injector.injections[0].latency_cycles == 800


@pytest.mark.quick
def test_correlated_span_hits_adjacent_words_same_bit():
    injector = FaultInjector(DeterministicRng(10), rate=1.0,
                             targets={FaultTarget.STATUS_INT_REG: 1},
                             model="correlated:span=3")
    snap = make_snapshot()
    baseline = snap.int_regs
    record = injector.maybe_inject_status(snap, 0, 0)
    assert record is not None
    flipped = [i for i in range(32) if snap.int_regs[i] != baseline[i]]
    assert 2 <= len(flipped) <= 3  # 2 only when the span clips at x31
    assert flipped == list(range(flipped[0], flipped[0] + len(flipped)))
    masks = {snap.int_regs[i] ^ baseline[i] for i in flipped}
    assert len(masks) == 1, "the same bit line crosses adjacent words"


@pytest.mark.quick
def test_correlated_runtime_record_hits_addr_and_data():
    injector = FaultInjector(DeterministicRng(11), rate=1.0,
                             targets="runtime", model="correlated:span=2")
    entry = make_entry()
    record = injector.maybe_inject_runtime(entry, 0, 0)
    assert record is not None
    assert entry.addr != 0x1000 and entry.data != 0xDEAD_BEEF
    assert (entry.addr ^ 0x1000) == (entry.data ^ 0xDEAD_BEEF)


@pytest.mark.quick
def test_dcbuf_and_fabric_records_carry_their_structures():
    injector = FaultInjector(DeterministicRng(12), rate=1.0,
                             targets="dcbuf,fabric")
    assert injector.wants_dcbuf and injector.wants_fabric
    record = injector.maybe_inject_dcbuf(make_entry(), 0, 0)
    assert record is not None
    assert record.structure == "dcbuf.runtime"
    assert record.detail.startswith("dcbuf:")
    record = injector.maybe_inject_fabric(make_status_packet(5), 50)
    assert record is not None
    assert record.structure == "fabric.status"
    assert record.detail.startswith("fabric:x")
    assert record.seg_id == 5


# -- system-plane property: the big core is never disturbed -----------------


@pytest.mark.parametrize("spec", CANONICAL_MODEL_SPECS)
def test_architectural_state_untouched_by_saturated_campaign(spec):
    """Sec. V-B: faults land on the forwarded copies only.  Even a
    saturated campaign (every eligible packet corrupted, all targets)
    leaves the big core's final architectural state bit-identical to
    an uninjected run."""
    from repro.common.config import default_meek_config
    from repro.core.system import MeekSystem
    from repro.workloads import generate_program, get_profile

    program = generate_program(get_profile("dedup"),
                               dynamic_instructions=2_000, seed=13)
    config = default_meek_config(num_little_cores=2)

    def final_state(injector):
        result = MeekSystem(config, injector=injector).run(program)
        state = result.big.state
        return (tuple(state.int_regs), tuple(state.fp_regs), state.pc,
                tuple(sorted(state.csrs.items())),
                tuple(sorted(state.memory.snapshot().items())))

    clean = final_state(None)
    injector = FaultInjector(DeterministicRng(f"arch/{spec}"), rate=1.0,
                             targets="all", model=spec)
    assert final_state(injector) == clean
    assert injector.injections, "the saturated campaign did inject"
