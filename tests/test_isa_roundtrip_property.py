"""Property tests: assemble → encode → decode → re-assemble.

Randomized instruction streams (and exhaustive boundary immediates)
check two inverses of the ISA layer:

* ``decode(encode(instr)) == instr`` for every operation, over the
  field ranges the assembler can produce;
* ``assemble(render(instr))`` reproduces the instruction, and a whole
  disassembled program re-assembles to an identical instruction list.

Hand-rolled property style (seeded :class:`DeterministicRng` driving
many cases) — the container has no hypothesis, and determinism is a
feature here: a failure prints a reproducible case.
"""

import pytest

from repro.common.prng import DeterministicRng
from repro.difftest.disasm import disassemble, render
from repro.difftest.progen import generate_fuzz_program
from repro.isa.assembler import assemble
from repro.isa.encoding import decode, encode
from repro.isa.instructions import SPECS, Fmt, Instruction

CASES_PER_OP = 40


def _reg(rng):
    return rng.randint(0, 31)


def _imm12(rng):
    return rng.randint(-2048, 2047)


#: Per-format random field profiles, matching what the assembler emits
#: (fields a format does not encode stay zero).
_FIELDS = {
    Fmt.R: lambda r: dict(rd=_reg(r), rs1=_reg(r), rs2=_reg(r)),
    Fmt.I: lambda r: dict(rd=_reg(r), rs1=_reg(r), imm=_imm12(r)),
    Fmt.SHIFT: lambda r: dict(rd=_reg(r), rs1=_reg(r),
                              imm=r.randint(0, 63)),
    Fmt.LOAD: lambda r: dict(rd=_reg(r), rs1=_reg(r), imm=_imm12(r)),
    Fmt.S: lambda r: dict(rs1=_reg(r), rs2=_reg(r), imm=_imm12(r)),
    Fmt.B: lambda r: dict(rs1=_reg(r), rs2=_reg(r),
                          imm=2 * r.randint(-2048, 2047)),
    Fmt.U: lambda r: dict(rd=_reg(r), imm=r.randint(0, 0xFFFFF)),
    Fmt.J: lambda r: dict(rd=_reg(r),
                          imm=2 * r.randint(-(1 << 19), (1 << 19) - 1)),
    Fmt.CSR: lambda r: dict(rd=_reg(r), imm=r.randint(0, 0xFFF),
                            rs1=_reg(r)),
    Fmt.CSRI: lambda r: dict(rd=_reg(r), imm=r.randint(0, 0xFFF),
                             rs1=r.randint(0, 31)),
    Fmt.SYS: lambda r: dict(),
    Fmt.FR: lambda r: dict(rd=_reg(r), rs1=_reg(r), rs2=_reg(r)),
    Fmt.FR1: lambda r: dict(rd=_reg(r), rs1=_reg(r)),
    Fmt.FCMP: lambda r: dict(rd=_reg(r), rs1=_reg(r), rs2=_reg(r)),
    Fmt.FMVXD: lambda r: dict(rd=_reg(r), rs1=_reg(r)),
    Fmt.FMVDX: lambda r: dict(rd=_reg(r), rs1=_reg(r)),
    Fmt.M2R: lambda r: dict(rs1=_reg(r), rs2=_reg(r)),
    Fmt.M1R: lambda r: dict(rs1=_reg(r)),
    Fmt.MRD: lambda r: dict(rd=_reg(r)),
}

#: Boundary immediates per format (the random draws rarely hit these).
_BOUNDARY_IMMS = {
    Fmt.I: (-2048, -1, 0, 1, 2047),
    Fmt.LOAD: (-2048, 0, 2047),
    Fmt.S: (-2048, 0, 2047),
    Fmt.SHIFT: (0, 1, 63),
    Fmt.B: (-4096, -2, 0, 2, 4094),
    Fmt.U: (0, 1, 0xFFFFF),
    Fmt.J: (-(1 << 20), -2, 0, 2, (1 << 20) - 2),
    Fmt.CSR: (0, 0x300, 0xFFF),
    Fmt.CSRI: (0, 0x7C0, 0xFFF),
}


def _random_instruction(rng, op):
    return Instruction(op, **_FIELDS[SPECS[op].fmt](rng))


@pytest.mark.quick
def test_encode_decode_roundtrip_every_op():
    rng = DeterministicRng("roundtrip/encode", name="prop")
    for op in sorted(SPECS):
        for _ in range(CASES_PER_OP):
            instr = _random_instruction(rng, op)
            word = encode(instr)
            assert 0 <= word < (1 << 32), (op, hex(word))
            assert decode(word) == instr, (op, hex(word))


def test_encode_decode_roundtrip_boundary_immediates():
    rng = DeterministicRng("roundtrip/boundary", name="prop")
    for op in sorted(SPECS):
        fmt = SPECS[op].fmt
        for imm in _BOUNDARY_IMMS.get(fmt, ()):
            fields = _FIELDS[fmt](rng)
            fields["imm"] = imm
            instr = Instruction(op, **fields)
            assert decode(encode(instr)) == instr, (op, imm)


def test_render_assemble_roundtrip_every_op():
    rng = DeterministicRng("roundtrip/render", name="prop")
    for op in sorted(SPECS):
        for _ in range(CASES_PER_OP):
            instr = _random_instruction(rng, op)
            program = assemble(render(instr))
            assert len(program) == 1, (op, render(instr))
            assert program.instructions[0] == instr, render(instr)


@pytest.mark.quick
def test_fuzz_stream_roundtrips_through_words_and_text():
    """Whole generated programs survive both round-trips."""
    for seed in range(6):
        rng = DeterministicRng(f"roundtrip/stream/{seed}", name="prop")
        program = generate_fuzz_program(rng).build()
        assert len(program) > 50
        for instr in program.instructions:
            assert decode(encode(instr)) == instr, instr
        listing = disassemble(program)
        reassembled = assemble("\n".join(listing), base=program.base)
        assert reassembled.instructions == program.instructions


def test_workload_programs_roundtrip_through_words():
    """The curated workload generator's output round-trips too."""
    from repro.workloads import generate_program, get_profile

    program = generate_program(get_profile("dedup"),
                               dynamic_instructions=2_000, seed=3)
    for instr in program.instructions:
        assert decode(encode(instr)) == instr, instr
    listing = disassemble(program)
    reassembled = assemble("\n".join(listing), base=program.base)
    assert reassembled.instructions == program.instructions
