"""Tests for the Nzdc transform and the EA-LockStep baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.area import boom_area_mm2, lockstep_scale_factor
from repro.baselines.lockstep import EaLockstep
from repro.baselines.nzdc import expansion_factor, nzdc_transform, run_nzdc
from repro.bigcore.core import run_program
from repro.common.config import default_meek_config
from repro.isa import assemble
from repro.isa.instructions import InstrClass
from repro.workloads import generate_program, get_profile


def sample_program(name="hmmer", instructions=4000, seed=0):
    return generate_program(get_profile(name),
                            dynamic_instructions=instructions, seed=seed)


class TestNzdcSemantics:
    def test_architectural_state_preserved(self):
        program = sample_program()
        original = run_program(program)
        transformed_result, transformed = run_nzdc(program)
        # All non-shadow registers are bit-identical.  x1 (ra) holds
        # a return address: instruction addresses shift under the
        # transform, so it legitimately differs.
        assert original.state.int_regs[2:28] == \
            transformed_result.state.int_regs[2:28]
        assert original.state.fp_regs[:28] == \
            transformed_result.state.fp_regs[:28]

    @given(seed=st.integers(0, 40))
    @settings(max_examples=8, deadline=None)
    def test_semantics_preserved_across_seeds(self, seed):
        program = sample_program("ferret", instructions=2000, seed=seed)
        original = run_program(program)
        result, _ = run_nzdc(program)
        assert original.state.int_regs[2:28] == result.state.int_regs[2:28]

    def test_memory_state_preserved(self):
        program = assemble("""
            li t0, 0x2000
            li t1, 42
            sd t1, 0(t0)
            sd t1, 8(t0)
            ecall
        """)
        original = run_program(program)
        result, _ = run_nzdc(program)
        assert result.state.memory.load_word(0x2000) == 42
        assert (original.state.memory.snapshot()
                == result.state.memory.snapshot())

    def test_branch_targets_remapped(self):
        program = assemble("""
            li t0, 0
            li t1, 20
        loop:
            add t2, t2, t0
            sd t2, 0(t3)
            addi t0, t0, 1
            bne t0, t1, loop
            ecall
        """)
        transformed = nzdc_transform(program)
        result = run_program(transformed)
        assert result.halted_by == "ecall"
        assert result.state.read_int(7) == sum(range(20))


class TestNzdcStructure:
    def test_expansion_factor_near_two(self):
        program = sample_program()
        transformed = nzdc_transform(program)
        factor = expansion_factor(program, transformed)
        assert 1.8 < factor < 3.0

    def test_alu_duplicated(self):
        program = assemble("add t2, t0, t1\necall")
        transformed = nzdc_transform(program)
        adds = [i for i in transformed.instructions if i.op == "add"]
        assert len(adds) == 2
        assert adds[1].rd == 31  # shadow register

    def test_store_preceded_by_checks(self):
        program = assemble("sd t0, 0(t1)\necall")
        transformed = nzdc_transform(program)
        ops = [i.op for i in transformed.instructions]
        store_at = ops.index("sd")
        assert "bne" in ops[:store_at]
        assert "xor" in ops[:store_at]

    def test_int_load_reloaded_and_checked(self):
        program = assemble("ld t2, 0(t1)\necall")
        transformed = nzdc_transform(program)
        loads = [i for i in transformed.instructions if i.op == "ld"]
        assert len(loads) == 2
        assert loads[1].rd == 31

    def test_branch_gets_operand_check(self):
        program = assemble("""
        top:
            beq t0, t1, top
            ecall
        """)
        transformed = nzdc_transform(program)
        ops = [i.op for i in transformed.instructions]
        assert ops.count("bne") == 1  # the check branch
        assert ops.count("beq") == 1  # the original

    def test_slowdown_meaningful(self):
        program = sample_program()
        original = run_program(program)
        result, _ = run_nzdc(program)
        assert result.cycles > original.cycles * 1.3

    def test_fp_ops_not_duplicated(self):
        program = assemble("fadd.d f1, f2, f3\necall")
        transformed = nzdc_transform(program)
        fadds = [i for i in transformed.instructions if i.op == "fadd.d"]
        assert len(fadds) == 1


class TestEaLockstep:
    def test_scale_factor_in_sensible_range(self):
        factor = lockstep_scale_factor(default_meek_config())
        assert 0.3 < factor < 0.8

    def test_pair_area_matches_meek_budget(self):
        from repro.analysis.area import AreaModel
        system = EaLockstep()
        budget = AreaModel().meek_total_mm2(default_meek_config())
        assert system.pair_area_mm2 == pytest.approx(budget, rel=0.02)

    def test_scaled_core_smaller(self):
        system = EaLockstep()
        assert system.per_core_area_mm2 < boom_area_mm2()

    def test_lockstep_slower_than_vanilla(self):
        program = sample_program()
        vanilla = run_program(program)
        lockstep = EaLockstep().run(program)
        assert lockstep.cycles > vanilla.cycles

    def test_lockstep_functionally_identical(self):
        program = sample_program()
        vanilla = run_program(program)
        lockstep = EaLockstep().run(program)
        assert lockstep.state.int_regs == vanilla.state.int_regs

    def test_more_little_cores_shrink_lockstep_core(self):
        cfg4 = default_meek_config(num_little_cores=4)
        cfg8 = default_meek_config(num_little_cores=8)
        # A larger MEEK budget leaves *more* area per lockstep core.
        assert (lockstep_scale_factor(cfg8)
                > lockstep_scale_factor(cfg4))
