"""Tests for the observability layer (repro.obs)."""

import json
import os
import threading
import time

import pytest

from repro.campaign import (CampaignPoint, CampaignSpec, PointResult,
                            ProgressReporter, ResultStore, run_campaign,
                            task)
from repro.obs.events import (EventLog, event_log, events_enabled,
                              install_event_log, read_events,
                              reset_event_log)
from repro.obs.live import (LiveStatus, load_status, snapshot_from_store,
                            status_path_for)
from repro.obs.metrics import (Counter, Gauge, MetricsRegistry, P2Estimator,
                               Quantile, RateWindow, exact_percentile,
                               get_registry, reset_registry)
from repro.obs.watch import render_snapshot, resolve_status_source, watch

numpy = pytest.importorskip("numpy")


@pytest.fixture(autouse=True)
def _clean_obs_globals(monkeypatch):
    """Each test gets a fresh registry and a disabled event log."""
    monkeypatch.delenv("REPRO_EVENTS", raising=False)
    reset_registry()
    reset_event_log()
    yield
    reset_registry()
    reset_event_log()


# -- P² quantile estimator ------------------------------------------------

def _adversarial_distributions():
    rng = numpy.random.default_rng(1234)
    n = 20_000
    return {
        "uniform": rng.uniform(0.0, 1000.0, n),
        "normal": rng.normal(50.0, 10.0, n),
        "lognormal_heavy_tail": rng.lognormal(3.0, 2.0, n),
        "exponential": rng.exponential(100.0, n),
        "sorted_ascending": numpy.sort(rng.uniform(0.0, 1.0, n)),
        "sorted_descending": numpy.sort(rng.uniform(0.0, 1.0, n))[::-1],
        "bimodal": numpy.concatenate(
            [rng.normal(10.0, 1.0, n // 2),
             rng.normal(1000.0, 5.0, n // 2)]),
        "few_distinct_values": rng.integers(0, 5, n).astype(float),
        "with_outliers": numpy.concatenate(
            [rng.normal(100.0, 5.0, n - 20),
             rng.uniform(1e6, 1e7, 20)]),
    }


class TestP2Estimator:
    @pytest.mark.parametrize("fraction", [0.5, 0.95, 0.99])
    @pytest.mark.parametrize("name",
                             sorted(_adversarial_distributions()))
    def test_tracks_exact_percentile_within_rank_tolerance(self, name,
                                                           fraction):
        """The P² estimate must land within ±5 *rank* points of the
        exact percentile (plus a small value epsilon for distributions
        whose mass collapses the rank interval to a single point)."""
        data = _adversarial_distributions()[name]
        estimator = P2Estimator(fraction)
        for value in data:
            estimator.observe(value)
        got = estimator.value()
        low_rank = max(0.0, fraction - 0.05) * 100.0
        high_rank = min(100.0, (fraction + 0.05) * 100.0)
        low, high = numpy.percentile(data, [low_rank, high_rank])
        epsilon = 1e-9 + 1e-3 * (float(data.max()) - float(data.min()))
        assert low - epsilon <= got <= high + epsilon, (
            f"{name} p{fraction * 100:.0f}: estimate {got} outside "
            f"[{low}, {high}] (exact "
            f"{numpy.percentile(data, fraction * 100)})")

    @pytest.mark.parametrize("count", [1, 2, 3, 4])
    def test_exact_below_five_observations(self, count):
        rng = numpy.random.default_rng(count)
        data = rng.uniform(-50.0, 50.0, count)
        for fraction in (0.5, 0.95, 0.99):
            estimator = P2Estimator(fraction)
            for value in data:
                estimator.observe(value)
            expected = numpy.percentile(data, fraction * 100.0)
            assert estimator.value() == pytest.approx(expected)

    def test_exactly_five_observations_initializes_markers(self):
        estimator = P2Estimator(0.5)
        for value in (5.0, 1.0, 4.0, 2.0, 3.0):
            estimator.observe(value)
        assert estimator.value() == pytest.approx(3.0)

    def test_empty_returns_none(self):
        assert P2Estimator(0.5).value() is None

    def test_constant_stream(self):
        estimator = P2Estimator(0.95)
        for _ in range(1000):
            estimator.observe(7.0)
        assert estimator.value() == pytest.approx(7.0)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            P2Estimator(0.0)
        with pytest.raises(ValueError):
            P2Estimator(1.0)

    def test_exact_percentile_matches_numpy(self):
        rng = numpy.random.default_rng(7)
        data = sorted(rng.uniform(0, 100, 41))
        for fraction in (0.0, 0.25, 0.5, 0.9, 0.95, 1.0):
            assert exact_percentile(data, fraction) == pytest.approx(
                numpy.percentile(data, fraction * 100.0))


class TestQuantile:
    def test_snapshot_fields(self):
        quantile = Quantile()
        quantile.observe_many([10.0, 20.0, 30.0, 40.0])
        snap = quantile.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 10.0
        assert snap["max"] == 40.0
        assert snap["mean"] == pytest.approx(25.0)
        assert set(snap) >= {"p50", "p95", "p99"}

    def test_empty_snapshot_is_count_only(self):
        assert Quantile().snapshot() == {"count": 0}


class TestRateWindow:
    def test_window_rate_tracks_current_pace_not_lifetime(self):
        clock = FakeClock()
        window = RateWindow(window_s=10.0, clock=clock)
        # 50 events/s for 5 seconds, then 1 event/s for 30 seconds:
        for _ in range(250):
            window.tick()
            clock.advance(0.02)
        for _ in range(30):
            window.tick()
            clock.advance(1.0)
        rate = window.rate()
        lifetime = 280 / 35.0
        assert rate == pytest.approx(1.0, rel=0.35)
        assert rate < lifetime / 2  # nowhere near the stale average

    def test_empty_window_is_zero(self):
        assert RateWindow().rate() == 0.0


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- registry -------------------------------------------------------------

class TestRegistry:
    def test_counter_gauge_quantile_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        registry.gauge("g").set(0.5)
        registry.quantile("q").observe(3.0)
        snap = registry.snapshot()
        assert snap["counters"]["a"] == 5
        assert snap["gauges"]["g"] == 0.5
        assert snap["quantiles"]["q"]["count"] == 1

    def test_instruments_are_memoized(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("x") is registry.gauge("x")
        assert registry.quantile("x") is registry.quantile("x")

    def test_process_registry_resets(self):
        get_registry().counter("t").inc()
        reset_registry()
        assert get_registry().counter("t").value == 0

    def test_counter_and_gauge_primitives(self):
        counter = Counter()
        assert counter.inc() == 1 and counter.inc(2) == 3
        gauge = Gauge()
        assert gauge.value is None
        assert gauge.set(9) == 9


# -- event log ------------------------------------------------------------

class TestEventLog:
    def test_disabled_by_default(self):
        assert not events_enabled()
        event_log().emit("ignored")  # must be a no-op, not a crash

    def test_emit_and_read(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path)
        log.emit("alpha", worker=3)
        log.emit("beta", ok=True)
        log.close()
        events = read_events(path)
        assert [e["event"] for e in events] == ["alpha", "beta"]
        assert events[0]["worker"] == 3
        assert events[0]["t"] <= events[1]["t"]  # monotonic clock
        assert all("pid" in e and "wall" in e for e in events)

    def test_install_enables_via_environment(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        install_event_log(path)
        assert events_enabled()
        assert os.environ["REPRO_EVENTS"] == path
        event_log().emit("hello")
        assert read_events(path)[0]["event"] == "hello"

    def test_span_emits_start_end_with_duration(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path)
        with log.span("work", name="x"):
            pass
        start, end = read_events(path)
        assert start["event"] == "work_start"
        assert end["event"] == "work_end"
        assert end["dur_s"] >= 0.0

    def test_corrupt_lines_skipped(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"event": "good"}\n')
            handle.write('{"event": "trunc\n')
            handle.write("not json at all\n")
        assert [e["event"] for e in read_events(path)] == ["good"]

    def test_unwritable_path_never_raises(self):
        log = EventLog("/nonexistent-root-dir/nope/events.jsonl")
        log.emit("dropped")  # must degrade silently
        log.close()


# -- live status ----------------------------------------------------------

def _point_result(index, worker=0, ok=True, latencies=(), injections=0,
                  detected=0, instructions=1000):
    metrics = {}
    if ok:
        metrics = {"instructions": instructions, "cycles": instructions * 2,
                   "injections": injections, "detected": detected,
                   "latencies_ns": list(latencies)}
    return PointResult(point_id=f"p{index}", index=index, ok=ok,
                       metrics=metrics, worker=worker)


class TestLiveStatus:
    def test_aggregates_points(self, tmp_path):
        path = str(tmp_path / "status.json")
        live = LiveStatus("camp", total=3, path=path, jobs=2,
                          publish_interval_s=0.0)
        live.begin()
        live.point(_point_result(0, worker=0, latencies=[100.0, 200.0],
                                 injections=2, detected=2))
        live.point(_point_result(1, worker=1, latencies=[300.0],
                                 injections=1, detected=1))
        live.point(_point_result(2, worker=1, ok=False))
        live.finish()
        snap = load_status(path)
        assert snap["state"] == "finished"
        assert snap["points"] == {"total": 3, "completed": 3, "failed": 1,
                                  "resumed": 0, "corrupt_rows_skipped": 0}
        assert snap["detection"] == {"injections": 3, "detected": 3,
                                     "rate": 1.0}
        assert snap["latency_ns"]["count"] == 3
        assert snap["latency_ns"]["min"] == 100.0
        assert snap["latency_ns"]["max"] == 300.0
        assert snap["totals"]["instructions"] == 2000  # failed adds none
        assert snap["shards"]["0"]["points"] == 1
        assert snap["shards"]["1"]["points"] == 2
        assert snap["shards"]["1"]["failed"] == 1

    def test_begin_publishes_immediately(self, tmp_path):
        path = str(tmp_path / "status.json")
        live = LiveStatus("camp", total=10, path=path)
        live.begin(resumed=4, corrupt_rows_skipped=1)
        snap = load_status(path)
        assert snap["state"] == "running"
        assert snap["points"]["resumed"] == 4
        assert snap["points"]["corrupt_rows_skipped"] == 1

    def test_publish_throttles_but_finish_forces(self, tmp_path):
        path = str(tmp_path / "status.json")
        live = LiveStatus("camp", total=5, path=path,
                          publish_interval_s=3600.0)
        live.begin()
        for i in range(5):
            live.point(_point_result(i))
        # Mid-run points were throttled behind the huge interval:
        assert load_status(path)["points"]["completed"] == 0
        live.finish()
        assert load_status(path)["points"]["completed"] == 5

    def test_publish_failure_is_swallowed(self):
        live = LiveStatus("camp", total=1,
                          path="/nonexistent-root-dir/x/status.json",
                          publish_interval_s=0.0)
        live.begin()
        live.point(_point_result(0))  # must not raise
        live.finish()

    def test_atomic_publication_under_concurrent_reader(self, tmp_path):
        """A reader hammering the status file must never observe a
        torn or half-written snapshot — every successful read parses
        and carries the full schema."""
        path = str(tmp_path / "status.json")
        live = LiveStatus("camp", total=100_000, path=path,
                          publish_interval_s=0.0)
        stop = threading.Event()
        torn = []
        reads = [0]

        def reader():
            while not stop.is_set():
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        text = handle.read()
                except FileNotFoundError:
                    continue
                reads[0] += 1
                try:
                    snap = json.loads(text)
                except ValueError:
                    torn.append(text)
                    continue
                if not ("points" in snap and "throughput" in snap
                        and "shards" in snap):
                    torn.append(text)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 2.0
        index = 0
        while time.monotonic() < deadline:
            live.point(_point_result(index, worker=index % 4,
                                     latencies=[float(index)]))
            index += 1
        stop.set()
        for thread in threads:
            thread.join()
        assert not torn, f"reader saw torn snapshots: {torn[:2]}"
        assert reads[0] > 100  # the race was actually exercised
        assert index > 100

    def test_status_path_for(self):
        assert status_path_for("r.jsonl") == "r.jsonl.status.json"


class TestSnapshotFromStore:
    def test_replays_rows(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        with ResultStore(path=path) as store:
            store.append(_point_result(0, latencies=[5.0], injections=1,
                                       detected=1))
            store.append(_point_result(1, ok=False))
        snap = snapshot_from_store(path)
        assert snap["state"] == "store"
        assert snap["points"]["completed"] == 2
        assert snap["points"]["failed"] == 1
        assert snap["detection"]["injections"] == 1
        assert snap["throughput"]["points_per_s"] is None
        render_snapshot(snap)  # and it renders


# -- executor integration -------------------------------------------------

@task("obs-test-task")
def _obs_test_task(point, campaign_name=""):
    if point.params.get("fail"):
        raise RuntimeError("requested failure")
    return {"instructions": 100, "cycles": 200,
            "injections": 2, "detected": 1, "latencies_ns": [40.0, 60.0]}


def _spec(n, fail_at=()):
    return CampaignSpec(
        name="obs-spec",
        points=[CampaignPoint(task="obs-test-task", workload="w",
                              instructions=100, seed=0,
                              params={"trial": i,
                                      "fail": i in fail_at})
                for i in range(n)])


class TestExecutorIntegration:
    def test_run_campaign_publishes_live_status(self, tmp_path):
        status = str(tmp_path / "status.json")
        live = LiveStatus("obs-spec", total=4, path=status,
                          publish_interval_s=0.0)
        result = run_campaign(_spec(4, fail_at=(2,)), jobs=1, live=live)
        snap = load_status(status)
        assert snap["state"] == "finished"
        assert snap["points"]["completed"] == 4
        assert snap["points"]["failed"] == 1
        assert snap["latency_ns"]["count"] == 6
        assert snap["detection"]["injections"] == 6
        assert not result.all_ok

    def test_events_cover_campaign_lifecycle(self, tmp_path):
        events_path = str(tmp_path / "events.jsonl")
        install_event_log(events_path)
        run_campaign(_spec(3), jobs=1)
        names = [e["event"] for e in read_events(events_path)]
        assert names.count("point_complete") == 3
        assert "campaign_start" in names and "campaign_end" in names
        start = next(e for e in read_events(events_path)
                     if e["event"] == "campaign_start")
        assert start["points"] == 3 and start["campaign"] == "obs-spec"

    def test_sharded_campaign_emits_worker_events(self, tmp_path):
        events_path = str(tmp_path / "events.jsonl")
        install_event_log(events_path)
        run_campaign(_spec(6), jobs=2)
        names = [e["event"] for e in read_events(events_path)]
        assert names.count("shard_spawn") == 2
        assert names.count("point_complete") == 6
        assert "chunk_lease" in names
        assert "worker_heartbeat" in names
        assert "pool_close" in names

    def test_corrupt_resume_rows_counted_and_surfaced(self, tmp_path):
        from repro.campaign import format_summary

        store_path = str(tmp_path / "results.jsonl")
        spec = _spec(3)
        with ResultStore(path=store_path) as store:
            run_campaign(spec, jobs=1, store=store)
        # Damage two rows: one truncated JSON, one wrong shape.
        with open(store_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[0] = lines[0][: len(lines[0]) // 2] + "\n"
        lines.append('{"not": "a result row"}\n')
        with open(store_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.warns(RuntimeWarning):
            result = run_campaign(spec, jobs=1, resume_from=store_path)
        assert result.corrupt_rows_skipped == 2
        assert result.all_ok  # damaged points simply re-ran
        summary = format_summary(
            spec, result.results,
            corrupt_rows_skipped=result.corrupt_rows_skipped)
        assert "corrupt store rows skipped on resume: 2" in summary
        counter = get_registry().counter("store.corrupt_rows_skipped")
        assert counter.value >= 2

    def test_clean_resume_reports_zero_corrupt_rows(self, tmp_path):
        store_path = str(tmp_path / "results.jsonl")
        spec = _spec(2)
        with ResultStore(path=store_path) as store:
            run_campaign(spec, jobs=1, store=store)
        result = run_campaign(spec, jobs=1, resume_from=store_path)
        assert result.corrupt_rows_skipped == 0
        from repro.campaign import format_summary
        summary = format_summary(spec, result.results)
        assert "corrupt" not in summary


# -- progress reporter ----------------------------------------------------

class TestProgressReporter:
    def test_rate_is_windowed_not_lifetime(self, capsys):
        import io

        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(total=300, label="t", stream=stream,
                                    min_interval_s=0.0, rate_window_s=10.0,
                                    clock=clock)
        # 50 pts/s for 5s, then a long tail at 1 pt/s:
        for i in range(250):
            reporter(_point_result(i))
            clock.advance(0.02)
        for i in range(30):
            reporter(_point_result(250 + i))
            clock.advance(1.0)
        last = stream.getvalue().strip().splitlines()[-1]
        rate = float(last.split(" pts/s")[0].rsplit(" ", 1)[-1])
        assert rate < 4.0, f"stale lifetime-average rate shown: {last}"

    def test_counts_routed_through_registry(self):
        import io

        reporter = ProgressReporter(total=2, stream=io.StringIO())
        reporter(_point_result(0))
        reporter(_point_result(1, ok=False))
        registry = get_registry()
        assert registry.counter("campaign.points_completed").value == 2
        assert registry.counter("campaign.points_failed").value == 1

    def test_uses_monotonic_clock_by_default(self):
        import io

        reporter = ProgressReporter(total=1, stream=io.StringIO())
        assert reporter._clock is time.monotonic


# -- watch ----------------------------------------------------------------

class TestWatch:
    def _publish(self, tmp_path, state="running"):
        path = str(tmp_path / "results.jsonl.status.json")
        live = LiveStatus("camp", total=2, path=path,
                          publish_interval_s=0.0)
        live.begin()
        live.point(_point_result(0, latencies=[100.0], injections=1,
                                 detected=1))
        if state == "finished":
            live.point(_point_result(1))
            live.finish()
        else:
            live.publish(force=True)
        return path

    def test_resolve_status_file(self, tmp_path):
        path = self._publish(tmp_path)
        assert resolve_status_source(path) == ("status", path)

    def test_resolve_store_prefers_sibling_status(self, tmp_path):
        status = self._publish(tmp_path)
        store = str(tmp_path / "results.jsonl")
        with ResultStore(path=store) as handle:
            handle.append(_point_result(0))
        assert resolve_status_source(store) == ("status", status)

    def test_resolve_directory_picks_snapshot(self, tmp_path):
        path = self._publish(tmp_path)
        assert resolve_status_source(str(tmp_path)) == ("status", path)

    def test_resolve_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            resolve_status_source(str(tmp_path / "absent.jsonl"))

    def test_watch_once_renders_running_snapshot(self, tmp_path, capsys):
        import io

        path = self._publish(tmp_path)
        stream = io.StringIO()
        assert watch(path, once=True, stream=stream) == 0
        out = stream.getvalue()
        assert "campaign camp — running" in out
        assert "points    : 1/2" in out
        assert "p50" in out and "shard" in out

    def test_watch_follows_until_finished(self, tmp_path):
        import io

        path = self._publish(tmp_path, state="finished")
        stream = io.StringIO()
        assert watch(path, interval_s=0.01, stream=stream) == 0
        assert "finished" in stream.getvalue()

    def test_watch_missing_path_exits_2(self, tmp_path, capsys):
        import io

        code = watch(str(tmp_path / "absent"), once=True,
                     stream=io.StringIO(), max_wait_s=0.0)
        assert code == 2

    def test_render_marks_stale_snapshots(self, tmp_path):
        path = self._publish(tmp_path)
        snap = load_status(path)
        text = render_snapshot(snap, now_unix=snap["updated_unix"] + 120.0)
        assert "[STALE]" in text
