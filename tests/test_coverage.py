"""Coverage-map correctness and artifact bit-identity.

Two layers:

* :class:`~repro.analysis.coverage.CoverageMap` as a data structure —
  bucketing edges, commutative merging, wire-format round trips, the
  persisted JSON being deterministic;
* the campaign-level contract ISSUE 8 cares about: the persisted
  ``<store>.coverage.json`` is **byte-identical** whether the same
  point set ran serially, sharded across workers, through a ``repro
  serve`` master, or resumed from a partial store — and the ``repro
  inject`` / ``repro coverage`` CLI surfaces agree with it.
"""

import json
import os

import pytest

from repro.analysis.coverage import (
    BUCKET_LABELS,
    CoverageMap,
    coverage_from_store,
    coverage_path_for,
    format_coverage,
    latency_bucket,
    load_coverage,
    save_coverage,
)
from repro.campaign import (
    CampaignPoint,
    CampaignSpec,
    ResultStore,
    run_campaign,
)
from repro.obs.live import attach_live, snapshot_from_store
from repro.obs.watch import render_snapshot

SMALL = 2_500


def read_bytes(path):
    with open(path, "rb") as handle:
        return handle.read()


# -- the data structure -----------------------------------------------------


@pytest.mark.quick
class TestCoverageMap:
    def test_bucket_edges(self):
        assert BUCKET_LABELS[latency_bucket(0.0)] == "<100ns"
        assert BUCKET_LABELS[latency_bucket(99.9)] == "<100ns"
        assert BUCKET_LABELS[latency_bucket(100.0)] == "<1us"
        assert BUCKET_LABELS[latency_bucket(999.9)] == "<1us"
        assert BUCKET_LABELS[latency_bucket(1_000.0)] == "<10us"
        assert BUCKET_LABELS[latency_bucket(99_999.9)] == "<100us"
        assert BUCKET_LABELS[latency_bucket(100_000.0)] == ">=100us"
        assert BUCKET_LABELS[latency_bucket(1e9)] == ">=100us"

    def test_observe_and_rates(self):
        coverage = CoverageMap()
        coverage.observe("runtime.addr", "single", True, 50.0)
        coverage.observe("runtime.addr", "single", True, 5_000.0)
        coverage.observe("runtime.addr", "burst:width=3", False)
        cells = coverage.to_cells()
        assert cells["runtime.addr"]["single"] == {
            "detected": 2, "undetected": 0,
            "latency_buckets": [1, 0, 1, 0, 0]}
        assert coverage.totals() == (2, 1)
        rates = coverage.structure_rates()
        assert rates["runtime.addr"] == pytest.approx(2 / 3)

    def test_merge_is_commutative(self):
        a = CoverageMap()
        a.observe("runtime.data", "single", True, 10.0)
        a.observe("status.pc", "single", False)
        b = CoverageMap()
        b.observe("runtime.data", "single", False)
        b.observe("status.int_reg", "burst:width=2", True, 2_000.0)
        ab = CoverageMap().merge(a).merge(b)
        ba = CoverageMap().merge(b).merge(a)
        assert ab.to_cells() == ba.to_cells()

    def test_wire_round_trip(self):
        coverage = CoverageMap()
        coverage.observe("fabric.status", "correlated:span=2", True, 500.0)
        coverage.observe("dcbuf.runtime", "stuckat:value=0", False)
        rebuilt = CoverageMap.from_cells(coverage.to_cells())
        assert rebuilt.to_cells() == coverage.to_cells()

    def test_save_is_deterministic_and_loads_back(self, tmp_path):
        coverage = CoverageMap()
        coverage.observe("runtime.addr", "single", True, 42.0)
        first = str(tmp_path / "a.coverage.json")
        second = str(tmp_path / "b.coverage.json")
        save_coverage(coverage, first)
        save_coverage(coverage, second)
        assert read_bytes(first) == read_bytes(second)
        payload = json.loads(read_bytes(first))
        assert payload["schema"] == 1
        loaded = load_coverage(first)
        assert loaded.to_cells() == coverage.to_cells()

    def test_load_rejects_garbage(self, tmp_path):
        assert load_coverage(str(tmp_path / "missing.json")) is None
        bad = tmp_path / "bad.json"
        bad.write_text("{ not json")
        assert load_coverage(str(bad)) is None
        nocells = tmp_path / "nocells.json"
        nocells.write_text('{"schema": 1}')
        assert load_coverage(str(nocells)) is None

    def test_format_empty_and_populated(self):
        empty = format_coverage(CoverageMap(), title="t")
        assert "no injections recorded" in empty
        coverage = CoverageMap()
        coverage.observe("runtime.addr", "single", True, 50.0)
        report = format_coverage(coverage)
        assert "runtime.addr" in report
        assert "overall" in report and "1/1 detected" in report


# -- campaign-level bit-identity --------------------------------------------


def inject_spec(name="cov", trials=3, model="burst:width=3",
                targets="all", rate=0.05):
    return CampaignSpec(name=name, points=[
        CampaignPoint(
            task="inject", workload="dedup", instructions=SMALL, seed=0,
            params={"rate": rate, "trial": trial, "fault_model": model,
                    "fault_targets": targets,
                    "rng_key": f"cov/{trial}"})
        for trial in range(trials)])


def run_to_coverage(spec, tmp_path, tag, jobs=None, resume_from=None):
    """One campaign with a file store + live status; returns the
    persisted coverage path."""
    store_path = str(tmp_path / f"{tag}.jsonl")
    with ResultStore(path=store_path) as store:
        live = attach_live(spec, jobs or 1, store=store)
        result = run_campaign(spec, jobs=jobs, store=store, live=live,
                              resume_from=resume_from)
    assert result.all_ok
    path = coverage_path_for(store_path)
    assert os.path.exists(path), "a campaign that injected persists"
    return path


class TestCampaignBitIdentity:
    def test_serial_vs_sharded_byte_identical(self, tmp_path):
        serial = run_to_coverage(inject_spec(), tmp_path, "serial")
        sharded = run_to_coverage(inject_spec(), tmp_path, "sharded",
                                  jobs=2)
        assert read_bytes(serial) == read_bytes(sharded)
        assert load_coverage(serial).totals()[0] + \
            load_coverage(serial).totals()[1] > 0

    def test_resume_equals_uninterrupted(self, tmp_path):
        full = run_to_coverage(inject_spec(), tmp_path, "full")
        full_store = str(tmp_path / "full.jsonl")
        # Simulate a campaign killed after one point: a store holding
        # only the first row, then a resume that finishes the rest.
        partial_store = str(tmp_path / "partial.jsonl")
        with open(full_store) as src:
            first_row = src.readline()
        with open(partial_store, "w") as dst:
            dst.write(first_row)
        resumed = run_to_coverage(inject_spec(), tmp_path, "partial",
                                  resume_from=partial_store)
        assert read_bytes(resumed) == read_bytes(full)

    def test_store_replay_matches_persisted_artifact(self, tmp_path):
        persisted = run_to_coverage(inject_spec(), tmp_path, "replay")
        replayed = coverage_from_store(str(tmp_path / "replay.jsonl"))
        assert replayed.to_cells() == load_coverage(persisted).to_cells()

    def test_fault_model_changes_the_map_key(self, tmp_path):
        path = run_to_coverage(inject_spec(model="stuckat:value=0",
                                           targets="runtime"),
                               tmp_path, "stuck")
        cells = load_coverage(path).to_cells()
        models = {model for models in cells.values() for model in models}
        assert models == {"stuckat:value=0"}
        structures = set(cells)
        assert structures <= {"runtime.addr", "runtime.data"}


@pytest.mark.slow
class TestServeBitIdentity:
    def test_serve_submitted_byte_identical_to_serial(self, tmp_path):
        import time

        from repro.perf.service import ExecutionService
        from repro.serve.client import ServeClient
        from repro.serve.master import Master

        def wait_done(client, rid, timeout=60.0):
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                run = client.status(rid)["run"]
                if run["state"] == "done":
                    return run
                assert run["state"] not in ("failed", "cancelled"), run
                time.sleep(0.02)
            raise AssertionError(f"run {rid} never reached done")

        serial = run_to_coverage(inject_spec(), tmp_path, "serial")
        master = Master(state_dir=str(tmp_path / "state"),
                        service=ExecutionService())
        master.start()
        try:
            with ServeClient(master.socket_path) as client:
                submitted = client.submit(inject_spec().to_dict())
                wait_done(client, submitted["rid"])
                served = coverage_path_for(submitted["store"])
                assert os.path.exists(served)
                assert read_bytes(served) == read_bytes(serial)
        finally:
            master.stop()


# -- observability surfaces -------------------------------------------------


class TestCoverageSurfaces:
    def test_watch_snapshot_carries_coverage(self, tmp_path):
        run_to_coverage(inject_spec(trials=2), tmp_path, "watch")
        snap = snapshot_from_store(str(tmp_path / "watch.jsonl"))
        assert snap["coverage"], "the replayed snapshot has rates"
        rendered = render_snapshot(snap)
        assert "coverage  :" in rendered

    def test_cli_inject_then_coverage_report(self, tmp_path, capsys):
        from repro.cli import main

        out_path = str(tmp_path / "cli.jsonl")
        code = main(["inject", "dedup", "--instructions", str(SMALL),
                     "--rate", "0.05", "--fault-model", "burst:width=3",
                     "--fault-targets", "all", "--out", out_path])
        assert code == 0
        assert os.path.exists(coverage_path_for(out_path))
        capsys.readouterr()
        assert main(["coverage", out_path]) == 0
        out = capsys.readouterr().out
        assert "overall" in out and "burst:width=3" in out

    @pytest.mark.quick
    def test_cli_coverage_missing_path_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["coverage", str(tmp_path / "nope.jsonl")]) == 2

    @pytest.mark.quick
    def test_cli_rejects_bad_fault_model(self, capsys):
        from repro.cli import main

        code = main(["inject", "dedup", "--instructions", "500",
                     "--fault-model", "burst:width=0"])
        assert code == 2
