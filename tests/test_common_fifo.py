"""Unit tests for repro.common.fifo."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import FifoError
from repro.common.fifo import DualChannelFifo, Fifo


class TestFifoBasics:
    def test_starts_empty(self):
        f = Fifo(4)
        assert f.empty
        assert not f.full
        assert len(f) == 0

    def test_push_pop_order(self):
        f = Fifo(4)
        f.push(1)
        f.push(2)
        assert f.pop() == 1
        assert f.pop() == 2

    def test_peek_does_not_remove(self):
        f = Fifo(4)
        f.push("a")
        assert f.peek() == "a"
        assert len(f) == 1

    def test_full_push_raises(self):
        f = Fifo(1)
        f.push(1)
        with pytest.raises(FifoError):
            f.push(2)

    def test_empty_pop_raises(self):
        with pytest.raises(FifoError):
            Fifo(1).pop()

    def test_empty_peek_raises(self):
        with pytest.raises(FifoError):
            Fifo(1).peek()

    def test_try_push_reports_full(self):
        f = Fifo(1)
        assert f.try_push(1)
        assert not f.try_push(2)
        assert len(f) == 1

    def test_unbounded(self):
        f = Fifo(None)
        for i in range(1000):
            f.push(i)
        assert not f.full
        assert f.free_slots is None

    def test_zero_capacity_rejected(self):
        with pytest.raises(FifoError):
            Fifo(0)

    def test_drain_all(self):
        f = Fifo(8)
        for i in range(5):
            f.push(i)
        assert f.drain() == [0, 1, 2, 3, 4]
        assert f.empty

    def test_drain_limited(self):
        f = Fifo(8)
        for i in range(5):
            f.push(i)
        assert f.drain(limit=2) == [0, 1]
        assert len(f) == 3

    def test_statistics(self):
        f = Fifo(4)
        f.push(1)
        f.push(2)
        f.pop()
        assert f.total_pushed == 2
        assert f.total_popped == 1
        assert f.high_watermark == 2


class TestFifoProperties:
    @given(st.lists(st.integers(), max_size=50))
    def test_fifo_order_preserved(self, items):
        f = Fifo(None)
        for item in items:
            f.push(item)
        assert f.drain() == items

    @given(st.lists(st.booleans(), max_size=100))
    def test_occupancy_invariant(self, operations):
        f = Fifo(8)
        model = []
        for is_push in operations:
            if is_push and not f.full:
                f.push(len(model))
                model.append(len(model))
            elif not is_push and not f.empty:
                assert f.pop() == model.pop(0)
            assert len(f) == len(model)
            assert len(f) <= 8


class TestDualChannelFifo:
    def test_channels_independent(self):
        buf = DualChannelFifo(2, 2)
        buf.status.push("rcp")
        assert buf.runtime.empty
        assert not buf.status.empty

    def test_can_accept_respects_both(self):
        buf = DualChannelFifo(1, 2)
        assert buf.can_accept(status_packets=1, runtime_packets=2)
        buf.status.push("s")
        assert not buf.can_accept(status_packets=1)
        assert buf.can_accept(runtime_packets=2)

    def test_same_cycle_status_and_runtime(self):
        # The DC-Buffer exists so one commit cycle can produce both
        # packet kinds without stalling (Sec. III-B).
        buf = DualChannelFifo(4, 4)
        assert buf.can_accept(status_packets=1, runtime_packets=1)
        buf.status.push("rcp")
        buf.runtime.push("load")
        assert buf.occupancy() == (1, 1)

    def test_empty_property(self):
        buf = DualChannelFifo(2, 2)
        assert buf.empty
        buf.runtime.push("x")
        assert not buf.empty
