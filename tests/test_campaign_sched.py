"""Unit and property tests for the pure scheduler core.

:mod:`repro.campaign.sched` owns chunk leasing, lease epochs and
expiry, batch-unit grouping, and result folding — with no processes,
sockets, or clocks of its own.  Everything here drives it with plain
function calls: the lease-loss/requeue/straggler story is exercised
deterministically, then a randomized adversary (random interleavings
of lease / partial report / release / expire / stale replays) checks
the core invariant — every point folds exactly once, whatever the
loss pattern.
"""

import random

import pytest

from repro.campaign import CampaignPoint
from repro.campaign.sched import (WORKER_DIED_ERROR, ChunkScheduler,
                                  batch_units, chunk_pending)


def make_pairs(n, task="meek", **params):
    return [(i, CampaignPoint(task=task, workload="w", instructions=100,
                              seed=i, params=dict(params)))
            for i in range(n)]


def row_for(pair, value=None):
    index, point = pair
    return {"point_id": point.point_id, "index": index, "ok": True,
            "metrics": {"value": index if value is None else value},
            "elapsed_s": 0.0, "worker": "t"}


def drain_all(sched, owner="w", value=None):
    """Lease everything and report every row (the happy path)."""
    deliverables = []
    while True:
        chunk = sched.lease(owner)
        if chunk is None:
            break
        for pair in list(chunk.pairs):
            deliverables.extend(
                sched.record(chunk.chunk_id, chunk.epoch,
                             row_for(pair, value)))
    return deliverables


# -- chunking and batch grouping -------------------------------------------

@pytest.mark.quick
def test_chunk_pending_default_targets_four_steals_per_source():
    pending = make_pairs(80)
    chunks = chunk_pending(pending, None, sources=4)
    assert [len(c) for c in chunks] == [5] * 16
    assert [pair for chunk in chunks for pair in chunk] == pending


@pytest.mark.quick
def test_chunk_pending_floors_at_batch_lanes():
    pending = make_pairs(12)
    chunks = chunk_pending(pending, None, sources=8, batch_lanes=8)
    assert all(len(c) >= 8 for c in chunks[:-1])
    assert sum(len(c) for c in chunks) == 12


@pytest.mark.quick
def test_chunk_pending_explicit_size_still_floors():
    chunks = chunk_pending(make_pairs(10), 2, sources=1, batch_lanes=4)
    assert [len(c) for c in chunks] == [4, 4, 2]


def make_inject_pairs(n):
    """Batch-compatible inject pairs: one program, trials differ."""
    return [(i, CampaignPoint(task="inject", workload="w",
                              instructions=100, seed=0,
                              params={"rate": 0.01, "trial": i}))
            for i in range(n)]


@pytest.mark.quick
def test_batch_units_groups_compatible_points_up_to_lanes():
    pairs = make_inject_pairs(5)
    units = batch_units(pairs, lanes=2)
    assert [len(u) for u in units] == [2, 2, 1]
    assert [pair for unit in units for pair in unit] == pairs


@pytest.mark.quick
def test_batch_units_scalar_for_incompatible_or_lanes_one():
    pairs = make_pairs(4)  # meek: batch_group_key is None
    assert [len(u) for u in batch_units(pairs, lanes=4)] == [1, 1, 1, 1]
    inject = make_inject_pairs(4)
    assert [len(u) for u in batch_units(inject, lanes=1)] == [1] * 4


# -- lease / fold happy path -----------------------------------------------

@pytest.mark.quick
def test_lease_fold_roundtrip_collects_every_index():
    pending = make_pairs(17)
    sched = ChunkScheduler(pending, chunk_size=4)
    deliverables = drain_all(sched)
    assert sched.done
    assert sorted(sched.results()) == list(range(17))
    kinds = {kind for kind, _ in deliverables}
    assert kinds == {"result"}
    assert len(deliverables) == 17


@pytest.mark.quick
def test_duplicate_and_unknown_rows_fold_to_nothing():
    pending = make_pairs(3)
    sched = ChunkScheduler(pending, chunk_size=3)
    chunk = sched.lease("w")
    first = sched.record(chunk.chunk_id, chunk.epoch, row_for(pending[0]))
    assert [k for k, _ in first] == ["result"]
    assert sched.record(chunk.chunk_id, chunk.epoch,
                        row_for(pending[0])) == []  # duplicate index
    assert sched.record(99, chunk.epoch, row_for(pending[1])) == []
    assert sched.record(chunk.chunk_id, chunk.epoch,
                        {"not": "a row"}) == []
    assert sched.remaining == 2


# -- loss: release, expiry, stale epochs -----------------------------------

@pytest.mark.quick
def test_release_requeues_only_the_unreported_tail():
    pending = make_pairs(6)
    sched = ChunkScheduler(pending, chunk_size=6)
    chunk = sched.lease("dead")
    old_epoch = chunk.epoch
    sched.record(chunk.chunk_id, old_epoch, row_for(pending[0]))
    sched.record(chunk.chunk_id, old_epoch, row_for(pending[1]))
    requeued = sched.release("dead")
    assert [c.chunk_id for c in requeued] == [chunk.chunk_id]
    assert {i for i, _ in requeued[0].pairs} == {2, 3, 4, 5}
    assert sched.requeues == 1
    # A straggler from the dead lease is already stale.
    assert sched.record(chunk.chunk_id, old_epoch,
                        row_for(pending[2])) == []
    # The re-lease finishes the remainder under a fresh epoch.
    drain_all(sched, owner="alive")
    assert sched.done and sched.completed == 6


@pytest.mark.quick
def test_release_of_fully_reported_chunk_marks_it_done():
    pending = make_pairs(2)
    sched = ChunkScheduler(pending, chunk_size=2)
    chunk = sched.lease("w")
    for pair in pending:
        sched.record(chunk.chunk_id, chunk.epoch, row_for(pair))
    assert sched.release("w") == []  # nothing left to requeue
    assert sched.done


@pytest.mark.quick
def test_expire_requeues_past_deadline_and_renew_extends_it():
    pending = make_pairs(4)
    sched = ChunkScheduler(pending, chunk_size=2, lease_timeout_s=10.0)
    slow = sched.lease("slow", now=100.0)
    slow_epoch = slow.epoch  # epoch as the lost lease saw it
    fast = sched.lease("fast", now=100.0)
    sched.renew("fast", now=109.0)
    expired = sched.expire(now=111.0)
    assert [c.chunk_id for c in expired] == [slow.chunk_id]
    assert fast.chunk_id in sched.leased
    # The expired owner's late rows are blackholed...
    assert sched.record(slow.chunk_id, slow_epoch,
                        row_for(pending[0])) == []
    # ...and the chunk is re-leasable right away.
    again = sched.lease("other", now=112.0)
    assert again.chunk_id == slow.chunk_id
    assert again.epoch == slow_epoch + 2  # requeue bump + lease bump


@pytest.mark.quick
def test_no_deadline_without_timeout_or_clock():
    sched = ChunkScheduler(make_pairs(2), chunk_size=1)
    assert sched.lease("w", now=5.0).deadline is None
    timed = ChunkScheduler(make_pairs(2), chunk_size=1,
                           lease_timeout_s=1.0)
    assert timed.lease("w").deadline is None  # no clock supplied
    assert timed.expire(now=1e9) == []


# -- batch-stats atomicity (the lost-control-row fix) ----------------------

@pytest.mark.quick
def test_batch_stats_delivered_only_when_chunk_completes():
    pending = make_pairs(3, task="inject", rate=0.01)
    sched = ChunkScheduler(pending, chunk_size=3)
    chunk = sched.lease("w")
    assert sched.record(chunk.chunk_id, chunk.epoch,
                        {"__batch__": {"lanes": 3}}) == []
    sched.record(chunk.chunk_id, chunk.epoch, row_for(pending[0]))
    sched.record(chunk.chunk_id, chunk.epoch, row_for(pending[1]))
    last = sched.record(chunk.chunk_id, chunk.epoch, row_for(pending[2]))
    assert [k for k, _ in last] == ["result", "batch"]
    assert last[1][1] == {"lanes": 3}


@pytest.mark.quick
def test_batch_stats_die_with_a_lost_lease():
    """A shard dying between its ``__batch__`` control row and the
    chunk's data rows must not leak phantom stats (the historical
    WorkerPool bookkeeping hole)."""
    pending = make_pairs(3, task="inject", rate=0.01)
    sched = ChunkScheduler(pending, chunk_size=3)
    chunk = sched.lease("dying")
    sched.record(chunk.chunk_id, chunk.epoch, {"__batch__": {"lanes": 3}})
    sched.release("dying")
    deliverables = drain_all(sched, owner="healthy")
    batches = [payload for kind, payload in deliverables
               if kind == "batch"]
    assert batches == []  # stats from the dead lease never surfaced
    assert sched.done


# -- terminal loss ---------------------------------------------------------

@pytest.mark.quick
def test_fail_lost_fills_worker_died_for_the_remainder():
    pending = make_pairs(5)
    sched = ChunkScheduler(pending, chunk_size=2)
    chunk = sched.lease("w")
    sched.record(chunk.chunk_id, chunk.epoch, row_for(pending[0]))
    deliverables = sched.fail_lost()
    assert sched.done
    failed = [payload for _, payload in deliverables]
    assert {r.index for r in failed} == {1, 2, 3, 4}
    assert all(r.error == WORKER_DIED_ERROR and not r.ok
               for r in failed)
    results = sched.results()
    assert results[0].ok and len(results) == 5


# -- randomized adversary --------------------------------------------------

@pytest.mark.quick
@pytest.mark.parametrize("seed", range(8))
def test_random_loss_interleavings_fold_every_point_once(seed):
    """Whatever mixture of partial reports, releases, expiries, and
    stale-row replays happens, every index folds exactly once and the
    folded value comes from a live lease."""
    rng = random.Random(seed)
    n = rng.randint(1, 40)
    pending = make_pairs(n)
    sched = ChunkScheduler(pending, chunk_size=rng.choice([1, 2, 3, 7]),
                           lease_timeout_s=5.0)
    owners = ["a", "b", "c"]
    held = {}  # owner -> list of (chunk, epoch-at-lease)
    delivered = []
    stale_rows = []
    now = 0.0
    for _ in range(1200):
        if sched.done:
            break
        now += rng.random()
        action = rng.randrange(6)
        owner = rng.choice(owners)
        if action == 0:
            chunk = sched.lease(owner, now=now)
            if chunk is not None:
                held.setdefault(owner, []).append(
                    (chunk, chunk.epoch))
        elif action == 1 and held.get(owner):
            chunk, epoch = rng.choice(held[owner])
            candidates = [p for p in chunk.pairs
                          if p[0] in chunk.outstanding]
            if candidates:
                pair = rng.choice(candidates)
                stale_rows.append((chunk.chunk_id, epoch, row_for(pair)))
                delivered.extend(
                    sched.record(chunk.chunk_id, epoch, row_for(pair)))
        elif action == 2:
            sched.release(owner)
            held.pop(owner, None)
        elif action == 3:
            expired = sched.expire(now)
            gone = {c.chunk_id for c in expired}
            for held_owner in list(held):
                held[held_owner] = [
                    (c, e) for c, e in held[held_owner]
                    if c.chunk_id not in gone]
        elif action == 4:
            sched.renew(owner, now)
        elif action == 5 and stale_rows:
            chunk_id, epoch, row = rng.choice(stale_rows)
            delivered.extend(sched.record(chunk_id, epoch, row))
    # Finish whatever is left through one reliable owner.
    for held_owner in list(held):
        sched.release(held_owner)
    drain_all(sched, owner="finisher")
    assert sched.done
    results = sched.results()
    assert sorted(results) == list(range(n))
    # Exactly-once delivery: the deliverable stream never repeated an
    # index, and every folded row is the pure per-point function.
    seen = [r.index for _, r in delivered]
    assert len(seen) == len(set(seen))
    for index, result in results.items():
        assert result.ok and result.metrics == {"value": index}
