"""Fault-injection and detection tests.

These exercise MEEK's actual purpose: a single bit flipped in the
forwarded data must be caught by the log comparison or the ERCP
register comparison, with a measurable latency — and the big core's
own execution must be unaffected.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bitops import flip_bit
from repro.common.config import default_meek_config
from repro.common.prng import DeterministicRng
from repro.core.faults import FaultInjector, FaultTarget
from repro.core.system import MeekSystem, run_vanilla
from repro.fabric.packets import RuntimeKind
from repro.isa import assemble


def checking_program(iterations=600):
    return assemble(f"""
        li   t0, 0
        li   t1, {iterations}
        li   t2, 0x2000
    loop:
        sd   t0, 0(t2)
        ld   t3, 0(t2)
        add  t4, t4, t3
        sd   t4, 8(t2)
        addi t2, t2, 16
        addi t0, t0, 1
        bne  t0, t1, loop
        ecall
    """)


class _TargetedInjector:
    """Deterministic injector: corrupt the Nth runtime packet (or the
    Nth status packet) in a chosen field/bit."""

    def __init__(self, target, bit, ordinal=5, field=None):
        self.target = target
        self.bit = bit
        self.ordinal = ordinal
        self.field = field
        self._runtime_seen = 0
        self._status_seen = 0
        self.injections = []

    def maybe_inject_runtime(self, entry, cycle, seg_id):
        if self.target not in (FaultTarget.RUNTIME_ADDR,
                               FaultTarget.RUNTIME_DATA):
            return None
        if self.field is not None and entry.rkind is not self.field:
            return None
        self._runtime_seen += 1
        if self._runtime_seen != self.ordinal or self.injections:
            return None
        if self.target is FaultTarget.RUNTIME_ADDR:
            entry.addr = flip_bit(entry.addr, self.bit)
        else:
            entry.data = flip_bit(entry.data, self.bit)
        self.injections.append((cycle, seg_id))
        return object()

    def maybe_inject_status(self, snapshot, cycle, seg_id):
        if self.target not in (FaultTarget.STATUS_INT_REG,
                               FaultTarget.STATUS_PC):
            return None
        self._status_seen += 1
        if self._status_seen != self.ordinal or self.injections:
            return None
        if self.target is FaultTarget.STATUS_INT_REG:
            regs = list(snapshot.int_regs)
            regs[5] = flip_bit(regs[5], self.bit)  # t0: certainly live
            snapshot.int_regs = tuple(regs)
        else:
            snapshot.pc = flip_bit(snapshot.pc, self.bit)
        self.injections.append((cycle, seg_id))
        return object()

    def resolve_detections(self, detections):
        return []


def run_with(injector):
    system = MeekSystem(default_meek_config(), injector=injector)
    return system.run(checking_program())


class TestTargetedDetection:
    @pytest.mark.parametrize("bit", [0, 7, 33, 63])
    def test_store_data_fault_detected_in_log(self, bit):
        injector = _TargetedInjector(FaultTarget.RUNTIME_DATA, bit,
                                     field=RuntimeKind.STORE)
        result = run_with(injector)
        assert injector.injections
        assert result.detections
        seg_id, cycle, reason = result.detections[0]
        assert reason == "store-data-mismatch"
        assert cycle >= injector.injections[0][0]

    @pytest.mark.parametrize("bit", [2, 12, 40])
    def test_store_addr_fault_detected(self, bit):
        injector = _TargetedInjector(FaultTarget.RUNTIME_ADDR, bit,
                                     field=RuntimeKind.STORE)
        result = run_with(injector)
        assert result.detections
        assert result.detections[0][2] == "store-address-mismatch"

    def test_load_addr_fault_detected(self):
        injector = _TargetedInjector(FaultTarget.RUNTIME_ADDR, 5,
                                     field=RuntimeKind.LOAD)
        result = run_with(injector)
        assert result.detections
        assert result.detections[0][2] == "load-address-mismatch"

    def test_load_data_fault_detected_by_divergence(self):
        # Corrupted load data silently diverges the replay; the fault
        # surfaces at a later comparison (store data or the ERCP).
        injector = _TargetedInjector(FaultTarget.RUNTIME_DATA, 3,
                                     field=RuntimeKind.LOAD)
        result = run_with(injector)
        assert result.detections
        assert result.detections[0][2] in ("store-data-mismatch",
                                           "ercp-register-mismatch")

    def test_srcp_register_fault_detected(self):
        injector = _TargetedInjector(FaultTarget.STATUS_INT_REG, 9,
                                     ordinal=3)
        result = run_with(injector)
        assert result.detections

    def test_srcp_pc_fault_detected(self):
        injector = _TargetedInjector(FaultTarget.STATUS_PC, 4, ordinal=3)
        result = run_with(injector)
        assert result.detections

    def test_big_core_unaffected_by_injection(self):
        vanilla = run_vanilla(checking_program())
        injector = _TargetedInjector(FaultTarget.RUNTIME_DATA, 10,
                                     field=RuntimeKind.STORE)
        faulty = run_with(injector)
        # Fault injection corrupts only the forwarded copies: the big
        # core's architectural result is bit-identical.
        assert faulty.big.state.int_regs == vanilla.state.int_regs

    @given(bit=st.integers(0, 63), ordinal=st.integers(1, 20))
    @settings(max_examples=10, deadline=None)
    def test_any_store_data_bit_detected(self, bit, ordinal):
        injector = _TargetedInjector(FaultTarget.RUNTIME_DATA, bit,
                                     ordinal=ordinal,
                                     field=RuntimeKind.STORE)
        result = run_with(injector)
        if injector.injections:  # ordinal may exceed the packet count
            assert result.detections


class TestFaultInjector:
    def make(self, rate=1.0):
        return FaultInjector(DeterministicRng(1), rate=rate)

    def test_zero_rate_never_injects(self):
        from repro.fabric.packets import RuntimeEntry
        injector = self.make(rate=0.0)
        entry = RuntimeEntry(RuntimeKind.LOAD, 0x100, 1, 8)
        assert injector.maybe_inject_runtime(entry, 0, 0) is None

    def test_one_injection_per_segment(self):
        from repro.fabric.packets import RuntimeEntry
        injector = self.make(rate=1.0)
        entry = RuntimeEntry(RuntimeKind.LOAD, 0x100, 1, 8)
        first = injector.maybe_inject_runtime(entry, 0, seg_id=0)
        second = injector.maybe_inject_runtime(entry.copy(), 1, seg_id=0)
        assert first is not None
        assert second is None

    def test_segment_gap_respected(self):
        from repro.fabric.packets import RuntimeEntry
        injector = self.make(rate=1.0)
        entry = RuntimeEntry(RuntimeKind.LOAD, 0x100, 1, 8)
        injector.maybe_inject_runtime(entry, 0, seg_id=0)
        assert injector.maybe_inject_runtime(entry.copy(), 1, seg_id=1) is None
        assert injector.maybe_inject_runtime(entry.copy(), 2, seg_id=2) \
            is not None

    def test_injection_changes_exactly_one_field(self):
        from repro.fabric.packets import RuntimeEntry
        injector = self.make(rate=1.0)
        entry = RuntimeEntry(RuntimeKind.LOAD, 0x100, 0xAB, 8)
        record = injector.maybe_inject_runtime(entry, 0, 0)
        changed = (entry.addr != 0x100) + (entry.data != 0xAB)
        assert changed == 1
        assert record.target in (FaultTarget.RUNTIME_ADDR,
                                 FaultTarget.RUNTIME_DATA)

    def test_status_injection_mutates_snapshot(self):
        from repro.fabric.packets import StatusSnapshot
        injector = FaultInjector(
            DeterministicRng(3), rate=1.0,
            targets={FaultTarget.STATUS_INT_REG: 1})
        snap = StatusSnapshot(0, 0, 0x1000, [7] * 32, [0] * 32, {})
        record = injector.maybe_inject_status(snap, 0, 0)
        assert record is not None
        assert any(r != 7 for r in snap.int_regs)

    def test_resolution_matches_same_segment(self):
        injector = self.make(rate=1.0)
        from repro.fabric.packets import RuntimeEntry
        entry = RuntimeEntry(RuntimeKind.LOAD, 0x100, 1, 8)
        injector.maybe_inject_runtime(entry, 100, seg_id=4)
        injector.resolve_detections([(4, 500, "store-data-mismatch")])
        record = injector.injections[0]
        assert record.detected
        assert record.latency_cycles == 400

    def test_resolution_accepts_next_segment(self):
        injector = self.make(rate=1.0)
        from repro.fabric.packets import StatusSnapshot
        snap = StatusSnapshot(0, 0, 0x1000, [0] * 32, [0] * 32, {})
        injector.maybe_inject_status(snap, 100, seg_id=4)
        injector.resolve_detections([(5, 700, "ercp-register-mismatch")])
        assert injector.injections[0].detected

    def test_resolution_ignores_earlier_detections(self):
        injector = self.make(rate=1.0)
        from repro.fabric.packets import RuntimeEntry
        entry = RuntimeEntry(RuntimeKind.LOAD, 0x100, 1, 8)
        injector.maybe_inject_runtime(entry, 100, seg_id=4)
        injector.resolve_detections([(4, 50, "bogus")])
        assert not injector.injections[0].detected


class TestRandomCampaign:
    def test_campaign_properties(self):
        from repro.workloads import generate_program, get_profile
        program = generate_program(get_profile("dedup"),
                                   dynamic_instructions=6000)
        rng = DeterministicRng(11)
        injector = FaultInjector(rng, rate=0.01)
        system = MeekSystem(default_meek_config(), injector=injector)
        result = system.run(program)
        injector.resolve_detections(result.detections)
        assert injector.injections, "campaign injected nothing"
        for record in injector.injections:
            if record.detected:
                assert record.latency_cycles >= 0
        # Detections never outnumber injections + propagations.
        assert len(result.detections) <= 2 * len(injector.injections)
