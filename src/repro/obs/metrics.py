"""Dependency-free metrics: counters, gauges, streaming quantiles.

The observability layer needs the paper's headline quantities —
detection-latency percentiles, throughput, coverage — *while a
campaign is running*, without holding the whole population in memory
and without adding anything to the simulation hot path.  This module
provides the three primitive instruments:

* :class:`Counter` — a monotonically increasing count (points
  completed, cache hits, corrupt rows skipped);
* :class:`Gauge` — a point-in-time value (detection rate, shard
  count);
* :class:`Quantile` — a streaming estimator that tracks several
  percentiles of an unbounded observation stream in O(1) memory using
  the P² algorithm (Jain & Chlamtac, CACM 1985): five markers per
  tracked percentile, updated per observation with a parabolic
  interpolation, exact for the first five observations and within a
  couple of rank percent thereafter.  Detection-latency P50/P95/P99
  update per point without ever storing the latency population.
* :class:`RateWindow` — a sliding-window event rate on the monotonic
  clock (the fix for lifetime-average progress rates that flatline
  misleadingly on long tails).

A :class:`MetricsRegistry` names and owns instruments and renders one
plain-dict :meth:`~MetricsRegistry.snapshot` for publication.  The
process-wide registry (:func:`get_registry`) is what the campaign
executor, result store, and compilation cache record into.
"""

import time
from collections import deque

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "P2Estimator",
    "Quantile",
    "RateWindow",
    "exact_percentile",
    "get_registry",
    "reset_registry",
]


def exact_percentile(values, fraction):
    """Linear-interpolated percentile of a *sorted* sequence.

    Matches ``numpy.percentile(..., method="linear")`` — the ground
    truth the P² estimator is tested against and falls back to while
    it holds fewer than five observations.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if len(values) == 1:
        return values[0]
    position = fraction * (len(values) - 1)
    low = int(position)
    high = min(low + 1, len(values) - 1)
    weight = position - low
    return values[low] * (1 - weight) + values[high] * weight


class P2Estimator:
    """Streaming estimate of one percentile (P² algorithm).

    Five markers track the minimum, the p/2, p and (1+p)/2 percentiles
    and the maximum; every observation shifts marker positions and
    nudges heights by parabolic (or, where that would break marker
    ordering, linear) interpolation.  Memory is constant; the first
    five observations are buffered so small streams are exact.
    """

    __slots__ = ("fraction", "count", "_heights", "_positions", "_desired",
                 "_increments")

    def __init__(self, fraction):
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        self.fraction = fraction
        self.count = 0
        self._heights = []  # first five observations, then marker heights
        self._positions = None
        self._desired = None
        p = fraction
        self._increments = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)

    def observe(self, value):
        value = float(value)
        self.count += 1
        if self._positions is None:
            self._heights.append(value)
            if len(self._heights) == 5:
                self._heights.sort()
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0 + 4.0 * inc
                                 for inc in self._increments]
            return
        heights, positions = self._heights, self._positions
        # Which cell does the observation land in?
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Nudge the three interior markers toward their desired ranks.
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if ((delta >= 1.0 and positions[i + 1] - positions[i] > 1.0)
                    or (delta <= -1.0
                        and positions[i - 1] - positions[i] < -1.0)):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if not heights[i - 1] < candidate < heights[i + 1]:
                    candidate = self._linear(i, step)
                heights[i] = candidate
                positions[i] += step

    def _parabolic(self, i, step):
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1])
            / (n[i] - n[i - 1]))

    def _linear(self, i, step):
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self):
        """The current percentile estimate (``None`` before any
        observation; exact below five observations)."""
        if self.count == 0:
            return None
        if self._positions is None:
            return exact_percentile(sorted(self._heights), self.fraction)
        return self._heights[2]


class Quantile:
    """A set of streaming percentiles over one observation stream.

    Tracks min/max/sum/count exactly and one :class:`P2Estimator` per
    requested fraction — the instrument behind the live
    detection-latency P50/P95/P99.
    """

    DEFAULT_FRACTIONS = (0.5, 0.95, 0.99)

    def __init__(self, fractions=DEFAULT_FRACTIONS):
        self.fractions = tuple(fractions)
        self._estimators = {f: P2Estimator(f) for f in self.fractions}
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for estimator in self._estimators.values():
            estimator.observe(value)

    def observe_many(self, values):
        for value in values:
            self.observe(value)

    def estimate(self, fraction):
        return self._estimators[fraction].value()

    def snapshot(self):
        snap = {"count": self.count}
        if self.count:
            snap["min"] = self.min
            snap["max"] = self.max
            snap["mean"] = self.total / self.count
            for fraction in self.fractions:
                snap[f"p{round(fraction * 100):d}"] = self.estimate(fraction)
        return snap


class Counter:
    """Monotonic count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount
        return self.value


class Gauge:
    """Point-in-time value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = None

    def set(self, value):
        self.value = value
        return value


class RateWindow:
    """Sliding-window event rate on the monotonic clock.

    ``tick(n)`` records ``n`` events now; ``rate()`` is events/second
    over at most the trailing ``window_s`` seconds.  Unlike a lifetime
    average this reacts to the *current* pace — a campaign that slowed
    from 50 points/s to 2 points/s shows 2, not a slowly decaying 48.
    """

    def __init__(self, window_s=15.0, clock=time.monotonic):
        self.window_s = float(window_s)
        self._clock = clock
        self._events = deque()  # (monotonic time, count)
        self._total = 0

    def tick(self, count=1, now=None):
        now = self._clock() if now is None else now
        self._events.append((now, count))
        self._total += count
        self._trim(now)

    def _trim(self, now):
        cutoff = now - self.window_s
        events = self._events
        while events and events[0][0] < cutoff:
            self._total -= events.popleft()[1]

    def rate(self, now=None):
        now = self._clock() if now is None else now
        self._trim(now)
        if not self._events:
            return 0.0
        span = now - self._events[0][0]
        if span <= 0.0:
            # All events landed within one clock tick; the window has
            # no measurable extent yet, so a rate would be noise.
            return 0.0
        return self._total / span


class MetricsRegistry:
    """Named instruments plus one plain-dict snapshot of them all."""

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._quantiles = {}

    def counter(self, name):
        try:
            return self._counters[name]
        except KeyError:
            instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name):
        try:
            return self._gauges[name]
        except KeyError:
            instrument = self._gauges[name] = Gauge()
            return instrument

    def quantile(self, name, fractions=Quantile.DEFAULT_FRACTIONS):
        try:
            return self._quantiles[name]
        except KeyError:
            instrument = self._quantiles[name] = Quantile(fractions)
            return instrument

    def snapshot(self):
        """All instruments as one JSON-ready dict."""
        snap = {}
        if self._counters:
            snap["counters"] = {name: c.value
                                for name, c in sorted(self._counters.items())}
        if self._gauges:
            snap["gauges"] = {name: g.value
                              for name, g in sorted(self._gauges.items())}
        if self._quantiles:
            snap["quantiles"] = {name: q.snapshot()
                                 for name, q
                                 in sorted(self._quantiles.items())}
        return snap


_registry = None


def get_registry():
    """The process-wide :class:`MetricsRegistry`."""
    global _registry
    if _registry is None:
        _registry = MetricsRegistry()
    return _registry


def reset_registry():
    """Drop the process-wide registry (tests)."""
    global _registry
    _registry = None
