"""repro.obs — streaming campaign telemetry and live observability.

The paper's headline numbers (detection-latency distributions,
coverage, slowdown) are exactly what campaigns compute — this package
makes them observable *while the campaign runs* instead of only as
JSONL-at-the-end:

* :mod:`repro.obs.metrics` — dependency-free counters, gauges,
  sliding-window rates, and streaming P² percentile estimators
  (latency P50/P95/P99 in O(1) memory);
* :mod:`repro.obs.events` — an opt-in structured JSONL event log
  (``$REPRO_EVENTS``): campaign/shard/chunk/point/cache lifecycle
  events, monotonic-clocked, multi-process append-safe;
* :mod:`repro.obs.live` — the :class:`LiveStatus` aggregator that
  rides the executor's progress hook and atomically publishes a
  ``status.json`` snapshot next to the result store;
* :mod:`repro.obs.watch` — the ``repro watch`` terminal view that
  tails a snapshot (or replays a finished store) and renders
  percentiles, throughput, shard health and ETA.

Everything here is off the simulation hot path: instruments update at
point/chunk/compile boundaries, events are disabled unless requested,
and publication is throttled and atomic.
"""

from repro.obs.events import (EventLog, event_log, events_enabled,
                              install_event_log, read_events,
                              reset_event_log)
from repro.obs.live import (LiveStatus, load_status, snapshot_from_store,
                            status_path_for)
from repro.obs.metrics import (Counter, Gauge, MetricsRegistry, P2Estimator,
                               Quantile, RateWindow, get_registry,
                               reset_registry)
from repro.obs.watch import render_snapshot, resolve_status_source, watch

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "LiveStatus",
    "MetricsRegistry",
    "P2Estimator",
    "Quantile",
    "RateWindow",
    "event_log",
    "events_enabled",
    "get_registry",
    "install_event_log",
    "load_status",
    "read_events",
    "render_snapshot",
    "reset_event_log",
    "reset_registry",
    "resolve_status_source",
    "snapshot_from_store",
    "status_path_for",
    "watch",
]
