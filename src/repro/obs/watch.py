"""The ``repro watch`` terminal view.

Tails a campaign's published ``status.json`` (see
:mod:`repro.obs.live`) and renders the live table — percentiles,
throughput, shard health, ETA — refreshing in place until the run
finishes.  ``--once`` renders a single snapshot and exits, which is
the scripting/CI entry point.

``PATH`` resolution is forgiving about what the operator has in hand:

* a ``*.status.json`` snapshot — read directly;
* a result store (``results.jsonl``) — its sibling
  ``results.jsonl.status.json`` is preferred; if no snapshot was ever
  published the store rows themselves are replayed into one
  (state ``"store"``, exact percentiles, no live rates);
* a directory — the most recently modified ``*.status.json`` in it;
* a bare run id (all digits) — a ``repro serve`` run: while a master
  is reachable (``--socket``, ``$REPRO_SERVE_SOCKET``, or the state
  directory's contact file) each refresh asks it for the run's live
  snapshot over the socket; once no master answers, watching falls
  back to polling the run's store in the serve state directory, so a
  watch started against a live master survives the master's death.
"""

import os
import sys
import time

from repro.obs.live import (STATUS_SUFFIX, load_status, snapshot_from_store,
                            status_path_for)

__all__ = ["render_snapshot", "resolve_status_source", "watch"]


def resolve_status_source(path):
    """Map an operator-supplied path to ``(kind, path)``.

    ``kind`` is ``"status"`` (a snapshot file to re-read) or
    ``"store"`` (a JSONL store to replay).  Raises ``FileNotFoundError``
    when nothing observable lives at ``path``.
    """
    if os.path.isdir(path):
        candidates = [os.path.join(path, name)
                      for name in os.listdir(path)
                      if name.endswith(STATUS_SUFFIX)
                      or name == "status.json"]
        if not candidates:
            raise FileNotFoundError(
                f"{path}: no *{STATUS_SUFFIX} snapshot in directory")
        return "status", max(candidates, key=os.path.getmtime)
    if path.endswith(".json") and os.path.exists(path):
        return "status", path
    sibling = status_path_for(path)
    if os.path.exists(sibling):
        return "status", sibling
    if os.path.exists(path):
        return "store", path
    raise FileNotFoundError(f"{path}: no status snapshot or result store")


def _fmt(value, spec="{:,.0f}", missing="-"):
    if value is None:
        return missing
    return spec.format(value)


def render_snapshot(snap, now_unix=None):
    """One snapshot as the multi-line terminal view."""
    from repro.analysis.report import format_table

    now_unix = time.time() if now_unix is None else now_unix
    points = snap.get("points", {})
    throughput = snap.get("throughput", {})
    latency = snap.get("latency_ns", {})
    detection = snap.get("detection", {})
    totals = snap.get("totals", {})
    state = snap.get("state", "?")
    lines = []
    header = f"campaign {snap.get('campaign', '?')} — {state}"
    if snap.get("rid") is not None:
        header = f"run {snap['rid']} · " + header
    age = now_unix - snap["updated_unix"] if "updated_unix" in snap else None
    if age is not None and state == "running":
        header += f" (updated {age:.1f}s ago)"
        if age > 30.0:
            header += " [STALE]"
    lines.append(header)
    done = points.get("completed", 0) + points.get("resumed", 0)
    progress = f"points    : {done}/{points.get('total', '?')}"
    extras = []
    if points.get("failed"):
        extras.append(f"{points['failed']} failed")
    if points.get("resumed"):
        extras.append(f"{points['resumed']} resumed")
    if points.get("corrupt_rows_skipped"):
        extras.append(f"{points['corrupt_rows_skipped']} corrupt rows "
                      "skipped")
    if extras:
        progress += f" ({', '.join(extras)})"
    lines.append(progress)
    lines.append(
        f"rate      : {_fmt(throughput.get('points_per_s'), '{:,.2f}')} "
        f"points/s, {_fmt(throughput.get('instrs_per_s'))} instrs/s"
        + (f", eta {throughput['eta_s']:.0f}s"
           if throughput.get("eta_s") is not None else ""))
    if snap.get("elapsed_s") is not None:
        lines.append(f"elapsed   : {snap['elapsed_s']:.1f}s "
                     f"(jobs={snap.get('jobs', '?')})")
    lines.append(
        f"totals    : {_fmt(totals.get('instructions'))} instrs, "
        f"{_fmt(totals.get('cycles'))} cycles")
    if detection.get("injections"):
        rate = detection.get("rate")
        lines.append(
            f"faults    : {detection['detected']}/"
            f"{detection['injections']} detected"
            + (f" ({rate:.1%})" if rate is not None else ""))
    if latency.get("count"):
        lines.append(
            f"latency   : p50 {_fmt(latency.get('p50'))} ns, "
            f"p95 {_fmt(latency.get('p95'))} ns, "
            f"p99 {_fmt(latency.get('p99'))} ns "
            f"(mean {_fmt(latency.get('mean'))}, "
            f"max {_fmt(latency.get('max'))}, n={latency['count']})")
    batch = snap.get("batch") or {}
    if batch.get("batches"):
        line = (f"batch     : {batch['batches']} batches, "
                f"{batch.get('lanes', 0)} lanes, "
                f"{_fmt(batch.get('mean_lanes_active'), '{:,.1f}')} "
                f"mean active")
        evictions = batch.get("evictions", 0)
        if evictions:
            causes = batch.get("evictions_by_cause") or {}
            detail = ", ".join(f"{cause} {count}"
                               for cause, count in sorted(causes.items()))
            line += f"; {evictions} evicted ({detail})"
        lines.append(line)
    coverage = snap.get("coverage") or {}
    if coverage:
        parts = [f"{structure} {rate:.0%}" if rate is not None
                 else f"{structure} -"
                 for structure, rate in sorted(coverage.items())]
        lines.append("coverage  : " + ", ".join(parts))
    shards = snap.get("shards") or {}
    if shards:
        # Worker ids are ints for local shards but names ("runner-2")
        # for remote runners: sort numerics first, then lexically.
        def shard_key(kv):
            return (0, int(kv[0]), "") if kv[0].isdigit() \
                else (1, 0, kv[0])
        rows = [[worker, shard.get("points", 0), shard.get("failed", 0),
                 (f"{shard['last_seen_s']:.1f}s"
                  if shard.get("last_seen_s") is not None else "-")]
                for worker, shard in sorted(shards.items(),
                                            key=shard_key)]
        lines.append(format_table(["shard", "points", "failed", "last seen"],
                                  rows))
    runners = snap.get("runners") or []
    if runners:
        rows = [[str(r.get("runner", "?")), r.get("name", "-"),
                 "up" if r.get("alive") else "LOST",
                 r.get("chunks", 0), r.get("points", 0),
                 (f"{r['last_seen_s']:.1f}s"
                  if r.get("last_seen_s") is not None else "-")]
                for r in runners]
        lines.append(format_table(
            ["runner", "name", "state", "chunks", "points", "last seen"],
            rows))
    return "\n".join(lines)


def _read(kind, path):
    if kind == "store":
        return snapshot_from_store(path)
    return load_status(path)


def _serve_status(socket_path, rid):
    """One status round-trip to the serve master.

    ``None`` when no master answers (the caller falls back to disk);
    a :class:`~repro.serve.client.ServeError` when a live master
    rejected the rid; otherwise the ``{"run", "status"}`` payload.
    """
    from repro.serve.client import ServeClient, ServeError, server_available

    if not server_available(socket_path):
        return None
    try:
        with ServeClient(socket_path, timeout=5.0) as client:
            return client.status(rid)
    except ServeError as exc:
        return exc
    except OSError:
        return None


def _record_snapshot(record):
    """A renderable snapshot for a run the master is not executing
    (queued, paused, or already finished with no live status)."""
    return {
        "campaign": record["name"], "state": record["state"],
        "rid": record["rid"],
        # the record's ``completed`` already counts resumed rows, and
        # the renderer sums completed+resumed — subtract so a resumed
        # run shows 24/24, not 26/24
        "points": {"total": record["points_total"],
                   "completed": max(0, record["completed"]
                                    - record["resumed"]),
                   "failed": record["failed"],
                   "resumed": record["resumed"]},
    }


def _watch_rid(rid, interval_s, once, stream, clock, max_wait_s,
               socket_path, state_dir):
    """Follow a serve run by id: live over the master's socket, then
    the on-disk store in the serve state directory as the fallback."""
    from repro.serve import scheduler as sched
    from repro.serve.client import ServeError, find_socket

    state_dir = state_dir or sched.default_state_dir()
    socket_path = find_socket(socket_path, state_dir)
    deadline = clock() + max_wait_s
    while True:
        info = _serve_status(socket_path, rid)
        if info is None:
            # No master answering: the run's record and store are
            # still on disk — poll those instead.
            store = os.path.join(state_dir, "runs",
                                 f"{rid}.results.jsonl")
            return watch(store, interval_s=interval_s, once=once,
                         stream=stream, clock=clock,
                         max_wait_s=max(0.0, deadline - clock()))
        if isinstance(info, ServeError):
            print(f"watch: run {rid}: {info}", file=sys.stderr)
            return 2
        record = info["run"]
        snap = info["status"] or _record_snapshot(record)
        interactive = (not once) and stream.isatty()
        if interactive:
            stream.write("\x1b[H\x1b[2J")
        stream.write(render_snapshot(snap) + "\n")
        stream.flush()
        if once or record["state"] in sched.TERMINAL:
            return 0
        time.sleep(interval_s)


def watch(path, interval_s=1.0, once=False, stream=None, clock=None,
          max_wait_s=10.0, socket_path=None, state_dir=None):
    """Render ``path`` until the campaign finishes; 0 on success.

    ``once`` renders a single snapshot and returns.  A snapshot that
    has not appeared yet is waited for (up to ``max_wait_s``) so
    ``repro watch`` can be started a moment before the campaign.
    A ``path`` of bare digits names a ``repro serve`` run id (see
    :func:`_watch_rid`).
    """
    stream = sys.stdout if stream is None else stream
    clock = time.monotonic if clock is None else clock
    if str(path).isdigit():
        return _watch_rid(int(path), interval_s, once, stream, clock,
                          max_wait_s, socket_path, state_dir)
    deadline = clock() + max_wait_s
    while True:
        try:
            kind, source = resolve_status_source(path)
        except FileNotFoundError as exc:
            if clock() < deadline:
                time.sleep(min(0.2, interval_s))
                continue
            print(f"watch: {exc}", file=sys.stderr)
            return 2
        snap = _read(kind, source)
        if snap is None:
            if clock() < deadline:
                time.sleep(min(0.2, interval_s))
                continue
            print(f"watch: {source}: unreadable snapshot", file=sys.stderr)
            return 2
        interactive = (not once) and stream.isatty()
        if interactive:
            stream.write("\x1b[H\x1b[2J")  # home + clear: redraw in place
        stream.write(render_snapshot(snap) + "\n")
        stream.flush()
        if once or snap.get("state") in ("finished", "store", "aborted"):
            return 0
        time.sleep(interval_s)
