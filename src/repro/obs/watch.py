"""The ``repro watch`` terminal view.

Tails a campaign's published ``status.json`` (see
:mod:`repro.obs.live`) and renders the live table — percentiles,
throughput, shard health, ETA — refreshing in place until the run
finishes.  ``--once`` renders a single snapshot and exits, which is
the scripting/CI entry point.

``PATH`` resolution is forgiving about what the operator has in hand:

* a ``*.status.json`` snapshot — read directly;
* a result store (``results.jsonl``) — its sibling
  ``results.jsonl.status.json`` is preferred; if no snapshot was ever
  published the store rows themselves are replayed into one
  (state ``"store"``, exact percentiles, no live rates);
* a directory — the most recently modified ``*.status.json`` in it.
"""

import os
import sys
import time

from repro.obs.live import (STATUS_SUFFIX, load_status, snapshot_from_store,
                            status_path_for)

__all__ = ["render_snapshot", "resolve_status_source", "watch"]


def resolve_status_source(path):
    """Map an operator-supplied path to ``(kind, path)``.

    ``kind`` is ``"status"`` (a snapshot file to re-read) or
    ``"store"`` (a JSONL store to replay).  Raises ``FileNotFoundError``
    when nothing observable lives at ``path``.
    """
    if os.path.isdir(path):
        candidates = [os.path.join(path, name)
                      for name in os.listdir(path)
                      if name.endswith(STATUS_SUFFIX)
                      or name == "status.json"]
        if not candidates:
            raise FileNotFoundError(
                f"{path}: no *{STATUS_SUFFIX} snapshot in directory")
        return "status", max(candidates, key=os.path.getmtime)
    if path.endswith(".json") and os.path.exists(path):
        return "status", path
    sibling = status_path_for(path)
    if os.path.exists(sibling):
        return "status", sibling
    if os.path.exists(path):
        return "store", path
    raise FileNotFoundError(f"{path}: no status snapshot or result store")


def _fmt(value, spec="{:,.0f}", missing="-"):
    if value is None:
        return missing
    return spec.format(value)


def render_snapshot(snap, now_unix=None):
    """One snapshot as the multi-line terminal view."""
    from repro.analysis.report import format_table

    now_unix = time.time() if now_unix is None else now_unix
    points = snap.get("points", {})
    throughput = snap.get("throughput", {})
    latency = snap.get("latency_ns", {})
    detection = snap.get("detection", {})
    totals = snap.get("totals", {})
    state = snap.get("state", "?")
    lines = []
    header = f"campaign {snap.get('campaign', '?')} — {state}"
    age = now_unix - snap["updated_unix"] if "updated_unix" in snap else None
    if age is not None and state == "running":
        header += f" (updated {age:.1f}s ago)"
        if age > 30.0:
            header += " [STALE]"
    lines.append(header)
    done = points.get("completed", 0) + points.get("resumed", 0)
    progress = f"points    : {done}/{points.get('total', '?')}"
    extras = []
    if points.get("failed"):
        extras.append(f"{points['failed']} failed")
    if points.get("resumed"):
        extras.append(f"{points['resumed']} resumed")
    if points.get("corrupt_rows_skipped"):
        extras.append(f"{points['corrupt_rows_skipped']} corrupt rows "
                      "skipped")
    if extras:
        progress += f" ({', '.join(extras)})"
    lines.append(progress)
    lines.append(
        f"rate      : {_fmt(throughput.get('points_per_s'), '{:,.2f}')} "
        f"points/s, {_fmt(throughput.get('instrs_per_s'))} instrs/s"
        + (f", eta {throughput['eta_s']:.0f}s"
           if throughput.get("eta_s") is not None else ""))
    if snap.get("elapsed_s") is not None:
        lines.append(f"elapsed   : {snap['elapsed_s']:.1f}s "
                     f"(jobs={snap.get('jobs', '?')})")
    lines.append(
        f"totals    : {_fmt(totals.get('instructions'))} instrs, "
        f"{_fmt(totals.get('cycles'))} cycles")
    if detection.get("injections"):
        rate = detection.get("rate")
        lines.append(
            f"faults    : {detection['detected']}/"
            f"{detection['injections']} detected"
            + (f" ({rate:.1%})" if rate is not None else ""))
    if latency.get("count"):
        lines.append(
            f"latency   : p50 {_fmt(latency.get('p50'))} ns, "
            f"p95 {_fmt(latency.get('p95'))} ns, "
            f"p99 {_fmt(latency.get('p99'))} ns "
            f"(mean {_fmt(latency.get('mean'))}, "
            f"max {_fmt(latency.get('max'))}, n={latency['count']})")
    shards = snap.get("shards") or {}
    if shards:
        rows = [[worker, shard.get("points", 0), shard.get("failed", 0),
                 (f"{shard['last_seen_s']:.1f}s"
                  if shard.get("last_seen_s") is not None else "-")]
                for worker, shard in sorted(shards.items(),
                                            key=lambda kv: int(kv[0]))]
        lines.append(format_table(["shard", "points", "failed", "last seen"],
                                  rows))
    return "\n".join(lines)


def _read(kind, path):
    if kind == "store":
        return snapshot_from_store(path)
    return load_status(path)


def watch(path, interval_s=1.0, once=False, stream=None, clock=None,
          max_wait_s=10.0):
    """Render ``path`` until the campaign finishes; 0 on success.

    ``once`` renders a single snapshot and returns.  A snapshot that
    has not appeared yet is waited for (up to ``max_wait_s``) so
    ``repro watch`` can be started a moment before the campaign.
    """
    stream = sys.stdout if stream is None else stream
    clock = time.monotonic if clock is None else clock
    deadline = clock() + max_wait_s
    while True:
        try:
            kind, source = resolve_status_source(path)
        except FileNotFoundError as exc:
            if clock() < deadline:
                time.sleep(min(0.2, interval_s))
                continue
            print(f"watch: {exc}", file=sys.stderr)
            return 2
        snap = _read(kind, source)
        if snap is None:
            if clock() < deadline:
                time.sleep(min(0.2, interval_s))
                continue
            print(f"watch: {source}: unreadable snapshot", file=sys.stderr)
            return 2
        interactive = (not once) and stream.isatty()
        if interactive:
            stream.write("\x1b[H\x1b[2J")  # home + clear: redraw in place
        stream.write(render_snapshot(snap) + "\n")
        stream.flush()
        if once or snap.get("state") in ("finished", "store"):
            return 0
        time.sleep(interval_s)
