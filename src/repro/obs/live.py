"""Live campaign status: streaming aggregation + ``status.json``.

A :class:`LiveStatus` rides the campaign executor's progress hook: it
sees every :class:`~repro.campaign.results.PointResult` the moment it
lands and folds it into streaming aggregates — completed/failed
counts, sliding-window throughput (points/s and instrs/s), streaming
detection-latency percentiles (P² — no population kept), coverage and
detection-rate gauges, per-shard health (points, failures, seconds
since last result) and an ETA.

Every ``publish_interval_s`` (and always at begin/finish) the current
snapshot is **atomically** published as JSON next to the result store
— temp file + :func:`os.replace` — so any other process can observe a
running campaign by re-reading one small file that is always complete,
never half-written.  ``repro watch`` is exactly such a reader.

The snapshot schema (``schema`` 1)::

    {"schema": 1, "campaign": name, "state": "running"|"finished",
     "updated_unix": ..., "elapsed_s": ...,
     "points": {"total": N, "completed": n, "failed": f, "resumed": r,
                "corrupt_rows_skipped": c},
     "throughput": {"points_per_s": ..., "instrs_per_s": ...,
                    "eta_s": ...},
     "latency_ns": {"count":, "min":, "max":, "mean":, "p50":, "p95":,
                    "p99":},
     "detection": {"injections":, "detected":, "rate":},
     "totals": {"instructions":, "cycles":},
     "coverage": {"runtime.addr": rate, ...},
     "batch": {"batches":, "lanes":, "mean_lanes_active":,
               "evictions":, "evictions_by_cause": {cause: n}},
     "shards": {"0": {"points":, "failed":, "last_seen_s":}, ...},
     "runners": [{"runner":, "name":, "pid":, "alive":, "points":,
                  "chunks":, "last_seen_s":}, ...],   # distributed only
     "jobs": J}
"""

import json
import os
import tempfile
import threading
import time

from repro.analysis.coverage import (COVERAGE_SUFFIX, CoverageMap,
                                     save_coverage)
from repro.obs.events import event_log
from repro.obs.metrics import Quantile, RateWindow, get_registry

STATUS_SCHEMA = 1

#: Suffix appended to a result-store path to name its status snapshot.
STATUS_SUFFIX = ".status.json"


def status_path_for(store_path):
    """Where a campaign writing ``store_path`` publishes its status."""
    return store_path + STATUS_SUFFIX


class LiveStatus:
    """Streaming campaign aggregator + atomic status publisher.

    ``path=None`` keeps the aggregation in memory only (snapshots are
    still available to in-process callers — the tests, the final
    summary); with a path every refresh atomically rewrites the
    ``status.json`` snapshot.
    """

    def __init__(self, name, total, path=None, jobs=1,
                 publish_interval_s=0.5, rate_window_s=15.0,
                 clock=time.monotonic, extra=None):
        self.name = name
        self.total = total
        self.path = path
        self.jobs = jobs
        self.publish_interval_s = publish_interval_s
        #: Caller-supplied fields merged into every snapshot (e.g. the
        #: serve master stamps its run id here).
        self.extra = dict(extra or {})
        # Ingestion and snapshotting may come from different threads
        # (the serve master folds points in its executor thread while
        # answering status RPCs from client threads); reentrant
        # because point() -> publish() -> snapshot() nests.
        self._lock = threading.RLock()
        self._clock = clock
        self._start = clock()
        self._last_publish = None
        self.state = "running"
        self.completed = 0
        self.failed = 0
        self.resumed = 0
        self.corrupt_rows_skipped = 0
        self.instructions = 0
        self.cycles = 0
        self.injections = 0
        self.detected = 0
        self.latency_ns = Quantile()
        #: Per-structure × fault-model detection coverage, merged from
        #: each point's ``metrics["coverage"]`` cells.
        self.coverage = CoverageMap()
        self._point_rate = RateWindow(rate_window_s, clock=clock)
        self._instr_rate = RateWindow(rate_window_s, clock=clock)
        self._shards = {}
        # Lockstep batch kernel observability (repro.perf.batch):
        # occupancy (lanes-active) and eviction accounting, folded from
        # each batch's stats dict.
        self.batches = 0
        self.batch_lanes = 0
        self.batch_evictions_by_cause = {}
        self._batch_occupancy_sum = 0.0
        #: Latest remote-runner fleet snapshot (distributed campaigns;
        #: empty for purely local runs — the section is omitted then).
        self._runners = []

    # -- ingestion ---------------------------------------------------------

    def begin(self, resumed=0, corrupt_rows_skipped=0):
        """Mark the campaign started (publishes the first snapshot, so
        watchers see the run the moment it exists)."""
        self.resumed = resumed
        self.corrupt_rows_skipped = corrupt_rows_skipped
        self.publish(force=True)

    def point(self, result):
        """Fold one completed :class:`PointResult` into the stream."""
        with self._lock:
            self._point_locked(result)

    def _point_locked(self, result):
        now = self._clock()
        self.completed += 1
        if not result.ok:
            self.failed += 1
        shard = self._shards.setdefault(
            result.worker, {"points": 0, "failed": 0, "last_seen": now})
        shard["points"] += 1
        shard["last_seen"] = now
        if not result.ok:
            shard["failed"] += 1
        metrics = result.metrics or {}
        instrs = metrics.get("instructions") or 0
        self.instructions += instrs
        self.cycles += metrics.get("cycles") or 0
        self.injections += metrics.get("injections") or 0
        self.detected += metrics.get("detected") or 0
        self.latency_ns.observe_many(metrics.get("latencies_ns") or ())
        self._fold_coverage(metrics)
        self._point_rate.tick(1, now=now)
        if instrs:
            self._instr_rate.tick(instrs, now=now)
        self.publish()

    def _fold_coverage(self, metrics):
        cells = metrics.get("coverage")
        if not cells:
            return
        self.coverage.merge_cells(cells)
        # Per-structure gauges in the process registry, for anything
        # scraping metrics rather than the status snapshot.
        registry = get_registry()
        for structure, rate in self.coverage.structure_rates().items():
            registry.gauge(f"coverage.{structure}").set(rate)

    def batch(self, stats):
        """Fold one lockstep batch's kernel stats.

        ``stats`` is :class:`repro.perf.batch.BatchOutcome` ``.stats``:
        ``{"lanes", "instructions", "occupancy", "evictions"}`` with
        ``occupancy`` the mean live-lane fraction over the run.  Feeds
        the lanes-active gauge and the per-cause eviction counters in
        the process registry, plus the snapshot's ``batch`` section.
        """
        with self._lock:
            self.batches += 1
            lanes = stats.get("lanes") or 0
            occupancy = stats.get("occupancy") or 0.0
            evictions = stats.get("evictions") or {}
            self.batch_lanes += lanes
            self._batch_occupancy_sum += occupancy * lanes
            for cause, count in evictions.items():
                self.batch_evictions_by_cause[cause] = (
                    self.batch_evictions_by_cause.get(cause, 0) + count)
            registry = get_registry()
            registry.counter("batch.batches").inc()
            registry.counter("batch.lanes").inc(lanes)
            registry.gauge("batch.lanes_active").set(occupancy * lanes)
            for cause, count in evictions.items():
                registry.counter("batch.evictions").inc(count)
                registry.counter(f"batch.evictions.{cause}").inc(count)
            self.publish()

    def resumed_point(self, result):
        """Fold a *resumed* row's coverage cells (and nothing else).

        Resumed rows are already counted by :meth:`begin`'s ``resumed``
        total and never re-run, so completed/throughput/latency stay
        untouched — but the persisted coverage map must equal an
        uninterrupted run's, so their cells are merged in.
        """
        with self._lock:
            self._fold_coverage(result.metrics or {})

    def runners(self, info):
        """Record the remote-runner fleet snapshot (distributed runs).

        ``info`` is :meth:`repro.campaign.remote.RunnerHub.runners_info`
        output — per-runner name/pid/health/points/chunks.  The
        transport feeds this periodically; the latest snapshot is
        embedded in ``status.json`` under ``"runners"`` so ``repro
        watch`` can show fleet health next to the shard table.
        """
        with self._lock:
            self._runners = list(info)
            self.publish()

    def heartbeat(self, worker, now=None):
        """Record shard liveness outside point completion."""
        with self._lock:
            now = self._clock() if now is None else now
            shard = self._shards.setdefault(
                worker, {"points": 0, "failed": 0, "last_seen": now})
            shard["last_seen"] = now

    def finish(self):
        """Mark the campaign done and publish the final snapshot."""
        self.state = "finished"
        self.publish(force=True)
        self._persist_coverage()

    def aborted(self):
        """Mark the campaign aborted (cancel/pause/shutdown) and
        publish, so watchers see a terminal state instead of a run
        that went silently stale."""
        self.state = "aborted"
        self.publish(force=True)
        self._persist_coverage()

    def coverage_path(self):
        """Where this campaign persists its coverage map (``None``
        when status is in-memory only): ``<store>.coverage.json``,
        derived from the status path so serve-managed runs land next
        to their store with no extra wiring."""
        if self.path is None:
            return None
        if self.path.endswith(STATUS_SUFFIX):
            return self.path[:-len(STATUS_SUFFIX)] + COVERAGE_SUFFIX
        return self.path + COVERAGE_SUFFIX

    def _persist_coverage(self):
        """Write the merged coverage map at terminal states.

        Written only at finish/abort — never per point — and as
        sorted-key JSON with no timestamps, so serial, sharded and
        serve runs of the same point set produce byte-identical
        artifacts.  Failures are swallowed like :meth:`publish` ones.
        """
        path = self.coverage_path()
        if path is None:
            return
        with self._lock:
            if not self.coverage:
                return
            try:
                save_coverage(self.coverage, path)
            except OSError:
                pass

    # -- output ------------------------------------------------------------

    def snapshot(self):
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self):
        now = self._clock()
        elapsed = now - self._start
        points_per_s = self._point_rate.rate(now=now)
        remaining = max(0, self.total - self.resumed - self.completed)
        snap = {
            "schema": STATUS_SCHEMA,
            "campaign": self.name,
            "state": self.state,
            "updated_unix": time.time(),
            "elapsed_s": elapsed,
            "jobs": self.jobs,
            "points": {
                "total": self.total,
                "completed": self.completed,
                "failed": self.failed,
                "resumed": self.resumed,
                "corrupt_rows_skipped": self.corrupt_rows_skipped,
            },
            "throughput": {
                "points_per_s": points_per_s,
                "instrs_per_s": self._instr_rate.rate(now=now),
                "eta_s": (remaining / points_per_s
                          if points_per_s > 0 else None),
            },
            "latency_ns": self.latency_ns.snapshot(),
            "detection": {
                "injections": self.injections,
                "detected": self.detected,
                "rate": (self.detected / self.injections
                         if self.injections else None),
            },
            "totals": {
                "instructions": self.instructions,
                "cycles": self.cycles,
            },
            "coverage": self.coverage.structure_rates(),
            "batch": {
                "batches": self.batches,
                "lanes": self.batch_lanes,
                "mean_lanes_active": (
                    self._batch_occupancy_sum / self.batches
                    if self.batches else None),
                "evictions": sum(self.batch_evictions_by_cause.values()),
                "evictions_by_cause": dict(sorted(
                    self.batch_evictions_by_cause.items())),
            },
            "shards": {
                str(worker): {
                    "points": shard["points"],
                    "failed": shard["failed"],
                    "last_seen_s": now - shard["last_seen"],
                }
                for worker, shard in sorted(self._shards.items())
            },
        }
        if self._runners:
            now_unix = time.time()
            snap["runners"] = [{
                "runner": r.get("runner"),
                "name": r.get("name"),
                "pid": r.get("pid"),
                "alive": r.get("alive"),
                "points": r.get("points"),
                "chunks": r.get("chunks"),
                "last_seen_s": (now_unix - r["last_seen_unix"]
                                if r.get("last_seen_unix") else None),
            } for r in self._runners]
        snap.update(self.extra)
        return snap

    def publish(self, force=False):
        """Atomically rewrite ``status.json`` (throttled unless forced).

        Publication failures are swallowed — observability must never
        take a campaign down.
        """
        if self.path is None:
            return False
        with self._lock:
            now = self._clock()
            if (not force and self._last_publish is not None
                    and now - self._last_publish < self.publish_interval_s):
                return False
            self._last_publish = now
            payload = json.dumps(self._snapshot_locked(),
                                 sort_keys=True) + "\n"
        try:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(dir=directory,
                                             prefix=".status-",
                                             suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                os.replace(temp_path, self.path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True


def load_status(path):
    """Read one published snapshot; ``None`` if absent or unreadable.

    The writer only ever :func:`os.replace`-publishes complete files,
    so a successful read is always a complete snapshot — but a reader
    racing the very first publication (or pointed at garbage) gets
    ``None``, never an exception.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(snapshot, dict) or "campaign" not in snapshot:
        return None
    return snapshot


def snapshot_from_store(store_path, name=None):
    """Synthesize a status snapshot from a (finished) result store.

    ``repro watch`` falls back to this when a campaign never published
    live status (or the run predates the observability layer): the
    JSONL rows are replayed through a :class:`LiveStatus`, producing
    the same schema with state ``"store"`` — percentiles and totals
    are real, rates are meaningless (no live clock) and left zero.
    """
    from repro.campaign.results import ResultStore

    results = ResultStore.load(store_path)
    live = LiveStatus(name or os.path.basename(store_path),
                      total=len(results), path=None)
    for result in sorted(results.values(), key=lambda r: r.index):
        live.point(result)
    live.state = "store"
    snap = live.snapshot()
    # A replay has no live clock: scrub the misleading instant rates.
    snap["elapsed_s"] = None
    snap["throughput"] = {"points_per_s": None, "instrs_per_s": None,
                          "eta_s": None}
    for shard in snap["shards"].values():
        shard["last_seen_s"] = None
    return snap


def attach_live(spec, jobs, store=None, status_path=None):
    """Build the :class:`LiveStatus` for one campaign run (or ``None``).

    Status is published when the campaign has somewhere to put it:
    an explicit ``status_path`` wins, otherwise a file-backed result
    store implies ``<store>.status.json`` right next to it.
    """
    if status_path is None and store is not None and store.path:
        status_path = status_path_for(store.path)
    if status_path is None:
        return None
    event_log().emit("status_attached", campaign=spec.name,
                     path=status_path)
    return LiveStatus(spec.name, total=len(spec.points), path=status_path,
                      jobs=jobs)
