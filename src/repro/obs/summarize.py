"""Post-hoc event-log analysis: ``repro events summarize``.

Folds a structured JSONL event log (:mod:`repro.obs.events`) into a
wall-time breakdown an operator can read after the run:

* **phases** — every ``*_end`` span event (``dur_s``) plus the
  per-point ``point_complete``/``elapsed_s`` stream, rolled up into
  count / total / mean / max seconds per phase;
* **campaigns** — start/end/abort pairing per campaign name with
  points, failures, resumed counts and measured duration;
* **shards** — per-worker busy time, point throughput and chunk
  leases (local shard ids and remote runner names alike);
* **chunks** — lease counts, points per lease, and the loss
  bookkeeping (expired leases, requeues after runner/shard death);
* **top** — the N slowest points, the first place to look when a
  campaign's tail is longer than its body.

Everything is a pure fold over the parsed event list, so it works on
partial logs from crashed runs too — exactly the situation where the
breakdown matters most.
"""

from repro.obs.events import read_events

__all__ = ["format_events_summary", "summarize_events", "summarize_path"]


def _roll(bucket, seconds):
    bucket["count"] += 1
    bucket["total_s"] += seconds
    if seconds > bucket["max_s"]:
        bucket["max_s"] = seconds


def _new_roll():
    return {"count": 0, "total_s": 0.0, "max_s": 0.0}


def summarize_events(events):
    """Fold parsed event dicts into the summary structure."""
    phases = {}
    campaigns = {}
    shards = {}
    chunks = {"leases": 0, "lease_points": 0, "expired": 0,
              "requeued": 0, "requeued_points": 0}
    points = []
    walls = [e["wall"] for e in events
             if isinstance(e.get("wall"), (int, float))]
    for record in events:
        name = record.get("event", "")
        dur = record.get("dur_s")
        if name.endswith("_end") and isinstance(dur, (int, float)):
            _roll(phases.setdefault(name[:-len("_end")], _new_roll()), dur)
        if name == "point_complete":
            elapsed = record.get("elapsed_s")
            if isinstance(elapsed, (int, float)):
                _roll(phases.setdefault("point", _new_roll()), elapsed)
                points.append(record)
                worker = str(record.get("worker", "?"))
                shard = shards.setdefault(
                    worker, {"points": 0, "failed": 0, "busy_s": 0.0,
                             "chunks": 0})
                shard["points"] += 1
                shard["busy_s"] += elapsed
                if not record.get("ok", True):
                    shard["failed"] += 1
        elif name == "campaign_start":
            campaign = campaigns.setdefault(
                record.get("campaign", "?"),
                {"runs": 0, "points": 0, "pending": 0, "resumed": 0,
                 "failed": 0, "aborts": 0, "dur_s": 0.0})
            campaign["runs"] += 1
            campaign["points"] += record.get("points", 0) or 0
            campaign["pending"] += record.get("pending", 0) or 0
            campaign["resumed"] += record.get("resumed", 0) or 0
        elif name == "campaign_end":
            campaign = campaigns.setdefault(
                record.get("campaign", "?"),
                {"runs": 0, "points": 0, "pending": 0, "resumed": 0,
                 "failed": 0, "aborts": 0, "dur_s": 0.0})
            campaign["failed"] += record.get("failed", 0) or 0
            if isinstance(dur, (int, float)):
                campaign["dur_s"] += dur
        elif name == "campaign_abort":
            campaign = campaigns.setdefault(
                record.get("campaign", "?"),
                {"runs": 0, "points": 0, "pending": 0, "resumed": 0,
                 "failed": 0, "aborts": 0, "dur_s": 0.0})
            campaign["aborts"] += 1
            if isinstance(dur, (int, float)):
                campaign["dur_s"] += dur
        elif name in ("chunk_lease", "runner_lease"):
            chunks["leases"] += 1
            chunks["lease_points"] += record.get("points", 0) or 0
            worker = record.get("worker")
            if worker is None and record.get("runner") is not None:
                worker = f"runner-{record['runner']}"
            if worker is not None:
                shard = shards.setdefault(
                    str(worker), {"points": 0, "failed": 0,
                                  "busy_s": 0.0, "chunks": 0})
                shard["chunks"] += 1
        elif name == "lease_expired":
            chunks["expired"] += 1
        elif name in ("runner_chunk_requeued", "local_chunks_requeued"):
            chunks["requeued"] += 1
            chunks["requeued_points"] += record.get("points", 0) or 0
    points.sort(key=lambda r: r.get("elapsed_s", 0.0), reverse=True)
    return {
        "events": len(events),
        "span_s": (max(walls) - min(walls)) if walls else 0.0,
        "phases": phases,
        "campaigns": campaigns,
        "shards": shards,
        "chunks": chunks,
        "slowest": points,
    }


def summarize_path(path):
    """Read + fold one event-log file; ``None`` when it has no events."""
    events = read_events(path)
    if not events:
        return None
    return summarize_events(events)


def _fmt_s(seconds):
    return f"{seconds:,.2f}s"


def format_events_summary(summary, top=10, source=None):
    """The summary as the multi-table terminal report."""
    from repro.analysis.report import format_table

    lines = []
    title = "event log summary"
    if source:
        title += f" — {source}"
    lines.append(title)
    lines.append(f"events    : {summary['events']:,} over "
                 f"{_fmt_s(summary['span_s'])} of wall time")

    phases = summary["phases"]
    if phases:
        rows = [[phase, bucket["count"], _fmt_s(bucket["total_s"]),
                 _fmt_s(bucket["total_s"] / bucket["count"]),
                 _fmt_s(bucket["max_s"])]
                for phase, bucket in sorted(
                    phases.items(),
                    key=lambda kv: kv[1]["total_s"], reverse=True)]
        lines.append(format_table(
            ["phase", "count", "total", "mean", "max"], rows,
            title="wall time by phase"))

    campaigns = summary["campaigns"]
    if campaigns:
        rows = [[name, c["runs"], c["points"], c["pending"],
                 c["resumed"], c["failed"], c["aborts"],
                 _fmt_s(c["dur_s"])]
                for name, c in sorted(campaigns.items())]
        lines.append(format_table(
            ["campaign", "runs", "points", "pending", "resumed",
             "failed", "aborts", "time"], rows, title="campaigns"))

    shards = summary["shards"]
    if shards:
        def shard_key(kv):
            return (0, int(kv[0]), "") if kv[0].isdigit() \
                else (1, 0, kv[0])
        rows = [[worker, s["points"], s["failed"], s["chunks"],
                 _fmt_s(s["busy_s"])]
                for worker, s in sorted(shards.items(), key=shard_key)]
        lines.append(format_table(
            ["shard", "points", "failed", "chunks", "busy"], rows,
            title="shards and runners"))

    chunks = summary["chunks"]
    if chunks["leases"]:
        mean = chunks["lease_points"] / chunks["leases"]
        line = (f"chunks    : {chunks['leases']} lease(s), "
                f"{chunks['lease_points']} point(s) "
                f"({mean:,.1f}/lease)")
        if chunks["expired"] or chunks["requeued"]:
            line += (f"; {chunks['expired']} expired, "
                     f"{chunks['requeued']} requeued "
                     f"({chunks['requeued_points']} point(s))")
        lines.append(line)

    slowest = summary["slowest"][:max(0, top)]
    if slowest:
        rows = [[record.get("point_id", "?"),
                 str(record.get("worker", "?")),
                 "ok" if record.get("ok", True) else "FAIL",
                 _fmt_s(record.get("elapsed_s", 0.0))]
                for record in slowest]
        lines.append(format_table(
            ["point", "shard", "status", "elapsed"], rows,
            title=f"slowest {len(rows)} point(s)"))
    return "\n".join(lines)
