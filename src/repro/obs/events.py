"""Structured JSONL event log for the execution stack.

When enabled, every layer of a campaign narrates itself as one JSON
line per event — campaign start/end, shard spawn/death, chunk lease,
point completion, cache hit/miss, worker heartbeat, service warm-up —
so a long run can be reconstructed (and its stalls diagnosed) after
the fact, across every process that took part.

Design constraints:

* **Off by default, free when off.**  The log is enabled only when
  ``$REPRO_EVENTS`` names a file (or :func:`install_event_log` is
  called); disabled, every emit site costs one attribute check on a
  null object.  Nothing in the per-instruction hot path ever emits —
  events fire at campaign/chunk/compile boundaries only.
* **Multi-process safe.**  Campaign shards inherit ``$REPRO_EVENTS``
  and append to the same file.  Each event is written as a single
  ``O_APPEND`` write well under ``PIPE_BUF``, so concurrent writers
  interleave whole lines, never bytes.
* **Monotonic-clocked.**  Every event carries ``t`` from
  :func:`time.monotonic` (for intra-process span arithmetic) plus a
  ``wall`` unix timestamp (for cross-process alignment and humans).
* **Never fatal.**  A full disk or revoked permission degrades to
  dropped events; the simulation result is never at risk.

Event schema (one JSON object per line)::

    {"event": "point_complete", "t": 12.345, "wall": 1754650000.1,
     "pid": 4242, "worker": 3, "point_id": "...", "ok": true, ...}

``event`` and the clocks are always present; everything else is
event-specific payload.
"""

import json
import os
import time
from contextlib import contextmanager

__all__ = [
    "EventLog",
    "event_log",
    "events_enabled",
    "install_event_log",
    "reset_event_log",
]

#: Environment variable naming the event-log file (inherited by
#: campaign shards, so one campaign's processes share one log).
EVENTS_ENV = "REPRO_EVENTS"


class EventLog:
    """Append-only JSONL event sink (one per process, lazily opened)."""

    enabled = True

    def __init__(self, path):
        self.path = path
        self._fd = None
        self._pid = None

    def _ensure_open(self):
        # (Re)open after fork: children must not share the parent's
        # file-descriptor offset bookkeeping or close it behind them.
        pid = os.getpid()
        if self._fd is None or self._pid != pid:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._fd = os.open(self.path,
                               os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                               0o644)
            self._pid = pid
        return self._fd

    def emit(self, event, **fields):
        """Write one event line; silently drops on any OS failure."""
        record = {"event": event, "t": time.monotonic(),
                  "wall": time.time(), "pid": os.getpid()}
        record.update(fields)
        try:
            line = json.dumps(record, sort_keys=True,
                              default=str) + "\n"
            os.write(self._ensure_open(), line.encode("utf-8"))
        except (OSError, ValueError, TypeError):
            pass

    @contextmanager
    def span(self, event, **fields):
        """Emit ``<event>_start``/``<event>_end`` around a block, the
        end event carrying ``dur_s``."""
        start = time.monotonic()
        self.emit(f"{event}_start", **fields)
        try:
            yield self
        finally:
            self.emit(f"{event}_end", dur_s=time.monotonic() - start,
                      **fields)

    def close(self):
        if self._fd is not None and self._pid == os.getpid():
            try:
                os.close(self._fd)
            except OSError:
                pass
        self._fd = None
        self._pid = None


class _NullEventLog:
    """The disabled log: every emit is a no-op."""

    enabled = False
    path = None

    def emit(self, event, **fields):
        pass

    @contextmanager
    def span(self, event, **fields):
        yield self

    def close(self):
        pass


_NULL = _NullEventLog()
_log = None
_log_source = None  # the env value (or explicit path) _log was built from


def events_enabled():
    """Whether an event sink is active for this process."""
    return event_log().enabled


def event_log():
    """The process-wide event log (the null log unless enabled).

    Re-resolves when ``$REPRO_EVENTS`` changes, so a CLI flag that
    sets the variable before forking workers takes effect in the
    parent too.
    """
    global _log, _log_source
    source = os.environ.get(EVENTS_ENV) or None
    if _log is None or source != _log_source:
        if _log is not None:
            _log.close()
        _log = EventLog(source) if source else _NULL
        _log_source = source
    return _log


def install_event_log(path):
    """Enable event logging to ``path`` for this process *and* every
    worker it forks or spawns (via the environment)."""
    if path:
        os.environ[EVENTS_ENV] = path
    else:
        os.environ.pop(EVENTS_ENV, None)
    return event_log()


def reset_event_log():
    """Close and drop the process-wide log handle (tests)."""
    global _log, _log_source
    if _log is not None:
        _log.close()
    _log = None
    _log_source = None


def read_events(path):
    """Parse an event-log file tolerantly (corrupt lines skipped)."""
    events = []
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and "event" in record:
                    events.append(record)
    except OSError:
        pass
    return events
