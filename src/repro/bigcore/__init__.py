"""The big core: a SonicBOOM-class OoO superscalar timing model.

The model is *timing-directed-by-functional*: instructions execute
functionally in commit order (architectural state is always exact)
while the timing model decides when each one commits, accounting for
fetch width and I-cache behaviour, TAGE-style branch prediction with
misprediction redirects, register dependences, functional-unit latency
and contention, ROB/IQ/LDQ/STQ occupancy windows, cache-hierarchy
latencies, 4-wide commit, and — when MEEK is attached — commit gating
from DC-Buffer backpressure and checker availability.

The Data Extraction Unit (DEU, Fig. 3) watches the commit stream and
produces the status/run-time packets MEEK forwards to little cores.
"""

from repro.bigcore.branch import BranchPredictor
from repro.bigcore.core import BigCore, CommitEvent, run_program
from repro.bigcore.deu import DataExtractionUnit

__all__ = [
    "BigCore",
    "BranchPredictor",
    "CommitEvent",
    "DataExtractionUnit",
    "run_program",
]
