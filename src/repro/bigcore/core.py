"""OoO superscalar big-core model (SonicBOOM-class, Table II).

Timing-directed-by-functional execution: instructions are executed
functionally in program (commit) order, while an analytical pipeline
model assigns each one fetch/issue/complete/commit cycles subject to:

* fetch width and I-cache latency, with redirect bubbles after taken
  branches and full redirects after mispredictions (TAGE + BTB + RAS);
* register data dependences (renaming removes WAW/WAR, so a value is
  ready when its producer completes);
* functional-unit latency and occupancy (iterative divider blocks its
  unit; pipelined units accept one op per cycle);
* ROB / issue-queue / LDQ / STQ / physical-register occupancy windows;
* D-cache hierarchy latency for loads (stores write at commit through
  a write buffer);
* commit width, in-order commit, and an optional *commit hook* —
  MEEK's DEU/controller gates commit through this hook, which is how
  DC-Buffer backpressure and checker availability slow the big core.

This event-per-instruction formulation is cycle-accurate in the sense
that every constraint is expressed in cycles of the 3.2 GHz clock; it
avoids a per-cycle loop so whole SPEC-profile workloads run in seconds.
"""

from collections import deque

from repro.bigcore.branch import BranchPredictor
from repro.common.config import BigCoreConfig
from repro.common.errors import SimulationError
from repro.isa.instructions import InstrClass
from repro.isa.semantics import execute
from repro.isa.state import ArchState
from repro.mem.hierarchy import AccessKind, MemoryHierarchy

#: Fetch-to-rename depth of the modelled front end, in cycles.
FRONTEND_DEPTH = 6

#: Front-end bubble when decode redirects a direction-correct taken
#: branch whose target missed in the BTB.
BTB_BUBBLE_CYCLES = 3

#: Link register: jal/jalr writing x1 are calls; jalr reading x1 is a
#: return (standard RISC-V calling convention).
_RA = 1


class CommitEvent:
    """One committed instruction, as observed by the DEU."""

    __slots__ = ("index", "pc", "instr", "result", "commit_cycle",
                 "commit_slot")

    def __init__(self, index, pc, instr, result, commit_cycle, commit_slot):
        self.index = index
        self.pc = pc
        self.instr = instr
        self.result = result
        self.commit_cycle = commit_cycle
        self.commit_slot = commit_slot


class RunResult:
    """Summary of one program execution on the big core."""

    def __init__(self, instructions, cycles, state, predictor_stats,
                 memory_stats, halted_by):
        self.instructions = instructions
        self.cycles = cycles
        self.state = state
        self.predictor_stats = predictor_stats
        self.memory_stats = memory_stats
        self.halted_by = halted_by

    @property
    def ipc(self):
        if not self.cycles:
            return 0.0
        return self.instructions / self.cycles

    @property
    def cpi(self):
        if not self.instructions:
            return 0.0
        return self.cycles / self.instructions

    def __repr__(self):
        return (f"RunResult({self.instructions} instrs, {self.cycles} cycles, "
                f"IPC={self.ipc:.2f}, halted_by={self.halted_by})")


class _FuPool:
    """A pool of identical functional units with busy tracking."""

    __slots__ = ("free_at",)

    def __init__(self, count):
        self.free_at = [0] * max(1, count)

    def acquire(self, ready, occupancy):
        """Earliest issue >= ready on any unit; occupy it."""
        best = 0
        best_time = self.free_at[0]
        for i in range(1, len(self.free_at)):
            if self.free_at[i] < best_time:
                best = i
                best_time = self.free_at[i]
        issue = ready if best_time <= ready else best_time
        self.free_at[best] = issue + occupancy
        return issue


class BigCore:
    """The big core.  Create once per run (predictor/caches are warm
    state that belongs to a single execution)."""

    def __init__(self, config=None, hierarchy=None):
        self.config = config if config is not None else BigCoreConfig()
        self.hierarchy = (hierarchy if hierarchy is not None
                          else MemoryHierarchy(self.config.memory))
        self.predictor = BranchPredictor(self.config)
        cfg = self.config
        self._pools = {
            InstrClass.ALU: _FuPool(cfg.int_alus),
            InstrClass.MUL: _FuPool(cfg.fp_units),   # shared FP/Mult/Div ALU
            InstrClass.DIV: _FuPool(cfg.fp_units),
            InstrClass.FP: _FuPool(cfg.fp_units),
            InstrClass.FPDIV: _FuPool(cfg.fp_units),
            InstrClass.LOAD: _FuPool(cfg.mem_units),
            InstrClass.STORE: _FuPool(cfg.mem_units),
            InstrClass.BRANCH: _FuPool(cfg.int_alus),
            InstrClass.JUMP: _FuPool(cfg.jump_units),
            InstrClass.CSR: _FuPool(cfg.csr_units),
            InstrClass.SYSTEM: _FuPool(cfg.csr_units),
            InstrClass.MEEK: _FuPool(cfg.csr_units),
        }
        self._latency = {
            InstrClass.ALU: cfg.int_alu_latency,
            InstrClass.MUL: cfg.mul_latency,
            InstrClass.DIV: cfg.div_latency,
            InstrClass.FP: cfg.fp_latency,
            InstrClass.FPDIV: cfg.fp_div_latency,
            InstrClass.BRANCH: 1,
            InstrClass.JUMP: 1,
            InstrClass.CSR: 1,
            InstrClass.SYSTEM: 1,
            InstrClass.MEEK: 1,
        }
        # Occupancy: iterative dividers block the unit; the rest pipeline.
        self._occupancy = {
            InstrClass.DIV: cfg.div_latency,
            InstrClass.FPDIV: cfg.fp_div_latency,
        }

    def run(self, program, max_instructions=None, commit_hook=None,
            meek_handler=None, initial_state=None, halt_on_trap=True):
        """Execute ``program`` to completion.

        ``commit_hook(event) -> cycle`` may return a later commit cycle
        to model MEEK backpressure; it sees every committed instruction
        in order (this is the DEU observation channel).
        """
        cfg = self.config
        state = initial_state
        if state is None:
            state = ArchState(pc=program.entry_pc)
            program.data.apply(state.memory)
        predictor = self.predictor
        hierarchy = self.hierarchy

        int_ready = [0] * 32
        fp_ready = [0] * 32
        rob = deque()          # commit cycles of in-flight instructions
        iq = deque()           # issue cycles
        ldq = deque()          # commit cycles of in-flight loads
        stq = deque()          # commit cycles of in-flight stores
        int_writers = deque()  # commit cycles of int-PRF writers
        fp_writers = deque()
        int_prf_window = max(1, cfg.int_phys_regs - 32)
        fp_prf_window = max(1, cfg.fp_phys_regs - 32)

        next_fetch_cycle = 0
        fetched_this_cycle = 0
        current_fetch_line = None
        last_commit_cycle = 0
        committed_this_cycle = 0
        redirect_extra = max(1, cfg.mispredict_penalty - FRONTEND_DEPTH)

        index = 0
        halted_by = "end"
        while True:
            if max_instructions is not None and index >= max_instructions:
                halted_by = "limit"
                break
            pc = state.pc
            instr = program.fetch(pc)
            if instr is None:
                break

            # ---- fetch -------------------------------------------------
            line = pc >> 6
            if line != current_fetch_line:
                ifetch = hierarchy.access(pc, next_fetch_cycle,
                                          AccessKind.IFETCH)
                if ifetch > hierarchy.config.l1i.hit_latency:
                    next_fetch_cycle += ifetch
                    fetched_this_cycle = 0
                current_fetch_line = line
            if fetched_this_cycle >= cfg.fetch_width:
                next_fetch_cycle += 1
                fetched_this_cycle = 0
            fetch_cycle = next_fetch_cycle
            fetched_this_cycle += 1

            # ---- rename/dispatch (occupancy windows) --------------------
            rename_cycle = fetch_cycle + FRONTEND_DEPTH
            if len(rob) >= cfg.rob_entries:
                rename_cycle = max(rename_cycle, rob.popleft())
            if len(iq) >= cfg.issue_queue_entries:
                rename_cycle = max(rename_cycle, iq.popleft())
            spec = instr.spec
            iclass = spec.iclass
            if iclass is InstrClass.LOAD and len(ldq) >= cfg.ldq_entries:
                rename_cycle = max(rename_cycle, ldq.popleft())
            if iclass is InstrClass.STORE and len(stq) >= cfg.stq_entries:
                rename_cycle = max(rename_cycle, stq.popleft())
            if spec.writes_int_rd and len(int_writers) >= int_prf_window:
                rename_cycle = max(rename_cycle, int_writers.popleft())
            if spec.writes_fp_rd and len(fp_writers) >= fp_prf_window:
                rename_cycle = max(rename_cycle, fp_writers.popleft())

            # ---- operand readiness --------------------------------------
            ready = rename_cycle + 1
            if spec.reads_int_rs1 and int_ready[instr.rs1] > ready:
                ready = int_ready[instr.rs1]
            if spec.reads_int_rs2 and int_ready[instr.rs2] > ready:
                ready = int_ready[instr.rs2]
            if spec.reads_fp_rs1 and fp_ready[instr.rs1] > ready:
                ready = fp_ready[instr.rs1]
            if spec.reads_fp_rs2 and fp_ready[instr.rs2] > ready:
                ready = fp_ready[instr.rs2]

            # ---- functional execution (commit-order semantics) ----------
            result = execute(instr, state, meek_handler=meek_handler)

            # ---- issue + complete ----------------------------------------
            pool = self._pools[iclass]
            occupancy = self._occupancy.get(iclass, 1)
            if iclass is InstrClass.LOAD:
                issue = pool.acquire(ready, 1)
                latency = hierarchy.access(result.mem_addr, issue,
                                           AccessKind.LOAD)
                complete = issue + latency
            elif iclass is InstrClass.STORE:
                issue = pool.acquire(ready, 1)
                complete = issue + 1
            else:
                issue = pool.acquire(ready, occupancy)
                complete = issue + self._latency[iclass]

            # ---- control flow / prediction --------------------------------
            if iclass is InstrClass.BRANCH:
                outcome = predictor.predict_and_update(
                    pc, result.taken,
                    target=result.next_pc if result.taken else None)
                if outcome == "mispredict":
                    next_fetch_cycle = complete + redirect_extra
                    fetched_this_cycle = 0
                    current_fetch_line = None
                elif outcome == "btb_bubble":
                    # Decode-stage redirect: short front-end bubble.
                    next_fetch_cycle = fetch_cycle + BTB_BUBBLE_CYCLES
                    fetched_this_cycle = 0
                    current_fetch_line = None
                elif result.taken:
                    next_fetch_cycle = fetch_cycle + 1
                    fetched_this_cycle = 0
                    current_fetch_line = None
            elif iclass is InstrClass.JUMP:
                if instr.op == "jal":
                    if instr.rd == _RA:
                        predictor.predict_call(pc, pc + 4)
                    correct = True  # direct target known at decode
                else:  # jalr
                    if instr.rd == _RA:
                        predictor.predict_call(pc, pc + 4)
                        correct = predictor.predict_indirect(pc,
                                                             result.next_pc)
                    elif instr.rs1 == _RA and instr.rd == 0:
                        correct = predictor.predict_return(pc, result.next_pc)
                    else:
                        correct = predictor.predict_indirect(pc,
                                                             result.next_pc)
                if not correct:
                    next_fetch_cycle = complete + redirect_extra
                    fetched_this_cycle = 0
                    current_fetch_line = None
                else:
                    next_fetch_cycle = fetch_cycle + 1
                    fetched_this_cycle = 0
                    current_fetch_line = None

            # ---- commit ----------------------------------------------------
            commit = complete + 1
            if commit < last_commit_cycle:
                commit = last_commit_cycle
            if commit == last_commit_cycle:
                if committed_this_cycle >= cfg.commit_width:
                    commit += 1
                    committed_this_cycle = 0
            else:
                committed_this_cycle = 0
            commit_slot = committed_this_cycle

            if iclass is InstrClass.STORE:
                # The write buffer retires the store after commit.
                hierarchy.access(result.mem_addr, commit, AccessKind.STORE)

            if commit_hook is not None:
                event = CommitEvent(index, pc, instr, result, commit,
                                    commit_slot)
                adjusted = commit_hook(event)
                if adjusted is not None:
                    if adjusted < commit:
                        raise SimulationError(
                            "commit hook moved commit backwards")
                    if adjusted > commit:
                        committed_this_cycle = 0
                        commit_slot = 0
                    commit = adjusted

            last_commit_cycle = commit
            committed_this_cycle += 1

            # ---- bookkeeping ------------------------------------------------
            rob.append(commit)
            iq.append(issue)
            if iclass is InstrClass.LOAD:
                ldq.append(commit)
            elif iclass is InstrClass.STORE:
                stq.append(commit)
            if spec.writes_int_rd and instr.rd:
                int_ready[instr.rd] = complete
                int_writers.append(commit)
            if spec.writes_fp_rd:
                fp_ready[instr.rd] = complete
                fp_writers.append(commit)

            index += 1
            if result.trap and halt_on_trap:
                halted_by = result.trap
                break

        return RunResult(
            instructions=index,
            cycles=last_commit_cycle,
            state=state,
            predictor_stats=predictor.stats(),
            memory_stats=hierarchy.stats(),
            halted_by=halted_by,
        )


def run_program(program, config=None, **kwargs):
    """Convenience helper: run ``program`` on a fresh big core."""
    core = BigCore(config)
    return core.run(program, **kwargs)
