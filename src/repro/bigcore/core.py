"""OoO superscalar big-core model (SonicBOOM-class, Table II).

Timing-directed-by-functional execution: instructions are executed
functionally in program (commit) order, while an analytical pipeline
model assigns each one fetch/issue/complete/commit cycles subject to:

* fetch width and I-cache latency, with redirect bubbles after taken
  branches and full redirects after mispredictions (TAGE + BTB + RAS);
* register data dependences (renaming removes WAW/WAR, so a value is
  ready when its producer completes);
* functional-unit latency and occupancy (iterative divider blocks its
  unit; pipelined units accept one op per cycle);
* ROB / issue-queue / LDQ / STQ / physical-register occupancy windows;
* D-cache hierarchy latency for loads (stores write at commit through
  a write buffer);
* commit width, in-order commit, and an optional *commit hook* —
  MEEK's DEU/controller gates commit through this hook, which is how
  DC-Buffer backpressure and checker availability slow the big core.

This event-per-instruction formulation is cycle-accurate in the sense
that every constraint is expressed in cycles of the 3.2 GHz clock; it
avoids a per-cycle loop so whole SPEC-profile workloads run in seconds.
"""

from collections import deque

from repro.bigcore.branch import BranchPredictor
from repro.common.config import BigCoreConfig
from repro.common.errors import SimulationError
from repro.isa.instructions import InstrClass
from repro.isa.semantics import execute
from repro.isa.state import ArchState
from repro.mem.hierarchy import AccessKind, MemoryHierarchy
from repro.perf.decode import (CLASS_INDEX, CLASS_LIST, decode_program,
                               slow_kernel_enabled)

#: Fetch-to-rename depth of the modelled front end, in cycles.
FRONTEND_DEPTH = 6

#: Front-end bubble when decode redirects a direction-correct taken
#: branch whose target missed in the BTB.
BTB_BUBBLE_CYCLES = 3

#: Link register: jal/jalr writing x1 are calls; jalr reading x1 is a
#: return (standard RISC-V calling convention).
_RA = 1


class CommitEvent:
    """One committed instruction, as observed by the DEU."""

    __slots__ = ("index", "pc", "instr", "result", "commit_cycle",
                 "commit_slot")

    def __init__(self, index, pc, instr, result, commit_cycle, commit_slot):
        self.index = index
        self.pc = pc
        self.instr = instr
        self.result = result
        self.commit_cycle = commit_cycle
        self.commit_slot = commit_slot


class RunResult:
    """Summary of one program execution on the big core."""

    def __init__(self, instructions, cycles, state, predictor_stats,
                 memory_stats, halted_by):
        self.instructions = instructions
        self.cycles = cycles
        self.state = state
        self.predictor_stats = predictor_stats
        self.memory_stats = memory_stats
        self.halted_by = halted_by

    @property
    def ipc(self):
        if not self.cycles:
            return 0.0
        return self.instructions / self.cycles

    @property
    def cpi(self):
        if not self.instructions:
            return 0.0
        return self.cycles / self.instructions

    def __repr__(self):
        return (f"RunResult({self.instructions} instrs, {self.cycles} cycles, "
                f"IPC={self.ipc:.2f}, halted_by={self.halted_by})")


class _FuPool:
    """A pool of identical functional units with busy tracking."""

    __slots__ = ("free_at",)

    def __init__(self, count):
        self.free_at = [0] * max(1, count)

    def acquire(self, ready, occupancy):
        """Earliest issue >= ready on any unit; occupy it."""
        free_at = self.free_at
        if len(free_at) == 1:
            best_time = free_at[0]
            issue = ready if best_time <= ready else best_time
            free_at[0] = issue + occupancy
            return issue
        best = 0
        best_time = free_at[0]
        for i in range(1, len(free_at)):
            if free_at[i] < best_time:
                best = i
                best_time = free_at[i]
        issue = ready if best_time <= ready else best_time
        free_at[best] = issue + occupancy
        return issue


class BigCore:
    """The big core.  Create once per run (predictor/caches are warm
    state that belongs to a single execution)."""

    def __init__(self, config=None, hierarchy=None):
        self.config = config if config is not None else BigCoreConfig()
        self.hierarchy = (hierarchy if hierarchy is not None
                          else MemoryHierarchy(self.config.memory))
        self.predictor = BranchPredictor(self.config)
        cfg = self.config
        self._pools = {
            InstrClass.ALU: _FuPool(cfg.int_alus),
            InstrClass.MUL: _FuPool(cfg.fp_units),   # shared FP/Mult/Div ALU
            InstrClass.DIV: _FuPool(cfg.fp_units),
            InstrClass.FP: _FuPool(cfg.fp_units),
            InstrClass.FPDIV: _FuPool(cfg.fp_units),
            InstrClass.LOAD: _FuPool(cfg.mem_units),
            InstrClass.STORE: _FuPool(cfg.mem_units),
            InstrClass.BRANCH: _FuPool(cfg.int_alus),
            InstrClass.JUMP: _FuPool(cfg.jump_units),
            InstrClass.CSR: _FuPool(cfg.csr_units),
            InstrClass.SYSTEM: _FuPool(cfg.csr_units),
            InstrClass.MEEK: _FuPool(cfg.csr_units),
        }
        self._latency = {
            InstrClass.ALU: cfg.int_alu_latency,
            InstrClass.MUL: cfg.mul_latency,
            InstrClass.DIV: cfg.div_latency,
            InstrClass.FP: cfg.fp_latency,
            InstrClass.FPDIV: cfg.fp_div_latency,
            InstrClass.BRANCH: 1,
            InstrClass.JUMP: 1,
            InstrClass.CSR: 1,
            InstrClass.SYSTEM: 1,
            InstrClass.MEEK: 1,
        }
        # Occupancy: iterative dividers block the unit; the rest pipeline.
        self._occupancy = {
            InstrClass.DIV: cfg.div_latency,
            InstrClass.FPDIV: cfg.fp_div_latency,
        }

    def run(self, program, max_instructions=None, commit_hook=None,
            meek_handler=None, initial_state=None, halt_on_trap=True):
        """Execute ``program`` to completion.

        ``commit_hook(event) -> cycle`` may return a later commit cycle
        to model MEEK backpressure; it sees every committed instruction
        in order (this is the DEU observation channel).
        """
        cfg = self.config
        state = initial_state
        if state is None:
            state = ArchState(pc=program.entry_pc)
            program.data.apply(state.memory)
        predictor = self.predictor
        hierarchy = self.hierarchy
        if not slow_kernel_enabled():
            # Fast kernel: program-specialized steppers (repro.perf.jit)
            # run the same timing equations from exec-compiled,
            # constant-folded per-instruction closures over the decoded
            # program cache.  REPRO_SLOW_KERNEL=1 keeps the naive
            # decode-every-instruction loop below for A/B equivalence.
            from repro.perf.jit import run_big_core
            instructions, cycles, halted_by = run_big_core(
                self, program, decode_program(program), state,
                max_instructions, commit_hook, meek_handler, halt_on_trap)
            return RunResult(
                instructions=instructions,
                cycles=cycles,
                state=state,
                predictor_stats=self.predictor.stats(),
                memory_stats=hierarchy.stats(),
                halted_by=halted_by,
            )
        fetch = program.fetch
        access = hierarchy.access
        # Per-class lookup tables indexed by the small class integer so
        # the loop never hashes an enum member.
        pools = [self._pools[c] for c in CLASS_LIST]
        latencies = [self._latency.get(c, 1) for c in CLASS_LIST]
        occupancies = [self._occupancy.get(c, 1) for c in CLASS_LIST]
        class_index = CLASS_INDEX
        l1i_hit_latency = hierarchy.config.l1i.hit_latency
        fetch_width = cfg.fetch_width
        commit_width = cfg.commit_width
        rob_entries = cfg.rob_entries
        iq_entries = cfg.issue_queue_entries
        ldq_entries = cfg.ldq_entries
        stq_entries = cfg.stq_entries
        ifetch_kind = AccessKind.IFETCH
        load_kind = AccessKind.LOAD
        store_kind = AccessKind.STORE
        cls_load = class_index[InstrClass.LOAD]
        cls_store = class_index[InstrClass.STORE]
        cls_branch = class_index[InstrClass.BRANCH]
        cls_jump = class_index[InstrClass.JUMP]

        int_ready = [0] * 32
        fp_ready = [0] * 32
        rob = deque()          # commit cycles of in-flight instructions
        iq = deque()           # issue cycles
        ldq = deque()          # commit cycles of in-flight loads
        stq = deque()          # commit cycles of in-flight stores
        int_writers = deque()  # commit cycles of int-PRF writers
        fp_writers = deque()
        int_prf_window = max(1, cfg.int_phys_regs - 32)
        fp_prf_window = max(1, cfg.fp_phys_regs - 32)

        next_fetch_cycle = 0
        fetched_this_cycle = 0
        current_fetch_line = None
        last_commit_cycle = 0
        committed_this_cycle = 0
        redirect_extra = max(1, cfg.mispredict_penalty - FRONTEND_DEPTH)

        index = 0
        halted_by = "end"
        while True:
            if max_instructions is not None and index >= max_instructions:
                halted_by = "limit"
                break
            pc = state.pc
            instr = fetch(pc)
            if instr is None:
                break
            spec = instr.spec
            iclass = class_index[spec.iclass]
            reads_i1 = spec.reads_int_rs1
            reads_i2 = spec.reads_int_rs2
            reads_f1 = spec.reads_fp_rs1
            reads_f2 = spec.reads_fp_rs2
            writes_int = spec.writes_int_rd
            writes_fp = spec.writes_fp_rd

            # ---- fetch -------------------------------------------------
            line = pc >> 6
            if line != current_fetch_line:
                ifetch = access(pc, next_fetch_cycle, ifetch_kind)
                if ifetch > l1i_hit_latency:
                    next_fetch_cycle += ifetch
                    fetched_this_cycle = 0
                current_fetch_line = line
            if fetched_this_cycle >= fetch_width:
                next_fetch_cycle += 1
                fetched_this_cycle = 0
            fetch_cycle = next_fetch_cycle
            fetched_this_cycle += 1

            # ---- rename/dispatch (occupancy windows) --------------------
            rename_cycle = fetch_cycle + FRONTEND_DEPTH
            if len(rob) >= rob_entries:
                t = rob.popleft()
                if t > rename_cycle:
                    rename_cycle = t
            if len(iq) >= iq_entries:
                t = iq.popleft()
                if t > rename_cycle:
                    rename_cycle = t
            if iclass == cls_load and len(ldq) >= ldq_entries:
                t = ldq.popleft()
                if t > rename_cycle:
                    rename_cycle = t
            if iclass == cls_store and len(stq) >= stq_entries:
                t = stq.popleft()
                if t > rename_cycle:
                    rename_cycle = t
            if writes_int and len(int_writers) >= int_prf_window:
                t = int_writers.popleft()
                if t > rename_cycle:
                    rename_cycle = t
            if writes_fp and len(fp_writers) >= fp_prf_window:
                t = fp_writers.popleft()
                if t > rename_cycle:
                    rename_cycle = t

            # ---- operand readiness --------------------------------------
            ready = rename_cycle + 1
            if reads_i1 and int_ready[instr.rs1] > ready:
                ready = int_ready[instr.rs1]
            if reads_i2 and int_ready[instr.rs2] > ready:
                ready = int_ready[instr.rs2]
            if reads_f1 and fp_ready[instr.rs1] > ready:
                ready = fp_ready[instr.rs1]
            if reads_f2 and fp_ready[instr.rs2] > ready:
                ready = fp_ready[instr.rs2]

            # ---- functional execution (commit-order semantics) ----------
            result = execute(instr, state, meek_handler=meek_handler)

            # ---- issue + complete ----------------------------------------
            pool = pools[iclass]
            if iclass == cls_load:
                issue = pool.acquire(ready, 1)
                latency = access(result.mem_addr, issue, load_kind)
                complete = issue + latency
            elif iclass == cls_store:
                issue = pool.acquire(ready, 1)
                complete = issue + 1
            else:
                issue = pool.acquire(ready, occupancies[iclass])
                complete = issue + latencies[iclass]

            # ---- control flow / prediction --------------------------------
            if iclass == cls_branch:
                outcome = predictor.predict_and_update(
                    pc, result.taken,
                    target=result.next_pc if result.taken else None)
                if outcome == "mispredict":
                    next_fetch_cycle = complete + redirect_extra
                    fetched_this_cycle = 0
                    current_fetch_line = None
                elif outcome == "btb_bubble":
                    # Decode-stage redirect: short front-end bubble.
                    next_fetch_cycle = fetch_cycle + BTB_BUBBLE_CYCLES
                    fetched_this_cycle = 0
                    current_fetch_line = None
                elif result.taken:
                    next_fetch_cycle = fetch_cycle + 1
                    fetched_this_cycle = 0
                    current_fetch_line = None
            elif iclass == cls_jump:
                if instr.op == "jal":
                    if instr.rd == _RA:
                        predictor.predict_call(pc, pc + 4)
                    correct = True  # direct target known at decode
                else:  # jalr
                    if instr.rd == _RA:
                        predictor.predict_call(pc, pc + 4)
                        correct = predictor.predict_indirect(pc,
                                                             result.next_pc)
                    elif instr.rs1 == _RA and instr.rd == 0:
                        correct = predictor.predict_return(pc, result.next_pc)
                    else:
                        correct = predictor.predict_indirect(pc,
                                                             result.next_pc)
                if not correct:
                    next_fetch_cycle = complete + redirect_extra
                    fetched_this_cycle = 0
                    current_fetch_line = None
                else:
                    next_fetch_cycle = fetch_cycle + 1
                    fetched_this_cycle = 0
                    current_fetch_line = None

            # ---- commit ----------------------------------------------------
            commit = complete + 1
            if commit < last_commit_cycle:
                commit = last_commit_cycle
            if commit == last_commit_cycle:
                if committed_this_cycle >= commit_width:
                    commit += 1
                    committed_this_cycle = 0
            else:
                committed_this_cycle = 0
            commit_slot = committed_this_cycle

            if iclass == cls_store:
                # The write buffer retires the store after commit.
                access(result.mem_addr, commit, store_kind)

            if commit_hook is not None:
                event = CommitEvent(index, pc, instr, result, commit,
                                    commit_slot)
                adjusted = commit_hook(event)
                if adjusted is not None:
                    if adjusted < commit:
                        raise SimulationError(
                            "commit hook moved commit backwards")
                    if adjusted > commit:
                        committed_this_cycle = 0
                        commit_slot = 0
                    commit = adjusted

            last_commit_cycle = commit
            committed_this_cycle += 1

            # ---- bookkeeping ------------------------------------------------
            rob.append(commit)
            iq.append(issue)
            if iclass == cls_load:
                ldq.append(commit)
            elif iclass == cls_store:
                stq.append(commit)
            if writes_int and instr.rd:
                int_ready[instr.rd] = complete
                int_writers.append(commit)
            if writes_fp:
                fp_ready[instr.rd] = complete
                fp_writers.append(commit)

            index += 1
            if result.trap and halt_on_trap:
                halted_by = result.trap
                break

        return RunResult(
            instructions=index,
            cycles=last_commit_cycle,
            state=state,
            predictor_stats=predictor.stats(),
            memory_stats=hierarchy.stats(),
            halted_by=halted_by,
        )


def run_program(program, config=None, **kwargs):
    """Convenience helper: run ``program`` on a fresh big core."""
    core = BigCore(config)
    return core.run(program, **kwargs)
