"""Data Extraction Unit (DEU, Fig. 3).

A non-intrusive observation channel at the big core's commit stage.
The Commit Detector (CD) watches each instruction's opcode/function
code as it commits and selects the bypass circuits:

* between RCPs it extracts *run-time data* — addresses and data of
  loads, stores and CSR (non-repeatable) operations — straight from
  the LSQ top and CSR file;
* at an RCP it preempts the PRF controllers to read the architectural
  register files (*status data*), which costs a few cycles of commit
  gating because the PRF read ports are time-shared with the ROB.

Per the Sec. III-A footnote, load data sits unprotected in the LSQ
between cache read and LSL duplication, so the cache's parity bit is
copied alongside and re-checked when the data is forwarded.
"""

from repro.fabric.packets import (
    RuntimeEntry,
    RuntimeKind,
    STATUS_CSR_SLOTS,
    StatusSnapshot,
)
class DataExtractionUnit:
    """Commit-stage extraction logic for one big core."""

    def __init__(self, prf_read_ports=4, name="deu"):
        self.name = name
        self.prf_read_ports = prf_read_ports
        self.enabled = True
        self._seq = 0
        # Statistics.
        self.runtime_records = 0
        self.status_records = 0
        self.parity_checks = 0
        self.parity_errors = 0

    def set_enabled(self, enabled):
        """``b.check``: switch the observation channel on or off."""
        self.enabled = bool(enabled)

    @property
    def status_extraction_cycles(self):
        """Commit-gating cycles to read 64 registers + CSR slots
        through ``prf_read_ports`` time-shared ports."""
        registers = 64  # 32 int + 32 fp
        reg_cycles = -(-registers // self.prf_read_ports)
        csr_cycles = -(-STATUS_CSR_SLOTS // self.prf_read_ports)
        return reg_cycles + csr_cycles

    def classify(self, result):
        """Commit Detector decision: the ``(kind, addr, data, size)``
        of the run-time record this commit produces, or ``None`` when
        the instruction needs no logging.

        The single source of truth for which commits are logged —
        shared by :meth:`extract_runtime` and the controller's commit
        paths.  (The exec-compiled steppers in :mod:`repro.perf.jit`
        bake the same mapping into their source; they cross-reference
        this method.)
        """
        if result.is_load:
            return (RuntimeKind.LOAD, result.mem_addr, result.mem_value,
                    result.mem_size)
        if result.is_store:
            return (RuntimeKind.STORE, result.mem_addr, result.mem_value,
                    result.mem_size)
        if result.csr_addr is not None:
            return RuntimeKind.CSR, result.csr_addr, result.rd_value, 8
        return None

    def extract_runtime(self, event):
        """Produce a run-time record for this commit, or ``None`` when
        the instruction needs no logging."""
        if not self.enabled:
            return None
        record = self.classify(event.result)
        if record is None:
            return None
        return self.record_runtime(*record)

    def record_runtime(self, kind, addr, data, size):
        """Stamp and account one run-time record.

        The single source of truth for sequence numbers, parity
        re-checking and record counting — used by the classic
        CommitEvent path above and by the controller's scalar
        ``fast_commit`` path alike.
        """
        self._seq += 1
        entry = RuntimeEntry(kind, addr, data, size, seq=self._seq)
        # Double-check the parity copied from the cache once the data
        # is forwarded (Sec. III-A footnote).
        self.parity_checks += 1
        if not entry.parity_ok:  # pragma: no cover - parity set at creation
            self.parity_errors += 1
        self.runtime_records += 1
        return entry

    def adopt_runtime(self, entry):
        """Stamp and account a record built elsewhere.

        The batched kernel constructs one template entry per committed
        instruction (the record fields are lane-invariant) and hands
        each lane's DEU a copy: the expensive parity computation
        happens once instead of per lane, while sequence numbering and
        record accounting stay per-DEU, exactly as
        :meth:`record_runtime` would have left them.  The template is
        freshly built, so its stored parity is its recomputed parity
        by construction — the double-check is accounted, not repeated.
        """
        self._seq += 1
        entry.seq = self._seq
        self.parity_checks += 1
        self.runtime_records += 1
        return entry

    def extract_status(self, state, rcp_id, seg_id, next_pc):
        """Read the architectural register files at an RCP."""
        if not self.enabled:
            return None
        int_regs, fp_regs = state.register_file_snapshot()
        self.status_records += 1
        return StatusSnapshot(rcp_id=rcp_id, seg_id=seg_id, pc=next_pc,
                              int_regs=int_regs, fp_regs=fp_regs,
                              csrs=state.csrs)

    def stats(self):
        return {
            "runtime_records": self.runtime_records,
            "status_records": self.status_records,
            "parity_checks": self.parity_checks,
            "parity_errors": self.parity_errors,
        }
