"""Branch prediction: a TAGE-style predictor with BTB and RAS.

Table II specifies "TAGE algorithm, 256-entry BTB, 32-entry RAS, 6 TAGE
tables with 2 - 64 bits history".  This is a faithful small TAGE: a
bimodal base predictor plus tagged tables with geometrically growing
history lengths; the longest matching tagged entry provides the
prediction, with standard useful-bit guided allocation on mispredicts.

Because the simulator executes functionally at commit, the predictor is
consulted with the *true* outcome available: the timing model asks
"would you have predicted this correctly?" and charges the redirect
penalty when the answer is no.
"""

from repro.common.bitops import mask


class _TaggedEntry:
    __slots__ = ("tag", "counter", "useful")

    def __init__(self, tag=0, counter=4, useful=0):
        self.tag = tag
        self.counter = counter  # 3-bit: >=4 predicts taken
        self.useful = useful


class BranchPredictor:
    """TAGE + BTB + RAS, sized from a :class:`BigCoreConfig`."""

    BASE_BITS = 12  # 4096-entry bimodal base table

    def __init__(self, config, table_bits=10):
        self.config = config
        self._base = {}
        num_tables = config.tage_tables
        # Geometric history lengths from 2 to 64 bits (Table II).
        self._history_lengths = []
        length = 2
        for _ in range(num_tables):
            self._history_lengths.append(min(length, 64))
            length *= 2
        self._tables = [{} for _ in range(num_tables)]
        self._table_bits = table_bits
        # Precomputed masks: the folds below run once or twice per
        # committed branch, so per-call mask() construction is pure
        # hot-path waste.
        self._index_mask = mask(table_bits)
        self._history_masks = [mask(length)
                               for length in self._history_lengths]
        self._history = 0
        self._btb = {}
        self._btb_order = []
        self._ras = []
        # Statistics.
        self.branches = 0
        self.mispredicts = 0
        self.btb_misses = 0
        self.ras_mispredicts = 0

    # -- internals ---------------------------------------------------

    @staticmethod
    def _fold(value, bits):
        folded = 0
        chunk = (1 << bits) - 1
        while value:
            folded ^= value & chunk
            value >>= bits
        return folded

    def _index(self, pc, table):
        hist = self._history & self._history_masks[table]
        return (self._fold(pc >> 2, self._table_bits)
                ^ self._fold(hist, self._table_bits)
                ^ table) & self._index_mask

    def _tag(self, pc, table):
        hist = self._history & self._history_masks[table]
        return (self._fold(pc >> 2, 8) ^ self._fold(hist, 8)
                ^ (table << 1)) & 0xFF

    def _base_index(self, pc):
        return (pc >> 2) & mask(self.BASE_BITS)

    def _predict_direction(self, pc):
        """Return (taken?, provider_table or None, provider index)."""
        # The PC folds are table-independent; hoist them out of the
        # longest-match scan (they used to be recomputed per table).
        fold = self._fold
        pc_idx_fold = fold(pc >> 2, self._table_bits)
        pc_tag_fold = fold(pc >> 2, 8)
        history = self._history
        hist_masks = self._history_masks
        index_mask = self._index_mask
        table_bits = self._table_bits
        for table in range(len(self._tables) - 1, -1, -1):
            hist = history & hist_masks[table]
            index = (pc_idx_fold ^ fold(hist, table_bits)
                     ^ table) & index_mask
            entry = self._tables[table].get(index)
            if entry is not None and entry.tag == (
                    pc_tag_fold ^ fold(hist, 8) ^ (table << 1)) & 0xFF:
                return entry.counter >= 4, table, index
        counter = self._base.get(self._base_index(pc), 2)
        return counter >= 2, None, None

    # -- public API ----------------------------------------------------

    def predict_and_update(self, pc, taken, target=None):
        """Consult and train the predictor for a conditional branch.

        Returns the redirect class:

        * ``"correct"`` — direction predicted, target known;
        * ``"btb_bubble"`` — direction correct but the BTB missed; the
          decode stage computes the direct target and redirects with a
          short front-end bubble, not a full flush;
        * ``"mispredict"`` — wrong direction, full pipeline redirect at
          branch resolution.
        """
        self.branches += 1
        predicted_taken, provider, index = self._predict_direction(pc)
        correct = predicted_taken == taken

        outcome = "correct" if correct else "mispredict"
        # A direction-correct taken branch still needs a target; on a
        # BTB miss the decode stage redirects (cheap, direct target).
        if taken and correct and target is not None:
            if self._btb.get(pc) != target:
                self.btb_misses += 1
                outcome = "btb_bubble"

        self._train(pc, taken, provider, index, predicted_taken)
        if taken and target is not None:
            self._btb_insert(pc, target)
        self._push_history(taken)
        if outcome == "mispredict":
            self.mispredicts += 1
        return outcome

    def predict_call(self, pc, return_address):
        """A call (jal/jalr with link): push the RAS, always predicted."""
        if len(self._ras) >= self.config.ras_entries:
            self._ras.pop(0)
        self._ras.append(return_address)
        self._push_history(True)
        return True

    def predict_return(self, pc, target):
        """A return (jalr through ra): pop the RAS and compare."""
        self.branches += 1
        predicted = self._ras.pop() if self._ras else None
        self._push_history(True)
        if predicted != target:
            self.ras_mispredicts += 1
            self.mispredicts += 1
            return False
        return True

    def predict_indirect(self, pc, target):
        """An indirect jump: predicted through the BTB."""
        self.branches += 1
        correct = self._btb.get(pc) == target
        self._btb_insert(pc, target)
        self._push_history(True)
        if not correct:
            self.btb_misses += 1
            self.mispredicts += 1
        return correct

    @property
    def mispredict_rate(self):
        if not self.branches:
            return 0.0
        return self.mispredicts / self.branches

    def stats(self):
        return {
            "branches": self.branches,
            "mispredicts": self.mispredicts,
            "mispredict_rate": self.mispredict_rate,
            "btb_misses": self.btb_misses,
            "ras_mispredicts": self.ras_mispredicts,
        }

    # -- training ------------------------------------------------------

    def _push_history(self, taken):
        self._history = ((self._history << 1) | int(taken)) & mask(64)

    def _btb_insert(self, pc, target):
        if pc not in self._btb and len(self._btb) >= self.config.btb_entries:
            victim = self._btb_order.pop(0)
            self._btb.pop(victim, None)
        if pc not in self._btb:
            self._btb_order.append(pc)
        self._btb[pc] = target

    def _train(self, pc, taken, provider, index, predicted_taken):
        if provider is not None:
            entry = self._tables[provider][index]
            if taken and entry.counter < 7:
                entry.counter += 1
            elif not taken and entry.counter > 0:
                entry.counter -= 1
            if predicted_taken == taken:
                entry.useful = min(3, entry.useful + 1)
        else:
            base_index = self._base_index(pc)
            counter = self._base.get(base_index, 2)
            if taken and counter < 3:
                counter += 1
            elif not taken and counter > 0:
                counter -= 1
            self._base[base_index] = counter

        # On a mispredict, allocate in a longer-history table.
        if predicted_taken != taken:
            start = (provider + 1) if provider is not None else 0
            for table in range(start, len(self._tables)):
                new_index = self._index(pc, table)
                existing = self._tables[table].get(new_index)
                if existing is None or existing.useful == 0:
                    self._tables[table][new_index] = _TaggedEntry(
                        tag=self._tag(pc, table),
                        counter=4 if taken else 3)
                    break
                existing.useful -= 1
