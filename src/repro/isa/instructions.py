"""Instruction definitions for the RV64 subset + MEEK extension.

Each operation has an :class:`InstrSpec` describing its assembly
format, timing class and register-file usage; a decoded
:class:`Instruction` is a small slotted object shared between the
functional executor and both timing models.
"""

import enum
from dataclasses import dataclass

from repro.common.errors import DecodeError


class InstrClass(enum.Enum):
    """Timing class: which functional unit / latency an op occupies."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    FP = "fp"
    FPDIV = "fpdiv"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    CSR = "csr"
    SYSTEM = "system"
    MEEK = "meek"


class Fmt(enum.Enum):
    """Assembly/encoding format."""

    R = "r"          # op rd, rs1, rs2
    I = "i"          # op rd, rs1, imm
    SHIFT = "shift"  # op rd, rs1, shamt
    LOAD = "load"    # op rd, imm(rs1)
    S = "s"          # op rs2, imm(rs1)
    B = "b"          # op rs1, rs2, label
    U = "u"          # op rd, imm20
    J = "j"          # op rd, label
    CSR = "csr"      # op rd, csr, rs1
    CSRI = "csri"    # op rd, csr, zimm
    SYS = "sys"      # op            (ecall, ebreak, fence)
    FR = "fr"        # op fd, fs1, fs2
    FR1 = "fr1"      # op fd, fs1    (fsqrt, fmv)
    FCMP = "fcmp"    # op rd, fs1, fs2
    FMVXD = "fmvxd"  # op rd, fs1
    FMVDX = "fmvdx"  # op fd, rs1
    M2R = "m2r"      # meek: op rs1, rs2
    M1R = "m1r"      # meek: op rs1
    MRD = "mrd"      # meek: op rd


@dataclass(frozen=True)
class InstrSpec:
    """Static properties of one operation."""

    name: str
    iclass: InstrClass
    fmt: Fmt
    writes_int_rd: bool = False
    writes_fp_rd: bool = False
    reads_int_rs1: bool = False
    reads_int_rs2: bool = False
    reads_fp_rs1: bool = False
    reads_fp_rs2: bool = False
    privileged: bool = False

    @property
    def is_load(self):
        return self.iclass is InstrClass.LOAD

    @property
    def is_store(self):
        return self.iclass is InstrClass.STORE

    @property
    def is_mem(self):
        return self.iclass in (InstrClass.LOAD, InstrClass.STORE)

    @property
    def is_control(self):
        return self.iclass in (InstrClass.BRANCH, InstrClass.JUMP)


def _r(name, iclass=InstrClass.ALU):
    return InstrSpec(name, iclass, Fmt.R, writes_int_rd=True,
                     reads_int_rs1=True, reads_int_rs2=True)


def _i(name, iclass=InstrClass.ALU):
    return InstrSpec(name, iclass, Fmt.I, writes_int_rd=True,
                     reads_int_rs1=True)


def _shift(name):
    return InstrSpec(name, InstrClass.ALU, Fmt.SHIFT, writes_int_rd=True,
                     reads_int_rs1=True)


def _load(name):
    return InstrSpec(name, InstrClass.LOAD, Fmt.LOAD, writes_int_rd=True,
                     reads_int_rs1=True)


def _store(name):
    return InstrSpec(name, InstrClass.STORE, Fmt.S, reads_int_rs1=True,
                     reads_int_rs2=True)


def _branch(name):
    return InstrSpec(name, InstrClass.BRANCH, Fmt.B, reads_int_rs1=True,
                     reads_int_rs2=True)


def _fr(name, iclass=InstrClass.FP):
    return InstrSpec(name, iclass, Fmt.FR, writes_fp_rd=True,
                     reads_fp_rs1=True, reads_fp_rs2=True)


SPECS = {
    # RV64I register-register.
    "add": _r("add"), "sub": _r("sub"), "sll": _r("sll"), "slt": _r("slt"),
    "sltu": _r("sltu"), "xor": _r("xor"), "srl": _r("srl"), "sra": _r("sra"),
    "or": _r("or"), "and": _r("and"),
    # RV64M.
    "mul": _r("mul", InstrClass.MUL), "mulh": _r("mulh", InstrClass.MUL),
    "div": _r("div", InstrClass.DIV), "divu": _r("divu", InstrClass.DIV),
    "rem": _r("rem", InstrClass.DIV), "remu": _r("remu", InstrClass.DIV),
    # RV64I immediates.
    "addi": _i("addi"), "slti": _i("slti"), "sltiu": _i("sltiu"),
    "xori": _i("xori"), "ori": _i("ori"), "andi": _i("andi"),
    "slli": _shift("slli"), "srli": _shift("srli"), "srai": _shift("srai"),
    # Upper immediates.
    "lui": InstrSpec("lui", InstrClass.ALU, Fmt.U, writes_int_rd=True),
    "auipc": InstrSpec("auipc", InstrClass.ALU, Fmt.U, writes_int_rd=True),
    # Loads / stores.
    "lb": _load("lb"), "lbu": _load("lbu"), "lh": _load("lh"),
    "lhu": _load("lhu"), "lw": _load("lw"), "lwu": _load("lwu"),
    "ld": _load("ld"),
    "sb": _store("sb"), "sh": _store("sh"), "sw": _store("sw"),
    "sd": _store("sd"),
    # Control flow.
    "beq": _branch("beq"), "bne": _branch("bne"), "blt": _branch("blt"),
    "bge": _branch("bge"), "bltu": _branch("bltu"), "bgeu": _branch("bgeu"),
    "jal": InstrSpec("jal", InstrClass.JUMP, Fmt.J, writes_int_rd=True),
    "jalr": InstrSpec("jalr", InstrClass.JUMP, Fmt.I, writes_int_rd=True,
                      reads_int_rs1=True),
    # CSR.
    "csrrw": InstrSpec("csrrw", InstrClass.CSR, Fmt.CSR, writes_int_rd=True,
                       reads_int_rs1=True),
    "csrrs": InstrSpec("csrrs", InstrClass.CSR, Fmt.CSR, writes_int_rd=True,
                       reads_int_rs1=True),
    "csrrwi": InstrSpec("csrrwi", InstrClass.CSR, Fmt.CSRI,
                        writes_int_rd=True),
    # System.
    "ecall": InstrSpec("ecall", InstrClass.SYSTEM, Fmt.SYS),
    "ebreak": InstrSpec("ebreak", InstrClass.SYSTEM, Fmt.SYS),
    "fence": InstrSpec("fence", InstrClass.SYSTEM, Fmt.SYS),
    # RV64D slice.
    "fadd.d": _fr("fadd.d"), "fsub.d": _fr("fsub.d"), "fmul.d": _fr("fmul.d"),
    "fmin.d": _fr("fmin.d"), "fmax.d": _fr("fmax.d"),
    "fdiv.d": _fr("fdiv.d", InstrClass.FPDIV),
    "fsqrt.d": InstrSpec("fsqrt.d", InstrClass.FPDIV, Fmt.FR1,
                         writes_fp_rd=True, reads_fp_rs1=True),
    "fld": InstrSpec("fld", InstrClass.LOAD, Fmt.LOAD, writes_fp_rd=True,
                     reads_int_rs1=True),
    "fsd": InstrSpec("fsd", InstrClass.STORE, Fmt.S, reads_int_rs1=True,
                     reads_fp_rs2=True),
    "fmv.x.d": InstrSpec("fmv.x.d", InstrClass.FP, Fmt.FMVXD,
                         writes_int_rd=True, reads_fp_rs1=True),
    "fmv.d.x": InstrSpec("fmv.d.x", InstrClass.FP, Fmt.FMVDX,
                         writes_fp_rd=True, reads_int_rs1=True),
    "fcvt.d.l": InstrSpec("fcvt.d.l", InstrClass.FP, Fmt.FMVDX,
                          writes_fp_rd=True, reads_int_rs1=True),
    "fcvt.l.d": InstrSpec("fcvt.l.d", InstrClass.FP, Fmt.FMVXD,
                          writes_int_rd=True, reads_fp_rs1=True),
    "feq.d": InstrSpec("feq.d", InstrClass.FP, Fmt.FCMP, writes_int_rd=True,
                       reads_fp_rs1=True, reads_fp_rs2=True),
    "flt.d": InstrSpec("flt.d", InstrClass.FP, Fmt.FCMP, writes_int_rd=True,
                       reads_fp_rs1=True, reads_fp_rs2=True),
    "fle.d": InstrSpec("fle.d", InstrClass.FP, Fmt.FCMP, writes_int_rd=True,
                       reads_fp_rs1=True, reads_fp_rs2=True),
    # MEEK-ISA (Table I).  Privilege annotations: b.* and l.mode are
    # kernel-only; the rest are user-mode (Priv 0).
    "b.hook": InstrSpec("b.hook", InstrClass.MEEK, Fmt.M2R,
                        reads_int_rs1=True, reads_int_rs2=True,
                        privileged=True),
    "b.check": InstrSpec("b.check", InstrClass.MEEK, Fmt.M1R,
                         reads_int_rs1=True, privileged=True),
    "l.mode": InstrSpec("l.mode", InstrClass.MEEK, Fmt.M2R,
                        reads_int_rs1=True, reads_int_rs2=True,
                        privileged=True),
    "l.record": InstrSpec("l.record", InstrClass.MEEK, Fmt.M1R,
                          reads_int_rs1=True),
    "l.apply": InstrSpec("l.apply", InstrClass.MEEK, Fmt.M1R,
                         reads_int_rs1=True),
    "l.jal": InstrSpec("l.jal", InstrClass.MEEK, Fmt.M1R,
                       reads_int_rs1=True),
    "l.rslt": InstrSpec("l.rslt", InstrClass.MEEK, Fmt.MRD,
                        writes_int_rd=True),
}


def instruction_spec(op):
    """Return the :class:`InstrSpec` for operation ``op``."""
    try:
        return SPECS[op]
    except KeyError:
        raise DecodeError(f"unknown operation {op!r}") from None


class Instruction:
    """One decoded instruction.

    ``imm`` holds the immediate (branch/jump immediates are byte
    offsets relative to the instruction's own PC, as in the real ISA).
    Register indices are always present and default to 0; the spec says
    which are meaningful.
    """

    __slots__ = ("op", "rd", "rs1", "rs2", "imm", "spec")

    def __init__(self, op, rd=0, rs1=0, rs2=0, imm=0):
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.spec = instruction_spec(op)

    @property
    def iclass(self):
        return self.spec.iclass

    def __repr__(self):
        return (f"Instruction({self.op!r}, rd={self.rd}, rs1={self.rs1}, "
                f"rs2={self.rs2}, imm={self.imm})")

    def __eq__(self, other):
        if not isinstance(other, Instruction):
            return NotImplemented
        return (self.op == other.op and self.rd == other.rd
                and self.rs1 == other.rs1 and self.rs2 == other.rs2
                and self.imm == other.imm)

    def __hash__(self):
        return hash((self.op, self.rd, self.rs1, self.rs2, self.imm))
