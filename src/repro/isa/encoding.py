"""32-bit machine-word encoding for the RV64 subset + MEEK extension.

The encodings follow the RISC-V base formats (R/I/S/B/U/J) with the
MEEK extension in the *custom-0* opcode space (0b0001011), matching how
the paper slots the new instructions into a mature ISA.  Real encodings
matter for the model: forwarded packets carry bit widths derived from
them and the fault injector flips bits in genuinely meaningful
positions.
"""

from repro.common.bitops import extract_bits, to_signed, to_unsigned
from repro.common.errors import DecodeError
from repro.isa.instructions import Fmt, Instruction, instruction_spec

_OPCODE_OP = 0b0110011
_OPCODE_OP_IMM = 0b0010011
_OPCODE_LOAD = 0b0000011
_OPCODE_STORE = 0b0100011
_OPCODE_BRANCH = 0b1100011
_OPCODE_LUI = 0b0110111
_OPCODE_AUIPC = 0b0010111
_OPCODE_JAL = 0b1101111
_OPCODE_JALR = 0b1100111
_OPCODE_SYSTEM = 0b1110011
_OPCODE_FENCE = 0b0001111
_OPCODE_FP = 0b1010011
_OPCODE_FLD = 0b0000111
_OPCODE_FSD = 0b0100111
_OPCODE_MEEK = 0b0001011  # custom-0

# op -> (opcode, funct3, funct7) for register/immediate style encodings.
_ENC = {
    "add": (_OPCODE_OP, 0b000, 0b0000000),
    "sub": (_OPCODE_OP, 0b000, 0b0100000),
    "sll": (_OPCODE_OP, 0b001, 0b0000000),
    "slt": (_OPCODE_OP, 0b010, 0b0000000),
    "sltu": (_OPCODE_OP, 0b011, 0b0000000),
    "xor": (_OPCODE_OP, 0b100, 0b0000000),
    "srl": (_OPCODE_OP, 0b101, 0b0000000),
    "sra": (_OPCODE_OP, 0b101, 0b0100000),
    "or": (_OPCODE_OP, 0b110, 0b0000000),
    "and": (_OPCODE_OP, 0b111, 0b0000000),
    "mul": (_OPCODE_OP, 0b000, 0b0000001),
    "mulh": (_OPCODE_OP, 0b001, 0b0000001),
    "div": (_OPCODE_OP, 0b100, 0b0000001),
    "divu": (_OPCODE_OP, 0b101, 0b0000001),
    "rem": (_OPCODE_OP, 0b110, 0b0000001),
    "remu": (_OPCODE_OP, 0b111, 0b0000001),
    "addi": (_OPCODE_OP_IMM, 0b000, None),
    "slti": (_OPCODE_OP_IMM, 0b010, None),
    "sltiu": (_OPCODE_OP_IMM, 0b011, None),
    "xori": (_OPCODE_OP_IMM, 0b100, None),
    "ori": (_OPCODE_OP_IMM, 0b110, None),
    "andi": (_OPCODE_OP_IMM, 0b111, None),
    "slli": (_OPCODE_OP_IMM, 0b001, 0b000000),
    "srli": (_OPCODE_OP_IMM, 0b101, 0b000000),
    "srai": (_OPCODE_OP_IMM, 0b101, 0b010000),
    "lb": (_OPCODE_LOAD, 0b000, None),
    "lh": (_OPCODE_LOAD, 0b001, None),
    "lw": (_OPCODE_LOAD, 0b010, None),
    "ld": (_OPCODE_LOAD, 0b011, None),
    "lbu": (_OPCODE_LOAD, 0b100, None),
    "lhu": (_OPCODE_LOAD, 0b101, None),
    "lwu": (_OPCODE_LOAD, 0b110, None),
    "sb": (_OPCODE_STORE, 0b000, None),
    "sh": (_OPCODE_STORE, 0b001, None),
    "sw": (_OPCODE_STORE, 0b010, None),
    "sd": (_OPCODE_STORE, 0b011, None),
    "beq": (_OPCODE_BRANCH, 0b000, None),
    "bne": (_OPCODE_BRANCH, 0b001, None),
    "blt": (_OPCODE_BRANCH, 0b100, None),
    "bge": (_OPCODE_BRANCH, 0b101, None),
    "bltu": (_OPCODE_BRANCH, 0b110, None),
    "bgeu": (_OPCODE_BRANCH, 0b111, None),
    "jalr": (_OPCODE_JALR, 0b000, None),
    "csrrw": (_OPCODE_SYSTEM, 0b001, None),
    "csrrs": (_OPCODE_SYSTEM, 0b010, None),
    "csrrwi": (_OPCODE_SYSTEM, 0b101, None),
    "fld": (_OPCODE_FLD, 0b011, None),
    "fsd": (_OPCODE_FSD, 0b011, None),
    # FP register ops: funct7 selects the operation (RV64D encodings).
    "fadd.d": (_OPCODE_FP, 0b000, 0b0000001),
    "fsub.d": (_OPCODE_FP, 0b000, 0b0000101),
    "fmul.d": (_OPCODE_FP, 0b000, 0b0001001),
    "fdiv.d": (_OPCODE_FP, 0b000, 0b0001101),
    "fsqrt.d": (_OPCODE_FP, 0b000, 0b0101101),
    "fmin.d": (_OPCODE_FP, 0b000, 0b0010101),
    "fmax.d": (_OPCODE_FP, 0b001, 0b0010101),
    "fle.d": (_OPCODE_FP, 0b000, 0b1010001),
    "flt.d": (_OPCODE_FP, 0b001, 0b1010001),
    "feq.d": (_OPCODE_FP, 0b010, 0b1010001),
    "fcvt.l.d": (_OPCODE_FP, 0b000, 0b1100001),
    "fcvt.d.l": (_OPCODE_FP, 0b000, 0b1101001),
    "fmv.x.d": (_OPCODE_FP, 0b000, 0b1110001),
    "fmv.d.x": (_OPCODE_FP, 0b000, 0b1111001),
    # MEEK custom-0: funct3 selects the instruction.
    "b.hook": (_OPCODE_MEEK, 0b000, 0b0000000),
    "b.check": (_OPCODE_MEEK, 0b001, 0b0000000),
    "l.mode": (_OPCODE_MEEK, 0b010, 0b0000000),
    "l.record": (_OPCODE_MEEK, 0b011, 0b0000000),
    "l.apply": (_OPCODE_MEEK, 0b100, 0b0000000),
    "l.jal": (_OPCODE_MEEK, 0b101, 0b0000000),
    "l.rslt": (_OPCODE_MEEK, 0b110, 0b0000000),
}

# Distinct rs2 fields disambiguate fcvt directions sharing a funct7.
_FCVT_RS2 = {"fcvt.l.d": 0b00010, "fcvt.d.l": 0b00010}


def _check_imm(op, imm, bits, signed=True, multiple=1):
    if imm % multiple:
        raise DecodeError(f"{op}: immediate {imm} must be a multiple of {multiple}")
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    if not lo <= imm <= hi:
        raise DecodeError(f"{op}: immediate {imm} out of {bits}-bit range")


def encode(instr):
    """Encode a decoded :class:`Instruction` into a 32-bit word."""
    op = instr.op
    spec = instr.spec
    if op == "lui" or op == "auipc":
        _check_imm(op, instr.imm, 20, signed=False)
        opcode = _OPCODE_LUI if op == "lui" else _OPCODE_AUIPC
        return (instr.imm << 12) | (instr.rd << 7) | opcode
    if op == "jal":
        _check_imm(op, instr.imm, 21, multiple=2)
        imm = to_unsigned(instr.imm, 21)
        word = (extract_bits(imm, 20, 20) << 31
                | extract_bits(imm, 10, 1) << 21
                | extract_bits(imm, 11, 11) << 20
                | extract_bits(imm, 19, 12) << 12
                | instr.rd << 7 | _OPCODE_JAL)
        return word
    if op == "ecall":
        return _OPCODE_SYSTEM
    if op == "ebreak":
        return (1 << 20) | _OPCODE_SYSTEM
    if op == "fence":
        return _OPCODE_FENCE

    if op not in _ENC:
        raise DecodeError(f"no encoding defined for {op!r}")
    opcode, funct3, funct7 = _ENC[op]
    fmt = spec.fmt

    if fmt in (Fmt.R, Fmt.FR, Fmt.FCMP, Fmt.M2R, Fmt.M1R, Fmt.MRD):
        return (funct7 << 25 | instr.rs2 << 20 | instr.rs1 << 15
                | funct3 << 12 | instr.rd << 7 | opcode)
    if fmt in (Fmt.FR1, Fmt.FMVXD, Fmt.FMVDX):
        rs2 = _FCVT_RS2.get(op, 0)
        return (funct7 << 25 | rs2 << 20 | instr.rs1 << 15
                | funct3 << 12 | instr.rd << 7 | opcode)
    if fmt == Fmt.SHIFT:
        _check_imm(op, instr.imm, 6, signed=False)
        return (funct7 << 26 | instr.imm << 20 | instr.rs1 << 15
                | funct3 << 12 | instr.rd << 7 | opcode)
    if fmt in (Fmt.I, Fmt.LOAD):
        _check_imm(op, instr.imm, 12)
        imm = to_unsigned(instr.imm, 12)
        return (imm << 20 | instr.rs1 << 15 | funct3 << 12
                | instr.rd << 7 | opcode)
    if fmt == Fmt.S:
        _check_imm(op, instr.imm, 12)
        imm = to_unsigned(instr.imm, 12)
        return (extract_bits(imm, 11, 5) << 25 | instr.rs2 << 20
                | instr.rs1 << 15 | funct3 << 12
                | extract_bits(imm, 4, 0) << 7 | opcode)
    if fmt == Fmt.B:
        _check_imm(op, instr.imm, 13, multiple=2)
        imm = to_unsigned(instr.imm, 13)
        return (extract_bits(imm, 12, 12) << 31
                | extract_bits(imm, 10, 5) << 25 | instr.rs2 << 20
                | instr.rs1 << 15 | funct3 << 12
                | extract_bits(imm, 4, 1) << 8
                | extract_bits(imm, 11, 11) << 7 | opcode)
    if fmt == Fmt.CSR:
        _check_imm(op, instr.imm, 12, signed=False)
        return (instr.imm << 20 | instr.rs1 << 15 | funct3 << 12
                | instr.rd << 7 | opcode)
    if fmt == Fmt.CSRI:
        _check_imm(op, instr.imm, 12, signed=False)
        # rs1 field carries the 5-bit zimm.
        return (instr.imm << 20 | (instr.rs1 & 0x1F) << 15 | funct3 << 12
                | instr.rd << 7 | opcode)
    raise DecodeError(f"unhandled format {fmt} for {op!r}")


def _decode_fields(word):
    return {
        "opcode": extract_bits(word, 6, 0),
        "rd": extract_bits(word, 11, 7),
        "funct3": extract_bits(word, 14, 12),
        "rs1": extract_bits(word, 19, 15),
        "rs2": extract_bits(word, 24, 20),
        "funct7": extract_bits(word, 31, 25),
    }


_BY_OPCODE_F3 = {}
_BY_OPCODE_F3_F7 = {}
for _op, (_opc, _f3, _f7) in _ENC.items():
    if _f7 is None:
        _BY_OPCODE_F3[(_opc, _f3)] = _op
    else:
        _BY_OPCODE_F3_F7[(_opc, _f3, _f7)] = _op


def decode(word):
    """Decode a 32-bit word back into an :class:`Instruction`."""
    word = to_unsigned(word, 32)
    f = _decode_fields(word)
    opcode = f["opcode"]

    if opcode == _OPCODE_LUI or opcode == _OPCODE_AUIPC:
        op = "lui" if opcode == _OPCODE_LUI else "auipc"
        return Instruction(op, rd=f["rd"], imm=extract_bits(word, 31, 12))
    if opcode == _OPCODE_JAL:
        imm = (extract_bits(word, 31, 31) << 20
               | extract_bits(word, 19, 12) << 12
               | extract_bits(word, 20, 20) << 11
               | extract_bits(word, 30, 21) << 1)
        return Instruction("jal", rd=f["rd"], imm=to_signed(imm, 21))
    if opcode == _OPCODE_FENCE:
        return Instruction("fence")
    if opcode == _OPCODE_SYSTEM and f["funct3"] == 0:
        return Instruction("ebreak" if extract_bits(word, 31, 20) else "ecall")

    key3 = (opcode, f["funct3"])
    key7 = (opcode, f["funct3"], f["funct7"])
    # Shifts hide funct7 in the upper immediate bits.
    if opcode == _OPCODE_OP_IMM and f["funct3"] in (0b001, 0b101):
        funct6 = extract_bits(word, 31, 26)
        shamt = extract_bits(word, 25, 20)
        op = {(0b001, 0b000000): "slli", (0b101, 0b000000): "srli",
              (0b101, 0b010000): "srai"}.get((f["funct3"], funct6))
        if op is None:
            raise DecodeError(f"bad shift encoding {word:#010x}")
        return Instruction(op, rd=f["rd"], rs1=f["rs1"], imm=shamt)

    if key7 in _BY_OPCODE_F3_F7:
        op = _BY_OPCODE_F3_F7[key7]
        spec = instruction_spec(op)
        if spec.fmt in (Fmt.FR1, Fmt.FMVXD, Fmt.FMVDX):
            return Instruction(op, rd=f["rd"], rs1=f["rs1"])
        return Instruction(op, rd=f["rd"], rs1=f["rs1"], rs2=f["rs2"])
    if key3 in _BY_OPCODE_F3:
        op = _BY_OPCODE_F3[key3]
        spec = instruction_spec(op)
        if spec.fmt in (Fmt.I, Fmt.LOAD):
            return Instruction(op, rd=f["rd"], rs1=f["rs1"],
                               imm=to_signed(extract_bits(word, 31, 20), 12))
        if spec.fmt == Fmt.S:
            imm = (extract_bits(word, 31, 25) << 5) | extract_bits(word, 11, 7)
            return Instruction(op, rs1=f["rs1"], rs2=f["rs2"],
                               imm=to_signed(imm, 12))
        if spec.fmt == Fmt.B:
            imm = (extract_bits(word, 31, 31) << 12
                   | extract_bits(word, 7, 7) << 11
                   | extract_bits(word, 30, 25) << 5
                   | extract_bits(word, 11, 8) << 1)
            return Instruction(op, rs1=f["rs1"], rs2=f["rs2"],
                               imm=to_signed(imm, 13))
        if spec.fmt in (Fmt.CSR, Fmt.CSRI):
            return Instruction(op, rd=f["rd"], rs1=f["rs1"],
                               imm=extract_bits(word, 31, 20))
    raise DecodeError(f"cannot decode word {word:#010x}")
