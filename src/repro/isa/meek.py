"""MEEK-ISA extension (Table I of the paper).

Seven instructions split into big-core (``b.*``) and little-core
(``l.*``) groups.  ``b.hook``, ``b.check`` and ``l.mode`` are
kernel-mode (Priv 1) because they can cause contention over little
cores or erroneous memory accesses; the rest are user-mode (Priv 0)
and are issued by the checker-thread runtime.

The *semantics* live in the hardware models (the DEU reacts to
``b.check``, the MSU to ``l.mode``/``l.record``/``l.apply``); this
module defines the stable vocabulary shared by the ISA, the OS model
and the system simulator.
"""

import enum


class MeekOp(enum.Enum):
    """The seven Table I operations."""

    B_HOOK = "b.hook"
    B_CHECK = "b.check"
    L_MODE = "l.mode"
    L_RECORD = "l.record"
    L_APPLY = "l.apply"
    L_JAL = "l.jal"
    L_RSLT = "l.rslt"


#: Mapping from mnemonic to (privilege level, description), matching
#: Table I row-for-row.
MEEK_OPS = {
    "b.hook": (1, "Hook big core rs1 with little core rs2."),
    "b.check": (1, "Enable/Disable checking capacity."),
    "l.mode": (1, "Switch little core rs1's mode to rs2."),
    "l.record": (0, "Record arch. registers to address rs1."),
    "l.apply": (0, "Apply arch. registers from address rs1."),
    "l.jal": (0, "Jump to rs1 (PC of main thread)."),
    "l.rslt": (0, "Return the check results."),
}

#: Operational modes selected by ``l.mode`` (Sec. II: application or
#: check mode).
MODE_APPLICATION = 0
MODE_CHECK = 1

#: Values for ``b.check``'s rs1 operand.
CHECK_DISABLE = 0
CHECK_ENABLE = 1


def is_big_core_op(op):
    """Whether the mnemonic belongs to the big-core group."""
    return op.startswith("b.")


def is_little_core_op(op):
    """Whether the mnemonic belongs to the little-core group."""
    return op.startswith("l.")


def privilege_level(op):
    """Table I privilege level (1 = kernel, 0 = user)."""
    return MEEK_OPS[op][0]
