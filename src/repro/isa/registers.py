"""Register-file naming for the RV64 subset.

Thirty-two integer registers (``x0`` hardwired to zero) and thirty-two
floating-point registers, with the standard ABI aliases so assembly in
tests and examples can read naturally.
"""

from repro.common.errors import AssemblerError

NUM_INT_REGS = 32
NUM_FP_REGS = 32

#: Standard RISC-V ABI names, index-aligned with x0..x31.
ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

_FP_ABI_NAMES = (
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "fs0", "fs1",
    "fa0", "fa1", "fa2", "fa3", "fa4", "fa5", "fa6", "fa7",
    "fs2", "fs3", "fs4", "fs5", "fs6", "fs7", "fs8", "fs9", "fs10", "fs11",
    "ft8", "ft9", "ft10", "ft11",
)

_INT_LOOKUP = {}
_FP_LOOKUP = {}
for _i in range(NUM_INT_REGS):
    _INT_LOOKUP[f"x{_i}"] = _i
    _INT_LOOKUP[ABI_NAMES[_i]] = _i
for _i in range(NUM_FP_REGS):
    _FP_LOOKUP[f"f{_i}"] = _i
    _FP_LOOKUP[_FP_ABI_NAMES[_i]] = _i
# "fp" is the conventional alias for s0/x8.
_INT_LOOKUP["fp"] = 8


def parse_register(token, fp=False):
    """Resolve a register token (``x5``, ``t0``, ``f3``, ``fa0``...).

    Raises :class:`AssemblerError` for unknown names.
    """
    token = token.strip().lower()
    table = _FP_LOOKUP if fp else _INT_LOOKUP
    if token not in table:
        kind = "FP" if fp else "integer"
        raise AssemblerError(f"unknown {kind} register {token!r}")
    return table[token]


def int_reg_name(index):
    """Canonical ABI name for integer register ``index``."""
    if not 0 <= index < NUM_INT_REGS:
        raise AssemblerError(f"integer register index {index} out of range")
    return ABI_NAMES[index]


def fp_reg_name(index):
    """Canonical ABI name for FP register ``index``."""
    if not 0 <= index < NUM_FP_REGS:
        raise AssemblerError(f"FP register index {index} out of range")
    return _FP_ABI_NAMES[index]


# A handful of CSR addresses, enough for the model's CSR traffic.
CSR_ADDRESSES = {
    "cycle": 0xC00,
    "time": 0xC01,
    "instret": 0xC02,
    "mstatus": 0x300,
    "mtvec": 0x305,
    "mepc": 0x341,
    "mcause": 0x342,
    "mhartid": 0xF14,
    # MEEK status CSR: little cores report check results here.
    "meekrslt": 0x7C0,
}

CSR_NAMES = {addr: name for name, addr in CSR_ADDRESSES.items()}


def parse_csr(token):
    """Resolve a CSR token: a known name or a numeric address."""
    token = token.strip().lower()
    if token in CSR_ADDRESSES:
        return CSR_ADDRESSES[token]
    try:
        value = int(token, 0)
    except ValueError:
        raise AssemblerError(f"unknown CSR {token!r}") from None
    if not 0 <= value < 4096:
        raise AssemblerError(f"CSR address {value:#x} out of 12-bit range")
    return value
