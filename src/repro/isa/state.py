"""Architectural state and the flat memory model.

Both cores manipulate the same representation: 32 integer registers
(64-bit unsigned views), 32 FP registers stored as raw 64-bit bit
patterns (so checkpoint comparison and fault injection are exact), a
program counter, and a CSR file.  Memory is a word-granular sparse
store; sub-word accesses read-modify-write the containing aligned
64-bit word, which is all the synthetic workloads require.
"""

import struct

from repro.common.bitops import mask, to_unsigned
from repro.common.errors import SimulationError
from repro.isa.registers import NUM_FP_REGS, NUM_INT_REGS

_WORD_MASK = mask(64)

# Pre-bound struct codecs (identical encodings; skips the per-call
# format-string lookup in the struct module cache).
_PACK_D = struct.Struct("<d").pack
_UNPACK_D = struct.Struct("<d").unpack
_PACK_Q = struct.Struct("<Q").pack
_UNPACK_Q = struct.Struct("<Q").unpack


def float_to_bits(value):
    """Raw 64-bit pattern of a Python float."""
    return _UNPACK_Q(_PACK_D(value))[0]


def bits_to_float(bits):
    """Python float from a raw 64-bit pattern."""
    return _UNPACK_D(_PACK_Q(bits & _WORD_MASK))[0]


class Memory:
    """Sparse 64-bit-word-granular memory."""

    def __init__(self):
        self._words = {}
        self.reads = 0
        self.writes = 0

    def load_word(self, addr):
        """Read the aligned 64-bit word containing ``addr``."""
        self.reads += 1
        return self._words.get(addr & ~0x7, 0)

    def store_word(self, addr, value):
        """Write the aligned 64-bit word containing ``addr``."""
        self.writes += 1
        self._words[addr & ~0x7] = value & _WORD_MASK

    #: Field masks per access size, so the hot load/store paths never
    #: call ``mask()``.
    _SIZE_MASKS = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFFFFFF, 8: _WORD_MASK}

    def load(self, addr, size, signed=False):
        """Read ``size`` bytes (1/2/4/8) at ``addr`` (must not straddle
        an aligned 64-bit word)."""
        offset = addr & 0x7
        if offset % size:
            raise SimulationError(f"misaligned {size}-byte access at {addr:#x}")
        word = self._words.get(addr & ~0x7, 0)
        self.reads += 1
        value = (word >> (offset * 8)) & self._SIZE_MASKS[size]
        if signed and value >> (size * 8 - 1):
            value -= 1 << (size * 8)
        return value

    def store(self, addr, value, size):
        """Write ``size`` bytes (1/2/4/8) at ``addr``."""
        offset = addr & 0x7
        if offset % size:
            raise SimulationError(f"misaligned {size}-byte access at {addr:#x}")
        base = addr & ~0x7
        word = self._words.get(base, 0)
        size_mask = self._SIZE_MASKS[size]
        shift = offset * 8
        word = (word & ~(size_mask << shift)) | ((value & size_mask) << shift)
        self._words[base] = word & _WORD_MASK
        self.writes += 1

    def snapshot(self):
        """A copy of the backing store, for test assertions."""
        return dict(self._words)

    def copy(self):
        clone = Memory()
        clone._words = dict(self._words)
        return clone


class ArchState:
    """Architectural registers + PC + CSRs of one hardware thread."""

    __slots__ = ("int_regs", "fp_regs", "pc", "csrs", "memory", "priv_kernel")

    def __init__(self, memory=None, pc=0, priv_kernel=False):
        self.int_regs = [0] * NUM_INT_REGS
        self.fp_regs = [0] * NUM_FP_REGS
        self.pc = pc
        self.csrs = {}
        self.memory = memory if memory is not None else Memory()
        self.priv_kernel = priv_kernel

    def read_int(self, index):
        return self.int_regs[index]

    def write_int(self, index, value):
        if index:  # x0 is hardwired to zero
            self.int_regs[index] = value & _WORD_MASK

    def read_fp(self, index):
        return self.fp_regs[index]

    def write_fp(self, index, bits):
        self.fp_regs[index] = bits & _WORD_MASK

    def read_csr(self, addr):
        return self.csrs.get(addr, 0)

    def write_csr(self, addr, value):
        self.csrs[addr] = value & _WORD_MASK

    def register_file_snapshot(self):
        """The (int, fp) register values as two tuples.

        This is exactly what an RCP carries: the paper's status data is
        the architectural register files plus CSRs at a checkpoint.
        """
        return tuple(self.int_regs), tuple(self.fp_regs)

    def apply_register_snapshot(self, int_values, fp_values):
        """Overwrite the register files from a checkpoint (``l.apply``)."""
        if len(int_values) != NUM_INT_REGS or len(fp_values) != NUM_FP_REGS:
            raise SimulationError("register snapshot has wrong shape")
        self.int_regs = [v & _WORD_MASK for v in int_values]
        self.int_regs[0] = 0
        self.fp_regs = [v & _WORD_MASK for v in fp_values]

    def copy(self, share_memory=True):
        clone = ArchState(memory=self.memory if share_memory
                          else self.memory.copy(),
                          pc=self.pc, priv_kernel=self.priv_kernel)
        clone.int_regs = list(self.int_regs)
        clone.fp_regs = list(self.fp_regs)
        clone.csrs = dict(self.csrs)
        return clone
