"""Two-pass text assembler.

Supports the full instruction set in :mod:`repro.isa.instructions`,
labels, ``#``/``//`` comments, decimal/hex immediates, and a small set
of pseudo-instructions (``nop``, ``mv``, ``li``, ``j``, ``ret``,
``beqz``, ``bnez``, ``call``).  Branch and jump targets may be labels
or explicit byte offsets.

Example::

    program = assemble('''
        li   t0, 0
        li   t1, 10
    loop:
        addi t0, t0, 1
        bne  t0, t1, loop
        ecall
    ''')
"""

import re

from repro.common.errors import AssemblerError
from repro.isa.instructions import Fmt, Instruction, instruction_spec
from repro.isa.program import DataImage, Program
from repro.isa.registers import parse_csr, parse_register

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_MEM_OPERAND_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


def _parse_imm(token, context):
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"{context}: bad immediate {token!r}") from None


def _split_operands(rest):
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


class _Line:
    """One instruction-bearing source line after pass 1."""

    def __init__(self, op, operands, source, lineno, index):
        self.op = op
        self.operands = operands
        self.source = source
        self.lineno = lineno
        self.index = index  # instruction index within the program


def _expand_pseudo(op, operands, lineno):
    """Rewrite a pseudo-instruction into one or more real ones.

    Returns a list of ``(op, operands)`` pairs, or ``None`` when ``op``
    is not a pseudo-instruction.
    """
    if op == "nop":
        return [("addi", ["x0", "x0", "0"])]
    if op == "mv":
        if len(operands) != 2:
            raise AssemblerError(f"line {lineno}: mv needs 2 operands")
        return [("addi", [operands[0], operands[1], "0"])]
    if op == "li":
        if len(operands) != 2:
            raise AssemblerError(f"line {lineno}: li needs 2 operands")
        value = _parse_imm(operands[1], f"line {lineno}")
        if -2048 <= value <= 2047:
            return [("addi", [operands[0], "x0", str(value)])]
        upper = (value + 0x800) >> 12
        lower = value - (upper << 12)
        if not 0 <= upper <= 0xFFFFF:
            raise AssemblerError(
                f"line {lineno}: li immediate {value} needs more than 32 bits")
        return [("lui", [operands[0], str(upper)]),
                ("addi", [operands[0], operands[0], str(lower)])]
    if op == "j":
        if len(operands) != 1:
            raise AssemblerError(f"line {lineno}: j needs 1 operand")
        return [("jal", ["x0", operands[0]])]
    if op == "call":
        if len(operands) != 1:
            raise AssemblerError(f"line {lineno}: call needs 1 operand")
        return [("jal", ["ra", operands[0]])]
    if op == "ret":
        return [("jalr", ["x0", "ra", "0"])]
    if op == "beqz":
        if len(operands) != 2:
            raise AssemblerError(f"line {lineno}: beqz needs 2 operands")
        return [("beq", [operands[0], "x0", operands[1]])]
    if op == "bnez":
        if len(operands) != 2:
            raise AssemblerError(f"line {lineno}: bnez needs 2 operands")
        return [("bne", [operands[0], "x0", operands[1]])]
    return None


def assemble(source, base=0x1000, name="program", data=None):
    """Assemble ``source`` text into a :class:`Program`."""
    lines = []
    labels = {}
    index = 0
    for lineno, raw in enumerate(source.splitlines(), start=1):
        text = raw.split("#", 1)[0].split("//", 1)[0].strip()
        if not text:
            continue
        # A line may be "label:" or "label: instr ..." or "instr ...".
        while True:
            match = re.match(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$", text)
            if not match:
                break
            label, text = match.group(1), match.group(2).strip()
            if label in labels:
                raise AssemblerError(f"line {lineno}: duplicate label {label!r}")
            labels[label] = base + 4 * index
        if not text:
            continue
        parts = text.split(None, 1)
        op = parts[0].lower()
        operands = _split_operands(parts[1] if len(parts) > 1 else "")
        expanded = _expand_pseudo(op, operands, lineno)
        if expanded is None:
            expanded = [(op, operands)]
        for real_op, real_operands in expanded:
            lines.append(_Line(real_op, real_operands, raw.strip(), lineno,
                               index))
            index += 1

    instructions = [_encode_line(line, labels, base) for line in lines]
    return Program(instructions, labels=labels, base=base, data=data,
                   name=name)


def _branch_target(token, labels, pc, context):
    if token in labels:
        return labels[token] - pc
    return _parse_imm(token, context)


def _encode_line(line, labels, base):
    op = line.op
    context = f"line {line.lineno} ({line.source!r})"
    try:
        spec = instruction_spec(op)
    except Exception:
        raise AssemblerError(f"{context}: unknown instruction {op!r}") from None
    ops = line.operands
    pc = base + 4 * line.index
    fmt = spec.fmt

    def need(count):
        if len(ops) != count:
            raise AssemblerError(
                f"{context}: {op} expects {count} operands, got {len(ops)}")

    if fmt == Fmt.R:
        need(3)
        return Instruction(op, rd=parse_register(ops[0]),
                           rs1=parse_register(ops[1]),
                           rs2=parse_register(ops[2]))
    if fmt in (Fmt.I, Fmt.SHIFT):
        need(3)
        return Instruction(op, rd=parse_register(ops[0]),
                           rs1=parse_register(ops[1]),
                           imm=_parse_imm(ops[2], context))
    if fmt == Fmt.LOAD:
        need(2)
        match = _MEM_OPERAND_RE.match(ops[1].replace(" ", ""))
        if not match:
            raise AssemblerError(f"{context}: expected imm(base), got {ops[1]!r}")
        fp = spec.writes_fp_rd
        return Instruction(op, rd=parse_register(ops[0], fp=fp),
                           rs1=parse_register(match.group(2)),
                           imm=_parse_imm(match.group(1), context))
    if fmt == Fmt.S:
        need(2)
        match = _MEM_OPERAND_RE.match(ops[1].replace(" ", ""))
        if not match:
            raise AssemblerError(f"{context}: expected imm(base), got {ops[1]!r}")
        fp = spec.reads_fp_rs2
        return Instruction(op, rs2=parse_register(ops[0], fp=fp),
                           rs1=parse_register(match.group(2)),
                           imm=_parse_imm(match.group(1), context))
    if fmt == Fmt.B:
        need(3)
        return Instruction(op, rs1=parse_register(ops[0]),
                           rs2=parse_register(ops[1]),
                           imm=_branch_target(ops[2], labels, pc, context))
    if fmt == Fmt.U:
        need(2)
        return Instruction(op, rd=parse_register(ops[0]),
                           imm=_parse_imm(ops[1], context))
    if fmt == Fmt.J:
        need(2)
        return Instruction(op, rd=parse_register(ops[0]),
                           imm=_branch_target(ops[1], labels, pc, context))
    if fmt == Fmt.CSR:
        need(3)
        return Instruction(op, rd=parse_register(ops[0]),
                           imm=parse_csr(ops[1]),
                           rs1=parse_register(ops[2]))
    if fmt == Fmt.CSRI:
        need(3)
        zimm = _parse_imm(ops[2], context)
        if not 0 <= zimm < 32:
            raise AssemblerError(f"{context}: zimm must fit in 5 bits")
        return Instruction(op, rd=parse_register(ops[0]),
                           imm=parse_csr(ops[1]), rs1=zimm)
    if fmt == Fmt.SYS:
        need(0)
        return Instruction(op)
    if fmt == Fmt.FR:
        need(3)
        return Instruction(op, rd=parse_register(ops[0], fp=True),
                           rs1=parse_register(ops[1], fp=True),
                           rs2=parse_register(ops[2], fp=True))
    if fmt == Fmt.FR1:
        need(2)
        return Instruction(op, rd=parse_register(ops[0], fp=True),
                           rs1=parse_register(ops[1], fp=True))
    if fmt == Fmt.FCMP:
        need(3)
        return Instruction(op, rd=parse_register(ops[0]),
                           rs1=parse_register(ops[1], fp=True),
                           rs2=parse_register(ops[2], fp=True))
    if fmt == Fmt.FMVXD:
        need(2)
        return Instruction(op, rd=parse_register(ops[0]),
                           rs1=parse_register(ops[1], fp=True))
    if fmt == Fmt.FMVDX:
        need(2)
        return Instruction(op, rd=parse_register(ops[0], fp=True),
                           rs1=parse_register(ops[1]))
    if fmt == Fmt.M2R:
        need(2)
        return Instruction(op, rs1=parse_register(ops[0]),
                           rs2=parse_register(ops[1]))
    if fmt == Fmt.M1R:
        need(1)
        return Instruction(op, rs1=parse_register(ops[0]))
    if fmt == Fmt.MRD:
        need(1)
        return Instruction(op, rd=parse_register(ops[0]))
    raise AssemblerError(f"{context}: unhandled format {fmt}")
