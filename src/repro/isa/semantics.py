"""Functional execution semantics.

One executor is shared by the big core (which executes functionally in
commit order while the timing model decides *when*) and the little
cores (which re-execute segments for real during checking).  The
executor is deliberately free of any timing knowledge: it maps
``(instruction, state)`` to ``(state', result)`` where the
:class:`ExecResult` carries everything the timing models and the DEU
need — next PC, taken-branch flag, and the address/data of any memory
or CSR operation.

Memory accesses go through a *port* object with ``load``/``store``
methods.  The default port is the state's own memory; a little core in
check mode passes its Load-Store Log port instead, which is how replay
"replaces the L1 cache" (Sec. II).
"""

import math

from repro.common.bitops import mask, to_signed, to_unsigned
from repro.common.errors import PrivilegeError, SimulationError
from repro.isa.instructions import InstrClass
from repro.isa.state import bits_to_float, float_to_bits

_WORD = mask(64)
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class ExecResult:
    """Outcome of functionally executing one instruction."""

    __slots__ = ("next_pc", "taken", "is_load", "is_store", "mem_addr",
                 "mem_size", "mem_value", "csr_addr", "csr_value", "trap",
                 "meek_op", "wrote_int_rd", "wrote_fp_rd", "rd_value")

    def __init__(self, next_pc):
        self.next_pc = next_pc
        self.taken = False
        self.is_load = False
        self.is_store = False
        self.mem_addr = None
        self.mem_size = 0
        self.mem_value = 0
        self.csr_addr = None
        self.csr_value = 0
        self.trap = None
        self.meek_op = None
        self.wrote_int_rd = False
        self.wrote_fp_rd = False
        self.rd_value = 0


def _f2b(value):
    return float_to_bits(value)


def _b2f(bits):
    return bits_to_float(bits)


def _fp_div(a, b):
    if b == 0.0:
        if a == 0.0 or a != a:
            return float("nan")
        sign = math.copysign(1.0, a) * math.copysign(1.0, b)
        return math.copysign(float("inf"), sign)
    try:
        return a / b
    except OverflowError:
        sign = math.copysign(1.0, a) * math.copysign(1.0, b)
        return math.copysign(float("inf"), sign)


def _fp_sqrt(a):
    if a != a or a < 0.0:
        return float("nan")
    return a ** 0.5


def _fcvt_l(value):
    if value != value:  # NaN
        return _INT64_MAX
    if value >= _INT64_MAX:
        return _INT64_MAX
    if value <= _INT64_MIN:
        return _INT64_MIN
    return int(value)


def _div_signed(a, b):
    if b == 0:
        return -1
    if a == _INT64_MIN and b == -1:
        return a
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _rem_signed(a, b):
    if b == 0:
        return a
    if a == _INT64_MIN and b == -1:
        return 0
    r = abs(a) % abs(b)
    return -r if a < 0 else r


def execute(instr, state, mem_port=None, meek_handler=None):
    """Execute ``instr`` at ``state.pc``; mutate ``state``; return
    an :class:`ExecResult`.

    ``mem_port`` overrides the data-memory interface (the little core's
    LSL in check mode).  ``meek_handler(instr, state)`` implements the
    MEEK extension; it may return a next-PC override (``l.jal``).
    """
    op = instr.op
    spec = instr.spec
    pc = state.pc
    mem = mem_port if mem_port is not None else state.memory
    res = ExecResult(pc + 4)
    rs1 = state.int_regs[instr.rs1]
    rs2 = state.int_regs[instr.rs2]
    imm = instr.imm
    iclass = spec.iclass

    if iclass is InstrClass.ALU or iclass is InstrClass.MUL:
        res.rd_value = _int_alu(op, rs1, rs2, imm, pc)
        state.write_int(instr.rd, res.rd_value)
        res.wrote_int_rd = True
    elif iclass is InstrClass.DIV:
        res.rd_value = _int_div(op, rs1, rs2)
        state.write_int(instr.rd, res.rd_value)
        res.wrote_int_rd = True
    elif iclass is InstrClass.LOAD:
        addr = (rs1 + imm) & _WORD
        size, signed = _LOAD_SIZES[op]
        value = mem.load(addr, size, signed=signed)
        res.is_load = True
        res.mem_addr = addr
        res.mem_size = size
        res.mem_value = to_unsigned(value, 64)
        if spec.writes_fp_rd:
            state.write_fp(instr.rd, value)
            res.wrote_fp_rd = True
        else:
            state.write_int(instr.rd, value)
            res.wrote_int_rd = True
        res.rd_value = to_unsigned(value, 64)
    elif iclass is InstrClass.STORE:
        addr = (rs1 + imm) & _WORD
        size = _STORE_SIZES[op]
        value = state.fp_regs[instr.rs2] if spec.reads_fp_rs2 else rs2
        mem.store(addr, value, size)
        res.is_store = True
        res.mem_addr = addr
        res.mem_size = size
        res.mem_value = value & mask(size * 8)
    elif iclass is InstrClass.BRANCH:
        taken = _branch_taken(op, rs1, rs2)
        res.taken = taken
        if taken:
            res.next_pc = (pc + imm) & _WORD
    elif iclass is InstrClass.JUMP:
        if op == "jal":
            state.write_int(instr.rd, pc + 4)
            res.next_pc = (pc + imm) & _WORD
        else:  # jalr
            target = (rs1 + imm) & ~1 & _WORD
            state.write_int(instr.rd, pc + 4)
            res.next_pc = target
        res.taken = True
        res.wrote_int_rd = instr.rd != 0
        res.rd_value = (pc + 4) & _WORD
    elif iclass is InstrClass.CSR:
        res.csr_addr = imm
        old = state.read_csr(imm)
        if op == "csrrw":
            state.write_csr(imm, rs1)
            res.csr_value = rs1
        elif op == "csrrs":
            state.write_csr(imm, old | rs1)
            res.csr_value = old | rs1
        else:  # csrrwi: rs1 field is the zero-extended immediate
            state.write_csr(imm, instr.rs1)
            res.csr_value = instr.rs1
        state.write_int(instr.rd, old)
        res.wrote_int_rd = instr.rd != 0
        res.rd_value = old
    elif iclass is InstrClass.FP or iclass is InstrClass.FPDIV:
        _exec_fp(op, instr, state, res)
    elif iclass is InstrClass.SYSTEM:
        if op == "ecall":
            res.trap = "ecall"
        elif op == "ebreak":
            res.trap = "ebreak"
        # fence: no architectural effect in this model
    elif iclass is InstrClass.MEEK:
        if spec.privileged and not state.priv_kernel:
            raise PrivilegeError(
                f"{op} is a kernel-mode instruction (Table I, Priv 1)")
        res.meek_op = op
        if meek_handler is not None:
            override = meek_handler(instr, state)
            if override is not None:
                res.next_pc = override & _WORD
                res.taken = True
    else:  # pragma: no cover - the classes above are exhaustive
        raise SimulationError(f"no semantics for class {iclass}")

    state.pc = res.next_pc
    return res


def _int_alu(op, rs1, rs2, imm, pc):
    s1 = to_signed(rs1)
    if op == "add":
        return (rs1 + rs2) & _WORD
    if op == "addi":
        return (rs1 + imm) & _WORD
    if op == "sub":
        return (rs1 - rs2) & _WORD
    if op == "and":
        return rs1 & rs2
    if op == "andi":
        return rs1 & to_unsigned(imm, 64)
    if op == "or":
        return rs1 | rs2
    if op == "ori":
        return rs1 | to_unsigned(imm, 64)
    if op == "xor":
        return rs1 ^ rs2
    if op == "xori":
        return rs1 ^ to_unsigned(imm, 64)
    if op == "sll":
        return (rs1 << (rs2 & 0x3F)) & _WORD
    if op == "slli":
        return (rs1 << imm) & _WORD
    if op == "srl":
        return rs1 >> (rs2 & 0x3F)
    if op == "srli":
        return rs1 >> imm
    if op == "sra":
        return to_unsigned(s1 >> (rs2 & 0x3F))
    if op == "srai":
        return to_unsigned(s1 >> imm)
    if op == "slt":
        return 1 if s1 < to_signed(rs2) else 0
    if op == "slti":
        return 1 if s1 < imm else 0
    if op == "sltu":
        return 1 if rs1 < rs2 else 0
    if op == "sltiu":
        return 1 if rs1 < to_unsigned(imm, 64) else 0
    if op == "lui":
        return to_unsigned(imm << 12, 64)
    if op == "auipc":
        return (pc + (imm << 12)) & _WORD
    if op == "mul":
        return (rs1 * rs2) & _WORD
    if op == "mulh":
        return to_unsigned((to_signed(rs1) * to_signed(rs2)) >> 64)
    raise SimulationError(f"no ALU semantics for {op!r}")


def _int_div(op, rs1, rs2):
    if op == "div":
        return to_unsigned(_div_signed(to_signed(rs1), to_signed(rs2)))
    if op == "divu":
        return (rs1 // rs2) if rs2 else _WORD
    if op == "rem":
        return to_unsigned(_rem_signed(to_signed(rs1), to_signed(rs2)))
    if op == "remu":
        return (rs1 % rs2) if rs2 else rs1
    raise SimulationError(f"no divide semantics for {op!r}")


def _branch_taken(op, rs1, rs2):
    if op == "beq":
        return rs1 == rs2
    if op == "bne":
        return rs1 != rs2
    if op == "blt":
        return to_signed(rs1) < to_signed(rs2)
    if op == "bge":
        return to_signed(rs1) >= to_signed(rs2)
    if op == "bltu":
        return rs1 < rs2
    if op == "bgeu":
        return rs1 >= rs2
    raise SimulationError(f"no branch semantics for {op!r}")


def _exec_fp(op, instr, state, res):
    f1 = _b2f(state.fp_regs[instr.rs1])
    f2 = _b2f(state.fp_regs[instr.rs2])
    if op == "fadd.d":
        value = _f2b(f1 + f2)
    elif op == "fsub.d":
        value = _f2b(f1 - f2)
    elif op == "fmul.d":
        try:
            value = _f2b(f1 * f2)
        except OverflowError:
            value = _f2b(float("inf") if (f1 > 0) == (f2 > 0)
                         else float("-inf"))
    elif op == "fdiv.d":
        value = _f2b(_fp_div(f1, f2))
    elif op == "fsqrt.d":
        value = _f2b(_fp_sqrt(f1))
    elif op == "fmin.d":
        value = _f2b(min(f1, f2))
    elif op == "fmax.d":
        value = _f2b(max(f1, f2))
    elif op == "fmv.d.x":
        value = state.int_regs[instr.rs1]
    elif op == "fcvt.d.l":
        value = _f2b(float(to_signed(state.int_regs[instr.rs1])))
    elif op in ("feq.d", "flt.d", "fle.d"):
        if f1 != f1 or f2 != f2:
            result = 0
        elif op == "feq.d":
            result = 1 if f1 == f2 else 0
        elif op == "flt.d":
            result = 1 if f1 < f2 else 0
        else:
            result = 1 if f1 <= f2 else 0
        state.write_int(instr.rd, result)
        res.wrote_int_rd = True
        res.rd_value = result
        return
    elif op == "fmv.x.d":
        value = state.fp_regs[instr.rs1]
        state.write_int(instr.rd, value)
        res.wrote_int_rd = True
        res.rd_value = value
        return
    elif op == "fcvt.l.d":
        value = to_unsigned(_fcvt_l(f1))
        state.write_int(instr.rd, value)
        res.wrote_int_rd = True
        res.rd_value = value
        return
    else:
        raise SimulationError(f"no FP semantics for {op!r}")
    state.write_fp(instr.rd, value)
    res.wrote_fp_rd = True
    res.rd_value = value


_LOAD_SIZES = {
    "lb": (1, True), "lbu": (1, False),
    "lh": (2, True), "lhu": (2, False),
    "lw": (4, True), "lwu": (4, False),
    "ld": (8, False),
    "fld": (8, False),
}

_STORE_SIZES = {"sb": 1, "sh": 2, "sw": 4, "sd": 8, "fsd": 8}
