"""RISC-V RV64 subset + MEEK-ISA extension.

The reproduction executes real programs: a compact but genuine RV64
subset (integer, multiply/divide, loads/stores, branches/jumps, a
float slice, CSR and system ops) plus the seven MEEK instructions of
Table I.  Instructions have real 32-bit encodings so that parity bits
and single-bit fault injection act on the same representation the
hardware would carry.

Public surface:

* :class:`~repro.isa.instructions.Instruction` and
  :class:`~repro.isa.instructions.InstrClass` — the decoded form used
  throughout the simulators.
* :func:`~repro.isa.assembler.assemble` — text assembly to a
  :class:`~repro.isa.program.Program`.
* :func:`~repro.isa.encoding.encode` / :func:`~repro.isa.encoding.decode`
  — 32-bit machine-word round trip.
* :class:`~repro.isa.state.ArchState` and
  :func:`~repro.isa.semantics.execute` — the functional executor shared
  by the big and little cores.
"""

from repro.isa.assembler import assemble
from repro.isa.encoding import decode, encode
from repro.isa.instructions import Instruction, InstrClass, instruction_spec
from repro.isa.meek import MEEK_OPS, MeekOp
from repro.isa.program import DataImage, Program
from repro.isa.registers import (
    ABI_NAMES,
    NUM_FP_REGS,
    NUM_INT_REGS,
    fp_reg_name,
    int_reg_name,
    parse_register,
)
from repro.isa.semantics import execute
from repro.isa.state import ArchState, Memory

__all__ = [
    "ABI_NAMES",
    "ArchState",
    "DataImage",
    "Instruction",
    "InstrClass",
    "MEEK_OPS",
    "MeekOp",
    "Memory",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "Program",
    "assemble",
    "decode",
    "encode",
    "execute",
    "fp_reg_name",
    "instruction_spec",
    "int_reg_name",
    "parse_register",
]
