"""Program container.

A :class:`Program` is an ordered list of decoded instructions with a
base address, a label table, and an optional initial data image.  PCs
are byte addresses; instruction ``i`` lives at ``base + 4*i``.
"""

from repro.common.errors import SimulationError


class DataImage:
    """Initial contents for data memory: ``{address: 64-bit word}``."""

    def __init__(self, words=None):
        self.words = dict(words or {})

    def apply(self, memory):
        """Write the image into a :class:`~repro.isa.state.Memory`."""
        for addr, value in self.words.items():
            memory.store_word(addr, value)

    def __len__(self):
        return len(self.words)


class Program:
    """An assembled program.

    ``instructions`` is fixed at construction: the fast kernel caches
    decoded closure tables keyed on the list's identity and length, so
    mutating it in place after a core has executed the program would
    serve stale closures.  Build a new Program (as the Nzdc transform
    and the difftest shrinker do) instead of editing one.
    """

    def __init__(self, instructions, labels=None, base=0x1000, data=None,
                 name="program"):
        self.instructions = list(instructions)
        self.labels = dict(labels or {})
        self.base = base
        self.data = data if data is not None else DataImage()
        self.name = name

    def __len__(self):
        return len(self.instructions)

    @property
    def entry_pc(self):
        return self.base

    @property
    def end_pc(self):
        """First address past the last instruction; reaching it halts."""
        return self.base + 4 * len(self.instructions)

    def fetch(self, pc):
        """The instruction at byte address ``pc`` (None past the end)."""
        offset = pc - self.base
        if offset < 0 or offset % 4:
            raise SimulationError(f"bad fetch address {pc:#x} "
                                  f"(base {self.base:#x})")
        index = offset // 4
        if index >= len(self.instructions):
            return None
        return self.instructions[index]

    def pc_of_label(self, label):
        if label not in self.labels:
            raise SimulationError(f"unknown label {label!r}")
        return self.labels[label]

    def index_of_pc(self, pc):
        return (pc - self.base) // 4

    def __repr__(self):
        return (f"Program({self.name!r}, {len(self.instructions)} instrs, "
                f"base={self.base:#x})")
