"""Per-benchmark workload profiles.

One profile per SPECint 2006 and PARSEC 3.0 workload evaluated in the
paper (Fig. 6).  The parameters are drawn from published
characterizations of the suites:

* instruction mixes (integer vs FP vs memory vs control);
* branch behaviour — ``branch_randomness`` is the fraction of
  conditional branches whose direction follows loaded (pseudo-random)
  data, which a TAGE predictor cannot learn;
* memory behaviour — working-set size against the cache hierarchy,
  streaming stride vs pointer chasing (mcf/omnetpp);
* static code footprint — gcc/xalancbmk/perlbench-class workloads
  overflow the little core's 4 KB I-cache, which the paper calls out
  in its gap analysis (Sec. V-F);
* ``swaptions`` carries the heavy division content responsible for its
  22% outlier slowdown in Fig. 6.
"""

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.workloads.mixes import InstructionMix


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything the generator needs to synthesize one benchmark."""

    name: str
    suite: str
    mix: InstructionMix
    #: Fraction of data-dependent (unpredictable) conditional branches.
    branch_randomness: float = 0.10
    #: Data working set; drives cache miss rates.
    working_set_kb: int = 256
    #: Words between consecutive streaming accesses.
    stride_words: int = 1
    #: Pointer-chasing access pattern (serialized, cache-hostile).
    pointer_chase: bool = False
    #: Static loop-body size in instructions (code footprint).
    body_instructions: int = 400
    #: Dependency density in [0, 1]: 1 chains every result.
    ilp_chain: float = 0.35
    #: Temporal locality in [0, 1]: high values concentrate accesses on
    #: a few hot lines per block and slow the sweep through the working
    #: set; low values scatter accesses (cache-hostile).
    locality: float = 0.7
    seed_salt: int = 0

    def __post_init__(self):
        if not 0.0 <= self.branch_randomness <= 1.0:
            raise ConfigError(f"{self.name}: branch_randomness out of range")
        if self.working_set_kb < 1:
            raise ConfigError(f"{self.name}: working set too small")
        if self.body_instructions < 50:
            raise ConfigError(f"{self.name}: body too small to be meaningful")
        if not 0.0 <= self.ilp_chain <= 1.0:
            raise ConfigError(f"{self.name}: ilp_chain out of range")
        if not 0.0 <= self.locality <= 1.0:
            raise ConfigError(f"{self.name}: locality out of range")


def _spec(name, **kwargs):
    return WorkloadProfile(name=name, suite="spec06", **kwargs)


def _parsec(name, **kwargs):
    return WorkloadProfile(name=name, suite="parsec", **kwargs)


SPEC_PROFILES = {
    "perlbench": _spec(
        "perlbench",
        mix=InstructionMix(alu=0.439, mul=0.015, div=0.002, load=0.24,
                           store=0.12, branch=0.15, call=0.033, csr=0.001),
        branch_randomness=0.12, working_set_kb=512, body_instructions=1150,
        ilp_chain=0.40, locality=0.60),
    "bzip2": _spec(
        "bzip2",
        mix=InstructionMix(alu=0.489, mul=0.02, load=0.26, store=0.11,
                           branch=0.11, call=0.01, csr=0.001),
        branch_randomness=0.14, working_set_kb=2048, stride_words=2,
        body_instructions=500, ilp_chain=0.35, locality=0.50),
    "gcc": _spec(
        "gcc",
        mix=InstructionMix(alu=0.434, mul=0.01, div=0.001, load=0.25,
                           store=0.13, branch=0.14, call=0.034, csr=0.001),
        branch_randomness=0.15, working_set_kb=4096, body_instructions=1200,
        ilp_chain=0.40, locality=0.45),
    "mcf": _spec(
        "mcf",
        mix=InstructionMix(alu=0.364, mul=0.005, load=0.35, store=0.08,
                           branch=0.18, call=0.02, csr=0.001),
        branch_randomness=0.22, working_set_kb=8192, pointer_chase=True,
        body_instructions=300, ilp_chain=0.55, locality=0.10),
    "gobmk": _spec(
        "gobmk",
        mix=InstructionMix(alu=0.459, mul=0.01, load=0.24, store=0.10,
                           branch=0.16, call=0.03, csr=0.001),
        branch_randomness=0.30, working_set_kb=512, body_instructions=950,
        ilp_chain=0.40, locality=0.70),
    "hmmer": _spec(
        "hmmer",
        mix=InstructionMix(alu=0.559, mul=0.03, load=0.24, store=0.09,
                           branch=0.07, call=0.01, csr=0.001),
        branch_randomness=0.04, working_set_kb=64, stride_words=1,
        body_instructions=400, ilp_chain=0.25, locality=0.90),
    "sjeng": _spec(
        "sjeng",
        mix=InstructionMix(alu=0.469, mul=0.01, div=0.002, load=0.22,
                           store=0.09, branch=0.18, call=0.028, csr=0.001),
        branch_randomness=0.28, working_set_kb=256, body_instructions=800,
        ilp_chain=0.40, locality=0.70),
    "libquantum": _spec(
        "libquantum",
        mix=InstructionMix(alu=0.489, mul=0.03, load=0.27, store=0.09,
                           branch=0.11, call=0.01, csr=0.001),
        branch_randomness=0.02, working_set_kb=4096, stride_words=4,
        body_instructions=250, ilp_chain=0.20, locality=0.25),
    "h264ref": _spec(
        "h264ref",
        mix=InstructionMix(alu=0.499, mul=0.04, load=0.27, store=0.10,
                           branch=0.07, call=0.02, csr=0.001),
        branch_randomness=0.08, working_set_kb=512, stride_words=1,
        body_instructions=700, ilp_chain=0.30, locality=0.80),
    "omnetpp": _spec(
        "omnetpp",
        mix=InstructionMix(alu=0.389, mul=0.01, load=0.31, store=0.12,
                           branch=0.14, call=0.029, csr=0.001),
        branch_randomness=0.20, working_set_kb=4096, pointer_chase=True,
        body_instructions=800, ilp_chain=0.50, locality=0.20),
    "astar": _spec(
        "astar",
        mix=InstructionMix(alu=0.44, mul=0.01, div=0.001, load=0.29,
                           store=0.09, branch=0.15, call=0.018, csr=0.001),
        branch_randomness=0.25, working_set_kb=2048, pointer_chase=True,
        body_instructions=400, ilp_chain=0.45, locality=0.30),
    "xalancbmk": _spec(
        "xalancbmk",
        mix=InstructionMix(alu=0.415, mul=0.01, load=0.27, store=0.11,
                           branch=0.16, call=0.034, csr=0.001),
        branch_randomness=0.16, working_set_kb=2048, body_instructions=1300,
        ilp_chain=0.40, locality=0.50),
}

PARSEC_PROFILES = {
    "blackscholes": _parsec(
        "blackscholes",
        mix=InstructionMix(alu=0.272, mul=0.01, fp=0.407, fpdiv=0.010,
                           load=0.18, store=0.06, branch=0.05, call=0.01,
                           csr=0.001),
        branch_randomness=0.03, working_set_kb=64, body_instructions=350,
        ilp_chain=0.30, locality=0.90),
    "bodytrack": _parsec(
        "bodytrack",
        mix=InstructionMix(alu=0.351, mul=0.02, fp=0.22, fpdiv=0.008,
                           load=0.22, store=0.07, branch=0.09, call=0.02,
                           csr=0.001),
        branch_randomness=0.12, working_set_kb=512, body_instructions=600,
        ilp_chain=0.35, locality=0.70),
    "dedup": _parsec(
        "dedup",
        mix=InstructionMix(alu=0.439, mul=0.03, load=0.27, store=0.14,
                           branch=0.10, call=0.02, csr=0.001),
        branch_randomness=0.12, working_set_kb=2048, stride_words=2,
        body_instructions=600, ilp_chain=0.35, locality=0.45),
    "ferret": _parsec(
        "ferret",
        mix=InstructionMix(alu=0.345, mul=0.02, fp=0.14, fpdiv=0.005,
                           load=0.26, store=0.09, branch=0.12, call=0.019,
                           csr=0.001),
        branch_randomness=0.15, working_set_kb=1024, body_instructions=750,
        ilp_chain=0.40, locality=0.50),
    "fluidanimate": _parsec(
        "fluidanimate",
        mix=InstructionMix(alu=0.290, mul=0.01, fp=0.30, fpdiv=0.012,
                           load=0.24, store=0.08, branch=0.05, call=0.017,
                           csr=0.001),
        branch_randomness=0.06, working_set_kb=512, body_instructions=500,
        ilp_chain=0.35, locality=0.60),
    "streamcluster": _parsec(
        "streamcluster",
        mix=InstructionMix(alu=0.299, mul=0.02, fp=0.26, fpdiv=0.002,
                           load=0.28, store=0.06, branch=0.06, call=0.017,
                           csr=0.001),
        branch_randomness=0.03, working_set_kb=4096, stride_words=4,
        body_instructions=300, ilp_chain=0.25, locality=0.30),
    "freqmine": _parsec(
        "freqmine",
        mix=InstructionMix(alu=0.429, mul=0.02, load=0.26, store=0.11,
                           branch=0.15, call=0.029, csr=0.001),
        branch_randomness=0.18, working_set_kb=1024, body_instructions=850,
        ilp_chain=0.40, locality=0.55),
    "swaptions": _parsec(
        "swaptions",
        mix=InstructionMix(alu=0.249, mul=0.01, div=0.02, fp=0.27,
                           fpdiv=0.06, load=0.21, store=0.06, branch=0.10,
                           call=0.02, csr=0.001),
        branch_randomness=0.08, working_set_kb=128, body_instructions=450,
        ilp_chain=0.40, locality=0.85),
}

_ALL = {}
_ALL.update(SPEC_PROFILES)
_ALL.update(PARSEC_PROFILES)

#: Fig. 6 presentation order.
SPEC_ORDER = ["perlbench", "bzip2", "gcc", "mcf", "gobmk", "hmmer", "sjeng",
              "libquantum", "h264ref", "omnetpp", "astar", "xalancbmk"]
PARSEC_ORDER = ["blackscholes", "bodytrack", "dedup", "ferret",
                "fluidanimate", "streamcluster", "freqmine", "swaptions"]


def get_profile(name):
    """Look up one profile by benchmark name."""
    if name not in _ALL:
        raise ConfigError(f"unknown workload {name!r}; "
                          f"known: {sorted(_ALL)}")
    return _ALL[name]


def all_profiles(suite=None):
    """All profiles, optionally filtered by suite, in paper order."""
    if suite == "spec06":
        return [SPEC_PROFILES[n] for n in SPEC_ORDER]
    if suite == "parsec":
        return [PARSEC_PROFILES[n] for n in PARSEC_ORDER]
    if suite is None:
        return ([SPEC_PROFILES[n] for n in SPEC_ORDER]
                + [PARSEC_PROFILES[n] for n in PARSEC_ORDER])
    raise ConfigError(f"unknown suite {suite!r}")
