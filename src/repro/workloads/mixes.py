"""Instruction-mix description.

Fractions of the dynamic instruction stream per timing class.  They
must sum to 1 (within tolerance); the generator consumes the mix as
sampling weights.
"""

from dataclasses import dataclass, fields

from repro.common.errors import ConfigError

_TOLERANCE = 1e-6


@dataclass(frozen=True)
class InstructionMix:
    """Dynamic instruction-class fractions."""

    alu: float = 0.459
    mul: float = 0.02
    div: float = 0.0
    fp: float = 0.0
    fpdiv: float = 0.0
    load: float = 0.25
    store: float = 0.10
    branch: float = 0.15
    call: float = 0.02
    csr: float = 0.001

    def __post_init__(self):
        total = self.total
        if abs(total - 1.0) > 1e-3:
            raise ConfigError(
                f"instruction mix sums to {total:.4f}, expected 1.0")
        for field in fields(self):
            value = getattr(self, field.name)
            if value < 0:
                raise ConfigError(f"mix fraction {field.name} is negative")

    @property
    def total(self):
        return (self.alu + self.mul + self.div + self.fp + self.fpdiv
                + self.load + self.store + self.branch + self.call
                + self.csr)

    @property
    def memory_fraction(self):
        """Fraction of instructions producing run-time log entries."""
        return self.load + self.store + self.csr

    @property
    def fp_fraction(self):
        return self.fp + self.fpdiv

    def as_weights(self):
        """``(kind, weight)`` pairs for the generator's sampler."""
        return [
            ("alu", self.alu),
            ("mul", self.mul),
            ("div", self.div),
            ("fp", self.fp),
            ("fpdiv", self.fpdiv),
            ("load", self.load),
            ("store", self.store),
            ("branch", self.branch),
            ("call", self.call),
            ("csr", self.csr),
        ]
