"""Synthetic workloads standing in for SPECint 2006 and PARSEC 3.0.

We cannot ship SPEC/PARSEC binaries (licensing, and the model executes
a custom RV64 subset), so each benchmark is represented by a
:class:`~repro.workloads.profiles.WorkloadProfile` — an instruction
mix, branch behaviour, working-set size, access pattern and code
footprint chosen from published characterizations — and a deterministic
generator that expands the profile into a real program for the
simulator.  What MEEK's evaluation measures (checker keep-up vs
instruction mix, forwarding bandwidth vs memory intensity, divider
pressure in swaptions, code-footprint pressure on the little I-cache)
depends exactly on these properties, which is why the substitution
preserves the result shapes (see DESIGN.md).
"""

from repro.workloads.generator import generate_program
from repro.workloads.mixes import InstructionMix
from repro.workloads.profiles import (
    PARSEC_PROFILES,
    SPEC_PROFILES,
    WorkloadProfile,
    all_profiles,
    get_profile,
)

__all__ = [
    "InstructionMix",
    "PARSEC_PROFILES",
    "SPEC_PROFILES",
    "WorkloadProfile",
    "all_profiles",
    "generate_program",
    "get_profile",
]
