"""Synthetic program generator.

Expands a :class:`~repro.workloads.profiles.WorkloadProfile` into a
real assembly program: an outer loop whose body realizes the profile's
instruction mix, memory behaviour and branch behaviour, plus a few
callable helper functions (exercising the RAS) and a data image.

Design notes:

* **Memory access** walks a power-of-two working set through a block
  pointer (``x26``) refreshed every few accesses, with 12-bit signed
  offsets for the individual loads/stores.  Pointer-chasing profiles
  derive the next block address from loaded data, serializing the
  address chain exactly like mcf's linked structures.
* **Unpredictable branches** test bits of a register-resident LCG
  (``x27``) — a pseudo-random sequence a TAGE predictor cannot learn —
  while predictable branches test loop-counter bits it learns quickly.
* **Divisions** guard the divisor with ``ori 1`` so semantics stay
  total; swaptions' profile emits enough ``div``/``fdiv.d``/``fsqrt.d``
  to recreate its little-core divider bottleneck.
* Registers ``x28–x31`` and ``f28–f31`` are never touched: they are
  reserved as scratch for the Nzdc duplication transform
  (:mod:`repro.baselines.nzdc`).

Everything is deterministic in ``(profile, seed)``.
"""

from repro.common.prng import DeterministicRng
from repro.isa.assembler import assemble
from repro.isa.program import DataImage

_BASE_ADDRESS = 0x100000
_INT_POOL = list(range(5, 16))          # x5..x15
_FP_POOL = list(range(0, 8))            # f0..f7
_FP_DIVISOR = 8                         # f8: safe non-zero divisor
_FP_ONE = 10                            # f10
_LCG_MULT_REG = 25                      # x25
_LCG_STATE_REG = 27                     # x27
_BLOCK_PTR = 26                         # x26
_SCRATCH = 24                           # x24
_FUNC_SCRATCH = 16                      # x16
_MAX_OFFSET = 2040
_FUNC_COUNT = 4
_FUNC_BODY = 5

_ALU_RR = ["add", "sub", "xor", "or", "and"]
_ALU_RI = ["addi", "xori", "ori", "andi"]
_FP_RR = ["fadd.d", "fmul.d", "fsub.d"]


class _BodyBuilder:
    """Accumulates the loop body for one profile."""

    def __init__(self, profile, rng):
        self.profile = profile
        self.rng = rng
        self.lines = []
        self.counts = {kind: 0 for kind, _ in profile.mix.as_weights()}
        self.emitted = 0
        self._last_int = _INT_POOL[0]
        self._last_fp = _FP_POOL[0]
        self._skip_label = 0
        self._mem_ops = 0
        self._branch_sites = 0
        # Locality shapes the per-block access window and how often the
        # block pointer advances through the working set.
        window = 192 + int((1.0 - profile.locality) * (_MAX_OFFSET - 192))
        offset_cap = min(window, profile.working_set_kb * 1024 - 8)
        self._offsets = [8 * i for i in range(0, offset_cap // 8 + 1)]
        self._refresh_period = 3 + int(profile.locality * 9)
        self._fp_loads = profile.mix.fp_fraction > 0.10
        # Streaming profiles walk their block sequentially (spatial
        # locality a next-line prefetcher can follow); pointer chasers
        # scatter within the block.
        self._sequential = not profile.pointer_chase
        self._next_offset = 0

    # -- small helpers ----------------------------------------------------

    def _emit(self, text, kind):
        self.lines.append(f"    {text}")
        if kind is not None:
            self.counts[kind] = self.counts.get(kind, 0) + 1
        self.emitted += 1

    def _label(self, name):
        self.lines.append(f"{name}:")

    def _pick_src(self):
        if self.rng.bernoulli(self.profile.ilp_chain):
            return self._last_int
        return self.rng.choice(_INT_POOL)

    def _pick_dst(self):
        dst = self.rng.choice(_INT_POOL)
        self._last_int = dst
        return dst

    def _pick_fp_src(self):
        if self.rng.bernoulli(self.profile.ilp_chain):
            return self._last_fp
        return self.rng.choice(_FP_POOL)

    def _pick_fp_dst(self):
        dst = self.rng.choice(_FP_POOL)
        self._last_fp = dst
        return dst

    def _offset(self):
        if self._sequential:
            offset = self._offsets[self._next_offset % len(self._offsets)]
            self._next_offset += 1
            return offset
        return self.rng.choice(self._offsets)

    # -- templates -----------------------------------------------------------

    def emit_alu(self):
        if self.rng.bernoulli(0.35):
            op = self.rng.choice(_ALU_RI)
            imm = self.rng.randint(-512, 511)
            if op == "andi":
                imm = self.rng.randint(0, 511)
            self._emit(f"{op} x{self._pick_dst()}, x{self._pick_src()}, {imm}",
                       "alu")
        elif self.rng.bernoulli(0.15):
            op = self.rng.choice(["slli", "srli", "srai"])
            shamt = self.rng.randint(1, 31)
            self._emit(f"{op} x{self._pick_dst()}, x{self._pick_src()}, "
                       f"{shamt}", "alu")
        else:
            op = self.rng.choice(_ALU_RR)
            self._emit(f"{op} x{self._pick_dst()}, x{self._pick_src()}, "
                       f"x{self.rng.choice(_INT_POOL)}", "alu")

    def emit_mul(self):
        self._emit(f"mul x{self._pick_dst()}, x{self._pick_src()}, "
                   f"x{self.rng.choice(_INT_POOL)}", "mul")

    def emit_div(self):
        # Guard the divisor so division never traps semantics.
        src = self._pick_src()
        self._emit(f"ori x{_SCRATCH}, x{src}, 1", "alu")
        op = self.rng.choice(["div", "divu", "rem"])
        self._emit(f"{op} x{self._pick_dst()}, "
                   f"x{self.rng.choice(_INT_POOL)}, x{_SCRATCH}", "div")

    def emit_fp(self):
        op = self.rng.choice(_FP_RR)
        self._emit(f"{op} f{self._pick_fp_dst()}, f{self._pick_fp_src()}, "
                   f"f{self.rng.choice(_FP_POOL)}", "fp")

    def emit_fpdiv(self):
        if self.rng.bernoulli(0.25):
            self._emit(f"fsqrt.d f{self._pick_fp_dst()}, "
                       f"f{self._pick_fp_src()}", "fpdiv")
        else:
            self._emit(f"fdiv.d f{self._pick_fp_dst()}, "
                       f"f{self._pick_fp_src()}, f{_FP_DIVISOR}", "fpdiv")

    def _refresh_block_pointer(self):
        stride_bytes = 8 * self.profile.stride_words * 4
        self._emit(f"addi x21, x21, {min(stride_bytes, 2047)}", "alu")
        self._emit("and x21, x21, x22", "alu")
        self._emit("add x26, x20, x21", "alu")

    def emit_load(self):
        self._mem_ops += 1
        if self._mem_ops % self._refresh_period == 0:
            self._refresh_block_pointer()
        if self.profile.pointer_chase and self._mem_ops % 2 == 0:
            # Chase: the next block address depends on the loaded value.
            self._emit(f"ld x{_SCRATCH}, {self._offset()}(x{_BLOCK_PTR})",
                       "load")
            self._emit(f"add x{_SCRATCH}, x{_SCRATCH}, x{_LCG_STATE_REG}",
                       "alu")
            self._emit(f"and x{_SCRATCH}, x{_SCRATCH}, x22", "alu")
            self._emit(f"add x{_BLOCK_PTR}, x20, x{_SCRATCH}", "alu")
            return
        if self._fp_loads and self.rng.bernoulli(0.4):
            self._emit(f"fld f{self._pick_fp_dst()}, "
                       f"{self._offset()}(x{_BLOCK_PTR})", "load")
        else:
            self._emit(f"ld x{self._pick_dst()}, "
                       f"{self._offset()}(x{_BLOCK_PTR})", "load")

    def emit_store(self):
        self._mem_ops += 1
        if self._mem_ops % self._refresh_period == 0:
            self._refresh_block_pointer()
        if self._fp_loads and self.rng.bernoulli(0.3):
            self._emit(f"fsd f{self._pick_fp_src()}, "
                       f"{self._offset()}(x{_BLOCK_PTR})", "store")
        else:
            op = self.rng.choice(["sd", "sd", "sd", "sw"])
            self._emit(f"{op} x{self._pick_src()}, "
                       f"{self._offset()}(x{_BLOCK_PTR})", "store")

    def emit_branch(self):
        self._branch_sites += 1
        label = f"skip_{self._skip_label}"
        self._skip_label += 1
        if self._branch_sites % 8 == 0:
            # Re-seed the register LCG so bit patterns keep moving.
            self._emit(f"mul x{_LCG_STATE_REG}, x{_LCG_STATE_REG}, "
                       f"x{_LCG_MULT_REG}", "mul")
            self._emit(f"addi x{_LCG_STATE_REG}, x{_LCG_STATE_REG}, 1013",
                       "alu")
        if self.rng.bernoulli(self.profile.branch_randomness):
            # Unpredictable: tests a pseudo-random LCG bit.
            bit = self.rng.randint(3, 23)
            self._emit(f"srli x{_SCRATCH}, x{_LCG_STATE_REG}, {bit}", "alu")
            self._emit(f"andi x{_SCRATCH}, x{_SCRATCH}, 1", "alu")
            self._emit(f"bne x{_SCRATCH}, x0, {label}", "branch")
        elif self.rng.bernoulli(0.75):
            # Heavily biased site (the common case in real code): the
            # bimodal base predictor learns it after one visit.
            op = self.rng.choice(["bne", "beq"])
            self._emit(f"{op} x18, x19, {label}", "branch")
        else:
            # Short repeating pattern on loop-counter bits.
            mask = self.rng.choice([1, 3, 7])
            self._emit(f"andi x{_SCRATCH}, x18, {mask}", "alu")
            self._emit(f"bne x{_SCRATCH}, x0, {label}", "branch")
        self.emit_alu()  # the skipped shadow
        self._label(label)

    def emit_call(self):
        index = self.rng.randint(0, _FUNC_COUNT - 1)
        self._emit(f"jal x1, helper_{index}", "call")

    def emit_csr(self):
        self._emit(f"csrrs x{self._pick_dst()}, 0x300, x0", "csr")

    # -- body assembly -----------------------------------------------------

    def build(self):
        """Emit ~body_instructions lines honouring the mix."""
        mix = self.profile.mix
        body = self.profile.body_instructions
        targets = {kind: weight * body for kind, weight in mix.as_weights()}
        emitters = {
            "alu": self.emit_alu, "mul": self.emit_mul,
            "div": self.emit_div, "fp": self.emit_fp,
            "fpdiv": self.emit_fpdiv, "load": self.emit_load,
            "store": self.emit_store, "branch": self.emit_branch,
            "call": self.emit_call, "csr": self.emit_csr,
        }
        while self.emitted < body:
            remaining = [(kind, targets[kind] - self.counts[kind])
                         for kind in targets]
            candidates = [(k, r) for k, r in remaining if r > 0]
            if not candidates:
                self.emit_alu()
                continue
            kinds = [k for k, _ in candidates]
            weights = [r for _, r in candidates]
            kind = self.rng.choices(kinds, weights=weights)[0]
            emitters[kind]()
        return self.lines


def _prologue(profile, iterations, rng):
    ws_bytes = profile.working_set_kb * 1024
    lines = [
        f"    li x20, {_BASE_ADDRESS}",
        "    li x21, 0",
        # Mask keeps the offset inside the working set *and* 8-aligned
        # (the working set is a power of two, so ws-8 is ...111000).
        f"    li x22, {ws_bytes - 8}",
        "    add x26, x20, x21",
        "    li x18, 0",
        f"    li x19, {iterations}",
        "    li x25, 0x41C64E6D",
        f"    li x27, {rng.randint(1, 0x7FFFFFFF)}",
    ]
    # FP constants: f0..f7 from small integers, f8 a safe divisor,
    # f10 = 1.0.
    for reg in _FP_POOL:
        value = rng.randint(1, 97)
        lines.append(f"    li x{_SCRATCH}, {value}")
        lines.append(f"    fcvt.d.l f{reg}, x{_SCRATCH}")
    lines.append(f"    li x{_SCRATCH}, 3")
    lines.append(f"    fcvt.d.l f{_FP_DIVISOR}, x{_SCRATCH}")
    lines.append(f"    li x{_SCRATCH}, 1")
    lines.append(f"    fcvt.d.l f{_FP_ONE}, x{_SCRATCH}")
    return lines


def _functions(rng):
    lines = []
    for index in range(_FUNC_COUNT):
        lines.append(f"helper_{index}:")
        for _ in range(_FUNC_BODY):
            op = rng.choice(_ALU_RR)
            lines.append(f"    {op} x{_FUNC_SCRATCH}, x{_FUNC_SCRATCH}, "
                         f"x{rng.choice(_INT_POOL)}")
        lines.append("    ret")
    return lines


def _data_image(profile, rng):
    """Initial data: pseudo-random words near the base of the working
    set (capped so multi-megabyte sets stay cheap to build)."""
    ws_words = profile.working_set_kb * 1024 // 8
    init_words = min(ws_words, 4096)
    words = {}
    for i in range(init_words):
        words[_BASE_ADDRESS + 8 * i] = rng.bit64()
    return DataImage(words)


def generate_program(profile, dynamic_instructions=30_000, seed=0):
    """Generate the synthetic program for ``profile``.

    ``dynamic_instructions`` sets the approximate committed-instruction
    count; the loop trip count is derived from the realized body size.
    """
    rng = DeterministicRng(seed, name=profile.name).fork(profile.name)
    builder = _BodyBuilder(profile, rng.fork("body"))
    body_lines = builder.build()
    calls_per_iter = builder.counts.get("call", 0)
    cost_per_iter = builder.emitted + calls_per_iter * (_FUNC_BODY + 1) + 3
    iterations = max(1, round(dynamic_instructions / cost_per_iter))

    lines = _prologue(profile, iterations, rng.fork("prologue"))
    lines.append("main_loop:")
    lines.extend(body_lines)
    lines.append("    addi x18, x18, 1")
    lines.append("    beq x18, x19, main_done")
    lines.append("    jal x0, main_loop")
    lines.append("main_done:")
    lines.append("    ecall")
    lines.extend(_functions(rng.fork("funcs")))

    data = _data_image(profile, rng.fork("data"))
    return assemble("\n".join(lines), name=profile.name, data=data)
