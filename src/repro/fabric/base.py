"""Fabric interface and shared resource-counter machinery.

A fabric accepts a packet's flits (bandwidth-limited by a shared
next-free-slot counter) and delivers the payload to each destination
after a routing latency.  Contention is modelled exactly where the
paper found it: on the shared transfer slots — when the big core
commits multiple memory operations per cycle, or bursts a multi-flit
RCP, accept times queue up and the DC-Buffers fill.
"""

from repro.common.errors import ConfigError
from repro.fabric.packets import RUNTIME_RECORD_BITS


class DeliveryReport:
    """Outcome of submitting one packet to the fabric."""

    __slots__ = ("accept_times", "delivery_times", "last_accept")

    def __init__(self, accept_times, delivery_times):
        self.accept_times = accept_times
        self.delivery_times = delivery_times  # dest core id -> cycle
        self.last_accept = accept_times[-1] if accept_times else 0


class ForwardingFabric:
    """Base class: shared-bandwidth acceptance + per-dest delivery."""

    def __init__(self, config, num_little_cores, clock_ratio=2):
        if config.packets_per_cycle < 1:
            raise ConfigError("fabric needs at least one slot per cycle")
        self.config = config
        self.num_little_cores = num_little_cores
        self.clock_ratio = clock_ratio
        self._next_slot = 0.0
        self.flits_carried = 0
        self.packets_carried = 0
        self.busy_time = 0.0
        #: Fault-injection hook ``(packet, now)`` — installed by the
        #: controller when a campaign targets ``fabric.status``;
        #: corrupts the in-flight payload without touching timing.
        self.fault_hook = None

    # -- hooks for subclasses -------------------------------------------

    def _slot_interval(self):
        """Big-core cycles between two flit-accept slots."""
        raise NotImplementedError

    def _route_latency(self, dest):
        """Big-core cycles from last accept to delivery at ``dest``."""
        raise NotImplementedError

    def _transfers_for(self, packet):
        """How many times the flits traverse the fabric.

        A multicast fabric sends once regardless of destination count;
        a unicast bus repeats the transfer per destination.
        """
        if self.config.multicast:
            return 1
        return max(1, len(packet.dests))

    # -- public API ------------------------------------------------------

    def send(self, packet, now):
        """Accept ``packet`` starting at ``now``; return the report."""
        if self.fault_hook is not None:
            self.fault_hook(packet, now)
        flits = packet.flit_count(self.config.width_bits)
        transfers = self._transfers_for(packet)
        interval = self._slot_interval()
        # The first slot cannot start before either the shared counter
        # or ``now``; after that every slot is exactly one interval
        # later, so the whole accept schedule fast-forwards from the
        # start cursor without re-arbitrating per flit.  (Repeated
        # addition, not multiplication, to keep the float sequence
        # bit-identical to the original per-slot loop.)
        total = flits * transfers
        cursor = self._next_slot
        fnow = float(now)
        if fnow > cursor:
            cursor = fnow
        accept_times = []
        append = accept_times.append
        for _ in range(total):
            cursor += interval
            append(cursor)
        self._next_slot = cursor
        self.flits_carried += total
        self.packets_carried += 1
        self.busy_time += total * interval

        last = accept_times[-1]
        delivery_times = {}
        for dest in packet.dests:
            delivery_times[dest] = last + self._route_latency(dest)
        return DeliveryReport(accept_times, delivery_times)

    def send_runtime(self, dest, now):
        """Fast path for the continuous run-time record stream.

        A run-time packet always has exactly one destination (the
        active segment's core), so the transfer count is 1 on every
        fabric kind.  Returns ``(accept_times, delivery_time)`` with
        values identical to :meth:`send` on an equivalent packet — a
        subclass that overrides :meth:`send` or ``_transfers_for``
        keeps its behavior, because this path falls back to the real
        ``send`` for it.  The ``_slot_interval``/``_route_latency``
        hooks are still consulted per call.
        """
        flits = getattr(self, "_runtime_flits", None)
        if flits is None:
            flits = -(-RUNTIME_RECORD_BITS // self.config.width_bits)
            self._runtime_flits = flits
            cls = type(self)
            self._runtime_fast_ok = (
                cls.send is ForwardingFabric.send
                and cls._transfers_for is ForwardingFabric._transfers_for)
        if not self._runtime_fast_ok:
            from repro.fabric.packets import Packet, PacketKind
            packet = Packet(PacketKind.RUNTIME, None, 0, now, dests=(dest,))
            report = self.send(packet, now)
            return report.accept_times, report.delivery_times[dest]
        interval = self._slot_interval()
        cursor = self._next_slot
        fnow = float(now)
        if fnow > cursor:
            cursor = fnow
        if flits == 1:
            cursor += interval
            accept_times = [cursor]
        else:
            accept_times = []
            append = accept_times.append
            for _ in range(flits):
                cursor += interval
                append(cursor)
        self._next_slot = cursor
        self.flits_carried += flits
        self.packets_carried += 1
        self.busy_time += flits * interval
        return accept_times, cursor + self._route_latency(dest)

    def utilization(self, elapsed_cycles):
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed_cycles)

    def stats(self):
        return {
            "kind": self.config.kind,
            "packets": self.packets_carried,
            "flits": self.flits_carried,
            "busy_time": self.busy_time,
        }


def build_fabric(config, num_little_cores, clock_ratio=2):
    """Factory: construct the fabric matching ``config.kind``."""
    from repro.fabric.axi import AxiInterconnect
    from repro.fabric.hmnoc import HmNocFabric, IdealFabric

    if config.kind == "axi":
        return AxiInterconnect(config, num_little_cores, clock_ratio)
    if config.kind == "ideal":
        return IdealFabric(config, num_little_cores, clock_ratio)
    return HmNocFabric(config, num_little_cores, clock_ratio)
