"""Packet formats carried by the forwarding fabric.

Two kinds, mirroring the DC-Buffer's two channels (Sec. III-B):

* **status** packets carry a Register Checkpoint — the architectural
  integer and FP register files, CSR file and next PC captured at an
  RCP.  They are large (kilobits) and bursty.
* **run-time** packets carry one load/store/CSR record — address,
  data, size, and the parity bit copied from the cache (Sec. III-A
  footnote).  They are small and continuous.

Sizes in bits are computed from the real field widths so that flit
counts over a 128-bit AXI bus vs the 256-bit F2 differ exactly as in
the paper's bottleneck analysis.
"""

import enum

from repro.common.bitops import parity as parity_of
from repro.isa.registers import NUM_FP_REGS, NUM_INT_REGS


class PacketKind(enum.Enum):
    STATUS = "status"
    RUNTIME = "runtime"


class RuntimeKind(enum.Enum):
    LOAD = "load"
    STORE = "store"
    CSR = "csr"


#: Field widths (bits) for a run-time record: kind+size metadata,
#: 64-bit address, 64-bit data, parity.
RUNTIME_RECORD_BITS = 8 + 64 + 64 + 1

#: Metadata bits on a status packet (RCP id, segment id, PC).
STATUS_HEADER_BITS = 32 + 32 + 64

#: CSRs captured per checkpoint (address + value each).
STATUS_CSR_SLOTS = 4
STATUS_CSR_BITS = STATUS_CSR_SLOTS * (12 + 64)

STATUS_RECORD_BITS = (STATUS_HEADER_BITS
                      + (NUM_INT_REGS + NUM_FP_REGS) * 64
                      + STATUS_CSR_BITS)


class RuntimeEntry:
    """One load/store/CSR record as stored in the LSL."""

    __slots__ = ("rkind", "addr", "data", "size", "parity", "seq")

    def __init__(self, rkind, addr, data, size, seq=0):
        self.rkind = rkind
        self.addr = addr
        self.data = data
        self.size = size
        self.seq = seq
        self.parity = parity_of(data)

    def recompute_parity(self):
        """Parity over the (possibly corrupted) data field."""
        return parity_of(self.data)

    @property
    def parity_ok(self):
        return self.recompute_parity() == self.parity

    def copy(self):
        # Bypass __init__: the parity field is copied, not recomputed
        # (a copy of a corrupted entry must keep the stale parity bit).
        clone = RuntimeEntry.__new__(RuntimeEntry)
        clone.rkind = self.rkind
        clone.addr = self.addr
        clone.data = self.data
        clone.size = self.size
        clone.seq = self.seq
        clone.parity = self.parity
        return clone

    def __repr__(self):
        return (f"RuntimeEntry({self.rkind.value}, addr={self.addr:#x}, "
                f"data={self.data:#x}, size={self.size}, seq={self.seq})")


class StatusSnapshot:
    """A Register Checkpoint payload."""

    __slots__ = ("rcp_id", "seg_id", "pc", "int_regs", "fp_regs", "csrs")

    def __init__(self, rcp_id, seg_id, pc, int_regs, fp_regs, csrs):
        self.rcp_id = rcp_id
        self.seg_id = seg_id
        self.pc = pc
        self.int_regs = tuple(int_regs)
        self.fp_regs = tuple(fp_regs)
        self.csrs = dict(csrs)

    def copy(self):
        return StatusSnapshot(self.rcp_id, self.seg_id, self.pc,
                              self.int_regs, self.fp_regs, self.csrs)

    def matches(self, int_regs, fp_regs, csrs, pc):
        """Register-file comparison performed at an ERCP."""
        if tuple(int_regs) != self.int_regs:
            return False
        if tuple(fp_regs) != self.fp_regs:
            return False
        if pc != self.pc:
            return False
        for addr, value in self.csrs.items():
            if csrs.get(addr, 0) != value:
                return False
        return True

    def __repr__(self):
        return (f"StatusSnapshot(rcp={self.rcp_id}, seg={self.seg_id}, "
                f"pc={self.pc:#x})")


class Packet:
    """A fabric transfer unit: one payload plus routing metadata."""

    __slots__ = ("kind", "payload", "seg_id", "created_cycle", "dests",
                 "size_bits", "seq")

    _SEQ = 0

    def __init__(self, kind, payload, seg_id, created_cycle, dests):
        self.kind = kind
        self.payload = payload
        self.seg_id = seg_id
        self.created_cycle = created_cycle
        self.dests = tuple(dests)
        if kind is PacketKind.STATUS:
            self.size_bits = STATUS_RECORD_BITS
        else:
            self.size_bits = RUNTIME_RECORD_BITS
        Packet._SEQ += 1
        self.seq = Packet._SEQ

    def flit_count(self, width_bits):
        """Number of ``width_bits``-wide flits needed for this packet."""
        return -(-self.size_bits // width_bits)

    def __repr__(self):
        return (f"Packet({self.kind.value}, seg={self.seg_id}, "
                f"dests={self.dests}, {self.size_bits} bits)")
