"""F2's Half-duplex Multicast NoC (HM-NoC, Sec. III-B).

A 1-to-N Manhattan grid in the high-frequency domain: 256-bit flits,
two packet transmissions per big-core cycle, ordering preserved by the
shared slot counter, and selective broadcast so a status packet needed
by two little cores (ERCP of one segment, SRCP of the next) traverses
the grid once.

Little cores are laid out on a ceil(sqrt(N+1)) grid with the big core
at the origin; the per-destination route latency is the Manhattan hop
count times the configured hop latency.
"""

import math

from repro.fabric.base import ForwardingFabric


def _grid_positions(num_cores):
    """Positions of the little cores on the Manhattan grid, origin
    (0, 0) reserved for the big core."""
    side = max(2, math.ceil(math.sqrt(num_cores + 1)))
    positions = []
    index = 0
    for y in range(side):
        for x in range(side):
            if (x, y) == (0, 0):
                continue
            if index < num_cores:
                positions.append((x, y))
                index += 1
    return positions


class HmNocFabric(ForwardingFabric):
    """The paper's F2 data-path: DC-Buffers feed this NoC."""

    def __init__(self, config, num_little_cores, clock_ratio=2):
        super().__init__(config, num_little_cores, clock_ratio)
        self._positions = _grid_positions(num_little_cores)

    def _slot_interval(self):
        # packets_per_cycle transmissions per high-frequency cycle.
        return 1.0 / self.config.packets_per_cycle

    def hops_to(self, dest):
        x, y = self._positions[dest]
        return x + y

    def _route_latency(self, dest):
        return (1 + self.hops_to(dest)) * self.config.hop_latency


class IdealFabric(ForwardingFabric):
    """Infinite-bandwidth, single-cycle fabric for ablations.

    Used to isolate the "little core" component of the Fig. 9
    backpressure decomposition: with an ideal fabric, any remaining
    overhead is checker-compute-bound.
    """

    def _slot_interval(self):
        return 1.0 / self.config.packets_per_cycle

    def _route_latency(self, dest):
        return 1
