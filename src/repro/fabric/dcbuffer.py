"""DC-Buffer occupancy model.

One DC-Buffer sits on each big-core commit path (Sec. III-B), holding
status and run-time flits independently until the fabric accepts them.
The model tracks, per channel, the fabric-accept times of buffered
flits; pushing into a full channel returns the cycle at which enough
flits will have drained — that is the commit-stall MEEK's controller
applies to the big core (the "Data Forwarding" component of Fig. 9).
"""

from collections import deque


class DcBufferModel:
    """Flit-level occupancy tracking for one commit path."""

    def __init__(self, status_depth, runtime_depth, name="dcbuf"):
        self.name = name
        self.status_depth = status_depth
        self.runtime_depth = runtime_depth
        self._queues = {"status": deque(), "runtime": deque()}
        self._depths = {"status": status_depth, "runtime": runtime_depth}
        self.stall_cycles = 0
        self.flits_pushed = {"status": 0, "runtime": 0}
        #: Fault-injection hook ``(channel, payload, now)`` — installed
        #: by the controller when a campaign targets ``dcbuf.runtime``;
        #: corrupts the buffered payload without touching timing.
        self.fault_hook = None

    def _purge(self, channel, now):
        queue = self._queues[channel]
        while queue and queue[0] <= now:
            queue.popleft()

    def occupancy(self, channel, now):
        """Flits still waiting in ``channel`` at cycle ``now``."""
        self._purge(channel, now)
        return len(self._queues[channel])

    def push(self, channel, accept_times, now, payload=None):
        """Buffer flits whose fabric-accept times are ``accept_times``.

        Returns the earliest cycle at which the *pushing commit* may
        proceed: ``now`` if there is room, otherwise the cycle when
        the overflow has drained.  Accept times must be sorted
        (the fabric hands them out in order).  ``payload`` is the
        buffered record, exposed to the fault hook only — occupancy
        tracking stays flit-times-only.
        """
        if self.fault_hook is not None and payload is not None:
            self.fault_hook(channel, payload, now)
        self._purge(channel, now)
        queue = self._queues[channel]
        depth = self._depths[channel]
        queue.extend(accept_times)
        self.flits_pushed[channel] += len(accept_times)
        overflow = len(queue) - depth
        if overflow <= 0:
            return now
        # The commit waits until `overflow` flits have been accepted.
        stall_until = queue[overflow - 1]
        if stall_until > now:
            self.stall_cycles += stall_until - now
            return stall_until
        return now

    def stats(self):
        return {
            "name": self.name,
            "stall_cycles": self.stall_cycles,
            "status_flits": self.flits_pushed["status"],
            "runtime_flits": self.flits_pushed["runtime"],
        }
