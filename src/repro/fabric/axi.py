"""AXI-Interconnect baseline (Fig. 9).

The paper's first attempt used a full-featured AXI interconnect and
found it to be the primary system bottleneck: a 128-bit bus moving one
packet per cycle *in the little cores' clock domain*, with arbitration
latency and no multicast (a status packet needed by two little cores is
sent twice).  This model reproduces exactly those properties; swapping
it against :class:`~repro.fabric.hmnoc.HmNocFabric` regenerates the
backpressure decomposition.
"""

from repro.fabric.base import ForwardingFabric


class AxiInterconnect(ForwardingFabric):
    """Shared 128-bit bus, one beat per low-frequency cycle."""

    def _slot_interval(self):
        # One beat per bus cycle; the bus runs with the little cores,
        # so each beat costs `clock_ratio` big-core cycles.
        return float(self.clock_ratio) / self.config.packets_per_cycle

    def _route_latency(self, dest):
        # Arbitration plus bus traversal, in the low-frequency domain.
        arbitration = getattr(self.config, "arbitration_latency", 2)
        return (arbitration + 2) * self.clock_ratio
