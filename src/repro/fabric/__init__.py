"""Forwarding fabrics: F2 (DC-Buffers + HM-NoC) and the AXI baseline.

The fabric's job is to move DEU packets from the big core's commit
paths to the little cores' LSLs.  Two implementations reproduce the
Fig. 9 contrast:

* :class:`~repro.fabric.hmnoc.HmNocFabric` — the paper's F2: 256-bit
  flits, two packet transmissions per (3.2 GHz) cycle, a half-duplex
  multicast Manhattan-grid NoC so one status packet reaches both the
  ERCP consumer and the SRCP consumer in a single traversal.
* :class:`~repro.fabric.axi.AxiInterconnect` — the full-featured AXI
  baseline: a 128-bit shared bus in the little cores' 1.6 GHz domain,
  one beat per bus cycle, no multicast (duplicate unicasts).

Both are *resource-counter* models: bandwidth is a shared next-free-
slot counter, so burst contention (parallel commits, RCP bursts) emerges
exactly as queueing delay, which is what the paper measures.
"""

from repro.fabric.axi import AxiInterconnect
from repro.fabric.base import ForwardingFabric, build_fabric
from repro.fabric.dcbuffer import DcBufferModel
from repro.fabric.hmnoc import HmNocFabric
from repro.fabric.packets import (
    Packet,
    PacketKind,
    RuntimeEntry,
    RuntimeKind,
    StatusSnapshot,
)

__all__ = [
    "AxiInterconnect",
    "DcBufferModel",
    "ForwardingFabric",
    "HmNocFabric",
    "Packet",
    "PacketKind",
    "RuntimeEntry",
    "RuntimeKind",
    "StatusSnapshot",
    "build_fabric",
]
