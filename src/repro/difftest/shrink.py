"""Greedy program shrinking and regression artifacts.

When the differential harness finds a divergence, the raw reproducer is
a few hundred generated instructions — too big to debug.
:func:`shrink_lines` minimizes it ddmin-style: repeatedly try removing
chunks of instruction lines (halving the chunk size down to single
lines) and keep any removal under which the failure predicate still
holds, then simplify the surviving operands (immediates to zero).
Labels and the terminating ``ecall`` are protected so every candidate
still assembles and terminates.

The predicate re-runs the *full differential harness* on each
candidate, so a shrunk program is a genuine standalone reproducer; a
candidate that loses its loop exit simply hits the instruction cap,
stops diverging, and is rejected.

:func:`write_artifact` persists the minimized case (source, data image,
mismatches, sizes) as a JSON regression artifact whose filename derives
from the point identity — re-running the campaign overwrites rather
than duplicates.
"""

import hashlib
import json
import os
import re

#: Matches standalone decimal immediates (not hex digits, not parts of
#: register names), the targets of operand simplification.
_IMM_RE = re.compile(r"(?<![\w.])-?\d+(?![\w.])")


class ShrinkResult:
    """Outcome of one shrink run."""

    __slots__ = ("lines", "original_instructions", "instructions",
                 "rounds", "attempts")

    def __init__(self, lines, original_instructions, instructions, rounds,
                 attempts):
        self.lines = lines
        self.original_instructions = original_instructions
        self.instructions = instructions
        self.rounds = rounds
        self.attempts = attempts


def _count_instructions(lines):
    return sum(1 for line in lines if not line.strip().endswith(":"))


def shrink_lines(lines, protected, predicate, max_rounds=16):
    """Minimize ``lines`` while ``predicate(candidate_lines)`` holds.

    ``predicate`` must hold for the input (the caller established the
    failure before shrinking).  Returns a :class:`ShrinkResult`; the
    result's lines always satisfy the predicate.
    """
    current = list(lines)
    protected_lines = {lines[i] for i in protected}
    attempts = 0
    rounds = 0

    def droppable(cand):
        return [i for i, line in enumerate(cand)
                if line not in protected_lines
                and not line.strip().endswith(":")]

    # Phase 1: ddmin-style chunk removal until a fixpoint.
    changed = True
    while changed and rounds < max_rounds:
        changed = False
        rounds += 1
        indices = droppable(current)
        chunk = max(1, len(indices) // 2)
        while chunk >= 1:
            pos = 0
            while pos < len(indices):
                remove = set(indices[pos:pos + chunk])
                candidate = [line for i, line in enumerate(current)
                             if i not in remove]
                attempts += 1
                if predicate(candidate):
                    current = candidate
                    indices = droppable(current)
                    changed = True
                    # Do not advance: the window now covers new lines.
                else:
                    pos += chunk
            chunk //= 2

    # Phase 2: operand simplification — try zeroing each immediate.
    for index, line in enumerate(current):
        if line in protected_lines or line.strip().endswith(":"):
            continue
        for match in _IMM_RE.finditer(line):
            if match.group() == "0":
                continue
            simplified = line[:match.start()] + "0" + line[match.end():]
            candidate = list(current)
            candidate[index] = simplified
            attempts += 1
            if predicate(candidate):
                current = candidate
                break  # one simplification per line is plenty

    # Phase 3: drop labels nothing references any more.  Labels emit no
    # instructions, so this cannot change behaviour or the predicate.
    referenced = set()
    for line in current:
        if not line.strip().endswith(":"):
            referenced.update(re.findall(r"[\w.$]+", line))
    current = [line for line in current
               if not line.strip().endswith(":")
               or line.strip()[:-1] in referenced]

    return ShrinkResult(current, _count_instructions(list(lines)),
                        _count_instructions(current), rounds, attempts)


def shrink_fuzz_program(fuzz, predicate, max_rounds=16):
    """Shrink a :class:`~repro.difftest.progen.FuzzProgram`.

    ``predicate(program)`` receives an assembled
    :class:`~repro.isa.program.Program` and returns whether the failure
    still reproduces.  Candidates that fail to assemble are rejected
    automatically.
    """
    from repro.common.errors import AssemblerError

    def line_predicate(candidate_lines):
        try:
            program = fuzz.build(lines=candidate_lines)
        except AssemblerError:
            return False
        return predicate(program)

    result = shrink_lines(fuzz.lines, fuzz.protected, line_predicate,
                          max_rounds=max_rounds)
    return result, fuzz.with_lines(result.lines)


# -- regression artifacts --------------------------------------------------

DEFAULT_ARTIFACT_DIR = os.path.join("artifacts", "difftest")


def artifact_name(point_id):
    """Deterministic, filesystem-safe artifact stem for a point."""
    digest = hashlib.blake2b(point_id.encode(), digest_size=6).hexdigest()
    return f"difftest-{digest}"


def write_artifact(directory, point_id, payload):
    """Persist one minimized regression case; returns its path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{artifact_name(point_id)}.json")
    record = {"point_id": point_id}
    record.update(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
