"""repro.difftest — sharded differential fuzzing against the golden ISA.

The reproduction's credibility rests on every execution model agreeing
with the functional ISA semantics.  This package turns that agreement
into a fuzzable property:

* :mod:`~repro.difftest.progen` draws constrained-random programs from
  instruction-class weights (loops, calls, bounded loads/stores,
  guarded divides) — scenario space the curated workloads never reach;
* :mod:`~repro.difftest.golden` executes a program straight through
  :mod:`repro.isa.semantics` and snapshots architectural state;
* :mod:`~repro.difftest.harness` runs the same program on the big core,
  a standalone little core, the full MEEK system with little-core check
  replay, and the Nzdc transform, comparing final int/FP registers,
  CSRs, PC and memory field-by-field;
* :mod:`~repro.difftest.shrink` minimizes any divergent program
  (drop instructions, zero operands, re-run) and persists the result as
  a JSON regression artifact;
* :mod:`~repro.difftest.disasm` renders decoded instructions back to
  assembler-accepted text (round-trip tested property-style).

Fuzz points fan out through :mod:`repro.campaign` (task ``difftest``)
with deterministic per-point RNG, and ``python -m repro difftest``
exposes the whole loop — including a fault-injecting ``--self-check``
mode that proves the harness detects and shrinks real divergences.

Quick start::

    from repro.common.prng import DeterministicRng
    from repro.difftest import diff_program, generate_fuzz_program

    fuzz = generate_fuzz_program(DeterministicRng("demo"))
    report = diff_program(fuzz.build())
    assert not report.divergent, report.mismatches
"""

from repro.difftest.disasm import disassemble, render
from repro.difftest.golden import (GoldenResult, compare_snapshots,
                                   run_golden, snapshot)
from repro.difftest.harness import (DiffReport, ExecutorOutcome,
                                    diff_program, evaluate_fuzz_point,
                                    fuzz_program_for_point)
from repro.difftest.progen import (DEFAULT_WEIGHTS, FuzzConfig, FuzzProgram,
                                   ProgramGenerator, generate_fuzz_program)
from repro.difftest.shrink import (DEFAULT_ARTIFACT_DIR, ShrinkResult,
                                   artifact_name, shrink_fuzz_program,
                                   shrink_lines, write_artifact)

__all__ = [
    "DEFAULT_ARTIFACT_DIR",
    "DEFAULT_WEIGHTS",
    "DiffReport",
    "ExecutorOutcome",
    "FuzzConfig",
    "FuzzProgram",
    "GoldenResult",
    "ProgramGenerator",
    "ShrinkResult",
    "artifact_name",
    "compare_snapshots",
    "diff_program",
    "disassemble",
    "evaluate_fuzz_point",
    "fuzz_program_for_point",
    "generate_fuzz_program",
    "render",
    "run_golden",
    "shrink_fuzz_program",
    "shrink_lines",
    "snapshot",
    "write_artifact",
]
