"""Disassembler: decoded instructions back to canonical assembly.

The inverse of :mod:`repro.isa.assembler` for single instructions:
``render(instr)`` produces text the assembler parses back into an equal
:class:`~repro.isa.instructions.Instruction`.  Branch and jump targets
are rendered as explicit byte offsets (the assembler accepts those
wherever it accepts labels), so a rendered program re-assembles without
a label table.

Used by the assembler round-trip property tests and by the shrinker's
regression artifacts, where a human-readable listing of the minimized
program is worth more than a word dump.
"""

from repro.common.errors import DecodeError
from repro.isa.instructions import Fmt


def render(instr):
    """Canonical assembly text for one decoded instruction."""
    op = instr.op
    fmt = instr.spec.fmt
    rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
    if fmt is Fmt.R:
        return f"{op} x{rd}, x{rs1}, x{rs2}"
    if fmt in (Fmt.I, Fmt.SHIFT):
        return f"{op} x{rd}, x{rs1}, {imm}"
    if fmt is Fmt.LOAD:
        dest = f"f{rd}" if instr.spec.writes_fp_rd else f"x{rd}"
        return f"{op} {dest}, {imm}(x{rs1})"
    if fmt is Fmt.S:
        src = f"f{rs2}" if instr.spec.reads_fp_rs2 else f"x{rs2}"
        return f"{op} {src}, {imm}(x{rs1})"
    if fmt is Fmt.B:
        return f"{op} x{rs1}, x{rs2}, {imm}"
    if fmt is Fmt.U:
        return f"{op} x{rd}, {imm}"
    if fmt is Fmt.J:
        return f"{op} x{rd}, {imm}"
    if fmt is Fmt.CSR:
        return f"{op} x{rd}, {imm:#x}, x{rs1}"
    if fmt is Fmt.CSRI:
        # The rs1 field carries the 5-bit zero-extended immediate.
        return f"{op} x{rd}, {imm:#x}, {rs1}"
    if fmt is Fmt.SYS:
        return op
    if fmt is Fmt.FR:
        return f"{op} f{rd}, f{rs1}, f{rs2}"
    if fmt is Fmt.FR1:
        return f"{op} f{rd}, f{rs1}"
    if fmt is Fmt.FCMP:
        return f"{op} x{rd}, f{rs1}, f{rs2}"
    if fmt is Fmt.FMVXD:
        return f"{op} x{rd}, f{rs1}"
    if fmt is Fmt.FMVDX:
        return f"{op} f{rd}, x{rs1}"
    if fmt is Fmt.M2R:
        return f"{op} x{rs1}, x{rs2}"
    if fmt is Fmt.M1R:
        return f"{op} x{rs1}"
    if fmt is Fmt.MRD:
        return f"{op} x{rd}"
    raise DecodeError(f"cannot render format {fmt} for {op!r}")


def disassemble(program):
    """Render every instruction of ``program``, one line each."""
    return [render(instr) for instr in program.instructions]
