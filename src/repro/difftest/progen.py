"""Constrained-random program generation for differential fuzzing.

The workload generator (:mod:`repro.workloads.generator`) expands a
handful of curated SPEC/PARSEC profiles; this module is its adversarial
sibling: it draws *arbitrary* programs from instruction-class weights —
ALU/shift chatter, multiplies, guarded divides, FP arithmetic and
moves/compares/converts, loads and stores of every width into a bounded
data image, forward branches, bounded counted loops, calls through the
return-address register, and CSR traffic — so the differential harness
explores scenario space the curated workloads never reach.

Every program is total and terminating by construction:

* loads/stores address ``base + offset`` with the offset aligned to the
  access size and bounded by the data window, so the sparse memory
  model never faults;
* divides are guarded (``ori scratch, src, 1``) even though the ISA's
  divide semantics are total, mirroring real compiled code;
* branches only jump forward to generated labels, loops count a
  dedicated register down from a small constant, and the body ends in
  ``ecall`` — so control flow cannot escape the program;
* registers ``x28``–``x31`` and ``f28``–``f31`` are never touched (they
  are the Nzdc transform's reserved scratch, exactly as in the workload
  generator).

A :class:`FuzzProgram` keeps the source as one line per instruction (or
label), which is the unit the shrinker drops; ``protected`` marks line
indices the shrinker must keep (labels and the final ``ecall``).
"""

from repro.isa.assembler import assemble
from repro.isa.program import DataImage

#: Base address of the bounded data window (same region the workload
#: generator uses, so memory-model assumptions carry over).
DATA_BASE = 0x100000

#: Value registers the fuzzer reads and writes freely.
INT_POOL = tuple(range(5, 16))          # x5..x15
FP_POOL = tuple(range(0, 8))            # f0..f7

_BASE_REG = 20                          # data-window base pointer
_LOOP_REG = 23                          # bounded loop counter
_GUARD_REG = 24                         # divide-guard scratch
_HELPER_REGS = (16, 17)                 # helper-function scratch
_RA = 1

_ALU_RR = ("add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra",
           "or", "and")
_ALU_RI = ("addi", "slti", "sltiu", "xori", "ori", "andi")
_SHIFTS = ("slli", "srli", "srai")
_MULS = ("mul", "mulh")
_DIVS = ("div", "divu", "rem", "remu")
_FP_RR = ("fadd.d", "fsub.d", "fmul.d", "fmin.d", "fmax.d")
_LOADS = (("ld", 8), ("lw", 4), ("lwu", 4), ("lh", 2), ("lhu", 2),
          ("lb", 1), ("lbu", 1))
_STORES = (("sd", 8), ("sw", 4), ("sh", 2), ("sb", 1))
_BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")
_CSRS = ("mstatus", "mtvec", "mepc")

#: Default instruction-class weights; override per point through
#: :class:`FuzzConfig`.
DEFAULT_WEIGHTS = {
    "alu": 10,
    "mul": 2,
    "div": 2,
    "fp": 3,
    "fpmove": 1,
    "fpdiv": 1,
    "load": 5,
    "store": 4,
    "branch": 3,
    "loop": 1,
    "call": 1,
    "csr": 1,
}


class FuzzConfig:
    """Knobs for one generated program."""

    def __init__(self, body_instructions=100, data_window_bytes=512,
                 weights=None, helper_count=2, max_loop_trip=6):
        if data_window_bytes < 16 or data_window_bytes % 8:
            raise ValueError("data window must be a multiple of 8 >= 16")
        self.body_instructions = body_instructions
        self.data_window_bytes = data_window_bytes
        self.weights = dict(weights) if weights else dict(DEFAULT_WEIGHTS)
        unknown = set(self.weights) - set(DEFAULT_WEIGHTS)
        if unknown:
            raise ValueError(
                f"unknown instruction classes {sorted(unknown)}; "
                f"choose from {sorted(DEFAULT_WEIGHTS)}")
        if not any(w > 0 for w in self.weights.values()):
            raise ValueError("at least one instruction-class weight "
                             "must be positive")
        if helper_count < 1:
            raise ValueError("helper_count must be >= 1 (calls need a "
                             "target)")
        self.helper_count = helper_count
        self.max_loop_trip = max_loop_trip


class FuzzProgram:
    """A generated program: source lines + data image + shrink metadata."""

    def __init__(self, lines, data_words, protected, name="fuzz"):
        self.lines = list(lines)
        self.data_words = dict(data_words)
        self.protected = frozenset(protected)
        self.name = name

    def source(self):
        return "\n".join(self.lines)

    def build(self, lines=None):
        """Assemble (optionally overridden) source into a Program."""
        text = "\n".join(self.lines if lines is None else lines)
        return assemble(text, name=self.name,
                        data=DataImage(self.data_words))

    def with_lines(self, lines):
        """A copy carrying shrunk source (protection indices dropped —
        a shrunk program is final, not shrunk again through them)."""
        return FuzzProgram(lines, self.data_words, (), name=self.name)


class _Emitter:
    """Accumulates source lines and tracks protected indices."""

    def __init__(self, rng, config):
        self.rng = rng
        self.config = config
        self.lines = []
        self.protected = set()
        self._label_counter = 0

    def emit(self, text):
        self.lines.append(f"    {text}")

    def emit_protected(self, text):
        self.protected.add(len(self.lines))
        self.lines.append(f"    {text}")

    def label(self, prefix):
        name = f"{prefix}_{self._label_counter}"
        self._label_counter += 1
        return name

    def place_label(self, name):
        self.protected.add(len(self.lines))
        self.lines.append(f"{name}:")

    # -- operand helpers ---------------------------------------------------

    def int_reg(self):
        return self.rng.choice(INT_POOL)

    def fp_reg(self):
        return self.rng.choice(FP_POOL)

    def offset(self, size):
        window = self.config.data_window_bytes
        slots = (window - size) // size
        return self.rng.randint(0, slots) * size


class ProgramGenerator:
    """Draws one :class:`FuzzProgram` from a deterministic RNG."""

    def __init__(self, rng, config=None):
        self.rng = rng
        self.config = config if config is not None else FuzzConfig()
        self._em = None

    # -- instruction-class emitters ---------------------------------------

    def _emit_alu(self):
        em = self._em
        roll = self.rng.random()
        if roll < 0.35:
            op = self.rng.choice(_ALU_RI)
            imm = self.rng.randint(-2048, 2047)
            em.emit(f"{op} x{em.int_reg()}, x{em.int_reg()}, {imm}")
        elif roll < 0.50:
            op = self.rng.choice(_SHIFTS)
            em.emit(f"{op} x{em.int_reg()}, x{em.int_reg()}, "
                    f"{self.rng.randint(0, 63)}")
        elif roll < 0.60:
            # No auipc: its value is layout-relative, so it cannot be
            # compared across the Nzdc transform's changed layout.
            em.emit(f"lui x{em.int_reg()}, {self.rng.randint(0, 0xFFFFF)}")
        else:
            op = self.rng.choice(_ALU_RR)
            em.emit(f"{op} x{em.int_reg()}, x{em.int_reg()}, "
                    f"x{em.int_reg()}")

    def _emit_mul(self):
        em = self._em
        em.emit(f"{self.rng.choice(_MULS)} x{em.int_reg()}, "
                f"x{em.int_reg()}, x{em.int_reg()}")

    def _emit_div(self):
        em = self._em
        # Guard the divisor as compiled code would, even though the
        # ISA's divide-by-zero semantics are total.
        em.emit(f"ori x{_GUARD_REG}, x{em.int_reg()}, 1")
        em.emit(f"{self.rng.choice(_DIVS)} x{em.int_reg()}, "
                f"x{em.int_reg()}, x{_GUARD_REG}")

    def _emit_fp(self):
        em = self._em
        em.emit(f"{self.rng.choice(_FP_RR)} f{em.fp_reg()}, "
                f"f{em.fp_reg()}, f{em.fp_reg()}")

    def _emit_fpmove(self):
        em = self._em
        roll = self.rng.random()
        if roll < 0.25:
            op = self.rng.choice(("feq.d", "flt.d", "fle.d"))
            em.emit(f"{op} x{em.int_reg()}, f{em.fp_reg()}, f{em.fp_reg()}")
        elif roll < 0.45:
            em.emit(f"fmv.x.d x{em.int_reg()}, f{em.fp_reg()}")
        elif roll < 0.65:
            em.emit(f"fmv.d.x f{em.fp_reg()}, x{em.int_reg()}")
        elif roll < 0.85:
            em.emit(f"fcvt.d.l f{em.fp_reg()}, x{em.int_reg()}")
        else:
            em.emit(f"fcvt.l.d x{em.int_reg()}, f{em.fp_reg()}")

    def _emit_fpdiv(self):
        em = self._em
        if self.rng.bernoulli(0.3):
            em.emit(f"fsqrt.d f{em.fp_reg()}, f{em.fp_reg()}")
        else:
            em.emit(f"fdiv.d f{em.fp_reg()}, f{em.fp_reg()}, "
                    f"f{em.fp_reg()}")

    def _emit_load(self):
        em = self._em
        if self.rng.bernoulli(0.15):
            em.emit(f"fld f{em.fp_reg()}, {em.offset(8)}(x{_BASE_REG})")
            return
        op, size = self.rng.choice(_LOADS)
        em.emit(f"{op} x{em.int_reg()}, {em.offset(size)}(x{_BASE_REG})")

    def _emit_store(self):
        em = self._em
        if self.rng.bernoulli(0.15):
            em.emit(f"fsd f{em.fp_reg()}, {em.offset(8)}(x{_BASE_REG})")
            return
        op, size = self.rng.choice(_STORES)
        em.emit(f"{op} x{em.int_reg()}, {em.offset(size)}(x{_BASE_REG})")

    def _emit_branch(self):
        em = self._em
        label = em.label("skip")
        op = self.rng.choice(_BRANCHES)
        em.emit(f"{op} x{em.int_reg()}, x{em.int_reg()}, {label}")
        for _ in range(self.rng.randint(1, 3)):
            self._emit_alu()
        em.place_label(label)

    def _emit_loop(self):
        em = self._em
        label = em.label("loop")
        trip = self.rng.randint(2, self.config.max_loop_trip)
        em.emit(f"addi x{_LOOP_REG}, x0, {trip}")
        em.place_label(label)
        for _ in range(self.rng.randint(1, 4)):
            self._simple_op()
        em.emit(f"addi x{_LOOP_REG}, x{_LOOP_REG}, -1")
        em.emit(f"bne x{_LOOP_REG}, x0, {label}")

    def _emit_call(self):
        index = self.rng.randint(0, self.config.helper_count - 1)
        self._em.emit(f"jal x{_RA}, helper_{index}")

    def _emit_csr(self):
        em = self._em
        csr = self.rng.choice(_CSRS)
        roll = self.rng.random()
        if roll < 0.5:
            em.emit(f"csrrs x{em.int_reg()}, {csr}, x{em.int_reg()}")
        elif roll < 0.8:
            em.emit(f"csrrw x{em.int_reg()}, {csr}, x{em.int_reg()}")
        else:
            em.emit(f"csrrwi x{em.int_reg()}, {csr}, "
                    f"{self.rng.randint(0, 31)}")

    def _simple_op(self):
        """A loop-body op: anything without control flow."""
        emitter = self.rng.choices(
            [self._emit_alu, self._emit_mul, self._emit_div, self._emit_fp,
             self._emit_load, self._emit_store],
            weights=[5, 1, 1, 1, 2, 2])[0]
        emitter()

    # -- program assembly --------------------------------------------------

    def _prologue(self):
        em = self._em
        em.emit(f"li x{_BASE_REG}, {DATA_BASE}")
        for reg in INT_POOL:
            em.emit(f"li x{reg}, {self.rng.randint(0, 0xFFFF)}")
        for reg in FP_POOL:
            em.emit(f"li x{_GUARD_REG}, {self.rng.randint(1, 97)}")
            em.emit(f"fcvt.d.l f{reg}, x{_GUARD_REG}")

    def _helpers(self):
        em = self._em
        for index in range(self.config.helper_count):
            em.place_label(f"helper_{index}")
            for _ in range(self.rng.randint(2, 4)):
                dst = self.rng.choice(_HELPER_REGS)
                em.emit(f"{self.rng.choice(_ALU_RR)} x{dst}, x{dst}, "
                        f"x{em.int_reg()}")
            em.emit("ret")

    def _data_image(self):
        words = {}
        for i in range(self.config.data_window_bytes // 8):
            words[DATA_BASE + 8 * i] = self.rng.bit64()
        return words

    def generate(self, name="fuzz"):
        """Draw one program."""
        self._em = _Emitter(self.rng, self.config)
        em = self._em
        self._prologue()

        emitters = {
            "alu": self._emit_alu, "mul": self._emit_mul,
            "div": self._emit_div, "fp": self._emit_fp,
            "fpmove": self._emit_fpmove, "fpdiv": self._emit_fpdiv,
            "load": self._emit_load, "store": self._emit_store,
            "branch": self._emit_branch, "loop": self._emit_loop,
            "call": self._emit_call, "csr": self._emit_csr,
        }
        kinds = [k for k in emitters if self.config.weights.get(k, 0) > 0]
        weights = [self.config.weights[k] for k in kinds]
        start = len(em.lines)
        while len(em.lines) - start < self.config.body_instructions:
            emitters[self.rng.choices(kinds, weights=weights)[0]]()

        em.emit_protected("ecall")
        self._helpers()
        return FuzzProgram(em.lines, self._data_image(), em.protected,
                           name=name)


def generate_fuzz_program(rng, config=None, name="fuzz"):
    """Convenience wrapper: one program from ``rng``."""
    return ProgramGenerator(rng, config).generate(name=name)
