"""The differential harness: one program, every execution model.

:func:`diff_program` runs one assembled program through

* the **golden** functional ISA model (:mod:`repro.difftest.golden`),
* the **big core** timing model (:func:`repro.core.system.run_vanilla`),
* a standalone **little core** (:class:`repro.littlecore.core.LittleCore`),
* the full **MEEK system** — big core plus little-core *check replay*,
  where every segment is genuinely re-executed from its forwarded SRCP
  against the Load-Store Log and the ERCP register comparison
  (an unverified segment is a divergence even when the big core's own
  state is right), and
* the **Nzdc** compiler transform on the big core (compared modulo its
  reserved shadow/check registers and with the PC/instruction count
  excluded, since the transform changes the instruction layout).

Final architectural state — integer and FP register files, CSRs, PC and
the memory image — is compared field-by-field against the golden model,
and every difference becomes one human-readable mismatch string.

Fault self-check: ``fault_rate`` arms a
:class:`~repro.core.faults.FaultInjector` on the MEEK executor's
forwarded data, which must surface as a ``meek-replay`` divergence —
proving the harness detects real corruption through the genuine
checking machinery rather than scripted outcomes.

:func:`evaluate_fuzz_point` adapts all of this to one
:class:`~repro.campaign.spec.CampaignPoint` so fuzzing campaigns fan
out through :mod:`repro.campaign` with deterministic per-point RNG.
"""

from repro.difftest.golden import compare_snapshots, run_golden, snapshot
from repro.difftest.progen import FuzzConfig, generate_fuzz_program

#: Registers excluded from the Nzdc comparison: its reserved shadow and
#: check scratch (x30/x31/f31, see repro.baselines.nzdc) plus the link
#: register x1 — ``jal`` writes a layout-relative return address, and
#: the transform changes the layout.  Generated programs never read x1
#: as data, so the exclusion hides nothing real.
NZDC_SCRATCH_INT = (1, 30, 31)
NZDC_SCRATCH_FP = (31,)

#: Nzdc roughly doubles the dynamic stream (worst case ~6x for
#: store-only programs); its instruction budget is scaled so a program
#: that terminates under the cap also terminates transformed.
NZDC_CAP_FACTOR = 8

#: Default per-executor committed-instruction budget.  Generated
#: programs run a few hundred instructions; the cap only bites when a
#: shrink candidate loses its loop exit and spins.
DEFAULT_MAX_INSTRUCTIONS = 10_000

#: Little cores in the MEEK executor's system (2 keeps the fuzz loop
#: fast; replay correctness does not depend on the count).
MEEK_FUZZ_CORES = 2


class ExecutorOutcome:
    """One executor's final state plus bookkeeping."""

    __slots__ = ("name", "instructions", "halted_by", "snapshot",
                 "verified", "detections", "injections", "detected")

    def __init__(self, name, instructions, halted_by, state_snapshot,
                 verified=True, detections=(), injections=0, detected=0):
        self.name = name
        self.instructions = instructions
        self.halted_by = halted_by
        self.snapshot = state_snapshot
        self.verified = verified
        self.detections = list(detections)
        self.injections = injections
        self.detected = detected

    @property
    def capped(self):
        return self.halted_by == "limit"


class DiffReport:
    """Outcome of one differential run."""

    def __init__(self, mismatches, outcomes):
        self.mismatches = mismatches
        self.outcomes = outcomes

    @property
    def divergent(self):
        return bool(self.mismatches)

    @property
    def capped(self):
        return any(o.capped for o in self.outcomes.values())

    @property
    def injections(self):
        meek = self.outcomes.get("meek")
        return meek.injections if meek is not None else 0

    @property
    def detected(self):
        meek = self.outcomes.get("meek")
        return meek.detected if meek is not None else 0

    def to_metrics(self, mismatch_limit=32):
        """JSON-scalar metrics for a campaign row."""
        golden = self.outcomes["golden"]
        return {
            "divergent": self.divergent,
            "mismatches": list(self.mismatches[:mismatch_limit]),
            "mismatch_count": len(self.mismatches),
            "instructions": golden.instructions,
            "halted_by": golden.halted_by,
            "capped": self.capped,
            "injections": self.injections,
            "detected": self.detected,
        }


# -- executors -------------------------------------------------------------

def _run_bigcore(program, cap):
    from repro.core.system import run_vanilla
    result = run_vanilla(program, max_instructions=cap)
    return ExecutorOutcome("bigcore", result.instructions, result.halted_by,
                           snapshot(result.state))


def _run_littlecore(program, cap):
    from repro.littlecore.core import LittleCore
    result = LittleCore().run(program, max_instructions=cap)
    return ExecutorOutcome("littlecore", result.instructions,
                           result.halted_by, snapshot(result.state))


def _fault_targets(kind):
    """Injection-target weights for a self-check fault mode.

    ``"pc"`` corrupts the forwarded SRCP program counter — always
    architecturally consequential (replay starts in the wrong place),
    so detection is deterministic.  ``"all"`` uses the injector's
    default mix, where a flipped register the segment overwrites is
    legitimately masked and may go undetected.
    """
    from repro.core.faults import DEFAULT_TARGET_WEIGHTS, FaultTarget
    if kind == "pc":
        return {FaultTarget.STATUS_PC: 1}
    if kind == "all":
        return dict(DEFAULT_TARGET_WEIGHTS)
    raise ValueError(f"unknown fault target set {kind!r}")


def _run_meek(program, cap, fault_rate=None, fault_key="difftest/fault",
              fault_targets="pc", fault_model=None):
    from repro.common.config import default_meek_config
    from repro.common.prng import DeterministicRng
    from repro.core.faults import FaultInjector
    from repro.core.system import MeekSystem

    injector = None
    if fault_rate:
        injector = FaultInjector(
            DeterministicRng(fault_key, name="difftest-fault"),
            rate=float(fault_rate), targets=_fault_targets(fault_targets),
            model=fault_model)
    config = default_meek_config(num_little_cores=MEEK_FUZZ_CORES)
    system = MeekSystem(config, injector=injector)
    result = system.run(program, max_instructions=cap)
    return ExecutorOutcome(
        "meek", result.instructions, result.big.halted_by,
        snapshot(result.big.state),
        verified=result.all_segments_verified,
        detections=[(seg, reason)
                    for seg, _cycle, reason in result.detections],
        injections=(len(injector.injections) if injector else 0),
        detected=(injector.detected_count if injector else 0))


def _run_nzdc(program, cap):
    from repro.baselines.nzdc import run_nzdc
    result, _ = run_nzdc(
        program, max_instructions=cap * NZDC_CAP_FACTOR + 64)
    return ExecutorOutcome("nzdc", result.instructions, result.halted_by,
                           snapshot(result.state))


# -- the harness -----------------------------------------------------------

def diff_program(program, max_instructions=DEFAULT_MAX_INSTRUCTIONS,
                 fault_rate=None, fault_key="difftest/fault",
                 fault_targets="pc", fault_model=None):
    """Run ``program`` through every executor and diff the final states."""
    golden = run_golden(program, max_instructions=max_instructions)
    ref = snapshot(golden.state)
    golden_outcome = ExecutorOutcome("golden", golden.instructions,
                                     golden.halted_by, ref)
    outcomes = {"golden": golden_outcome}
    mismatches = []

    def check(outcome, skip_count=False, **kwargs):
        outcomes[outcome.name] = outcome
        if not skip_count and outcome.instructions != golden.instructions:
            mismatches.append(
                f"{outcome.name}: committed {outcome.instructions} "
                f"instructions, golden committed {golden.instructions}")
        if outcome.halted_by != golden.halted_by:
            mismatches.append(
                f"{outcome.name}: halted by {outcome.halted_by!r}, "
                f"golden halted by {golden.halted_by!r}")
        mismatches.extend(
            compare_snapshots(outcome.name, ref, outcome.snapshot, **kwargs))

    check(_run_bigcore(program, max_instructions))
    check(_run_littlecore(program, max_instructions))

    meek = _run_meek(program, max_instructions, fault_rate=fault_rate,
                     fault_key=fault_key, fault_targets=fault_targets,
                     fault_model=fault_model)
    check(meek)
    if not meek.verified:
        for seg_id, reason in meek.detections:
            mismatches.append(f"meek-replay: segment {seg_id} "
                              f"detected {reason}")

    # Nzdc changes the instruction layout, so a capped run stops at a
    # different architectural point — compare only complete runs.
    if not golden_outcome.capped:
        nzdc = _run_nzdc(program, max_instructions)
        if nzdc.capped:
            outcomes["nzdc"] = nzdc
            mismatches.append("nzdc: transformed program hit the "
                              "instruction cap")
        else:
            check(nzdc, skip_count=True, skip_pc=True,
                  skip_int=NZDC_SCRATCH_INT, skip_fp=NZDC_SCRATCH_FP)

    return DiffReport(mismatches, outcomes)


# -- campaign adapter ------------------------------------------------------

def fuzz_config_from_params(params):
    """Build a :class:`FuzzConfig` from a point's scalar parameters."""
    kwargs = {}
    if params.get("body") is not None:
        kwargs["body_instructions"] = int(params["body"])
    if params.get("data_window") is not None:
        kwargs["data_window_bytes"] = int(params["data_window"])
    return FuzzConfig(**kwargs)


def fuzz_program_for_point(point, campaign_name=""):
    """Regenerate a point's program (pure function of its identity)."""
    from repro.common.prng import DeterministicRng

    rng = DeterministicRng(point.rng_key(campaign_name), name="difftest")
    config = fuzz_config_from_params(point.params)
    index = point.params.get("index", 0)
    return generate_fuzz_program(rng.fork("program"), config,
                                 name=f"fuzz{index}")


def evaluate_fuzz_point(point, campaign_name=""):
    """Campaign task body: generate, run differentially, report."""
    fuzz = fuzz_program_for_point(point, campaign_name)
    program = fuzz.build()
    cap = point.instructions or DEFAULT_MAX_INSTRUCTIONS
    report = diff_program(
        program, max_instructions=cap,
        fault_rate=point.params.get("fault_rate"),
        fault_key=f"{point.rng_key(campaign_name)}/fault",
        fault_targets=point.params.get("fault_targets", "pc"),
        fault_model=point.params.get("fault_model"))
    metrics = report.to_metrics()
    metrics["static_instructions"] = len(program)
    return metrics
