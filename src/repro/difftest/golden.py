"""Golden ISA-model execution and architectural-state snapshots.

The golden model is :mod:`repro.isa.semantics` run straight: fetch,
execute, step the PC, no timing, no caches, no checking machinery.  It
defines what *correct* means for the differential harness — every
timing model in the repository shares the same functional executor, so
any final-state disagreement is a real bug in how a model drives that
executor (ordering, memory ports, transforms), not a modelling choice.

:func:`snapshot` reduces an :class:`~repro.isa.state.ArchState` to a
plain comparable dict — integer/FP register files, PC, CSRs, and the
memory image — and :func:`compare_snapshots` reports every field that
differs, which is the core comparison primitive of the harness.
"""

from repro.common.errors import SimulationError
from repro.isa.semantics import execute


class GoldenResult:
    """Outcome of one golden-model execution."""

    __slots__ = ("instructions", "state", "halted_by")

    def __init__(self, instructions, state, halted_by):
        self.instructions = instructions
        self.state = state
        self.halted_by = halted_by

    def __repr__(self):
        return (f"GoldenResult({self.instructions} instrs, "
                f"halted_by={self.halted_by})")


def run_golden(program, max_instructions=None, initial_state=None,
               halt_on_trap=True):
    """Execute ``program`` on the pure functional model."""
    from repro.isa.state import ArchState
    from repro.perf.decode import decode_program, slow_kernel_enabled

    state = initial_state
    if state is None:
        state = ArchState(pc=program.entry_pc)
        program.data.apply(state.memory)
    executed = 0
    halted_by = "end"
    if slow_kernel_enabled():
        fetch = program.fetch
        while True:
            if max_instructions is not None and executed >= max_instructions:
                halted_by = "limit"
                break
            instr = fetch(state.pc)
            if instr is None:
                break
            result = execute(instr, state)
            executed += 1
            if result.trap and halt_on_trap:
                halted_by = result.trap
                break
        return GoldenResult(executed, state, halted_by)

    from repro.perf.jit import build_golden_steps

    decoded = decode_program(program)
    steps = build_golden_steps(decoded, state)
    base = decoded.base
    n = len(steps)
    pc = state.pc
    while True:
        if max_instructions is not None and executed >= max_instructions:
            halted_by = "limit"
            break
        offset = pc - base
        if offset < 0 or offset & 3:
            raise SimulationError(f"bad fetch address {pc:#x} "
                                  f"(base {base:#x})")
        idx = offset >> 2
        if idx >= n:
            break
        trap = steps[idx](pc)
        executed += 1
        pc = state.pc
        if trap is not None and halt_on_trap:
            halted_by = trap
            break
    return GoldenResult(executed, state, halted_by)


def snapshot(state):
    """Reduce architectural state to a plain comparable dict."""
    return {
        "pc": state.pc,
        "int": tuple(state.int_regs),
        "fp": tuple(state.fp_regs),
        "csrs": dict(state.csrs),
        "mem": state.memory.snapshot(),
    }


def compare_snapshots(label, ref, got, skip_int=(), skip_fp=(),
                      skip_pc=False):
    """Field-by-field comparison of two snapshots.

    Returns mismatch strings like ``"bigcore: x7 expected 0x2a got
    0x2b"``.  ``skip_int``/``skip_fp`` exclude register indices (the
    Nzdc transform's reserved scratch); ``skip_pc`` drops the PC
    comparison for executors whose instruction layout differs.
    """
    mismatches = []
    for i, (a, b) in enumerate(zip(ref["int"], got["int"])):
        if i in skip_int or a == b:
            continue
        mismatches.append(f"{label}: x{i} expected {a:#x} got {b:#x}")
    for i, (a, b) in enumerate(zip(ref["fp"], got["fp"])):
        if i in skip_fp or a == b:
            continue
        mismatches.append(f"{label}: f{i} expected {a:#x} got {b:#x}")
    if not skip_pc and ref["pc"] != got["pc"]:
        mismatches.append(f"{label}: pc expected {ref['pc']:#x} "
                          f"got {got['pc']:#x}")
    for addr in sorted(set(ref["csrs"]) | set(got["csrs"])):
        a = ref["csrs"].get(addr, 0)
        b = got["csrs"].get(addr, 0)
        if a != b:
            mismatches.append(f"{label}: csr {addr:#x} expected {a:#x} "
                              f"got {b:#x}")
    for addr in sorted(set(ref["mem"]) | set(got["mem"])):
        a = ref["mem"].get(addr, 0)
        b = got["mem"].get(addr, 0)
        if a != b:
            mismatches.append(f"{label}: mem[{addr:#x}] expected {a:#x} "
                              f"got {b:#x}")
    return mismatches
