"""Per-structure detection-coverage maps.

A :class:`CoverageMap` counts, per ``(structure, fault-model)`` cell,
how many injected faults were detected vs. missed and how the
injection-to-detection latencies distribute over fixed buckets.  The
inject task folds each run's :class:`~repro.core.faults.InjectionRecord`
stream into one map, ships it as plain-JSON cells in the point metrics,
and the campaign layer merges cells across points — merging is
commutative integer addition, so serial, sharded (``--jobs N``),
serve-submitted and resumed campaigns all produce **byte-identical**
persisted coverage artifacts for the same point set.

The persisted form (``<store>.coverage.json``, written next to the
campaign's result store) is sorted-key JSON with no timestamps; the
``repro coverage`` report and the ``repro watch`` gauges both render
from it.
"""

import json
import os
import tempfile

#: Upper edges (ns) of the latency buckets; the last bucket is open.
BUCKET_BOUNDS_NS = (100.0, 1_000.0, 10_000.0, 100_000.0)
BUCKET_LABELS = ("<100ns", "<1us", "<10us", "<100us", ">=100us")
NUM_BUCKETS = len(BUCKET_LABELS)

COVERAGE_SCHEMA = 1

#: Suffix appended to a result-store path to name its coverage map.
COVERAGE_SUFFIX = ".coverage.json"

__all__ = ["BUCKET_BOUNDS_NS", "BUCKET_LABELS", "COVERAGE_SUFFIX",
           "CoverageMap", "coverage_from_store", "coverage_path_for",
           "format_coverage", "load_coverage", "save_coverage"]


def coverage_path_for(store_path):
    """Where a campaign writing ``store_path`` persists its coverage."""
    return store_path + COVERAGE_SUFFIX


def latency_bucket(latency_ns):
    """Index of the bucket holding ``latency_ns``."""
    for i, bound in enumerate(BUCKET_BOUNDS_NS):
        if latency_ns < bound:
            return i
    return NUM_BUCKETS - 1


class CoverageMap:
    """Structure × fault-model detection-coverage counters."""

    def __init__(self):
        # (structure, model) -> [detected, undetected, [bucket counts]]
        self._cells = {}

    def _cell(self, structure, model):
        key = (str(structure), str(model))
        cell = self._cells.get(key)
        if cell is None:
            cell = [0, 0, [0] * NUM_BUCKETS]
            self._cells[key] = cell
        return cell

    # -- ingestion ---------------------------------------------------------

    def observe(self, structure, model, detected, latency_ns=None):
        """Count one injection outcome."""
        cell = self._cell(structure, model)
        if detected:
            cell[0] += 1
            if latency_ns is not None:
                cell[2][latency_bucket(latency_ns)] += 1
        else:
            cell[1] += 1

    def observe_records(self, records, cycles_to_ns):
        """Fold a run's :class:`InjectionRecord` stream.

        ``cycles_to_ns`` converts a latency in big-core cycles to
        nanoseconds (see ``MeekRunResult.cycles_to_ns``).
        """
        for record in records:
            latency = record.latency_cycles
            self.observe(record.structure, record.model, record.detected,
                         cycles_to_ns(latency) if latency is not None
                         else None)
        return self

    def merge_cells(self, cells):
        """Merge wire-format cells (``to_cells`` output) into this map.

        Commutative and associative, so fold order — worker arrival
        order, resume order — cannot change the result.
        """
        if not cells:
            return self
        for structure, models in cells.items():
            for model, data in models.items():
                cell = self._cell(structure, model)
                cell[0] += int(data.get("detected", 0))
                cell[1] += int(data.get("undetected", 0))
                buckets = data.get("latency_buckets") or ()
                for i, count in enumerate(buckets[:NUM_BUCKETS]):
                    cell[2][i] += int(count)
        return self

    def merge(self, other):
        return self.merge_cells(other.to_cells())

    # -- output ------------------------------------------------------------

    def __bool__(self):
        return bool(self._cells)

    def to_cells(self):
        """Wire format: ``{structure: {model: {counts...}}}``, sorted."""
        cells = {}
        for (structure, model) in sorted(self._cells):
            detected, undetected, buckets = self._cells[(structure, model)]
            cells.setdefault(structure, {})[model] = {
                "detected": detected,
                "undetected": undetected,
                "latency_buckets": list(buckets),
            }
        return cells

    @classmethod
    def from_cells(cls, cells):
        return cls().merge_cells(cells or {})

    def to_dict(self):
        return {
            "schema": COVERAGE_SCHEMA,
            "bucket_bounds_ns": list(BUCKET_BOUNDS_NS),
            "bucket_labels": list(BUCKET_LABELS),
            "cells": self.to_cells(),
        }

    def totals(self):
        detected = sum(cell[0] for cell in self._cells.values())
        undetected = sum(cell[1] for cell in self._cells.values())
        return detected, undetected

    def structure_rates(self):
        """``{structure: detection rate}`` aggregated over models."""
        per_structure = {}
        for (structure, _model), cell in self._cells.items():
            agg = per_structure.setdefault(structure, [0, 0])
            agg[0] += cell[0]
            agg[1] += cell[1]
        return {
            structure: (agg[0] / (agg[0] + agg[1])
                        if (agg[0] + agg[1]) else None)
            for structure, agg in sorted(per_structure.items())
        }


def save_coverage(coverage, path):
    """Atomically persist ``coverage`` as deterministic sorted JSON."""
    payload = json.dumps(coverage.to_dict(), sort_keys=True,
                         separators=(",", ":")) + "\n"
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(dir=directory, prefix=".coverage-",
                                     suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return path


def load_coverage(path):
    """Read a persisted coverage map; ``None`` if absent/unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or "cells" not in payload:
        return None
    return CoverageMap.from_cells(payload["cells"])


def coverage_from_store(store_path):
    """Rebuild a coverage map by replaying a result store's rows.

    The fallback when no ``<store>.coverage.json`` was persisted (an
    old run, or a store copied without its sibling): merges every OK
    row's ``metrics["coverage"]`` cells — the same commutative fold the
    live path performs, so the result is identical to the persisted
    artifact.
    """
    from repro.campaign.results import ResultStore

    coverage = CoverageMap()
    for result in ResultStore.load(store_path).values():
        if result.ok and result.metrics:
            coverage.merge_cells(result.metrics.get("coverage"))
    return coverage


def format_coverage(coverage, title=None):
    """The ``repro coverage`` report: one row per (structure, model)."""
    from repro.analysis.report import format_table

    lines = []
    if title:
        lines.append(title)
    cells = coverage.to_cells()
    if not cells:
        lines.append("no injections recorded")
        return "\n".join(lines)
    rows = []
    for structure, models in cells.items():
        for model, data in models.items():
            detected = data["detected"]
            undetected = data["undetected"]
            total = detected + undetected
            rate = f"{detected / total:.1%}" if total else "-"
            rows.append([structure, model, total, detected, rate]
                        + list(data["latency_buckets"]))
    headers = (["structure", "model", "inj", "det", "coverage"]
               + list(BUCKET_LABELS))
    lines.append(format_table(headers, rows))
    detected, undetected = coverage.totals()
    total = detected + undetected
    overall = f"{detected / total:.1%}" if total else "-"
    lines.append(f"overall   : {detected}/{total} detected ({overall})")
    return "\n".join(lines)
