"""Parametric area model, calibrated to Table III.

The paper synthesizes MEEK at TSMC 28nm: BOOM is 2.811 mm², each
(optimized) Rocket 0.092 mm² excluding its L1 D-cache, the DEU
0.071 mm², the F2 0.051 mm², and the per-little-core wrapper (LSL +
MSU) 0.059 mm² — a 25.8% total overhead with four little cores.  This
module reproduces those numbers from component-level contributions
that scale linearly with the configuration parameters, which is what
makes the Equivalent-Area LockStep interpolation (Sec. V-A) and the
Fig. 10 performance/area analysis possible.
"""

from dataclasses import dataclass

from repro.common.config import BigCoreConfig, LittleCoreConfig
from repro.common.errors import ConfigError

#: Published Table III figures (mm², 28nm).
BOOM_AREA_MM2 = 2.811
ROCKET_OPT_AREA_MM2 = 0.092
ROCKET_DEFAULT_AREA_MM2 = 0.078
DEU_AREA_MM2 = 0.071
F2_AREA_MM2 = 0.051
LITTLE_WRAPPER_AREA_MM2 = 0.059

#: The DSN'18 comparison column of Table III.
DSN18_COMPARISON = {
    "big_core": "Cortex-A57",
    "big_area_mm2_20nm": 2.050,
    "big_area_mm2_at_28nm": 3.905,
    "little_core": "Rocket",
    "little_count": 12,
    "little_area_mm2_40nm": 0.160,
    "little_area_mm2_at_28nm": 0.078,
    "overhead": 0.24,
}

# BOOM component areas at the default (Table II) configuration.  The
# split follows published BOOM synthesis breakdowns; the sum is pinned
# to 2.811 mm².
_BOOM_COMPONENTS = {
    # name: (area at default config, scaling attribute or None)
    "frontend": (0.400, "fetch_width"),
    "rename_rob": (0.420, "rob_entries"),
    "issue_queue": (0.280, "issue_queue_entries"),
    "int_prf": (0.170, "int_phys_regs"),
    "fp_prf": (0.170, "fp_phys_regs"),
    "int_alus": (0.200, "int_alus"),
    "fp_units": (0.450, "fp_units"),
    "lsu": (0.300, "_lsu_entries"),
    "predictor": (0.220, "btb_entries"),
    "misc": (0.201, None),
}

_BOOM_DEFAULT = BigCoreConfig()


def _config_value(config, attribute):
    if attribute == "_lsu_entries":
        return config.ldq_entries + config.stq_entries
    return getattr(config, attribute)


def boom_area_mm2(config=None):
    """Area of a BOOM-class core with the given configuration."""
    config = config if config is not None else _BOOM_DEFAULT
    total = 0.0
    for base_area, attribute in _BOOM_COMPONENTS.values():
        if attribute is None:
            total += base_area
        else:
            ratio = (_config_value(config, attribute)
                     / _config_value(_BOOM_DEFAULT, attribute))
            total += base_area * ratio
    return total


# Rocket components: pipeline + I-cache fixed; divider scales with the
# unroll investment; the FPU costs more when pipelined (forwarding
# registers between stages).
_ROCKET_PIPELINE = 0.020
_ROCKET_ICACHE = 0.013
_ROCKET_MISC = 0.017


def _rocket_div_area(div_unroll):
    return 0.004 + 0.001 * div_unroll


def _rocket_fpu_area(fpu_stages, pipelined):
    base = 0.015 + 0.002 * fpu_stages
    return base + (0.009 if pipelined else 0.0)


def rocket_area_mm2(config=None):
    """Area of a Rocket-class little core, excluding its L1 D-cache
    (not required for re-execution, Sec. V-E)."""
    config = config if config is not None else LittleCoreConfig()
    return (_ROCKET_PIPELINE + _ROCKET_ICACHE + _ROCKET_MISC
            + _rocket_div_area(config.div_unroll)
            + _rocket_fpu_area(config.fpu_stages, config.fpu_pipelined))


@dataclass(frozen=True)
class AreaModel:
    """Bundle of the calibrated constants, for dependency injection."""

    deu_mm2: float = DEU_AREA_MM2
    f2_mm2: float = F2_AREA_MM2
    little_wrapper_mm2: float = LITTLE_WRAPPER_AREA_MM2

    def big_wrapper_mm2(self):
        """Big-core data collecting + forwarding (Table III: 0.122)."""
        return self.deu_mm2 + self.f2_mm2

    def meek_total_mm2(self, meek_config):
        big = boom_area_mm2(meek_config.big_core)
        little = rocket_area_mm2(meek_config.little_core)
        n = meek_config.num_little_cores
        return (big + self.big_wrapper_mm2()
                + n * (little + self.little_wrapper_mm2))

    def meek_overhead(self, meek_config):
        """Fractional overhead over the bare big core (paper: 25.8%)."""
        big = boom_area_mm2(meek_config.big_core)
        return (self.meek_total_mm2(meek_config) - big) / big


def meek_area_report(meek_config):
    """The Table III rows for a MEEK configuration."""
    model = AreaModel()
    big = boom_area_mm2(meek_config.big_core)
    little = rocket_area_mm2(meek_config.little_core)
    n = meek_config.num_little_cores
    total = model.meek_total_mm2(meek_config)
    return {
        "big_core_mm2": big,
        "little_core_mm2": little,
        "little_count": n,
        "deu_mm2": model.deu_mm2,
        "f2_mm2": model.f2_mm2,
        "big_wrapper_mm2": model.big_wrapper_mm2(),
        "little_wrapper_mm2": model.little_wrapper_mm2,
        "overhead_mm2": total - big,
        "total_mm2": total,
        "overhead_fraction": model.meek_overhead(meek_config),
    }


def lockstep_scale_factor(meek_config, tolerance=1e-3):
    """Scale factor for the Equivalent-Area LockStep comparator.

    Two identical scaled-down big cores must together match the area of
    the full MEEK system (big core + wrappers + little cores).  The
    factor is found by bisection over the linear area model.
    """
    model = AreaModel()
    target_per_core = model.meek_total_mm2(meek_config) / 2.0
    full = boom_area_mm2(meek_config.big_core)
    if target_per_core >= full:
        return 1.0
    lo, hi = 0.05, 1.0
    for _ in range(60):
        mid = (lo + hi) / 2.0
        area = boom_area_mm2(meek_config.big_core.scaled(mid))
        if area > target_per_core:
            hi = mid
        else:
            lo = mid
        if hi - lo < tolerance:
            break
    return (lo + hi) / 2.0


def performance_per_area(instructions_per_cycle, config=None,
                         include_wrapper=True):
    """Fig. 10 metric: little-core throughput per mm²."""
    if instructions_per_cycle <= 0:
        raise ConfigError("throughput must be positive")
    area = rocket_area_mm2(config)
    if include_wrapper:
        area += LITTLE_WRAPPER_AREA_MM2
    return instructions_per_cycle / area
