"""Plain-text rendering of tables and figure data.

The benchmark harness reproduces the paper's tables and figures as
text: aligned tables for per-benchmark rows and a horizontal-bar
histogram for the Fig. 7 density plot.
"""


def format_table(headers, rows, title=None, float_format="{:.3f}"):
    """Render an aligned text table.

    ``rows`` are sequences matching ``headers``; floats are formatted
    with ``float_format``, everything else with ``str``.
    """
    def fmt(value):
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    for row in text_rows:
        parts.append(line(row))
    return "\n".join(parts)


def render_histogram(bins, width=50, label_format="{:>8.0f}"):
    """Render ``[(bin_start, density), ...]`` as horizontal bars."""
    if not bins:
        return "(empty histogram)"
    peak = max(density for _, density in bins) or 1.0
    lines = []
    for start, density in bins:
        bar = "#" * int(round(width * density / peak))
        lines.append(f"{label_format.format(start)} | "
                     f"{bar:<{width}} {density:6.3f}")
    return "\n".join(lines)
