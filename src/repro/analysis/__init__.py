"""Analysis utilities: the Table III area model, statistics helpers
(geomean, densities, percentiles) and plain-text table/figure
rendering used by the benchmark harness."""

from repro.analysis.area import (
    AreaModel,
    DSN18_COMPARISON,
    boom_area_mm2,
    lockstep_scale_factor,
    meek_area_report,
    rocket_area_mm2,
)
from repro.analysis.coverage import (
    CoverageMap,
    coverage_path_for,
    format_coverage,
    load_coverage,
    save_coverage,
)
from repro.analysis.stats import (
    density_histogram,
    geomean,
    mean,
    percentile,
)
from repro.analysis.report import format_table, render_histogram

__all__ = [
    "AreaModel",
    "CoverageMap",
    "DSN18_COMPARISON",
    "boom_area_mm2",
    "coverage_path_for",
    "density_histogram",
    "format_coverage",
    "load_coverage",
    "save_coverage",
    "format_table",
    "geomean",
    "lockstep_scale_factor",
    "mean",
    "meek_area_report",
    "percentile",
    "render_histogram",
    "rocket_area_mm2",
]
