"""Statistics helpers used across the evaluation."""

import math

from repro.common.errors import SimulationError


def geomean(values):
    """Geometric mean — the paper's aggregate for slowdowns."""
    values = list(values)
    if not values:
        raise SimulationError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise SimulationError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mean(values):
    values = list(values)
    if not values:
        raise SimulationError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values, fraction):
    """Linear-interpolated percentile; ``fraction`` in [0, 1]."""
    values = sorted(values)
    if not values:
        raise SimulationError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise SimulationError("percentile fraction must be in [0, 1]")
    if len(values) == 1:
        return values[0]
    position = fraction * (len(values) - 1)
    low = int(position)
    high = min(low + 1, len(values) - 1)
    weight = position - low
    return values[low] * (1 - weight) + values[high] * weight


def density_histogram(values, bin_width, max_value=None):
    """Bin ``values`` into a density histogram (Fig. 7 style).

    Returns ``[(bin_start, density), ...]`` where densities sum to 1
    over all bins (values past ``max_value`` land in the last bin).
    """
    values = list(values)
    if not values:
        return []
    if bin_width <= 0:
        raise SimulationError("bin width must be positive")
    if max_value is None:
        max_value = max(values)
    num_bins = max(1, int(math.ceil(max_value / bin_width)))
    counts = [0] * num_bins
    for value in values:
        index = min(int(value // bin_width), num_bins - 1)
        counts[index] += 1
    total = len(values)
    return [(i * bin_width, counts[i] / total) for i in range(num_bins)]


def coverage_within(values, threshold):
    """Fraction of values at or below ``threshold`` (the paper's
    "3 µs covers over 99.9% of faults" claim)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(1 for v in values if v <= threshold) / len(values)
