"""Remote campaign runners: register, heartbeat, lease, stream rows.

The multi-host half of the transport layer (ARTIQ's controller-manager
register/heartbeat/restart pattern, adapted to work-stealing):

* :class:`RunnerHub` — the master-side registry of runner processes.
  Socket-agnostic: connection threads (the TCP listener below, or the
  ``repro serve`` Unix-socket client loop) call
  :meth:`~RunnerHub.register` / :meth:`~RunnerHub.lease` /
  :meth:`~RunnerHub.row` / :meth:`~RunnerHub.heartbeat` and report
  disconnects via :meth:`~RunnerHub.lost_channel`.  While a campaign
  executes, a :class:`Drive` is attached and leases flow; between
  campaigns runners idle on empty leases.
* :class:`RunnerListener` — a TCP accept loop speaking the
  line-JSON protocol of :mod:`repro.serve.protocol` on a
  host:port.  **Security note: the listener does no authentication —
  bind it only on interfaces you trust (loopback or a private
  cluster network).**  Runner loss is detected the moment the
  connection drops; the hub releases its leases for immediate
  requeue.
* :func:`run_runner` — the ``repro runner --connect`` client loop:
  connect, register, lease chunks, evaluate them with the same
  :func:`~repro.campaign.work.evaluate_units` loop every other
  transport uses, and stream the result rows back (pipelined, one
  response drain per chunk).  Reconnects with backoff when the master
  goes away, so a restarted master gets its fleet back without anyone
  touching the runner hosts.

Determinism: a runner evaluates points with the same per-point
deterministic RNG as a local shard — rows are pure functions of point
identity — so any mixture of runners and local shards produces
byte-identical metrics rows and ``coverage.json``.
"""

import os
import socket
import threading
import time

from repro.campaign.spec import CampaignPoint
from repro.campaign.work import evaluate_units
from repro.obs.events import event_log
from repro.serve import protocol
from repro.serve.protocol import ProtocolError

__all__ = [
    "Drive",
    "RunnerHub",
    "RunnerListener",
    "handle_runner_method",
    "parse_address",
    "run_runner",
]


def parse_address(address):
    """``HOST:PORT`` (or a bare port) → ``("tcp", host, port)``;
    anything else is a Unix socket path → ``("unix", path, None)``."""
    if address.isdigit():
        return "tcp", "127.0.0.1", int(address)
    if ":" in address:
        host, _, port = address.rpartition(":")
        try:
            return "tcp", host or "127.0.0.1", int(port)
        except ValueError:
            pass
    return "unix", address, None


class Drive:
    """Thread-safe shim between connection threads and the scheduler.

    Owned by :class:`~repro.campaign.transport.TcpRunnerTransport` for
    the duration of one campaign.  Connection threads lease and record
    under the lock; deliverables queue up and are drained — and their
    callbacks run — only on the transport's main loop, so store
    appends, live status, and progress callbacks never race.
    """

    def __init__(self, sched, campaign_name, timeout_s=None,
                 batch_lanes=1):
        self._sched = sched
        self._lock = threading.Lock()
        self._deliverables = []
        self.campaign_name = campaign_name
        self.timeout_s = timeout_s
        self.batch_lanes = batch_lanes

    # -- leasing (any thread) ----------------------------------------------

    def lease(self, owner):
        with self._lock:
            return self._sched.lease(owner, now=time.monotonic())

    def lease_payload(self, owner):
        """Lease a chunk and serialize it for the wire (or ``None``)."""
        chunk = self.lease(owner)
        if chunk is None:
            return None
        return {
            "chunk": chunk.chunk_id,
            "epoch": chunk.epoch,
            "campaign": self.campaign_name,
            "timeout_s": self.timeout_s,
            "batch_lanes": self.batch_lanes,
            "points": [[index, point.to_dict()]
                       for index, point in chunk.pairs],
        }

    def record(self, chunk_id, epoch, row):
        with self._lock:
            self._deliverables.extend(
                self._sched.record(chunk_id, epoch, row))

    def release(self, owner):
        with self._lock:
            return self._sched.release(owner)

    def renew(self, owner):
        with self._lock:
            self._sched.renew(owner, time.monotonic())

    def expire(self, now):
        with self._lock:
            return self._sched.expire(now)

    def leased_by(self, owner):
        with self._lock:
            return sum(1 for chunk in self._sched.leased.values()
                       if chunk.owner == owner)

    # -- folding (transport main loop) -------------------------------------

    def drain(self):
        with self._lock:
            drained = self._deliverables
            self._deliverables = []
        return drained

    def fail_lost(self):
        with self._lock:
            return self._sched.fail_lost()

    def results(self):
        with self._lock:
            return self._sched.results()

    @property
    def done(self):
        with self._lock:
            return self._sched.done

    @property
    def completed(self):
        with self._lock:
            return self._sched.completed


class _Runner:
    """Master-side record of one registered runner process."""

    __slots__ = ("runner_id", "name", "pid", "slots", "channel",
                 "alive", "connected_unix", "last_seen_unix",
                 "points", "chunks")

    def __init__(self, runner_id, name, pid, slots, channel):
        self.runner_id = runner_id
        self.name = name or f"runner-{runner_id}"
        self.pid = pid
        self.slots = slots or 1
        self.channel = channel
        self.alive = True
        self.connected_unix = time.time()
        self.last_seen_unix = self.connected_unix
        self.points = 0
        self.chunks = 0


class RunnerHub:
    """Registry of remote runners + the campaign drive they feed."""

    def __init__(self):
        self._lock = threading.Lock()
        self._runners = {}
        self._next_id = 1
        self._drive = None

    # -- drive attachment (transport main loop) ----------------------------

    def attach(self, drive):
        with self._lock:
            self._drive = drive

    def detach(self):
        with self._lock:
            self._drive = None

    def _current_drive(self):
        with self._lock:
            return self._drive

    # -- runner lifecycle (connection threads) -----------------------------

    def register(self, channel, name=None, pid=None, slots=None):
        with self._lock:
            runner_id = self._next_id
            self._next_id += 1
            runner = _Runner(runner_id, name, pid, slots, channel)
            self._runners[runner_id] = runner
        event_log().emit("runner_register", runner=runner_id,
                         name=runner.name, pid=pid, slots=runner.slots)
        return runner_id

    def _owner(self, runner_id):
        return ("runner", runner_id)

    def _touch(self, runner_id):
        runner = self._runners.get(runner_id)
        if runner is None or not runner.alive:
            raise ProtocolError(protocol.E_NOT_FOUND,
                                f"no registered runner {runner_id}")
        runner.last_seen_unix = time.time()
        return runner

    def lease(self, runner_id):
        with self._lock:
            runner = self._touch(runner_id)
        drive = self._current_drive()
        if drive is None:
            return None
        work = drive.lease_payload(self._owner(runner_id))
        if work is not None:
            with self._lock:
                runner.chunks += 1
            event_log().emit("runner_lease", runner=runner_id,
                             chunk=work["chunk"], epoch=work["epoch"],
                             points=len(work["points"]))
        return work

    def row(self, runner_id, chunk, epoch, row):
        with self._lock:
            runner = self._touch(runner_id)
            if "__batch__" not in row:
                runner.points += 1
        drive = self._current_drive()
        if drive is not None:
            drive.record(chunk, epoch, row)
            drive.renew(self._owner(runner_id))

    def heartbeat(self, runner_id):
        with self._lock:
            self._touch(runner_id)
        drive = self._current_drive()
        if drive is not None:
            drive.renew(self._owner(runner_id))
        return drive is not None

    def lost(self, runner_id):
        with self._lock:
            runner = self._runners.get(runner_id)
            if runner is None or not runner.alive:
                return
            runner.alive = False
        event_log().emit("runner_lost", runner=runner_id,
                         name=runner.name)
        drive = self._current_drive()
        if drive is not None:
            for chunk in drive.release(self._owner(runner_id)):
                event_log().emit("runner_chunk_requeued",
                                 runner=runner_id,
                                 chunk=chunk.chunk_id,
                                 points=len(chunk.pairs))

    def lost_channel(self, channel):
        """A connection died: every runner registered over it is gone."""
        with self._lock:
            stale = [r.runner_id for r in self._runners.values()
                     if r.alive and r.channel is channel]
        for runner_id in stale:
            self.lost(runner_id)

    # -- queries -----------------------------------------------------------

    def active_count(self):
        with self._lock:
            return sum(1 for r in self._runners.values() if r.alive)

    def wait_for(self, count, timeout_s=None, poll_s=0.05):
        """Block until ``count`` runners are registered (or timeout);
        returns the active count either way."""
        deadline = (None if timeout_s is None
                    else time.monotonic() + timeout_s)
        while True:
            active = self.active_count()
            if active >= count:
                return active
            if deadline is not None and time.monotonic() > deadline:
                return active
            time.sleep(poll_s)

    def runners_info(self):
        """Per-runner health/throughput snapshot (live status, hello)."""
        with self._lock:
            return [{
                "runner": r.runner_id, "name": r.name, "pid": r.pid,
                "slots": r.slots, "alive": r.alive,
                "points": r.points, "chunks": r.chunks,
                "last_seen_unix": r.last_seen_unix,
                "connected_unix": r.connected_unix,
            } for r in sorted(self._runners.values(),
                              key=lambda r: r.runner_id)]


def handle_runner_method(hub, channel, method, params):
    """Dispatch one validated ``runner_*`` request against ``hub``.

    Shared by the TCP listener and the ``repro serve`` master (so
    runners can register over either the TCP port or the serve Unix
    socket, alongside regular clients).
    """
    if method == "runner_register":
        runner_id = hub.register(channel, name=params.get("name"),
                                 pid=params.get("pid"),
                                 slots=params.get("slots"))
        return {"runner": runner_id,
                "schema": protocol.PROTOCOL_SCHEMA}
    if method == "runner_lease":
        return {"work": hub.lease(params["runner"])}
    if method == "runner_row":
        hub.row(params["runner"], params["chunk"], params["epoch"],
                params["row"])
        return {"accepted": True}
    if method == "runner_heartbeat":
        return {"active": hub.heartbeat(params["runner"])}
    raise ProtocolError(protocol.E_UNKNOWN_METHOD,
                        f"not a runner method: {method!r}")


class RunnerListener:
    """TCP accept loop feeding a :class:`RunnerHub`.

    Trusted-network-only: there is no authentication or transport
    encryption on this socket.  Bind to ``127.0.0.1`` (the default)
    or a private cluster interface — never a public one.
    """

    def __init__(self, hub, host="127.0.0.1", port=0):
        self.hub = hub
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(16)
        self._sock.settimeout(0.2)
        self.host, self.port = self._sock.getsockname()[:2]
        self._shutdown = threading.Event()
        self._threads = []
        self._conns = []
        self._conns_lock = threading.Lock()

    @property
    def address(self):
        return f"{self.host}:{self.port}"

    def start(self):
        thread = threading.Thread(target=self._accept_loop,
                                  name="runner-accept", daemon=True)
        thread.start()
        self._threads.append(thread)
        event_log().emit("runner_listener_start", host=self.host,
                         port=self.port)
        return self

    def _accept_loop(self):
        while not self._shutdown.is_set():
            try:
                conn, peer = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._conns_lock:
                self._conns.append(conn)
            thread = threading.Thread(
                target=self._conn_loop, args=(conn,),
                name=f"runner-conn-{peer[1]}", daemon=True)
            thread.start()

    def _conn_loop(self, conn):
        reader = protocol.LineReader()
        send_lock = threading.Lock()

        def send(message):
            data = protocol.encode(message)
            with send_lock:
                conn.sendall(data)

        try:
            while True:
                try:
                    data = conn.recv(65536)
                except OSError:
                    break
                if not data:
                    break
                for item in reader.feed(data):
                    if isinstance(item, protocol.Oversized):
                        send(protocol.error_response(
                            None, protocol.E_OVERSIZED,
                            f"line exceeded "
                            f"{protocol.MAX_LINE_BYTES} bytes"))
                        continue
                    self._handle_line(conn, item, send)
        except OSError:
            pass
        finally:
            self.hub.lost_channel(conn)
            with self._conns_lock:
                if conn in self._conns:
                    self._conns.remove(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _handle_line(self, conn, line, send):
        request_id = None
        try:
            frame = protocol.decode(line)
            request_id, method, params = protocol.parse_request(frame)
            if not method.startswith("runner_"):
                raise ProtocolError(
                    protocol.E_BAD_REQUEST,
                    f"the runner port only speaks runner_* methods, "
                    f"not {method!r}")
            result = handle_runner_method(self.hub, conn, method, params)
            send(protocol.response(request_id, result))
        except ProtocolError as exc:
            try:
                send(protocol.error_response(request_id, exc.code,
                                             exc.message))
            except OSError:
                pass
        except OSError:
            raise
        except Exception as exc:  # noqa: BLE001 — a hub bug must not
            # kill the listener thread (mirrors the serve master).
            try:
                send(protocol.error_response(
                    request_id, protocol.E_SERVER,
                    f"{type(exc).__name__}: {exc}"))
            except OSError:
                pass

    def stop(self):
        self._shutdown.set()
        try:
            self._sock.close()
        except OSError:
            pass
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=5.0)
        event_log().emit("runner_listener_stop", host=self.host,
                        port=self.port)


# -- the runner client -----------------------------------------------------

class _Channel:
    """Pipelined line-JSON RPC client over one socket.

    Responses arrive in request order (the master handles frames
    sequentially per connection), so rows can be fired without
    waiting (:meth:`cast`) and their responses drained in one sweep
    before the next synchronous :meth:`call`.

    Sends are serialized under a lock so a helper thread (the
    in-evaluation heartbeat of :func:`_evaluate_lease`) can
    :meth:`cast` concurrently with the evaluating thread's row casts.
    Receives stay single-threaded: only the main loop drains.
    """

    def __init__(self, sock):
        self._sock = sock
        self._reader = protocol.LineReader()
        self._responses = []
        self._pending = 0
        self._next_id = 1
        self._send_lock = threading.Lock()

    def close(self):
        try:
            self._sock.close()
        except OSError:
            pass

    def _send(self, method, params):
        with self._send_lock:
            request_id = self._next_id
            self._next_id += 1
            data = protocol.encode(
                protocol.request(method, params, request_id=request_id))
            self._sock.sendall(data)
            self._pending += 1

    def _recv_one(self):
        while not self._responses:
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionError("master closed the connection")
            for item in self._reader.feed(data):
                if isinstance(item, protocol.Oversized):
                    raise ConnectionError("oversized frame from master")
                self._responses.append(protocol.decode(item))
        with self._send_lock:
            self._pending -= 1
        return self._responses.pop(0)

    def cast(self, method, params):
        """Fire a request without waiting for its response."""
        self._send(method, params)

    def flush(self):
        """Drain every pending response; raise on any error reply."""
        while self._pending:
            reply = self._recv_one()
            if not reply.get("ok"):
                error = reply.get("error") or {}
                raise ConnectionError(
                    f"master rejected a frame: {error.get('code')}: "
                    f"{error.get('message')}")

    def call(self, method, params):
        """Synchronous request/response (drains pending rows first)."""
        self.flush()
        self._send(method, params)
        reply = self._recv_one()
        if not reply.get("ok"):
            error = reply.get("error") or {}
            raise ConnectionError(
                f"{method} failed: {error.get('code')}: "
                f"{error.get('message')}")
        return reply["result"]


def _connect(address, timeout_s=10.0):
    kind, host, port = parse_address(address)
    if kind == "tcp":
        sock = socket.create_connection((host, port), timeout=timeout_s)
    else:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout_s)
        sock.connect(host)
    sock.settimeout(None)
    return _Channel(sock)


def run_runner(address, name=None, poll_s=0.5, reconnect=True,
               retry_s=30.0, max_chunks=None, idle_exit_s=None,
               heartbeat_s=10.0, on_status=None):
    """The ``repro runner --connect`` main loop.

    Connect to a master at ``address`` (``HOST:PORT`` or a Unix
    socket path), register, then lease chunks and stream rows until
    the connection dies.  With ``reconnect`` the runner retries for
    ``retry_s`` seconds of continuous failure before giving up — a
    master restart inside that window gets this runner back without
    intervention.  While a lease evaluates, a helper thread casts a
    heartbeat every ``heartbeat_s`` seconds so a legitimately slow
    unit (an unbounded point, a wide batch group) keeps renewing its
    lease instead of expiring mid-evaluation and livelocking the
    campaign on requeues.  ``max_chunks`` / ``idle_exit_s`` bound the
    loop for tests and drills.  Returns the number of chunks
    evaluated.
    """
    chunks_done = 0
    last_grant = time.monotonic()
    failing_since = None
    while True:
        try:
            channel = _connect(address)
        except OSError as exc:
            if not reconnect:
                raise
            now = time.monotonic()
            failing_since = failing_since or now
            if now - failing_since > retry_s:
                raise ConnectionError(
                    f"no master at {address} after {retry_s:.0f}s "
                    f"of retries") from exc
            time.sleep(min(1.0, poll_s))
            continue
        failing_since = None
        try:
            hello = channel.call("runner_register", {
                "name": name, "pid": os.getpid(), "slots": 1})
            runner_id = hello["runner"]
            worker_id = name or f"runner-{runner_id}"
            if on_status is not None:
                on_status(f"registered as runner {runner_id} "
                          f"({worker_id}) at {address}")
            event_log().emit("runner_connected", runner=runner_id,
                             address=address, name=worker_id)
            while True:
                work = channel.call("runner_lease",
                                    {"runner": runner_id})["work"]
                if work is None:
                    if (idle_exit_s is not None
                            and time.monotonic() - last_grant
                            > idle_exit_s):
                        return chunks_done
                    channel.call("runner_heartbeat",
                                 {"runner": runner_id})
                    time.sleep(poll_s)
                    continue
                last_grant = time.monotonic()
                chunks_done += 1
                _evaluate_lease(channel, runner_id, worker_id, work,
                                heartbeat_s=heartbeat_s)
                if max_chunks is not None and chunks_done >= max_chunks:
                    return chunks_done
        except (OSError, ConnectionError, ProtocolError, KeyError) as exc:
            if not reconnect:
                raise
            now = time.monotonic()
            failing_since = failing_since or now
            if now - failing_since > retry_s:
                raise ConnectionError(
                    f"lost master at {address} and could not get it "
                    f"back within {retry_s:.0f}s: {exc}") from exc
            if on_status is not None:
                on_status(f"connection lost ({exc}); retrying")
            time.sleep(min(1.0, poll_s))
        finally:
            channel.close()


def _evaluate_lease(channel, runner_id, worker_id, work,
                    heartbeat_s=10.0):
    """Evaluate one leased chunk and stream its rows back (pipelined;
    one response drain at the end keeps the wire round-trip cost per
    chunk, not per point).

    A helper thread casts ``runner_heartbeat`` every ``heartbeat_s``
    seconds for the duration of the evaluation: completed-unit rows
    are the only other renewal signal, so without it any single unit
    slower than the master's lease timeout would expire its lease
    mid-evaluation.  The thread only ever *casts* (the channel's send
    path is lock-serialized); it is joined before the final flush, so
    the main loop's synchronous calls never race a stray response.
    """
    from repro.campaign.executor import resolve_batch_lanes

    pairs = [(index, CampaignPoint.from_dict(point_dict))
             for index, point_dict in work["points"]]
    # The master names a width; this host clamps it to what its own
    # kernel can actually run (rows are bit-identical either way).
    lanes = resolve_batch_lanes(work.get("batch_lanes") or 1)

    def emit(result):
        channel.cast("runner_row", {
            "runner": runner_id, "chunk": work["chunk"],
            "epoch": work["epoch"], "row": result.to_row()})

    def on_batch(stats):
        channel.cast("runner_row", {
            "runner": runner_id, "chunk": work["chunk"],
            "epoch": work["epoch"], "row": {"__batch__": stats}})

    stop = threading.Event()

    def beat():
        while not stop.wait(heartbeat_s):
            try:
                channel.cast("runner_heartbeat", {"runner": runner_id})
            except OSError:
                return  # the evaluating thread will hit it too

    beater = None
    if heartbeat_s is not None and heartbeat_s > 0:
        beater = threading.Thread(target=beat, daemon=True,
                                  name=f"runner-heartbeat-{runner_id}")
        beater.start()
    try:
        evaluate_units(pairs, lanes, work["campaign"],
                       work.get("timeout_s"), worker_id, emit=emit,
                       on_batch=on_batch)
    finally:
        if beater is not None:
            stop.set()
            beater.join()
    channel.flush()
