"""Campaign execution: serial or sharded across worker processes.

:func:`run_campaign` evaluates every point of a
:class:`~repro.campaign.spec.CampaignSpec` and returns a
:class:`CampaignResult` whose results are ordered by point index —
independent of how many shards ran them or in what order they finished.

Dispatch is chunked work stealing: pending points are cut into small
chunks on a shared queue and each worker pulls its next chunk the
moment it drains the previous one, so an unlucky shard stuck on a slow
point never strands the rest of the grid behind a static partition.
Every point is individually guarded — an exception (or an optional
per-point wall-clock timeout) is captured as a failed
:class:`~repro.campaign.results.PointResult`, never a crashed campaign.

The shards live in a :class:`WorkerPool`.  A pool is forked **once**
and can outlive any number of campaigns: workers pre-import the
simulator, pre-warm the persistent stepper cache
(:mod:`repro.perf.cache`), and then stream campaign points over the
shared queues — so back-to-back campaigns (figure drivers, difftest
sweeps, ``repro batch`` scripts) pay interpreter startup and stepper
compilation once per worker, not once per campaign.
:func:`run_campaign` accepts an external ``pool`` (usually owned by
:class:`repro.perf.service.ExecutionService`); without one it spins up
an ephemeral pool per call, which preserves the classic behaviour.

Determinism: a point's metrics depend only on the point itself (see
``spec.py``), so ``jobs=N`` is bit-identical to ``jobs=1``; only the
bookkeeping fields (elapsed, worker id) differ.
"""

import multiprocessing
import os
import queue as queue_module
import signal
import time
import traceback
import warnings
from dataclasses import dataclass, field

from repro.campaign.results import PointResult, ResultStore, aggregate
from repro.campaign.spec import CampaignPoint
from repro.campaign.tasks import (batch_group_key, evaluate_point,
                                  run_inject_batch)
from repro.obs.events import event_log
from repro.obs.metrics import get_registry


class PointTimeout(Exception):
    """A point exceeded the per-point wall-clock budget."""


class CampaignAborted(Exception):
    """The campaign's owner asked it to stop between points.

    Raised out of :func:`run_campaign` when its ``abort`` callback
    returns true; everything completed so far has already been
    appended to the store, so a later run with ``resume_from`` picks
    up exactly where the abort landed.  ``completed`` counts the
    points that finished before the stop.
    """

    def __init__(self, message, completed=0):
        super().__init__(message)
        self.completed = completed


@dataclass
class CampaignResult:
    """A finished campaign: spec + per-point results in spec order."""

    spec: object
    results: list = field(default_factory=list)
    #: Corrupt/truncated JSONL rows skipped while loading the resume
    #: store (surfaced in the end-of-run summary, not just warned).
    corrupt_rows_skipped: int = 0

    @property
    def ok(self):
        return [r for r in self.results if r.ok]

    @property
    def failed(self):
        return [r for r in self.results if not r.ok]

    @property
    def all_ok(self):
        return not self.failed

    def metrics(self):
        """Per-point metrics dicts, in spec order (None where failed)."""
        return [r.metrics if r.ok else None for r in self.results]

    def summary(self):
        return aggregate(self.results)


def default_jobs(jobs=None):
    """Resolve a job count: explicit > ``$REPRO_JOBS`` > 1 (serial)."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return 1


def resolve_batch_lanes(batch=None):
    """Resolve a batch width: explicit > ``$REPRO_BATCH`` > auto.

    ``"auto"`` (or nothing) picks the kernel's default lane count when
    the batched kernel can run in this process (numpy importable,
    ``REPRO_NO_BATCH``/``REPRO_SLOW_KERNEL`` unset); ``1`` disables
    batching.  An explicit width is likewise clamped to 1 when the
    kernel is unavailable, so ``--batch 64`` under ``REPRO_NO_BATCH=1``
    degrades to serial evaluation instead of erroring.
    """
    from repro.perf.batch import DEFAULT_BATCH_LANES, batch_available
    if batch is None:
        batch = os.environ.get("REPRO_BATCH", "").strip() or "auto"
    if batch == "auto":
        return DEFAULT_BATCH_LANES if batch_available() else 1
    lanes = max(1, int(batch))
    return lanes if lanes == 1 or batch_available() else 1


def _batch_units(pairs, lanes):
    """Cut ``(index, point)`` pairs into evaluation units.

    Batch-compatible points (equal :func:`batch_group_key`) are grouped
    up to ``lanes`` wide; unbatchable points and singleton groups run
    scalar.  Units keep first-appearance order — results are reordered
    by index at collection time, so unit order only affects store
    append order (which resume already tolerates).
    """
    if lanes <= 1:
        return [[pair] for pair in pairs]
    units = []
    open_groups = {}
    for pair in pairs:
        key = batch_group_key(pair[1])
        if key is None:
            units.append([pair])
            continue
        group = open_groups.get(key)
        if group is None or len(group) >= lanes:
            group = open_groups[key] = []
            units.append(group)
        group.append(pair)
    return units


def _evaluate_batch_guarded(group, campaign_name, timeout_s, worker_id):
    """Evaluate one batch group; falls back to per-point scalar runs.

    Returns ``(results, batch_stats)``.  The wall-clock budget for the
    batch is ``timeout_s`` per lane; any failure — timeout, kernel
    error, a bad point — reruns the whole group through the scalar
    per-point guard, so error attribution and row content match serial
    execution exactly.
    """
    start = time.perf_counter()
    budget = None if timeout_s is None else timeout_s * len(group)
    use_alarm = budget is not None and hasattr(signal, "SIGALRM")
    previous = None
    try:
        if use_alarm:
            def on_alarm(signum, frame):
                raise PointTimeout(
                    f"batch exceeded {budget:.1f}s wall-clock budget")
            previous = signal.signal(signal.SIGALRM, on_alarm)
            signal.setitimer(signal.ITIMER_REAL, budget)
        metrics_list, stats = run_inject_batch(
            [point for _, point in group], campaign_name=campaign_name)
    except Exception:
        return ([_evaluate_guarded(point, index, campaign_name, timeout_s,
                                   worker_id) for index, point in group],
                None)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            if previous is not None:
                signal.signal(signal.SIGALRM, previous)
    elapsed_each = (time.perf_counter() - start) / len(group)
    log = event_log()
    if stats is not None:
        log.emit("batch_complete", worker=worker_id,
                 campaign=campaign_name, **stats)
    results = []
    for (index, point), metrics in zip(group, metrics_list):
        result = PointResult(point_id=point.point_id, index=index,
                             ok=True, metrics=metrics)
        result.elapsed_s = elapsed_each
        result.worker = worker_id
        log.emit("point_complete", worker=worker_id,
                 point_id=result.point_id, index=index, ok=True,
                 elapsed_s=elapsed_each)
        results.append(result)
    return results, stats


def _evaluate_units(pairs, batch_lanes, campaign_name, timeout_s,
                    worker_id, emit, on_batch=None, abort=None):
    """Shared shard/serial loop: evaluate pairs unit by unit.

    ``emit`` receives each finished :class:`PointResult`; ``on_batch``
    each batch kernel stats dict.  ``abort`` (serial path only) is
    polled between units; a true poll raises :class:`CampaignAborted`
    with the count of points emitted so far.
    """
    emitted = 0
    for unit in _batch_units(pairs, batch_lanes):
        if abort is not None and abort():
            raise CampaignAborted(
                f"campaign {campaign_name!r} aborted with {emitted} "
                f"points done", completed=emitted)
        if len(unit) == 1:
            index, point = unit[0]
            emit(_evaluate_guarded(point, index, campaign_name,
                                   timeout_s, worker_id))
            emitted += 1
            continue
        results, stats = _evaluate_batch_guarded(
            unit, campaign_name, timeout_s, worker_id)
        if stats is not None and on_batch is not None:
            on_batch(stats)
        for result in results:
            emit(result)
            emitted += 1


def _evaluate_guarded(point, index, campaign_name, timeout_s, worker_id):
    """Evaluate one point, capturing errors and enforcing the timeout."""
    start = time.perf_counter()
    use_alarm = timeout_s is not None and hasattr(signal, "SIGALRM")
    previous = None
    try:
        if use_alarm:
            def on_alarm(signum, frame):
                raise PointTimeout(
                    f"point exceeded {timeout_s:.1f}s wall-clock budget")
            previous = signal.signal(signal.SIGALRM, on_alarm)
            signal.setitimer(signal.ITIMER_REAL, timeout_s)
        metrics = evaluate_point(point, campaign_name=campaign_name)
        result = PointResult(point_id=point.point_id, index=index,
                             ok=True, metrics=metrics)
    except Exception as exc:
        detail = traceback.format_exc(limit=8)
        result = PointResult(
            point_id=point.point_id, index=index, ok=False,
            error=f"{type(exc).__name__}: {exc}\n{detail}")
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            if previous is not None:
                signal.signal(signal.SIGALRM, previous)
    result.elapsed_s = time.perf_counter() - start
    result.worker = worker_id
    event_log().emit("point_complete", worker=worker_id,
                     point_id=result.point_id, index=index, ok=result.ok,
                     elapsed_s=result.elapsed_s)
    return result


def _warm_worker():
    """Pre-import the simulator and prime every stepper maker so no
    point pays a first-touch compile inside the pool."""
    import repro.campaign.tasks  # noqa: F401 — registers built-in tasks
    import repro.core.system    # noqa: F401 — pulls the simulator in
    from repro.perf.cache import stepper_cache
    from repro.perf.jit import prime_steppers
    prime_steppers()
    # Persist anything compiled cold right away: fork-start children
    # exit via os._exit, which skips atexit handlers, so this is the
    # worker's only chance to share its compiles with future processes.
    stepper_cache().flush()


def _pool_worker(worker_id, task_queue, result_queue, warm):
    """Shard main loop: steal work items until the sentinel arrives.

    An item is ``(epoch, campaign_name, timeout_s, batch_lanes,
    chunk)``; the epoch tags each result row with the
    :meth:`WorkerPool.run` call that submitted it, so rows from an
    abandoned run can never be mistaken for a later campaign's.
    Besides result rows the queue carries ``{"__batch__": stats}``
    control rows — batch kernel occupancy/eviction stats for the
    parent's live status (they do not count toward point totals).
    """
    if warm:
        try:
            _warm_worker()
        except Exception:  # noqa: BLE001 — warm-up is never fatal
            pass
    log = event_log()
    log.emit("shard_ready", worker=worker_id)
    while True:
        item = task_queue.get()
        if item is None:
            break
        epoch, campaign_name, timeout_s, batch_lanes, chunk = item
        log.emit("chunk_lease", worker=worker_id, epoch=epoch,
                 campaign=campaign_name, points=len(chunk))
        pairs = [(index, CampaignPoint.from_dict(point_dict))
                 for index, point_dict in chunk]
        _evaluate_units(
            pairs, batch_lanes, campaign_name, timeout_s, worker_id,
            emit=lambda result: result_queue.put((epoch, result.to_row())),
            on_batch=lambda stats: result_queue.put(
                (epoch, {"__batch__": stats})))
        # One heartbeat per drained chunk: liveness at a commit-log
        # boundary, never per point (the hot path stays event-free).
        log.emit("worker_heartbeat", worker=worker_id, epoch=epoch,
                 campaign=campaign_name)
    log.emit("shard_exit", worker=worker_id)


def _chunk(pending, chunk_size, jobs, batch_lanes=1):
    """Cut pending (index, point) pairs into work-stealing chunks.

    Default size targets ~4 steals per worker: small enough to
    rebalance around stragglers, large enough to amortize queue trips.
    With batching on, a chunk must hold at least one full batch —
    otherwise grouping (which never crosses chunk boundaries) could
    only ever form fragments.
    """
    if chunk_size is None:
        chunk_size = max(1, len(pending) // (jobs * 4))
    chunk_size = max(chunk_size, batch_lanes)
    return [pending[i:i + chunk_size]
            for i in range(0, len(pending), chunk_size)]


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class WorkerPool:
    """A set of persistent campaign shards (forked once, reused).

    With the default ``fork`` start method the workers inherit the
    parent's warm state (imported modules, compiled steppers) for
    free; ``warm=True`` additionally primes each worker explicitly,
    which covers spawn platforms and workers forked before the parent
    warmed up.  Use as a context manager, or call :meth:`close`.
    """

    def __init__(self, jobs, warm=False, context=None):
        self.jobs = max(1, int(jobs))
        self._ctx = context if context is not None else _mp_context()
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        self._epoch = 0
        self._closed = False
        self._workers = [
            self._ctx.Process(target=_pool_worker,
                              args=(worker_id, self._task_queue,
                                    self._result_queue, warm),
                              daemon=True)
            for worker_id in range(self.jobs)]
        for proc in self._workers:
            proc.start()
        log = event_log()
        for worker_id, proc in enumerate(self._workers):
            log.emit("shard_spawn", worker=worker_id, child_pid=proc.pid,
                     jobs=self.jobs)

    @property
    def healthy(self):
        """Whether every shard is still alive (a dead shard means the
        pool should be rebuilt rather than reused)."""
        return (not self._closed
                and all(proc.is_alive() for proc in self._workers))

    @property
    def pids(self):
        """The shard process ids (for health displays and tests)."""
        return [proc.pid for proc in self._workers]

    def run(self, campaign_name, pending, timeout_s=None, chunk_size=None,
            on_result=None, abort=None, batch_lanes=1, on_batch=None):
        """Stream ``pending`` ``(index, point)`` pairs through the
        shards; returns ``{index: PointResult}`` with every pending
        index present (worker death becomes a failed point).

        ``abort`` is an optional zero-argument callable polled while
        results are collected; when it turns true the call raises
        :class:`CampaignAborted`.  The pool itself stays healthy — the
        abandoned chunks drain through the epoch filter, so the next
        ``run`` on the same pool is unaffected.

        ``batch_lanes > 1`` lets each shard run batch-compatible
        inject points through the lockstep kernel
        (:mod:`repro.perf.batch`); ``on_batch`` receives each batch's
        occupancy/eviction stats dict as it arrives.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        self._epoch += 1
        epoch = self._epoch
        for chunk in _chunk(pending, chunk_size, self.jobs, batch_lanes):
            self._task_queue.put(
                (epoch, campaign_name, timeout_s, batch_lanes,
                 [(index, point.to_dict()) for index, point in chunk]))
        collected = {}
        remaining = len(pending)
        draining_after_death = False
        drain_deadline = None
        while remaining > 0:
            if abort is not None and abort():
                raise CampaignAborted(
                    f"campaign {campaign_name!r} aborted with "
                    f"{len(collected)} of {len(pending)} pending points "
                    f"done", completed=len(collected))
            try:
                got_epoch, row = self._result_queue.get(timeout=0.2)
            except queue_module.Empty:
                alive = sum(1 for proc in self._workers if proc.is_alive())
                if alive == 0:
                    break  # everyone gone; stragglers marked below
                if alive < len(self._workers) and not draining_after_death:
                    for worker_id, proc in enumerate(self._workers):
                        if not proc.is_alive():
                            event_log().emit("shard_death",
                                             worker=worker_id,
                                             child_pid=proc.pid,
                                             exitcode=proc.exitcode)
                    # A shard died and its in-flight chunk died with it,
                    # so `remaining` can never reach zero.  Hand the
                    # survivors shutdown sentinels: they drain the
                    # still-queued chunks (reporting those points) and
                    # exit, the alive==0 break fires, and only the lost
                    # chunk's points become WorkerDied.  The pool is
                    # spent afterwards (reaped below) — the owner sees
                    # ``healthy == False`` and rebuilds.
                    for _ in range(alive):
                        self._task_queue.put(None)
                    draining_after_death = True
                    drain_deadline = time.monotonic() + 10.0
                elif (draining_after_death
                        and time.monotonic() > drain_deadline):
                    # The survivors made no progress for the whole
                    # grace period: a SIGKILL can land while the dying
                    # shard holds the result queue's pipe lock, wedging
                    # every other shard's put() forever.  Reap them —
                    # the unreported points become WorkerDied below.
                    event_log().emit("pool_drain_wedged",
                                     remaining=remaining)
                    for proc in self._workers:
                        if proc.is_alive():
                            proc.terminate()
                    break
                continue
            if got_epoch != epoch:
                continue  # abandoned-run leftover
            if draining_after_death:
                drain_deadline = time.monotonic() + 10.0
            if "__batch__" in row:
                if on_batch is not None:
                    on_batch(row["__batch__"])
                continue
            result = PointResult.from_row(row)
            collected[result.index] = result
            if on_result is not None:
                on_result(result)
            remaining -= 1
        if draining_after_death:
            self._closed = True
            for proc in self._workers:
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.terminate()
        for index, point in pending:
            if index not in collected:
                result = PointResult(
                    point_id=point.point_id, index=index, ok=False,
                    error="WorkerDied: shard exited before reporting "
                          "this point")
                collected[index] = result
                if on_result is not None:
                    on_result(result)
        return collected

    def close(self, join_timeout=5.0):
        """Send shutdown sentinels and reap the shards."""
        if self._closed:
            return
        self._closed = True
        event_log().emit("pool_close", jobs=self.jobs)
        for _ in self._workers:
            self._task_queue.put(None)
        for proc in self._workers:
            proc.join(timeout=join_timeout)
            if proc.is_alive():
                proc.terminate()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()


def run_campaign(spec, jobs=None, store=None, resume_from=None,
                 progress=None, chunk_size=None, point_timeout_s=None,
                 pool=None, live=None, abort=None, batch=None):
    """Execute ``spec`` and return a :class:`CampaignResult`.

    ``jobs``
        Worker shard count (1 = in-process serial; default honours
        ``$REPRO_JOBS``).
    ``pool``
        An externally-owned persistent :class:`WorkerPool` — or a
        zero-argument callable returning one (or ``None``), invoked
        only once more than one point is known to be pending, so a
        fully-resumed campaign never pays pool startup.  When a pool
        is used it overrides ``jobs`` and the campaign streams through
        its already-warm shards.  The caller keeps ownership — the
        pool stays open for the next campaign.
    ``store``
        Optional :class:`ResultStore`; every result is appended as it
        completes.
    ``resume_from``
        Path to a previous campaign's JSONL: points already recorded
        OK there are loaded instead of re-run (failed rows re-run).
    ``progress``
        Callable invoked with each freshly-completed
        :class:`PointResult` (see ``progress.ProgressReporter``).
    ``point_timeout_s``
        Per-point wall-clock budget; an overrun becomes a failed
        point, not a stuck campaign.
    ``live``
        Optional :class:`repro.obs.live.LiveStatus`: fed every fresh
        result and finalized when the campaign ends, so other
        processes can watch the run through its published
        ``status.json``.
    ``abort``
        Optional zero-argument callable polled between points; when it
        turns true the campaign stops dispatching and raises
        :class:`CampaignAborted`.  Results completed before the abort
        are already in the store, so re-running with ``resume_from``
        finishes only the remainder — this is how ``repro serve``
        implements cancel, pause, and graceful shutdown.
    ``batch``
        Lockstep batch width for compatible inject points: an int,
        ``"auto"`` (kernel default when available — this is also the
        default), or ``1`` to force scalar evaluation.  Rows are
        bit-identical either way; batching only changes throughput.
    """
    spec.validate()
    jobs = default_jobs(jobs)
    batch_lanes = resolve_batch_lanes(batch)
    log = event_log()
    if point_timeout_s is not None and not hasattr(signal, "SIGALRM"):
        warnings.warn("point_timeout_s needs SIGALRM (unavailable on "
                      "this platform); points run unbounded",
                      RuntimeWarning, stacklevel=2)
    done = {}
    corrupt_counter = get_registry().counter("store.corrupt_rows_skipped")
    corrupt_before = corrupt_counter.value
    if resume_from is not None and os.path.exists(resume_from):
        stored = ResultStore.load(resume_from)
        for index, point in enumerate(spec.points):
            previous = stored.get(point.point_id)
            if previous is not None and previous.ok:
                previous.index = index  # realign with this spec's order
                done[index] = previous
    corrupt_skipped = corrupt_counter.value - corrupt_before
    pending = [(i, p) for i, p in enumerate(spec.points) if i not in done]
    log.emit("campaign_start", campaign=spec.name,
             points=len(spec.points), pending=len(pending),
             resumed=len(done), jobs=jobs)
    if live is not None:
        live.begin(resumed=len(done), corrupt_rows_skipped=corrupt_skipped)
        for index in sorted(done):
            # Resumed rows never reach on_result; their coverage cells
            # must still land in the map so a resumed campaign persists
            # the same artifact as an uninterrupted one.
            live.resumed_point(done[index])

    def on_result(result):
        if store is not None:
            store.append(result)
        if live is not None:
            live.point(result)
        if progress is not None:
            progress(result)

    def on_batch(stats):
        if live is not None:
            live.batch(stats)

    start = time.monotonic()
    try:
        if pool is not None and len(pending) > 1 and callable(pool):
            pool = pool()
        if pool is not None and not callable(pool) and len(pending) > 1:
            collected = pool.run(spec.name, pending,
                                 timeout_s=point_timeout_s,
                                 chunk_size=chunk_size, on_result=on_result,
                                 abort=abort, batch_lanes=batch_lanes,
                                 on_batch=on_batch)
        elif jobs <= 1 or len(pending) <= 1:
            collected = {}

            def emit(result):
                collected[result.index] = result
                on_result(result)

            _evaluate_units(pending, batch_lanes, spec.name,
                            point_timeout_s, worker_id=0, emit=emit,
                            on_batch=on_batch, abort=abort)
        else:
            with WorkerPool(min(jobs, len(pending))) as ephemeral:
                collected = ephemeral.run(
                    spec.name, pending, timeout_s=point_timeout_s,
                    chunk_size=chunk_size, on_result=on_result,
                    abort=abort, batch_lanes=batch_lanes,
                    on_batch=on_batch)
    except CampaignAborted as exc:
        log.emit("campaign_abort", campaign=spec.name,
                 completed=exc.completed, pending=len(pending),
                 dur_s=time.monotonic() - start)
        if live is not None:
            live.aborted()
        raise

    collected.update(done)
    results = [collected[i] for i in range(len(spec.points))]
    failed = sum(1 for r in results if not r.ok)
    log.emit("campaign_end", campaign=spec.name, points=len(results),
             failed=failed, dur_s=time.monotonic() - start)
    if live is not None:
        live.finish()
    return CampaignResult(spec=spec, results=results,
                          corrupt_rows_skipped=corrupt_skipped)
