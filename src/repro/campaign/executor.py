"""Campaign orchestration: plan a run, hand it to a transport.

:func:`run_campaign` evaluates every point of a
:class:`~repro.campaign.spec.CampaignSpec` and returns a
:class:`CampaignResult` whose results are ordered by point index —
independent of how many shards or remote runners ran them or in what
order they finished.

This module is the *planning* layer of a three-layer split:

* :mod:`repro.campaign.sched` — the pure scheduler core: chunk
  leasing, lease epochs/expiry, batch-unit grouping, result folding.
* :mod:`repro.campaign.transport` — pluggable transports carrying
  chunks to evaluators: the forked local
  :class:`~repro.campaign.pool.WorkerPool`
  (:class:`~repro.campaign.transport.LocalPoolTransport`) or remote
  ``repro runner`` processes over TCP
  (:class:`~repro.campaign.transport.TcpRunnerTransport`).
* this module — resume realignment, store/live/progress fan-out,
  result ordering, and the campaign-level events.

:func:`run_campaign` accepts an explicit ``transport``; without one
it builds the classic local path from ``pool``/``jobs`` (an external
persistent pool — usually owned by
:class:`repro.perf.service.ExecutionService` — or an ephemeral one),
and with ``jobs <= 1`` it evaluates inline, serially.

Determinism: a point's metrics depend only on the point itself (see
``spec.py``), so any transport — serial, local shards, remote
runners, or a mixture — is bit-identical; only the bookkeeping fields
(elapsed, worker id) differ.
"""

import os
import signal
import time
import warnings
from dataclasses import dataclass, field

from repro.campaign.results import ResultStore, aggregate
# Re-exported for compatibility: these lived here before the
# sched/transport split, and tests, benches, and the service still
# import them from the executor.
from repro.campaign.pool import WorkerPool  # noqa: F401
from repro.campaign.sched import batch_units as _batch_units  # noqa: F401
from repro.campaign.work import (CampaignAborted,  # noqa: F401
                                 PointTimeout, evaluate_units)
from repro.obs.events import event_log
from repro.obs.metrics import get_registry

_evaluate_units = evaluate_units  # pre-split private name

__all__ = [
    "CampaignAborted",
    "CampaignResult",
    "PointTimeout",
    "WorkerPool",
    "default_jobs",
    "resolve_batch_lanes",
    "run_campaign",
]


@dataclass
class CampaignResult:
    """A finished campaign: spec + per-point results in spec order."""

    spec: object
    results: list = field(default_factory=list)
    #: Corrupt/truncated JSONL rows skipped while loading the resume
    #: store (surfaced in the end-of-run summary, not just warned).
    corrupt_rows_skipped: int = 0

    @property
    def ok(self):
        return [r for r in self.results if r.ok]

    @property
    def failed(self):
        return [r for r in self.results if not r.ok]

    @property
    def all_ok(self):
        return not self.failed

    def metrics(self):
        """Per-point metrics dicts, in spec order (None where failed)."""
        return [r.metrics if r.ok else None for r in self.results]

    def summary(self):
        return aggregate(self.results)


def default_jobs(jobs=None):
    """Resolve a job count: explicit > ``$REPRO_JOBS`` > 1 (serial)."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return 1


def resolve_batch_lanes(batch=None):
    """Resolve a batch width: explicit > ``$REPRO_BATCH`` > auto.

    ``"auto"`` (or nothing) picks the kernel's default lane count when
    the batched kernel can run in this process (numpy importable,
    ``REPRO_NO_BATCH``/``REPRO_SLOW_KERNEL`` unset); ``1`` disables
    batching.  An explicit width is likewise clamped to 1 when the
    kernel is unavailable, so ``--batch 64`` under ``REPRO_NO_BATCH=1``
    degrades to serial evaluation instead of erroring.
    """
    from repro.perf.batch import DEFAULT_BATCH_LANES, batch_available
    if batch is None:
        batch = os.environ.get("REPRO_BATCH", "").strip() or "auto"
    if batch == "auto":
        return DEFAULT_BATCH_LANES if batch_available() else 1
    lanes = max(1, int(batch))
    return lanes if lanes == 1 or batch_available() else 1


def run_campaign(spec, jobs=None, store=None, resume_from=None,
                 progress=None, chunk_size=None, point_timeout_s=None,
                 pool=None, live=None, abort=None, batch=None,
                 transport=None):
    """Execute ``spec`` and return a :class:`CampaignResult`.

    ``jobs``
        Worker shard count (1 = in-process serial; default honours
        ``$REPRO_JOBS``).
    ``pool``
        An externally-owned persistent
        :class:`~repro.campaign.pool.WorkerPool` — or a zero-argument
        callable returning one (or ``None``), invoked only once more
        than one point is known to be pending, so a fully-resumed
        campaign never pays pool startup.  When a pool is used it
        overrides ``jobs`` and the campaign streams through its
        already-warm shards.  The caller keeps ownership — the pool
        stays open for the next campaign.
    ``transport``
        An explicit :class:`~repro.campaign.transport.Transport`
        (overrides ``pool`` and ``jobs``): this is how distributed
        campaigns run —
        :class:`~repro.campaign.transport.TcpRunnerTransport` carries
        the same pending pairs to remote runners, bit-identically.
    ``store``
        Optional :class:`ResultStore`; every result is appended as it
        completes.
    ``resume_from``
        Path to a previous campaign's JSONL: points already recorded
        OK there are loaded instead of re-run (failed rows re-run).
    ``progress``
        Callable invoked with each freshly-completed
        :class:`PointResult` (see ``progress.ProgressReporter``).
    ``point_timeout_s``
        Per-point wall-clock budget; an overrun becomes a failed
        point, not a stuck campaign.
    ``live``
        Optional :class:`repro.obs.live.LiveStatus`: fed every fresh
        result and finalized when the campaign ends, so other
        processes can watch the run through its published
        ``status.json``.
    ``abort``
        Optional zero-argument callable polled between points; when it
        turns true the campaign stops dispatching and raises
        :class:`CampaignAborted`.  Results completed before the abort
        are already in the store, so re-running with ``resume_from``
        finishes only the remainder — this is how ``repro serve``
        implements cancel, pause, and graceful shutdown.
    ``batch``
        Lockstep batch width for compatible inject points: an int,
        ``"auto"`` (kernel default when available — this is also the
        default), or ``1`` to force scalar evaluation.  Rows are
        bit-identical either way; batching only changes throughput.
    """
    from repro.campaign.transport import ExecutionPlan, LocalPoolTransport

    spec.validate()
    jobs = default_jobs(jobs)
    batch_lanes = resolve_batch_lanes(batch)
    log = event_log()
    if point_timeout_s is not None and not hasattr(signal, "SIGALRM"):
        warnings.warn("point_timeout_s needs SIGALRM (unavailable on "
                      "this platform); points run unbounded",
                      RuntimeWarning, stacklevel=2)
    done = {}
    corrupt_counter = get_registry().counter("store.corrupt_rows_skipped")
    corrupt_before = corrupt_counter.value
    if resume_from is not None and os.path.exists(resume_from):
        stored = ResultStore.load(resume_from)
        for index, point in enumerate(spec.points):
            previous = stored.get(point.point_id)
            if previous is not None and previous.ok:
                previous.index = index  # realign with this spec's order
                done[index] = previous
    corrupt_skipped = corrupt_counter.value - corrupt_before
    pending = [(i, p) for i, p in enumerate(spec.points) if i not in done]
    log.emit("campaign_start", campaign=spec.name,
             points=len(spec.points), pending=len(pending),
             resumed=len(done), jobs=jobs)
    if live is not None:
        live.begin(resumed=len(done), corrupt_rows_skipped=corrupt_skipped)
        for index in sorted(done):
            # Resumed rows never reach on_result; their coverage cells
            # must still land in the map so a resumed campaign persists
            # the same artifact as an uninterrupted one.
            live.resumed_point(done[index])

    def on_result(result):
        if store is not None:
            store.append(result)
        if live is not None:
            live.point(result)
        if progress is not None:
            progress(result)

    def on_batch(stats):
        if live is not None:
            live.batch(stats)

    plan = ExecutionPlan(
        campaign_name=spec.name, pending=pending,
        timeout_s=point_timeout_s, chunk_size=chunk_size,
        batch_lanes=batch_lanes, on_result=on_result,
        on_batch=on_batch, abort=abort, live=live, jobs=jobs)
    start = time.monotonic()
    try:
        # A pool *factory* is invoked only once more than one point is
        # known to be pending (and no explicit transport supersedes
        # it); returning None means "run serial".
        if (transport is None and pool is not None
                and len(pending) > 1 and callable(pool)):
            pool = pool()
        if transport is not None and len(pending) > 0:
            collected = transport.execute(plan)
        elif (pool is not None and not callable(pool)
                and len(pending) > 1):
            collected = LocalPoolTransport(pool=pool).execute(plan)
        elif jobs <= 1 or len(pending) <= 1:
            collected = {}

            def emit(result):
                collected[result.index] = result
                on_result(result)

            evaluate_units(pending, batch_lanes, spec.name,
                           point_timeout_s, worker_id=0, emit=emit,
                           on_batch=on_batch, abort=abort)
        else:
            collected = LocalPoolTransport(jobs=jobs).execute(plan)
    except CampaignAborted as exc:
        log.emit("campaign_abort", campaign=spec.name,
                 completed=exc.completed, pending=len(pending),
                 dur_s=time.monotonic() - start)
        if live is not None:
            live.aborted()
        raise

    collected.update(done)
    results = [collected[i] for i in range(len(spec.points))]
    failed = sum(1 for r in results if not r.ok)
    log.emit("campaign_end", campaign=spec.name, points=len(results),
             failed=failed, dur_s=time.monotonic() - start)
    if live is not None:
        live.finish()
    return CampaignResult(spec=spec, results=results,
                          corrupt_rows_skipped=corrupt_skipped)
