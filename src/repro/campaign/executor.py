"""Campaign execution: serial or sharded across worker processes.

:func:`run_campaign` evaluates every point of a
:class:`~repro.campaign.spec.CampaignSpec` and returns a
:class:`CampaignResult` whose results are ordered by point index —
independent of how many shards ran them or in what order they finished.

Dispatch is chunked work stealing: pending points are cut into small
chunks on a shared queue and each worker pulls its next chunk the
moment it drains the previous one, so an unlucky shard stuck on a slow
point never strands the rest of the grid behind a static partition.
Every point is individually guarded — an exception (or an optional
per-point wall-clock timeout) is captured as a failed
:class:`~repro.campaign.results.PointResult`, never a crashed campaign.

Determinism: a point's metrics depend only on the point itself (see
``spec.py``), so ``jobs=N`` is bit-identical to ``jobs=1``; only the
bookkeeping fields (elapsed, worker id) differ.
"""

import multiprocessing
import os
import queue as queue_module
import signal
import time
import traceback
import warnings
from dataclasses import dataclass, field

from repro.campaign.results import PointResult, ResultStore, aggregate
from repro.campaign.spec import CampaignPoint
from repro.campaign.tasks import evaluate_point


class PointTimeout(Exception):
    """A point exceeded the per-point wall-clock budget."""


@dataclass
class CampaignResult:
    """A finished campaign: spec + per-point results in spec order."""

    spec: object
    results: list = field(default_factory=list)

    @property
    def ok(self):
        return [r for r in self.results if r.ok]

    @property
    def failed(self):
        return [r for r in self.results if not r.ok]

    @property
    def all_ok(self):
        return not self.failed

    def metrics(self):
        """Per-point metrics dicts, in spec order (None where failed)."""
        return [r.metrics if r.ok else None for r in self.results]

    def summary(self):
        return aggregate(self.results)


def default_jobs(jobs=None):
    """Resolve a job count: explicit > ``$REPRO_JOBS`` > 1 (serial)."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return 1


def _evaluate_guarded(point, index, campaign_name, timeout_s, worker_id):
    """Evaluate one point, capturing errors and enforcing the timeout."""
    start = time.perf_counter()
    use_alarm = timeout_s is not None and hasattr(signal, "SIGALRM")
    previous = None
    try:
        if use_alarm:
            def on_alarm(signum, frame):
                raise PointTimeout(
                    f"point exceeded {timeout_s:.1f}s wall-clock budget")
            previous = signal.signal(signal.SIGALRM, on_alarm)
            signal.setitimer(signal.ITIMER_REAL, timeout_s)
        metrics = evaluate_point(point, campaign_name=campaign_name)
        result = PointResult(point_id=point.point_id, index=index,
                             ok=True, metrics=metrics)
    except Exception as exc:
        detail = traceback.format_exc(limit=8)
        result = PointResult(
            point_id=point.point_id, index=index, ok=False,
            error=f"{type(exc).__name__}: {exc}\n{detail}")
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            if previous is not None:
                signal.signal(signal.SIGALRM, previous)
    result.elapsed_s = time.perf_counter() - start
    result.worker = worker_id
    return result


def _worker(worker_id, campaign_name, timeout_s, task_queue, result_queue):
    """Shard main loop: steal chunks until the sentinel arrives."""
    while True:
        chunk = task_queue.get()
        if chunk is None:
            break
        for index, point_dict in chunk:
            point = CampaignPoint.from_dict(point_dict)
            result = _evaluate_guarded(point, index, campaign_name,
                                       timeout_s, worker_id)
            result_queue.put(result.to_row())


def _chunk(pending, chunk_size, jobs):
    """Cut pending (index, point) pairs into work-stealing chunks.

    Default size targets ~4 steals per worker: small enough to
    rebalance around stragglers, large enough to amortize queue trips.
    """
    if chunk_size is None:
        chunk_size = max(1, len(pending) // (jobs * 4))
    return [pending[i:i + chunk_size]
            for i in range(0, len(pending), chunk_size)]


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _run_sharded(spec, pending, jobs, timeout_s, chunk_size, on_result):
    ctx = _mp_context()
    task_queue = ctx.Queue()
    result_queue = ctx.Queue()
    serialized = [[(i, p.to_dict()) for i, p in chunk]
                  for chunk in _chunk(pending, chunk_size, jobs)]
    for chunk in serialized:
        task_queue.put(chunk)
    workers = []
    for worker_id in range(min(jobs, len(serialized))):
        task_queue.put(None)  # one sentinel per worker
        proc = ctx.Process(target=_worker,
                           args=(worker_id, spec.name, timeout_s,
                                 task_queue, result_queue),
                           daemon=True)
        proc.start()
        workers.append(proc)

    collected = {}
    remaining = len(pending)
    while remaining > 0:
        try:
            row = result_queue.get(timeout=0.2)
        except queue_module.Empty:
            if not any(w.is_alive() for w in workers):
                break  # hard worker death; stragglers marked below
            continue
        result = PointResult.from_row(row)
        collected[result.index] = result
        on_result(result)
        remaining -= 1
    for proc in workers:
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.terminate()
    for index, point in pending:
        if index not in collected:
            result = PointResult(
                point_id=point.point_id, index=index, ok=False,
                error="WorkerDied: shard exited before reporting "
                      "this point")
            collected[index] = result
            on_result(result)
    return collected


def run_campaign(spec, jobs=None, store=None, resume_from=None,
                 progress=None, chunk_size=None, point_timeout_s=None):
    """Execute ``spec`` and return a :class:`CampaignResult`.

    ``jobs``
        Worker shard count (1 = in-process serial; default honours
        ``$REPRO_JOBS``).
    ``store``
        Optional :class:`ResultStore`; every result is appended as it
        completes.
    ``resume_from``
        Path to a previous campaign's JSONL: points already recorded
        OK there are loaded instead of re-run (failed rows re-run).
    ``progress``
        Callable invoked with each freshly-completed
        :class:`PointResult` (see ``progress.ProgressReporter``).
    ``point_timeout_s``
        Per-point wall-clock budget; an overrun becomes a failed
        point, not a stuck campaign.
    """
    spec.validate()
    jobs = default_jobs(jobs)
    if point_timeout_s is not None and not hasattr(signal, "SIGALRM"):
        warnings.warn("point_timeout_s needs SIGALRM (unavailable on "
                      "this platform); points run unbounded",
                      RuntimeWarning, stacklevel=2)
    done = {}
    if resume_from is not None and os.path.exists(resume_from):
        stored = ResultStore.load(resume_from)
        for index, point in enumerate(spec.points):
            previous = stored.get(point.point_id)
            if previous is not None and previous.ok:
                previous.index = index  # realign with this spec's order
                done[index] = previous
    pending = [(i, p) for i, p in enumerate(spec.points) if i not in done]

    def on_result(result):
        if store is not None:
            store.append(result)
        if progress is not None:
            progress(result)

    if jobs <= 1 or len(pending) <= 1:
        collected = {}
        for index, point in pending:
            result = _evaluate_guarded(point, index, spec.name,
                                       point_timeout_s, worker_id=0)
            collected[index] = result
            on_result(result)
    else:
        collected = _run_sharded(spec, pending, jobs, point_timeout_s,
                                 chunk_size, on_result)

    collected.update(done)
    results = [collected[i] for i in range(len(spec.points))]
    return CampaignResult(spec=spec, results=results)
