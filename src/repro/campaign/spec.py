"""Declarative campaign specifications.

A campaign is a grid of independent simulation *points* — each point
names a registered task (``meek``, ``vanilla``, ``inject``, …), a
workload, an instruction budget, a seed, and a dict of task parameters.
Points are deliberately plain data (strings, ints, floats, bools) so a
spec can round-trip through JSON, travel to worker processes, and key a
result store.

Determinism contract: a point's identity (:attr:`CampaignPoint.point_id`)
is a pure function of its fields, and every random stream a task draws
is derived from that identity (or an explicit ``rng_key`` parameter)
through :class:`~repro.common.prng.DeterministicRng` string seeding.
Sharded execution is therefore bit-identical to serial execution, and a
resumed campaign continues exactly where the stored rows stop.
"""

import json
from dataclasses import dataclass, field

from repro.common.errors import ConfigError

#: Parameter values allowed in a point (must survive JSON round-trips).
_SCALAR_TYPES = (str, int, float, bool, type(None))


def _check_params(params):
    for key, value in params.items():
        if not isinstance(key, str):
            raise ConfigError(f"param key {key!r} must be a string")
        if not isinstance(value, _SCALAR_TYPES):
            raise ConfigError(
                f"param {key}={value!r} is not JSON-scalar; campaign "
                f"points carry only str/int/float/bool/None values")


@dataclass
class CampaignPoint:
    """One independent unit of work in a campaign."""

    task: str
    workload: str = None
    instructions: int = 0
    seed: int = 0
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        _check_params(self.params)

    @property
    def point_id(self):
        """Canonical identity string; stable across processes/runs."""
        parts = [self.task, str(self.workload), str(self.instructions),
                 str(self.seed)]
        parts.extend(f"{k}={self.params[k]}" for k in sorted(self.params))
        return "/".join(parts)

    def rng_key(self, campaign_name=""):
        """Seed string for this point's random streams.

        An explicit ``rng_key`` parameter wins (used by the figure
        drivers to preserve their historical fault-injection streams);
        otherwise the key derives from the point id alone — never from
        the campaign name — so a point's metrics are a pure function
        of its identity and ``--resume`` can safely reuse rows across
        differently-named campaigns over the same grid.
        """
        explicit = self.params.get("rng_key")
        if explicit is not None:
            return explicit
        return f"campaign/{self.point_id}"

    def to_dict(self):
        return {"task": self.task, "workload": self.workload,
                "instructions": self.instructions, "seed": self.seed,
                "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data):
        return cls(task=data["task"], workload=data.get("workload"),
                   instructions=data.get("instructions", 0),
                   seed=data.get("seed", 0),
                   params=dict(data.get("params", {})))


@dataclass
class CampaignSpec:
    """A named, ordered collection of points."""

    name: str
    points: list = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def __len__(self):
        return len(self.points)

    def validate(self):
        seen = {}
        for i, point in enumerate(self.points):
            pid = point.point_id
            if pid in seen:
                raise ConfigError(
                    f"duplicate point {pid!r} at indices "
                    f"{seen[pid]} and {i}")
            seen[pid] = i
        return self

    # -- grid construction ------------------------------------------------

    @classmethod
    def grid(cls, name, workloads, seeds=(0,), instructions=20_000,
             configs=None, injection=None, trials=1, task="meek",
             include_baseline=True):
        """Expand a workloads × seeds × configs (× trials) grid.

        ``configs`` is an iterable of parameter dicts merged into each
        point (e.g. ``[{"cores": 2}, {"cores": 4}]``); ``injection``
        switches the grid to fault-injection points (a dict with at
        least ``rate``, expanded to ``trials`` points per cell).  With
        ``include_baseline`` a single ``vanilla`` point per
        (workload, seed) rides along so summaries can report slowdown.
        """
        configs = [dict(c) for c in (configs or [{}])]
        points = []
        for workload in workloads:
            for seed in seeds:
                if include_baseline and task == "meek" and injection is None:
                    points.append(CampaignPoint(
                        task="vanilla", workload=workload,
                        instructions=instructions, seed=seed))
                for config in configs:
                    if injection is not None:
                        for trial in range(trials):
                            params = dict(config)
                            params.update(injection)
                            params["trial"] = trial
                            points.append(CampaignPoint(
                                task="inject", workload=workload,
                                instructions=instructions, seed=seed,
                                params=params))
                    else:
                        points.append(CampaignPoint(
                            task=task, workload=workload,
                            instructions=instructions, seed=seed,
                            params=dict(config)))
        return cls(name=name, points=points).validate()

    # -- JSON -------------------------------------------------------------

    def to_dict(self):
        return {"name": self.name, "meta": dict(self.meta),
                "points": [p.to_dict() for p in self.points]}

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data):
        """Build from either an explicit point list or grid shorthand.

        Explicit form: ``{"name": ..., "points": [{...}, ...]}``.
        Grid shorthand mirrors :meth:`grid`'s keyword arguments::

            {"name": "sweep", "workloads": ["dedup"], "seeds": [0, 1],
             "instructions": 20000, "configs": [{"cores": 4}],
             "injection": {"rate": 0.008}, "trials": 3}
        """
        if "points" in data:
            spec = cls(name=data.get("name", "campaign"),
                       points=[CampaignPoint.from_dict(p)
                               for p in data["points"]],
                       meta=dict(data.get("meta", {})))
            return spec.validate()
        if "workloads" not in data:
            raise ConfigError(
                "spec needs either a 'points' list or grid fields "
                "(at least 'workloads')")
        return cls.grid(
            name=data.get("name", "campaign"),
            workloads=data["workloads"],
            seeds=tuple(data.get("seeds", (0,))),
            instructions=data.get("instructions", 20_000),
            configs=data.get("configs"),
            injection=data.get("injection"),
            trials=data.get("trials", 1),
            task=data.get("task", "meek"),
            include_baseline=data.get("include_baseline", True))

    @classmethod
    def from_file(cls, path):
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
