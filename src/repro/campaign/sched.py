"""The campaign scheduler core: leases, epochs, folding — no I/O.

This module is the transport-agnostic heart of campaign execution.  It
owns everything about *which* work runs where and *what* came back —
and deliberately nothing about *how* work travels: no processes, no
sockets, no signals, no clocks it did not receive as arguments.  A
:class:`ChunkScheduler` is therefore fully unit-testable with plain
function calls, and every transport (the forked local
:class:`~repro.campaign.pool.WorkerPool`, the TCP runner hub of
:mod:`repro.campaign.remote`, or both mixed) drives the same one.

The model:

* **Chunks.** Pending ``(index, point)`` pairs are cut into
  work-stealing chunks (:func:`chunk_pending`) exactly as the classic
  executor did; batch-compatible points inside a chunk group into
  lockstep units (:func:`batch_units`) on the evaluating side.
* **Leases.** A chunk is handed out by :meth:`ChunkScheduler.lease`
  with a fresh *epoch* and (optionally) a wall-clock deadline.  Rows
  are only accepted back under the chunk's current epoch, so a chunk
  requeued after its owner vanished can never be double-counted when
  the presumed-dead owner's rows straggle in late.
* **Expiry and release.** :meth:`release` requeues every chunk a
  vanished owner held (connection death — the fast path);
  :meth:`expire` requeues chunks whose lease deadline passed (the
  slow backstop for a wedged-but-connected runner).  Only the
  still-unreported tail of a chunk is requeued, and its epoch is
  bumped immediately.
* **Folding.** :meth:`record` turns wire rows back into
  :class:`~repro.campaign.results.PointResult` objects, deduplicates
  (stale epochs, duplicate indexes), and buffers ``{"__batch__"}``
  control rows **with their chunk**: batch kernel stats are delivered
  only when every data row of the chunk has landed, so a chunk that
  dies between its control row and its data rows contributes no
  phantom stats (they are dropped on requeue and re-emitted by the
  re-run).
* **Loss.** :meth:`fail_lost` converts whatever never came back into
  ``WorkerDied`` failures — the local pool's partial-shard-death
  story, where a dead fork's chunk cannot be re-run because the pool
  is spent.

Determinism: the scheduler never touches point evaluation, so however
many times a chunk is leased, requeued, and re-run, the first accepted
row per index is a pure function of the point — transports built on
this core inherit the bit-identical-to-serial guarantee.
"""

from collections import deque

from repro.campaign.results import PointResult
from repro.campaign.tasks import batch_group_key

__all__ = [
    "Chunk",
    "ChunkScheduler",
    "WORKER_DIED_ERROR",
    "batch_units",
    "chunk_pending",
]

#: The error recorded for a point whose evaluator vanished for good.
WORKER_DIED_ERROR = ("WorkerDied: shard exited before reporting "
                     "this point")


def chunk_pending(pending, chunk_size, sources, batch_lanes=1):
    """Cut pending ``(index, point)`` pairs into work-stealing chunks.

    Default size targets ~4 steals per work source: small enough to
    rebalance around stragglers, large enough to amortize dispatch
    round-trips.  With batching on, a chunk must hold at least one
    full batch — otherwise grouping (which never crosses chunk
    boundaries) could only ever form fragments.
    """
    if chunk_size is None:
        chunk_size = max(1, len(pending) // (max(1, sources) * 4))
    chunk_size = max(chunk_size, batch_lanes)
    return [pending[i:i + chunk_size]
            for i in range(0, len(pending), chunk_size)]


def batch_units(pairs, lanes):
    """Cut ``(index, point)`` pairs into evaluation units.

    Batch-compatible points (equal
    :func:`~repro.campaign.tasks.batch_group_key`) are grouped up to
    ``lanes`` wide; unbatchable points and singleton groups run
    scalar.  Units keep first-appearance order — results are reordered
    by index at collection time, so unit order only affects store
    append order (which resume already tolerates).
    """
    if lanes <= 1:
        return [[pair] for pair in pairs]
    units = []
    open_groups = {}
    for pair in pairs:
        key = batch_group_key(pair[1])
        if key is None:
            units.append([pair])
            continue
        group = open_groups.get(key)
        if group is None or len(group) >= lanes:
            group = open_groups[key] = []
            units.append(group)
        group.append(pair)
    return units


class Chunk:
    """One leasable unit of campaign work (internal to the scheduler,
    exposed read-only to transports for wire conversion)."""

    __slots__ = ("chunk_id", "pairs", "epoch", "owner", "deadline",
                 "outstanding", "batch_stats", "done")

    def __init__(self, chunk_id, pairs):
        self.chunk_id = chunk_id
        #: The pairs the *next* lease should evaluate (shrinks to the
        #: unreported tail when a lease is lost mid-chunk).
        self.pairs = list(pairs)
        self.epoch = 0
        self.owner = None
        self.deadline = None
        #: Indexes not yet folded into the collected results.
        self.outstanding = {index for index, _ in pairs}
        #: Buffered ``__batch__`` control payloads, delivered only
        #: when the chunk completes (the atomic-fold guarantee).
        self.batch_stats = []
        self.done = False


class ChunkScheduler:
    """Lease-based work distribution over one campaign's pending set.

    Single-threaded by design: callers that mix threads (a TCP hub's
    connection threads leasing while the transport's main loop
    records) serialize access with their own lock.  Every method is a
    plain state transition on plain data.
    """

    def __init__(self, pending, chunk_size=None, sources=1,
                 batch_lanes=1, lease_timeout_s=None):
        self.pending = list(pending)
        self.lease_timeout_s = lease_timeout_s
        self.chunks = [Chunk(chunk_id, pairs)
                       for chunk_id, pairs in enumerate(
                           chunk_pending(self.pending, chunk_size,
                                         sources, batch_lanes))]
        self._queue = deque(chunk.chunk_id for chunk in self.chunks)
        self.collected = {}
        #: chunk_id -> Chunk currently out on lease.
        self.leased = {}
        #: Requeue accounting (surfaced in live status / tests).
        self.requeues = 0

    # -- queries -----------------------------------------------------------

    @property
    def remaining(self):
        """Points not yet folded (the loop-termination condition)."""
        return len(self.pending) - len(self.collected)

    @property
    def done(self):
        return self.remaining == 0

    @property
    def completed(self):
        return len(self.collected)

    @property
    def queued(self):
        """Chunks waiting for a lease."""
        return len(self._queue)

    def results(self):
        """``{index: PointResult}`` for everything folded so far."""
        return dict(self.collected)

    # -- leasing -----------------------------------------------------------

    def lease(self, owner, now=None):
        """Hand the next queued chunk to ``owner``; ``None`` when the
        queue is empty.  The chunk's epoch is bumped so only this
        lease's rows are accepted, and a deadline is armed when the
        scheduler has a lease timeout and the caller supplied ``now``.
        """
        while self._queue:
            chunk = self.chunks[self._queue.popleft()]
            if chunk.done:
                continue
            chunk.epoch += 1
            chunk.owner = owner
            chunk.deadline = (now + self.lease_timeout_s
                              if now is not None
                              and self.lease_timeout_s is not None
                              else None)
            self.leased[chunk.chunk_id] = chunk
            return chunk
        return None

    def _requeue(self, chunk):
        """Put a lost chunk's unreported tail back on the queue.

        The epoch bumps *now*, not at re-lease, so a straggler row
        from the lost lease is already stale the moment the loss is
        declared.  Buffered batch stats die with the lease — the
        re-run emits its own.
        """
        self.leased.pop(chunk.chunk_id, None)
        chunk.epoch += 1
        chunk.owner = None
        chunk.deadline = None
        chunk.batch_stats = []
        chunk.pairs = [(index, point) for index, point in chunk.pairs
                       if index in chunk.outstanding]
        if chunk.pairs:
            self._queue.append(chunk.chunk_id)
            self.requeues += 1
        else:
            chunk.done = True

    def release(self, owner):
        """An owner vanished: requeue every chunk it held.  Returns
        the requeued chunks (empty when it held none)."""
        lost = [chunk for chunk in self.leased.values()
                if chunk.owner == owner]
        for chunk in lost:
            self._requeue(chunk)
        return [chunk for chunk in lost if not chunk.done]

    def expire(self, now):
        """Requeue every leased chunk whose deadline has passed."""
        expired = [chunk for chunk in self.leased.values()
                   if chunk.deadline is not None and now > chunk.deadline]
        for chunk in expired:
            self._requeue(chunk)
        return [chunk for chunk in expired if not chunk.done]

    def renew(self, owner, now):
        """Push back the deadlines of ``owner``'s leases (heartbeat)."""
        if self.lease_timeout_s is None:
            return
        for chunk in self.leased.values():
            if chunk.owner == owner and chunk.deadline is not None:
                chunk.deadline = now + self.lease_timeout_s

    # -- folding -----------------------------------------------------------

    def record(self, chunk_id, epoch, row):
        """Fold one wire row; returns the deliverables it unlocked.

        Deliverables are ``("result", PointResult)`` — exactly once
        per point index, the moment its first valid row lands — and
        ``("batch", stats)`` for each buffered batch control row,
        released together only when the chunk's last data row arrives.
        Stale rows (wrong epoch, duplicate index, unknown chunk) fold
        to nothing.
        """
        if not isinstance(chunk_id, int) or not 0 <= chunk_id < len(
                self.chunks):
            return []
        chunk = self.chunks[chunk_id]
        if chunk.done or epoch != chunk.epoch:
            return []
        if "__batch__" in row:
            chunk.batch_stats.append(row["__batch__"])
            return []
        try:
            result = PointResult.from_row(row)
        except (KeyError, TypeError, ValueError):
            return []
        if result.index not in chunk.outstanding:
            return []
        chunk.outstanding.discard(result.index)
        self.collected[result.index] = result
        deliverables = [("result", result)]
        if not chunk.outstanding:
            chunk.done = True
            self.leased.pop(chunk.chunk_id, None)
            deliverables.extend(("batch", stats)
                                for stats in chunk.batch_stats)
            chunk.batch_stats = []
        return deliverables

    def fail_lost(self, error=WORKER_DIED_ERROR):
        """Fold a failure for every point that can no longer arrive.

        Used by the local pool when its forked shards are spent: the
        lost chunks cannot be re-leased anywhere, so their points
        become failed results (same deliverable shape as
        :meth:`record`, so the caller's fan-out is uniform).
        """
        deliverables = []
        for index, point in self.pending:
            if index in self.collected:
                continue
            result = PointResult(point_id=point.point_id, index=index,
                                 ok=False, error=error)
            self.collected[index] = result
            deliverables.append(("result", result))
        for chunk in self.chunks:
            chunk.done = True
            chunk.outstanding = set()
            chunk.batch_stats = []
        self.leased.clear()
        self._queue.clear()
        return deliverables
