"""Campaign progress reporting.

A :class:`ProgressReporter` is the ``progress`` callable
:func:`~repro.campaign.executor.run_campaign` accepts: it counts
completed points and periodically prints a one-line status to stderr
(never stdout — the deterministic summary owns stdout).

The displayed rate is a **sliding-window** rate on the monotonic
clock (:class:`repro.obs.metrics.RateWindow`), not a lifetime
average: long campaigns with slow tails used to show a stale,
flattering points/s that barely moved while the run crawled.  The
window rate — and the ETA derived from it — tracks the current pace.
Counts are also routed into the process metrics registry
(``campaign.points_completed`` / ``campaign.points_failed``) so the
observability layer sees them without a second bookkeeper.
"""

import sys
import time

from repro.obs.metrics import RateWindow, get_registry


class ProgressReporter:
    """Throttled one-line progress printer."""

    def __init__(self, total, label="campaign", stream=None,
                 min_interval_s=1.0, rate_window_s=15.0,
                 clock=time.monotonic):
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self.completed = 0
        self.failed = 0
        self._clock = clock
        self._start = clock()
        self._last_print = None
        self._window = RateWindow(rate_window_s, clock=clock)
        registry = get_registry()
        self._completed_counter = registry.counter(
            "campaign.points_completed")
        self._failed_counter = registry.counter("campaign.points_failed")

    def __call__(self, result):
        self.completed += 1
        self._completed_counter.inc()
        if not result.ok:
            self.failed += 1
            self._failed_counter.inc()
        now = self._clock()
        self._window.tick(1, now=now)
        finished = self.completed >= self.total
        if (not finished and self._last_print is not None
                and now - self._last_print < self.min_interval_s):
            return
        self._last_print = now
        elapsed = now - self._start
        rate = self._window.rate(now=now)
        if rate <= 0.0 and elapsed > 0:
            # Window too young to measure (burst within one tick):
            # fall back to the lifetime average rather than showing 0.
            rate = self.completed / elapsed
        eta = ((self.total - self.completed) / rate) if rate > 0 else 0.0
        line = (f"[{self.label}] {self.completed}/{self.total} points")
        if self.failed:
            line += f" ({self.failed} failed)"
        line += f", {rate:.1f} pts/s, elapsed {elapsed:.1f}s"
        if not finished:
            line += f", eta {eta:.0f}s"
        print(line, file=self.stream, flush=True)
