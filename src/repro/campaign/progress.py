"""Campaign progress reporting.

A :class:`ProgressReporter` is the ``progress`` callable
:func:`~repro.campaign.executor.run_campaign` accepts: it counts
completed points and periodically prints a one-line status to stderr
(never stdout — the deterministic summary owns stdout).
"""

import sys
import time


class ProgressReporter:
    """Throttled one-line progress printer."""

    def __init__(self, total, label="campaign", stream=None,
                 min_interval_s=1.0):
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self.completed = 0
        self.failed = 0
        self._start = time.perf_counter()
        self._last_print = 0.0

    def __call__(self, result):
        self.completed += 1
        if not result.ok:
            self.failed += 1
        now = time.perf_counter()
        finished = self.completed >= self.total
        if not finished and now - self._last_print < self.min_interval_s:
            return
        self._last_print = now
        elapsed = now - self._start
        rate = self.completed / elapsed if elapsed > 0 else 0.0
        eta = ((self.total - self.completed) / rate) if rate > 0 else 0.0
        line = (f"[{self.label}] {self.completed}/{self.total} points")
        if self.failed:
            line += f" ({self.failed} failed)"
        line += f", {rate:.1f} pts/s, elapsed {elapsed:.1f}s"
        if not finished:
            line += f", eta {eta:.0f}s"
        print(line, file=self.stream, flush=True)
