"""Point evaluation: the guarded unit loop every transport shares.

This is the *execution* half of the old monolithic executor — the code
that actually runs campaign points, wherever it happens to be running:
inline in the serial path, inside a forked shard of
:class:`~repro.campaign.pool.WorkerPool`, or in a remote ``repro
runner`` process on another host.  Everything here is
process-agnostic: no queues, no sockets, no forks — just "evaluate
these (index, point) pairs and hand each finished
:class:`~repro.campaign.results.PointResult` to ``emit``".

Keeping the loop in exactly one place is what makes the determinism
story cheap to state: every transport runs :func:`evaluate_units`, so
a point's metrics row is the same bytes no matter which transport
carried it.
"""

import signal
import threading
import time
import traceback

from repro.campaign.results import PointResult
from repro.campaign.tasks import evaluate_point, run_inject_batch
from repro.obs.events import event_log

__all__ = [
    "CampaignAborted",
    "PointTimeout",
    "evaluate_batch_guarded",
    "evaluate_guarded",
    "evaluate_units",
    "warm_worker",
]


class PointTimeout(Exception):
    """A point exceeded the per-point wall-clock budget."""


class CampaignAborted(Exception):
    """The campaign's owner asked it to stop between points.

    Raised out of :func:`~repro.campaign.executor.run_campaign` when
    its ``abort`` callback returns true; everything completed so far
    has already been appended to the store, so a later run with
    ``resume_from`` picks up exactly where the abort landed.
    ``completed`` counts the points that finished before the stop.
    """

    def __init__(self, message, completed=0):
        super().__init__(message)
        self.completed = completed


def _can_alarm():
    """SIGALRM timeouts only work from the main thread — a runner
    hosted on a helper thread (tests, embedded use) must run points
    unbounded rather than die on ``signal.signal``'s ValueError."""
    return (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


def evaluate_guarded(point, index, campaign_name, timeout_s, worker_id):
    """Evaluate one point, capturing errors and enforcing the timeout."""
    start = time.perf_counter()
    use_alarm = timeout_s is not None and _can_alarm()
    previous = None
    try:
        if use_alarm:
            def on_alarm(signum, frame):
                raise PointTimeout(
                    f"point exceeded {timeout_s:.1f}s wall-clock budget")
            previous = signal.signal(signal.SIGALRM, on_alarm)
            signal.setitimer(signal.ITIMER_REAL, timeout_s)
        metrics = evaluate_point(point, campaign_name=campaign_name)
        result = PointResult(point_id=point.point_id, index=index,
                             ok=True, metrics=metrics)
    except Exception as exc:
        detail = traceback.format_exc(limit=8)
        result = PointResult(
            point_id=point.point_id, index=index, ok=False,
            error=f"{type(exc).__name__}: {exc}\n{detail}")
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            if previous is not None:
                signal.signal(signal.SIGALRM, previous)
    result.elapsed_s = time.perf_counter() - start
    result.worker = worker_id
    event_log().emit("point_complete", worker=worker_id,
                     point_id=result.point_id, index=index, ok=result.ok,
                     elapsed_s=result.elapsed_s)
    return result


def evaluate_batch_guarded(group, campaign_name, timeout_s, worker_id):
    """Evaluate one batch group; falls back to per-point scalar runs.

    Returns ``(results, batch_stats)``.  The wall-clock budget for the
    batch is ``timeout_s`` per lane; any failure — timeout, kernel
    error, a bad point — reruns the whole group through the scalar
    per-point guard, so error attribution and row content match serial
    execution exactly.
    """
    start = time.perf_counter()
    budget = None if timeout_s is None else timeout_s * len(group)
    use_alarm = budget is not None and _can_alarm()
    previous = None
    try:
        if use_alarm:
            def on_alarm(signum, frame):
                raise PointTimeout(
                    f"batch exceeded {budget:.1f}s wall-clock budget")
            previous = signal.signal(signal.SIGALRM, on_alarm)
            signal.setitimer(signal.ITIMER_REAL, budget)
        metrics_list, stats = run_inject_batch(
            [point for _, point in group], campaign_name=campaign_name)
    except Exception:
        if use_alarm:
            # Disarm the batch alarm *before* the scalar fallback: the
            # per-point guards re-arm setitimer one point at a time,
            # and a still-pending batch alarm firing in a gap between
            # them would escape every guard and kill the whole loop.
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            if previous is not None:
                signal.signal(signal.SIGALRM, previous)
            use_alarm = False
        return ([evaluate_guarded(point, index, campaign_name, timeout_s,
                                  worker_id) for index, point in group],
                None)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            if previous is not None:
                signal.signal(signal.SIGALRM, previous)
    elapsed_each = (time.perf_counter() - start) / len(group)
    log = event_log()
    if stats is not None:
        log.emit("batch_complete", worker=worker_id,
                 campaign=campaign_name, **stats)
    results = []
    for (index, point), metrics in zip(group, metrics_list):
        result = PointResult(point_id=point.point_id, index=index,
                             ok=True, metrics=metrics)
        result.elapsed_s = elapsed_each
        result.worker = worker_id
        log.emit("point_complete", worker=worker_id,
                 point_id=result.point_id, index=index, ok=True,
                 elapsed_s=elapsed_each)
        results.append(result)
    return results, stats


def evaluate_units(pairs, batch_lanes, campaign_name, timeout_s,
                   worker_id, emit, on_batch=None, abort=None):
    """Shared shard/serial loop: evaluate pairs unit by unit.

    ``emit`` receives each finished :class:`PointResult`; ``on_batch``
    each batch kernel stats dict.  ``abort`` (serial path only) is
    polled between units; a true poll raises :class:`CampaignAborted`
    with the count of points emitted so far.
    """
    from repro.campaign.sched import batch_units
    emitted = 0
    for unit in batch_units(pairs, batch_lanes):
        if abort is not None and abort():
            raise CampaignAborted(
                f"campaign {campaign_name!r} aborted with {emitted} "
                f"points done", completed=emitted)
        if len(unit) == 1:
            index, point = unit[0]
            emit(evaluate_guarded(point, index, campaign_name,
                                  timeout_s, worker_id))
            emitted += 1
            continue
        results, stats = evaluate_batch_guarded(
            unit, campaign_name, timeout_s, worker_id)
        if stats is not None and on_batch is not None:
            on_batch(stats)
        for result in results:
            emit(result)
            emitted += 1


def warm_worker():
    """Pre-import the simulator and prime every stepper maker so no
    point pays a first-touch compile inside a pool or runner."""
    import repro.campaign.tasks  # noqa: F401 — registers built-in tasks
    import repro.core.system    # noqa: F401 — pulls the simulator in
    from repro.perf.cache import stepper_cache
    from repro.perf.jit import prime_steppers
    prime_steppers()
    # Persist anything compiled cold right away: fork-start children
    # exit via os._exit, which skips atexit handlers, so this is the
    # worker's only chance to share its compiles with future processes.
    stepper_cache().flush()
