"""repro.campaign — parallel sharded campaign engine.

Everything the evaluation runs — figure regenerations, ablation
sweeps, fault-injection campaigns, CLI grids — is a *campaign*: a
declarative grid of independent simulation points
(:class:`CampaignSpec`), executed serially or across worker shards
(:func:`run_campaign`), persisted as append-only JSONL
(:class:`ResultStore`) and reduced to deterministic summaries.

Sharded execution is bit-identical to serial execution because every
random stream derives from the point's identity, and the engine orders
results by point index regardless of completion order.

Quick start::

    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec.grid("sweep", workloads=["dedup", "ferret"],
                             seeds=(0, 1), instructions=20_000,
                             configs=[{"cores": 2}, {"cores": 4}])
    result = run_campaign(spec, jobs=4)
    for point, metrics in zip(spec.points, result.metrics()):
        print(point.point_id, metrics["cycles"])
"""

from repro.campaign.executor import (CampaignAborted, CampaignResult,
                                     PointTimeout, default_jobs,
                                     run_campaign)
from repro.campaign.progress import ProgressReporter
from repro.campaign.results import (PointResult, ResultStore, aggregate,
                                    format_summary)
from repro.campaign.spec import CampaignPoint, CampaignSpec
from repro.campaign.tasks import TASKS, evaluate_point, task

__all__ = [
    "CampaignAborted",
    "CampaignPoint",
    "CampaignResult",
    "CampaignSpec",
    "PointResult",
    "PointTimeout",
    "ProgressReporter",
    "ResultStore",
    "TASKS",
    "aggregate",
    "default_jobs",
    "evaluate_point",
    "format_summary",
    "run_campaign",
    "task",
]
