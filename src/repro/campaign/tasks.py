"""Task registry: how one campaign point becomes one simulation run.

Each task is a function ``fn(point, campaign_name="") -> dict`` of JSON
metrics.  Tasks rebuild everything they need (program, config, system)
from the point's plain-data fields, so a point can be evaluated in any
process and always produces the same metrics.

The registry is open: experiments register the built-in simulation
tasks below, and tests register throwaway tasks (the executor looks
tasks up by name at evaluation time).
"""

from dataclasses import replace

from repro.common.errors import ConfigError

TASKS = {}


def task(name):
    """Decorator: register ``fn`` under ``name``."""
    def register(fn):
        TASKS[name] = fn
        return fn
    return register


def get_task(name):
    try:
        return TASKS[name]
    except KeyError:
        raise ConfigError(
            f"unknown campaign task {name!r}; "
            f"registered: {sorted(TASKS)}") from None


def evaluate_point(point, campaign_name=""):
    """Run one point and return its metrics dict (raises on error)."""
    return get_task(point.task)(point, campaign_name=campaign_name)


# -- shared builders ------------------------------------------------------

def build_config(params):
    """A :class:`MeekConfig` from a point's scalar parameters.

    Supported keys: ``cores``, ``fabric``, ``lsl_kb``, ``timeout``
    (checkpoint instruction timeout) and ``dc_depth`` (DC-Buffer
    depth), mirroring the ablation sweeps.
    """
    from repro.common.config import (FabricConfig, LslConfig,
                                     default_meek_config)

    fabric_kind = params.get("fabric", "f2")
    if fabric_kind not in ("f2", "axi", "ideal"):
        # default_meek_config treats any unknown kind as f2; reject it
        # here so a typo cannot publish f2 numbers under another label.
        raise ConfigError(f"unknown fabric kind {fabric_kind!r} "
                          f"(choose f2, axi or ideal)")
    config = default_meek_config(
        num_little_cores=int(params.get("cores", 4)),
        fabric_kind=fabric_kind)
    little = config.little_core
    lsl = little.lsl
    if params.get("lsl_kb") is not None:
        lsl = LslConfig(size_bytes=int(params["lsl_kb"]) * 1024,
                        instruction_timeout=lsl.instruction_timeout)
    if params.get("timeout") is not None:
        lsl = replace(lsl, instruction_timeout=int(params["timeout"]))
    if lsl is not little.lsl:
        config = replace(config, little_core=replace(little, lsl=lsl))
    if params.get("dc_depth") is not None:
        depth = int(params["dc_depth"])
        config = replace(config, fabric=FabricConfig(
            status_fifo_depth=depth, runtime_fifo_depth=depth))
    return config


#: (workload, instructions, seed) -> Program.  Campaign trials differ
#: only in fault parameters, so a worker evaluating a pool chunk keeps
#: rebuilding the same image; caching it also makes every trial share
#: one *object*, which is what keys the decode cache and the segment
#: memo (:mod:`repro.core.segmemo`).  Programs are immutable after
#: construction, so sharing is safe.
_PROGRAM_CACHE = {}
_PROGRAM_CACHE_MAX = 32


def build_program(point):
    from repro.workloads import generate_program, get_profile

    key = (point.workload, point.instructions, point.seed)
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        program = generate_program(get_profile(point.workload),
                                   dynamic_instructions=point.instructions,
                                   seed=point.seed)
        if len(_PROGRAM_CACHE) >= _PROGRAM_CACHE_MAX:
            _PROGRAM_CACHE.pop(next(iter(_PROGRAM_CACHE)))
        _PROGRAM_CACHE[key] = program
    return program


def _meek_metrics(result):
    stats = result.controller.stats()
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "ipc": result.big.ipc,
        "verified": result.all_segments_verified,
        "segments": stats["segments"],
        "mean_segment_instrs": stats["mean_segment_instrs"],
        "stall_cycles": dict(stats["stall_cycles"]),
        "end_reasons": dict(stats["end_reasons"]),
    }


# -- built-in simulation tasks --------------------------------------------

@task("vanilla")
def run_vanilla_point(point, campaign_name=""):
    """Unmodified big core: the slowdown denominator."""
    from repro.core.system import run_vanilla
    result = run_vanilla(build_program(point))
    return {"cycles": result.cycles, "instructions": result.instructions,
            "ipc": result.ipc}


@task("meek")
def run_meek_point(point, campaign_name=""):
    """One MEEK execution (params select cores/fabric/ablation knobs)."""
    from repro.core.system import MeekSystem
    system = MeekSystem(build_config(point.params))
    return _meek_metrics(system.run(build_program(point)))


def _make_injector(point, campaign_name):
    """The point's injector, seeded from its (campaign-scoped) identity."""
    from repro.common.prng import DeterministicRng
    from repro.core.faults import FaultInjector

    rng = DeterministicRng(point.rng_key(campaign_name), name="faults")
    return FaultInjector(
        rng, rate=float(point.params.get("rate", 0.008)),
        model=point.params.get("fault_model"),
        targets=point.params.get("fault_targets"))


def _inject_metrics(result, injector):
    """Metrics for one fault-injection run — shared verbatim by the
    scalar and batched execution paths so their rows cannot drift."""
    from repro.analysis.coverage import CoverageMap

    metrics = _meek_metrics(result)
    coverage = CoverageMap().observe_records(injector.injections,
                                             result.cycles_to_ns)
    metrics.update({
        "injections": len(injector.injections),
        "detected": injector.detected_count,
        "latencies_ns": result.detection_latencies_ns(),
        "coverage": coverage.to_cells(),
    })
    return metrics


@task("inject")
def run_inject_point(point, campaign_name=""):
    """One fault-injection trial through the genuine checking machinery.

    ``rate`` is the per-packet injection probability; the injector's
    stream is seeded from the point identity (or an explicit
    ``rng_key`` param), so trials are independent and reproducible.
    ``fault_model`` (``single``, ``burst:width=K``,
    ``correlated:span=N``, ``stuckat[:bit=B,value=V]``) and
    ``fault_targets`` (``runtime``/``status``/``dcbuf``/``fabric``/
    ``all`` or exact structures) select the fault model layer; both
    default to the paper's single-bit mix.
    """
    from repro.core.system import MeekSystem

    injector = _make_injector(point, campaign_name)
    system = MeekSystem(build_config(point.params), injector=injector)
    result = system.run(build_program(point))
    return _inject_metrics(result, injector)


#: Point parameters that may vary between the lanes of one batch: they
#: configure only the injector (whose stream is per-lane anyway), never
#: the program image or the system timing configuration.
_BATCH_LANE_PARAMS = frozenset(
    {"rate", "trial", "rng_key", "fault_model", "fault_targets"})


def batch_group_key(point):
    """Batch-compatibility key, or ``None`` for unbatchable points.

    Points with equal keys run the same program under the same system
    configuration, so they may share one lockstep batch
    (:mod:`repro.perf.batch`); only their injector streams differ.
    """
    if point.task != "inject":
        return None
    shared = tuple(sorted(
        (k, v) for k, v in point.params.items()
        if k not in _BATCH_LANE_PARAMS))
    return (point.workload, point.instructions, point.seed, shared)


def run_inject_batch(points, campaign_name=""):
    """Evaluate same-program inject points as one lockstep batch.

    Returns ``(metrics, batch_stats)`` with ``metrics`` aligned to
    ``points``.  Lanes the batch kernel evicted — and every lane, when
    the whole batch aborts or batching is unavailable — are rerun on
    the scalar kernel from cycle 0, so the rows are bit-identical to
    serial execution no matter what the batch engine did.
    ``batch_stats`` is the kernel's occupancy/eviction dict, or
    ``None`` when no batch ran.
    """
    from repro.perf import batch as batch_kernel

    keys = {batch_group_key(p) for p in points}
    if len(keys) != 1 or None in keys:
        raise ConfigError("run_inject_batch: points are not batch-compatible")
    metrics = [None] * len(points)
    stats = None
    if len(points) > 1 and batch_kernel.batch_available():
        injectors = [_make_injector(p, campaign_name) for p in points]
        try:
            outcome = batch_kernel.run_batch(
                build_config(points[0].params), build_program(points[0]),
                injectors)
        except batch_kernel.BatchError:
            outcome = None
        if outcome is not None:
            stats = outcome.stats
            for i, result in enumerate(outcome.results):
                if result is not None:
                    metrics[i] = _inject_metrics(result, injectors[i])
    for i, point in enumerate(points):
        if metrics[i] is None:
            metrics[i] = run_inject_point(point, campaign_name)
    return metrics, stats


@task("lockstep")
def run_lockstep_point(point, campaign_name=""):
    """Equivalent-Area LockStep baseline (Sec. V-A)."""
    from repro.baselines.lockstep import EaLockstep
    result = EaLockstep().run(build_program(point))
    return {"cycles": result.cycles, "instructions": result.instructions,
            "ipc": result.ipc}


@task("nzdc")
def run_nzdc_point(point, campaign_name=""):
    """Nzdc software baseline (callers skip its compile failures)."""
    from repro.baselines.nzdc import run_nzdc
    result, transformed = run_nzdc(build_program(point))
    return {"cycles": result.cycles, "instructions": result.instructions,
            "ipc": result.ipc, "static_instructions": len(transformed)}


@task("little_ipc")
def run_little_ipc_point(point, campaign_name=""):
    """Little-core throughput for Fig. 10 (``core`` selects the config)."""
    from repro.analysis.area import LITTLE_WRAPPER_AREA_MM2, rocket_area_mm2
    from repro.common.config import (default_rocket_config,
                                     optimized_rocket_config)
    from repro.littlecore.core import LittleCore

    kind = point.params.get("core", "optimized")
    if kind == "optimized":
        config = optimized_rocket_config()
    elif kind == "default":
        config = default_rocket_config()
    else:
        raise ConfigError(f"little_ipc: unknown core kind {kind!r}")
    core = LittleCore(config, clock_ratio=1)
    result = core.run(build_program(point),
                      max_instructions=point.instructions)
    area = rocket_area_mm2(config) + LITTLE_WRAPPER_AREA_MM2
    return {"ipc": result.ipc, "area_mm2": area,
            "perf_per_mm2": result.ipc / area}


@task("tab3")
def run_tab3_point(point, campaign_name=""):
    """The Table III area report (pure analysis, no simulation)."""
    from repro.experiments import tab3_area
    return tab3_area.compute_report()


@task("cli")
def run_cli_point(point, campaign_name=""):
    """One ``repro`` CLI invocation evaluated as a campaign point.

    This is how ``repro batch --jobs N`` fans a command file across
    the warm worker pool: each script line becomes one point
    (``params["command"]`` holds the line, ``params["line"]`` its
    1-based line number, keeping duplicate commands distinct), the
    command runs in-process through :func:`repro.cli.main` with its
    stdout/stderr captured, and the metrics carry the exit status plus
    both streams so the parent can replay them in line order.

    A nonzero exit status is a *metric*, not a point failure — one
    failing script line must not poison the batch row for reporting.
    """
    import io
    import shlex
    from contextlib import redirect_stderr, redirect_stdout

    from repro.cli import build_parser, cli_handlers

    command = point.params["command"]
    argv = shlex.split(command)
    if argv and argv[0] == "repro":
        argv = argv[1:]
    out, err = io.StringIO(), io.StringIO()
    try:
        with redirect_stdout(out), redirect_stderr(err):
            parsed = build_parser().parse_args(argv)
            status = cli_handlers()[parsed.command](parsed)
    except SystemExit as exc:  # argparse rejected the line
        status = exc.code if isinstance(exc.code, int) else 2
    except Exception as exc:  # noqa: BLE001 — the line's failure,
        # never the campaign's (mirrors the serial batch loop).
        print(f"{type(exc).__name__}: {exc}", file=err)
        status = 1
    return {"status": int(status or 0),
            "line": point.params.get("line"),
            "command": command,
            "stdout": out.getvalue(), "stderr": err.getvalue()}


@task("difftest")
def run_difftest_point(point, campaign_name=""):
    """One differential-fuzzing point: generate a constrained-random
    program from the point's RNG identity and execute it on every
    model (golden ISA, big core, little core, MEEK check replay,
    Nzdc), comparing final architectural state field-by-field."""
    from repro.difftest.harness import evaluate_fuzz_point
    return evaluate_fuzz_point(point, campaign_name=campaign_name)
