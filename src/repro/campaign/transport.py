"""Pluggable campaign transports: how chunks travel to evaluators.

:func:`~repro.campaign.executor.run_campaign` plans a campaign (resume
realignment, store/live/progress fan-out, result ordering) and hands
the pending work to a **transport**, which owns only the question of
*where* the points evaluate:

* :class:`LocalPoolTransport` — today's forked
  :class:`~repro.campaign.pool.WorkerPool`, bit-identical to the
  classic executor (same env knobs, same partial-shard-death
  semantics, same ``WorkerDied`` fills).
* :class:`TcpRunnerTransport` — a
  :class:`~repro.campaign.remote.RunnerHub` of remote ``repro
  runner`` processes leasing chunks over line-JSON RPC, optionally
  mixed with a local pool stealing from the same
  :class:`~repro.campaign.sched.ChunkScheduler`.

Every transport implements one method::

    execute(plan) -> {index: PointResult}

with every pending index present in the mapping, and the determinism
contract inherited from the scheduler core: rows are bit-identical to
serial no matter which transport (or mixture) carried them.
"""

import time
from dataclasses import dataclass, field

from repro.campaign.sched import ChunkScheduler
from repro.campaign.work import CampaignAborted

__all__ = ["ExecutionPlan", "LocalPoolTransport", "TcpRunnerTransport",
           "Transport", "effective_lease_timeout"]


def effective_lease_timeout(lease_timeout_s, timeout_s, batch_lanes):
    """The lease deadline a campaign's chunks actually get.

    Renewals arrive per completed unit (rows) and per heartbeat, but
    the deadline must still cover one evaluation unit's *legitimate*
    budget: a batch group may run ``timeout_s`` per lane to its alarm
    and then re-run the whole group through the scalar guard — up to
    ``2 * timeout_s * lanes`` before its first row can land.  Without
    this floor, a unit slower than the bare ``lease_timeout_s`` would
    expire mid-evaluation every time it ran, and the campaign would
    livelock re-leasing the same chunk forever.
    """
    if lease_timeout_s is None or timeout_s is None:
        return lease_timeout_s
    return lease_timeout_s + 2.0 * timeout_s * max(1, batch_lanes or 1)


@dataclass
class ExecutionPlan:
    """Everything a transport needs to run one campaign's pending set."""

    campaign_name: str
    #: ``(index, CampaignPoint)`` pairs still to evaluate.
    pending: list
    timeout_s: object = None
    chunk_size: object = None
    batch_lanes: int = 1
    #: Called with each fresh :class:`PointResult` as it folds.
    on_result: object = None
    #: Called with each batch kernel stats dict (chunk-atomic).
    on_batch: object = None
    #: Zero-argument poll; true aborts the campaign.
    abort: object = None
    #: Optional :class:`~repro.obs.live.LiveStatus` for transport-level
    #: extras (runner health); results are fed by the executor.
    live: object = None
    #: How many local shards the transport may use (``None`` = its own
    #: default); remote transports treat this as the *mixed-mode* pool
    #: size.
    jobs: object = None
    extras: dict = field(default_factory=dict)

    def deliver(self, deliverables):
        """Fan one batch of scheduler deliverables out to the hooks."""
        for kind, payload in deliverables:
            if kind == "result" and self.on_result is not None:
                self.on_result(payload)
            elif kind == "batch" and self.on_batch is not None:
                self.on_batch(payload)


class Transport:
    """Interface: carry an :class:`ExecutionPlan` to completion."""

    def execute(self, plan):
        raise NotImplementedError

    def close(self):
        """Release transport-owned resources (pools, sockets)."""


class LocalPoolTransport(Transport):
    """The classic path: a forked worker pool on this machine.

    ``pool`` may be a live :class:`~repro.campaign.pool.WorkerPool`, a
    zero-argument factory returning one (or ``None`` for serial), or
    absent — in which case an ephemeral pool of ``plan.jobs`` shards
    is forked per campaign and closed afterwards, preserving the
    classic ``run_campaign(jobs=N)`` behaviour exactly.
    """

    def __init__(self, pool=None, jobs=None):
        self._pool = pool
        self._jobs = jobs

    def execute(self, plan):
        pool = self._pool
        if pool is not None and callable(pool):
            pool = pool()
        if pool is not None:
            return self._run(pool, plan)
        jobs = self._jobs if self._jobs is not None else plan.jobs
        jobs = max(1, int(jobs or 1))
        from repro.campaign.pool import WorkerPool
        with WorkerPool(min(jobs, max(1, len(plan.pending)))) as ephemeral:
            return self._run(ephemeral, plan)

    @staticmethod
    def _run(pool, plan):
        return pool.run(plan.campaign_name, plan.pending,
                        timeout_s=plan.timeout_s,
                        chunk_size=plan.chunk_size,
                        on_result=plan.on_result, abort=plan.abort,
                        batch_lanes=plan.batch_lanes,
                        on_batch=plan.on_batch)


class TcpRunnerTransport(Transport):
    """Distribute chunks across registered remote runners (and,
    optionally, a local pool stealing from the same scheduler).

    The transport's main loop owns the
    :class:`~repro.campaign.sched.ChunkScheduler` through a
    :class:`~repro.campaign.remote.Drive` (a lock + deliverable queue
    shim): runner connection threads lease and record through the
    drive, while this loop drains deliverables, pumps the optional
    local pool, expires wedged leases, and publishes runner health to
    the plan's live status.

    Runner loss semantics: a disconnected runner's chunks requeue
    immediately (connection death is detected by the hub); a
    wedged-but-connected runner's chunks requeue when their lease
    deadline lapses.  The effective deadline is ``lease_timeout_s``
    plus one evaluation unit's legitimate budget (a batch group may
    burn ``timeout_s`` per lane, then re-run scalar after a failure),
    and it is renewed by rows, idle heartbeats, and the runner's
    in-evaluation heartbeat thread — so only a runner that genuinely
    stopped responding ever expires.  Either way the re-run is
    bit-identical — rows are pure functions of point identity, and
    the bumped lease epoch blackholes any stragglers from the lost
    lease.

    When the last runner drops and no local shard can absorb the
    remainder, the transport grace-waits ``runner_grace_s`` (sized to
    ``run_runner``'s default reconnect window) for a re-registration
    before failing the remainder as ``WorkerDied`` — a transient TCP
    blip must not convert a recoverable run into a failed one.
    """

    def __init__(self, hub, local_pool=None, lease_timeout_s=60.0,
                 poll_s=0.05, status_interval_s=1.0,
                 runner_grace_s=30.0):
        self.hub = hub
        self._local_pool = local_pool
        self.lease_timeout_s = lease_timeout_s
        self.poll_s = poll_s
        self.status_interval_s = status_interval_s
        self.runner_grace_s = runner_grace_s

    def execute(self, plan):
        from repro.campaign.remote import Drive
        from repro.obs.events import event_log

        log = event_log()
        pool = self._local_pool
        if pool is not None and callable(pool):
            pool = pool()
        sources = self.hub.active_count() + (pool.jobs if pool else 0)
        sched = ChunkScheduler(plan.pending, chunk_size=plan.chunk_size,
                               sources=max(1, sources),
                               batch_lanes=plan.batch_lanes,
                               lease_timeout_s=effective_lease_timeout(
                                   self.lease_timeout_s, plan.timeout_s,
                                   plan.batch_lanes))
        drive = Drive(sched, campaign_name=plan.campaign_name,
                      timeout_s=plan.timeout_s,
                      batch_lanes=plan.batch_lanes)
        self.hub.attach(drive)
        if pool is not None:
            pool.start_epoch()
        pool_draining = False
        pool_spent = pool is None
        next_status = 0.0
        # Grace accounting for total runner loss: `had_runners` is true
        # once any runner has ever registered; `fleet_lost_at` marks
        # when the active count last hit zero.
        had_runners = bool(self.hub.runners_info())
        fleet_lost_at = None
        try:
            while True:
                if plan.abort is not None and plan.abort():
                    raise CampaignAborted(
                        f"campaign {plan.campaign_name!r} aborted with "
                        f"{drive.completed} of {len(plan.pending)} "
                        f"pending points done",
                        completed=drive.completed)
                plan.deliver(drive.drain())
                if drive.done:
                    break
                now = time.monotonic()
                for chunk in drive.expire(now):
                    log.emit("lease_expired", chunk=chunk.chunk_id,
                             campaign=plan.campaign_name,
                             points=len(chunk.pairs))
                if plan.live is not None and now >= next_status:
                    plan.live.runners(self.hub.runners_info())
                    next_status = now + self.status_interval_s
                if not pool_spent:
                    pool_spent, pool_draining = self._pump_local(
                        pool, plan, drive, pool_draining)
                active = self.hub.active_count()
                if active > 0:
                    had_runners = True
                    fleet_lost_at = None
                elif fleet_lost_at is None:
                    fleet_lost_at = now
                if pool_spent and active == 0:
                    # Nobody left to run the remainder.  A dropped
                    # connection is often a blip — run_runner retries
                    # for ~30s before giving up — so when runners were
                    # ever present, grace-wait for a re-registration
                    # (the drive stays attached, so a rejoining runner
                    # leases the requeued chunks and the run resumes)
                    # before failing the remainder as WorkerDied.
                    grace = self.runner_grace_s if had_runners else 0.0
                    if now - fleet_lost_at >= grace:
                        plan.deliver(drive.fail_lost())
                        break
                if pool is None or pool_spent:
                    time.sleep(self.poll_s)
        finally:
            self.hub.detach()
            if pool is not None and not pool.healthy:
                # Shards died during this run: reap the pool so its
                # owner rebuilds instead of reusing a spent fleet.
                pool.mark_spent()
        plan.deliver(drive.drain())
        return drive.results()

    def _pump_local(self, pool, plan, drive, draining):
        """Keep the local pool saturated and fold whatever it sends.

        Returns ``(spent, draining)``.  Local shard death follows the
        pool's partial-death protocol, but — unlike the pure-local
        transport — the lost chunks *requeue* to the surviving
        sources (remote runners included) instead of failing as
        ``WorkerDied``, because here a lease can be re-run elsewhere.
        """
        from repro.obs.events import event_log

        alive = pool.alive
        if alive == 0:
            # Every shard gone: requeue whatever "local" still held.
            for chunk in drive.release("local"):
                event_log().emit("local_chunks_requeued",
                                 chunk=chunk.chunk_id,
                                 points=len(chunk.pairs))
            return True, draining
        if alive < pool.jobs and not draining:
            pool.drain_survivors()
            draining = True
        if not draining:
            in_flight = drive.leased_by("local")
            while in_flight < pool.jobs + 1:
                chunk = drive.lease("local")
                if chunk is None:
                    break
                pool.submit(plan.campaign_name, chunk,
                            timeout_s=plan.timeout_s,
                            batch_lanes=plan.batch_lanes)
                in_flight += 1
        polled = pool.poll(timeout=self.poll_s)
        while polled is not None:
            chunk_id, lease_epoch, row = polled
            drive.record(chunk_id, lease_epoch, row)
            polled = pool.poll(timeout=0.0)
        # Live shards are the local heartbeat: their liveness is
        # directly observable here (unlike a remote runner's), so a
        # local lease is renewed every pump and can only be lost via
        # the shard-death protocol above — never by expiry while a
        # long unit is still legitimately computing.
        drive.renew("local")
        return False, draining

    def close(self):
        pool = self._local_pool
        if pool is not None and not callable(pool):
            pool.close()
