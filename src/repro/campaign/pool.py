"""The forked local worker pool — the process-level transport guts.

This is the only campaign module that touches :mod:`multiprocessing`.
A :class:`WorkerPool` forks its shards **once** and reuses them across
campaigns: workers pre-import the simulator, pre-warm the persistent
stepper cache (:mod:`repro.perf.cache`), and then stream chunks over
shared queues — so back-to-back campaigns (figure drivers, difftest
sweeps, ``repro batch`` scripts) pay interpreter startup and stepper
compilation once per worker, not once per campaign.

Two ways to drive it:

* :meth:`WorkerPool.run` — the classic all-in-one call: chunk the
  pending pairs, stream them through the shards, return
  ``{index: PointResult}`` with every index present (worker death
  becomes a failed point).  Result folding goes through
  :class:`~repro.campaign.sched.ChunkScheduler`, which also fixes the
  old bookkeeping hole where a shard dying between its
  ``{"__batch__"}`` control row and the chunk's data rows leaked
  phantom batch stats: control rows are now buffered per chunk and
  delivered only when the chunk completes.
* :meth:`submit`/:meth:`poll` — the streaming face used by
  :class:`~repro.campaign.transport.TcpRunnerTransport` in mixed mode:
  the transport owns the scheduler and pumps chunks in and raw rows
  out, so local shards and remote runners steal from one queue.

Queue protocol: a task item is ``(pool_epoch, chunk_id, lease_epoch,
campaign_name, timeout_s, batch_lanes, [(index, point_dict), ...])``;
a result item is ``(pool_epoch, chunk_id, lease_epoch, row)``.  The
pool epoch tags each row with the :meth:`run`/:meth:`start_epoch` call
that submitted it (abandoned-run leftovers are dropped at
:meth:`poll`); the lease epoch is the scheduler's staleness filter.
"""

import multiprocessing
import queue as queue_module
import time

from repro.campaign.sched import ChunkScheduler
from repro.campaign.spec import CampaignPoint
from repro.campaign.work import CampaignAborted, evaluate_units, warm_worker
from repro.obs.events import event_log

__all__ = ["WorkerPool"]

#: Seconds of silence after a partial shard death before the pool
#: declares the survivors wedged and reaps them.
DRAIN_GRACE_S = 10.0


def _pool_worker(worker_id, task_queue, result_queue, warm):
    """Shard main loop: steal work items until the sentinel arrives.

    Besides result rows the queue carries ``{"__batch__": stats}``
    control rows — batch kernel occupancy/eviction stats for the
    parent's live status (they do not count toward point totals).
    """
    if warm:
        try:
            warm_worker()
        except Exception:  # noqa: BLE001 — warm-up is never fatal
            pass
    log = event_log()
    log.emit("shard_ready", worker=worker_id)
    while True:
        item = task_queue.get()
        if item is None:
            break
        (epoch, chunk_id, lease_epoch, campaign_name, timeout_s,
         batch_lanes, chunk) = item
        log.emit("chunk_lease", worker=worker_id, epoch=epoch,
                 campaign=campaign_name, points=len(chunk))
        pairs = [(index, CampaignPoint.from_dict(point_dict))
                 for index, point_dict in chunk]
        evaluate_units(
            pairs, batch_lanes, campaign_name, timeout_s, worker_id,
            emit=lambda result: result_queue.put(
                (epoch, chunk_id, lease_epoch, result.to_row())),
            on_batch=lambda stats: result_queue.put(
                (epoch, chunk_id, lease_epoch, {"__batch__": stats})))
        # One heartbeat per drained chunk: liveness at a commit-log
        # boundary, never per point (the hot path stays event-free).
        log.emit("worker_heartbeat", worker=worker_id, epoch=epoch,
                 campaign=campaign_name)
    log.emit("shard_exit", worker=worker_id)


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class WorkerPool:
    """A set of persistent campaign shards (forked once, reused).

    With the default ``fork`` start method the workers inherit the
    parent's warm state (imported modules, compiled steppers) for
    free; ``warm=True`` additionally primes each worker explicitly,
    which covers spawn platforms and workers forked before the parent
    warmed up.  Use as a context manager, or call :meth:`close`.
    """

    def __init__(self, jobs, warm=False, context=None):
        self.jobs = max(1, int(jobs))
        self._ctx = context if context is not None else _mp_context()
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        self._epoch = 0
        self._closed = False
        self._workers = [
            self._ctx.Process(target=_pool_worker,
                              args=(worker_id, self._task_queue,
                                    self._result_queue, warm),
                              daemon=True)
            for worker_id in range(self.jobs)]
        for proc in self._workers:
            proc.start()
        log = event_log()
        for worker_id, proc in enumerate(self._workers):
            log.emit("shard_spawn", worker=worker_id, child_pid=proc.pid,
                     jobs=self.jobs)

    @property
    def healthy(self):
        """Whether every shard is still alive (a dead shard means the
        pool should be rebuilt rather than reused)."""
        return (not self._closed
                and all(proc.is_alive() for proc in self._workers))

    @property
    def pids(self):
        """The shard process ids (for health displays and tests)."""
        return [proc.pid for proc in self._workers]

    @property
    def alive(self):
        """Count of shards still running."""
        return sum(1 for proc in self._workers if proc.is_alive())

    # -- streaming face (used by transports) -------------------------------

    def start_epoch(self):
        """Open a new submission epoch; rows from earlier epochs are
        dropped by :meth:`poll` from here on."""
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        self._epoch += 1
        return self._epoch

    def submit(self, campaign_name, chunk, timeout_s=None, batch_lanes=1):
        """Queue one leased :class:`~repro.campaign.sched.Chunk` for
        whichever shard steals it first."""
        self._task_queue.put(
            (self._epoch, chunk.chunk_id, chunk.epoch, campaign_name,
             timeout_s, batch_lanes,
             [(index, point.to_dict()) for index, point in chunk.pairs]))

    def poll(self, timeout=0.2):
        """Next ``(chunk_id, lease_epoch, row)`` from the current
        epoch, or ``None`` if nothing arrived within ``timeout``."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                epoch, chunk_id, lease_epoch, row = self._result_queue.get(
                    timeout=remaining)
            except queue_module.Empty:
                return None
            if epoch == self._epoch:
                return chunk_id, lease_epoch, row
            # abandoned-run leftover: drop and keep draining

    def mark_spent(self):
        """Record that this pool must not be reused (post-death); the
        owner sees ``healthy == False`` and rebuilds."""
        self._closed = True
        for proc in self._workers:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()

    def drain_survivors(self):
        """Hand every live shard a shutdown sentinel (the partial-
        shard-death protocol: survivors finish the queued chunks,
        report their rows, and exit)."""
        for worker_id, proc in enumerate(self._workers):
            if not proc.is_alive():
                event_log().emit("shard_death", worker=worker_id,
                                 child_pid=proc.pid,
                                 exitcode=proc.exitcode)
        alive = self.alive
        for _ in range(alive):
            self._task_queue.put(None)
        return alive

    def terminate_all(self):
        """Reap every live shard immediately (wedged-drain escape)."""
        for proc in self._workers:
            if proc.is_alive():
                proc.terminate()

    # -- classic all-in-one face -------------------------------------------

    def run(self, campaign_name, pending, timeout_s=None, chunk_size=None,
            on_result=None, abort=None, batch_lanes=1, on_batch=None):
        """Stream ``pending`` ``(index, point)`` pairs through the
        shards; returns ``{index: PointResult}`` with every pending
        index present (worker death becomes a failed point).

        ``abort`` is an optional zero-argument callable polled while
        results are collected; when it turns true the call raises
        :class:`CampaignAborted`.  The pool itself stays healthy — the
        abandoned chunks drain through the epoch filter, so the next
        ``run`` on the same pool is unaffected.

        ``batch_lanes > 1`` lets each shard run batch-compatible
        inject points through the lockstep kernel
        (:mod:`repro.perf.batch`); ``on_batch`` receives each batch's
        occupancy/eviction stats dict when its chunk completes.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        self.start_epoch()
        sched = ChunkScheduler(pending, chunk_size=chunk_size,
                               sources=self.jobs, batch_lanes=batch_lanes)
        # The shared task queue *is* the lease queue here: every chunk
        # goes out immediately and whichever shard steals it owns it.
        while True:
            chunk = sched.lease(owner="pool")
            if chunk is None:
                break
            self.submit(campaign_name, chunk, timeout_s=timeout_s,
                        batch_lanes=batch_lanes)

        def deliver(deliverables):
            for kind, payload in deliverables:
                if kind == "result" and on_result is not None:
                    on_result(payload)
                elif kind == "batch" and on_batch is not None:
                    on_batch(payload)

        draining_after_death = False
        drain_deadline = None
        while not sched.done:
            if abort is not None and abort():
                raise CampaignAborted(
                    f"campaign {campaign_name!r} aborted with "
                    f"{sched.completed} of {len(pending)} pending points "
                    f"done", completed=sched.completed)
            polled = self.poll(timeout=0.2)
            if polled is None:
                alive = self.alive
                if alive == 0:
                    break  # everyone gone; stragglers marked below
                if alive < len(self._workers) and not draining_after_death:
                    # A shard died and its in-flight chunk died with it,
                    # so the scheduler can never drain.  Hand the
                    # survivors shutdown sentinels: they finish the
                    # still-queued chunks (reporting those points) and
                    # exit, the alive==0 break fires, and only the lost
                    # chunk's points become WorkerDied.  The pool is
                    # spent afterwards (reaped below).
                    self.drain_survivors()
                    draining_after_death = True
                    drain_deadline = time.monotonic() + DRAIN_GRACE_S
                elif (draining_after_death
                        and time.monotonic() > drain_deadline):
                    # The survivors made no progress for the whole
                    # grace period: a SIGKILL can land while the dying
                    # shard holds the result queue's pipe lock, wedging
                    # every other shard's put() forever.  Reap them —
                    # the unreported points become WorkerDied below.
                    event_log().emit("pool_drain_wedged",
                                     remaining=sched.remaining)
                    self.terminate_all()
                    break
                continue
            if draining_after_death:
                drain_deadline = time.monotonic() + DRAIN_GRACE_S
            chunk_id, lease_epoch, row = polled
            deliver(sched.record(chunk_id, lease_epoch, row))
        if draining_after_death:
            self.mark_spent()
        deliver(sched.fail_lost())
        return sched.results()

    def close(self, join_timeout=5.0):
        """Send shutdown sentinels and reap the shards."""
        if self._closed:
            return
        self._closed = True
        event_log().emit("pool_close", jobs=self.jobs)
        for _ in self._workers:
            self._task_queue.put(None)
        for proc in self._workers:
            proc.join(timeout=join_timeout)
            if proc.is_alive():
                proc.terminate()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
