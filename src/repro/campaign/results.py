"""Campaign results: per-point records, JSONL persistence, aggregation.

Every completed point becomes a :class:`PointResult`; a
:class:`ResultStore` appends each one as a JSON line the moment it
lands (so a killed campaign loses at most in-flight points and
``--resume`` can pick up from the file), and
:func:`aggregate`/:func:`format_summary` reduce a finished campaign to
the deterministic summary the CLI prints.

JSONL rows carry nondeterministic bookkeeping (wall-clock, worker id);
the aggregate and summary deliberately exclude it, so serial and
sharded campaigns over the same spec produce byte-identical summaries.
"""

import json
import os
import warnings
from dataclasses import dataclass, field

from repro.analysis.report import format_table
from repro.analysis.stats import mean
from repro.obs.metrics import get_registry


@dataclass
class PointResult:
    """Outcome of one campaign point."""

    point_id: str
    index: int
    ok: bool
    metrics: dict = field(default_factory=dict)
    error: str = None
    elapsed_s: float = 0.0
    worker: int = 0

    def to_row(self):
        return {"point_id": self.point_id, "index": self.index,
                "ok": self.ok, "metrics": self.metrics,
                "error": self.error, "elapsed_s": self.elapsed_s,
                "worker": self.worker}

    @classmethod
    def from_row(cls, row):
        return cls(point_id=row["point_id"], index=row["index"],
                   ok=row["ok"], metrics=row.get("metrics", {}),
                   error=row.get("error"),
                   elapsed_s=row.get("elapsed_s", 0.0),
                   worker=row.get("worker", 0))


class ResultStore:
    """Append-only JSONL sink (``path=None`` keeps rows in memory)."""

    def __init__(self, path=None):
        self.path = path
        self.rows = []
        self._handle = None

    def _open(self):
        """Open for append, healing a missing final newline first.

        A campaign killed mid-write leaves a truncated last line with
        no newline; appending straight after it would merge the next
        row into the corrupt line and lose it too.  The heal runs in
        binary mode: a text-mode seek into the middle of a multi-byte
        character would raise instead of healing.
        """
        try:
            with open(self.path, "rb+") as raw:
                end = raw.seek(0, os.SEEK_END)
                if end > 0:
                    raw.seek(end - 1)
                    if raw.read(1) != b"\n":
                        raw.write(b"\n")
        except FileNotFoundError:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
        return open(self.path, "a", encoding="utf-8")

    def __enter__(self):
        if self.path is not None:
            self._handle = self._open()
        return self

    def __exit__(self, *exc_info):
        self.close()

    def append(self, result):
        row = result.to_row()
        self.rows.append(row)
        if self.path is not None:
            if self._handle is None:
                self._handle = self._open()
            self._handle.write(json.dumps(row, sort_keys=True) + "\n")
            self._handle.flush()

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @staticmethod
    def load(path):
        """Read stored rows as ``{point_id: PointResult}``.

        Later rows win (a re-run of a previously failed point
        supersedes the failure).  A corrupt row — most commonly a
        trailing line truncated when a campaign was killed mid-write —
        is skipped rather than aborting the resume: the point it would
        have recorded simply re-runs.  Every skipped row counts into
        the ``store.corrupt_rows_skipped`` observability counter (the
        executor surfaces the per-run delta in the end-of-run summary
        and the live status), so corruption is visible even when the
        one-time warning scrolled away.
        """
        results = {}
        corrupt = get_registry().counter("store.corrupt_rows_skipped")
        # errors="replace": an undecodable (half-written) row must land
        # in the per-line JSON guard below, not abort the whole load.
        with open(path, "r", encoding="utf-8",
                  errors="replace") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    result = PointResult.from_row(json.loads(line))
                except (ValueError, KeyError, TypeError) as exc:
                    corrupt.inc()
                    warnings.warn(
                        f"{path}:{lineno}: skipping corrupt result row "
                        f"({type(exc).__name__}: {exc}); the point will "
                        f"re-run", RuntimeWarning, stacklevel=2)
                    continue
                results[result.point_id] = result
        return results

    @staticmethod
    def completed_ids(path):
        """Point ids recorded as OK (the set ``--resume`` skips)."""
        return {pid for pid, r in ResultStore.load(path).items() if r.ok}


# -- aggregation ----------------------------------------------------------

def aggregate(results):
    """Cross-point totals (deterministic: no timing fields)."""
    ok = [r for r in results if r.ok]
    failed = [r for r in results if not r.ok]
    injections = sum(r.metrics.get("injections", 0) for r in ok)
    detected = sum(r.metrics.get("detected", 0) for r in ok)
    latencies = [lat for r in ok
                 for lat in r.metrics.get("latencies_ns", [])]
    summary = {
        "points": len(results),
        "ok": len(ok),
        "failed": len(failed),
        "total_cycles": sum(r.metrics.get("cycles", 0) for r in ok),
        "total_instructions": sum(r.metrics.get("instructions", 0)
                                  for r in ok),
        "injections": injections,
        "detected": detected,
    }
    if injections:
        summary["detection_rate"] = detected / injections
    if latencies:
        summary["mean_latency_ns"] = mean(latencies)
        summary["worst_latency_ns"] = max(latencies)
    return summary


def _slowdown_denominators(spec, results):
    """vanilla cycles per (workload, seed, instructions) cell."""
    baselines = {}
    by_index = {r.index: r for r in results}
    for i, point in enumerate(spec.points):
        result = by_index.get(i)
        if (point.task == "vanilla" and result is not None and result.ok
                and result.metrics.get("cycles")):
            key = (point.workload, point.seed, point.instructions)
            baselines[key] = result.metrics["cycles"]
    return baselines


def format_summary(spec, results, corrupt_rows_skipped=0):
    """Render the campaign summary table + aggregate footer.

    Rows are emitted in spec order and carry only deterministic
    metrics, so the output is byte-identical for any ``--jobs``.
    ``corrupt_rows_skipped`` (from
    :attr:`~repro.campaign.executor.CampaignResult.corrupt_rows_skipped`)
    adds a footer line when a resume had to skip damaged store rows.
    """
    baselines = _slowdown_denominators(spec, results)
    by_index = {r.index: r for r in results}
    rows = []
    for i, point in enumerate(spec.points):
        result = by_index.get(i)
        if result is None:
            rows.append([point.point_id, "missing", "", "", "", ""])
            continue
        if not result.ok:
            reason = (result.error or "error").splitlines()[-1][:40]
            rows.append([point.point_id, "FAILED", "", "", "", reason])
            continue
        metrics = result.metrics
        cycles = (f"{metrics['cycles']:.0f}"
                  if metrics.get("cycles") is not None else "")
        base = baselines.get((point.workload, point.seed,
                              point.instructions))
        slow = (f"{metrics['cycles'] / base:.3f}"
                if base and point.task != "vanilla"
                and metrics.get("cycles") else "")
        faults = (f"{metrics['detected']}/{metrics['injections']}"
                  if metrics.get("injections") else "")
        rows.append([point.point_id, "ok", cycles, slow, faults, ""])
    table = format_table(
        ["point", "status", "cycles", "slowdown", "det/inj", "note"],
        rows, title=f"Campaign — {spec.name} ({len(spec.points)} points)")
    agg = aggregate(results)
    footer = (f"\npoints: {agg['ok']}/{agg['points']} ok"
              f" ({agg['failed']} failed)")
    if agg["injections"]:
        footer += (f"; faults {agg['detected']}/{agg['injections']}"
                   f" detected ({agg['detection_rate']:.1%})")
    if "mean_latency_ns" in agg:
        footer += (f"; latency mean {agg['mean_latency_ns']:.0f} ns"
                   f" worst {agg['worst_latency_ns']:.0f} ns")
    if corrupt_rows_skipped:
        footer += (f"\ncorrupt store rows skipped on resume: "
                   f"{corrupt_rows_skipped} (those points re-ran)")
    return table + footer + "\n"
