"""Bounded FIFO queues.

FIFOs are the basic hardware currency of MEEK's data path: the
DC-Buffers attached to each commit path are pairs of independent FIFOs
(status + run-time data), and the Load-Store Log in each little core is
"implemented using dual-way FIFOs" (Sec. III-C).  The model mirrors
that: a :class:`Fifo` with a hard capacity whose fullness creates
backpressure, and a :class:`DualChannelFifo` bundling the two channels
of a DC-Buffer.
"""

from collections import deque

from repro.common.errors import FifoError


class Fifo:
    """A bounded first-in first-out queue.

    ``capacity`` of ``None`` means unbounded (useful for ideal-fabric
    experiments); otherwise :meth:`push` raises :class:`FifoError` when
    full — callers are expected to check :attr:`full` first, exactly
    like ready/valid handshaking in the RTL.
    """

    def __init__(self, capacity=None, name="fifo"):
        if capacity is not None and capacity < 1:
            raise FifoError(f"{name}: capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._items = deque()
        self.total_pushed = 0
        self.total_popped = 0
        self.high_watermark = 0

    def __len__(self):
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    def __bool__(self):
        return bool(self._items)

    @property
    def empty(self):
        return not self._items

    @property
    def full(self):
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def free_slots(self):
        if self.capacity is None:
            return None
        return self.capacity - len(self._items)

    def push(self, item):
        """Append ``item``; raises :class:`FifoError` when full."""
        items = self._items
        depth = len(items)
        if self.capacity is not None and depth >= self.capacity:
            raise FifoError(f"{self.name}: push to full FIFO (capacity {self.capacity})")
        items.append(item)
        self.total_pushed += 1
        depth += 1
        if depth > self.high_watermark:
            self.high_watermark = depth

    def try_push(self, item):
        """Push if there is room; return ``True`` on success."""
        if self.full:
            return False
        self.push(item)
        return True

    def pop(self):
        """Remove and return the oldest item; raises when empty."""
        items = self._items
        if not items:
            raise FifoError(f"{self.name}: pop from empty FIFO")
        self.total_popped += 1
        return items.popleft()

    def peek(self):
        """Return the oldest item without removing it; raises when empty."""
        if not self._items:
            raise FifoError(f"{self.name}: peek at empty FIFO")
        return self._items[0]

    def clear(self):
        self._items.clear()

    def drain(self, limit=None):
        """Pop up to ``limit`` items (all if ``None``) and return them."""
        out = []
        while self._items and (limit is None or len(out) < limit):
            out.append(self.pop())
        return out


class DualChannelFifo:
    """A DC-Buffer: independent status and run-time data FIFOs.

    The paper adds a DC-Buffer to each commit path so that a run-time
    packet and a status packet produced in the same commit cycle can
    both be absorbed without stalling the core (Sec. III-B).
    """

    def __init__(self, status_capacity, runtime_capacity, name="dcbuf"):
        self.name = name
        self.status = Fifo(status_capacity, name=f"{name}.status")
        self.runtime = Fifo(runtime_capacity, name=f"{name}.runtime")

    @property
    def empty(self):
        return self.status.empty and self.runtime.empty

    def occupancy(self):
        """Return ``(status_depth, runtime_depth)``."""
        return len(self.status), len(self.runtime)

    def can_accept(self, status_packets=0, runtime_packets=0):
        """Whether both channels have room for the given packet counts."""
        status_ok = (
            self.status.capacity is None
            or self.status.free_slots >= status_packets
        )
        runtime_ok = (
            self.runtime.capacity is None
            or self.runtime.free_slots >= runtime_packets
        )
        return status_ok and runtime_ok
