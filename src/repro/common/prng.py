"""Deterministic pseudo-random number generation.

Every stochastic element of the reproduction — workload generation,
fault-injection campaigns, cache address streams — draws from a
:class:`DeterministicRng` seeded explicitly, so any experiment can be
replayed bit-for-bit from its seed.  The class wraps
:class:`random.Random` rather than the module-level functions to keep
streams independent of each other and of user code.
"""

import hashlib
import random


class DeterministicRng:
    """A named, seeded random stream."""

    def __init__(self, seed, name="rng"):
        self.seed = seed
        self.name = name
        self._rng = random.Random(seed)

    def fork(self, salt):
        """Derive an independent child stream.

        Children are seeded from the parent seed and a salt string so
        that adding a new consumer never perturbs existing streams.
        The derivation hashes with BLAKE2 rather than ``hash()``, whose
        per-process randomization (PYTHONHASHSEED) would make streams
        differ between the shards of a parallel campaign and between a
        campaign and its resume.
        """
        digest = hashlib.blake2b(f"{self.seed}\x1f{salt}".encode(),
                                 digest_size=8).digest()
        child_seed = int.from_bytes(digest, "big")
        return DeterministicRng(child_seed, name=f"{self.name}/{salt}")

    def randint(self, lo, hi):
        """Uniform integer in ``[lo, hi]`` inclusive."""
        return self._rng.randint(lo, hi)

    def random(self):
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def choice(self, seq):
        return self._rng.choice(seq)

    def choices(self, population, weights, k=1):
        return self._rng.choices(population, weights=weights, k=k)

    def sample(self, population, k):
        return self._rng.sample(population, k)

    def shuffle(self, seq):
        self._rng.shuffle(seq)

    def expovariate(self, lambd):
        return self._rng.expovariate(lambd)

    def gauss(self, mu, sigma):
        return self._rng.gauss(mu, sigma)

    def bit64(self):
        """A uniform 64-bit value."""
        return self._rng.getrandbits(64)

    def bit_index(self, width=64):
        """A uniform bit position for single-bit fault injection."""
        return self._rng.randrange(width)

    def bernoulli(self, p):
        """True with probability ``p``."""
        return self._rng.random() < p
