"""Shared infrastructure for the MEEK reproduction.

This package holds the pieces every other subsystem leans on: the
two-domain clock model, bounded FIFO queues (the basic currency of the
forwarding fabric), bit-manipulation helpers used by the encoder and
the fault injector, the hardware configuration dataclasses transcribed
from Table II of the paper, and a small deterministic PRNG wrapper so
every experiment is reproducible from a seed.
"""

from repro.common.bitops import (
    bit_length64,
    extract_bits,
    flip_bit,
    mask,
    parity,
    sign_extend,
    to_signed,
    to_unsigned,
)
from repro.common.clock import Clock, ClockDomain
from repro.common.config import (
    AxiConfig,
    BigCoreConfig,
    CacheConfig,
    FabricConfig,
    LittleCoreConfig,
    LslConfig,
    MeekConfig,
    MemoryHierarchyConfig,
    default_meek_config,
    default_rocket_config,
    optimized_rocket_config,
)
from repro.common.errors import (
    AssemblerError,
    ConfigError,
    DecodeError,
    FifoError,
    PrivilegeError,
    ReproError,
    SimulationError,
)
from repro.common.fifo import DualChannelFifo, Fifo
from repro.common.prng import DeterministicRng

__all__ = [
    "AssemblerError",
    "AxiConfig",
    "BigCoreConfig",
    "CacheConfig",
    "Clock",
    "ClockDomain",
    "ConfigError",
    "DecodeError",
    "DeterministicRng",
    "DualChannelFifo",
    "FabricConfig",
    "Fifo",
    "FifoError",
    "LittleCoreConfig",
    "LslConfig",
    "MeekConfig",
    "MemoryHierarchyConfig",
    "PrivilegeError",
    "ReproError",
    "SimulationError",
    "bit_length64",
    "default_meek_config",
    "default_rocket_config",
    "extract_bits",
    "flip_bit",
    "mask",
    "optimized_rocket_config",
    "parity",
    "sign_extend",
    "to_signed",
    "to_unsigned",
]
