"""Exception hierarchy for the MEEK reproduction.

Every exception raised by library code derives from :class:`ReproError`
so applications can catch the whole family with one handler while tests
can assert on the precise subtype.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """A configuration dataclass was constructed with invalid values."""


class FifoError(ReproError):
    """Illegal FIFO operation (push to a full queue, pop from empty)."""


class DecodeError(ReproError):
    """An instruction word could not be decoded."""


class AssemblerError(ReproError):
    """Assembly source text was malformed."""


class PrivilegeError(ReproError):
    """A privileged MEEK instruction was executed in user mode."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state.

    This signals a bug in the model (or a deliberately provoked illegal
    condition in a test), never an expected runtime outcome such as a
    detected fault.
    """


class DeadlockError(SimulationError):
    """The system made no forward progress for the configured horizon.

    Used by the OS model to report the Fig. 5 (a) page-fault deadlock
    and by the system simulator as a watchdog against model bugs.
    """
