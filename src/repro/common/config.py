"""Hardware configuration dataclasses (Table II of the paper).

Every experiment builds its system from these configs, so Table II is
transcribed here once and referenced everywhere.  The defaults are the
paper's evaluated configuration: a 4-wide SonicBOOM-class big core at
3.2 GHz, four optimized Rocket-class little cores at 1.6 GHz with a
4 KB Load-Store Log and a 5000-instruction checkpoint timeout.
"""

from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigError

#: Commit-stage checkpoint trigger, Sec. IV-B: "each checkpoint is
#: finite in size (5000-instruction maximum)".
DEFAULT_RCP_INSTRUCTION_TIMEOUT = 5000

#: Bytes per LSL entry: a load/store record carries a 64-bit address
#: and 64-bit data word (16 bytes).  A 4 KB LSL therefore holds 256
#: run-time entries.
LSL_ENTRY_BYTES = 16


def _require(condition, message):
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64
    mshrs: int = 8
    hit_latency: int = 2

    def __post_init__(self):
        _require(self.size_bytes > 0, f"{self.name}: size must be positive")
        _require(self.ways > 0, f"{self.name}: ways must be positive")
        _require(self.line_bytes > 0 and (self.line_bytes & (self.line_bytes - 1)) == 0,
                 f"{self.name}: line size must be a positive power of two")
        _require(self.size_bytes % (self.ways * self.line_bytes) == 0,
                 f"{self.name}: size must be divisible by ways*line")
        _require(self.mshrs >= 1, f"{self.name}: need at least one MSHR")

    @property
    def num_sets(self):
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class MemoryHierarchyConfig:
    """The full Table II memory hierarchy."""

    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L1I", size_bytes=32 * 1024, ways=4, mshrs=8, hit_latency=1))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L1D", size_bytes=32 * 1024, ways=4, mshrs=8, hit_latency=3))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L2", size_bytes=512 * 1024, ways=8, mshrs=12, hit_latency=12))
    llc: CacheConfig = field(default_factory=lambda: CacheConfig(
        "LLC", size_bytes=4 * 1024 * 1024, ways=8, mshrs=8, hit_latency=30))
    dram_latency: int = 120
    dram_max_requests: int = 32


@dataclass(frozen=True)
class BigCoreConfig:
    """SonicBOOM-class OoO superscalar core (Table II, top half)."""

    name: str = "boom"
    frequency_hz: float = 3.2e9
    fetch_width: int = 4
    commit_width: int = 4
    rob_entries: int = 128
    issue_queue_entries: int = 96
    ldq_entries: int = 32
    stq_entries: int = 32
    int_phys_regs: int = 128
    fp_phys_regs: int = 128
    int_alus: int = 2
    fp_units: int = 1
    mem_units: int = 2
    jump_units: int = 1
    csr_units: int = 1
    # Branch predictor (TAGE) timing parameters.
    btb_entries: int = 256
    ras_entries: int = 32
    tage_tables: int = 6
    mispredict_penalty: int = 12
    # Execution latencies (cycles).  BOOM's integer divide is iterative;
    # its FPU is fully pipelined.
    int_alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 12
    fp_latency: int = 4
    fp_div_latency: int = 16
    memory: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)

    def __post_init__(self):
        _require(self.fetch_width >= 1, "fetch width must be >= 1")
        _require(self.commit_width >= 1, "commit width must be >= 1")
        _require(self.rob_entries >= self.commit_width,
                 "ROB must hold at least one commit group")
        _require(self.int_alus >= 1 and self.mem_units >= 1,
                 "need at least one ALU and one memory unit")
        _require(self.frequency_hz > 0, "frequency must be positive")

    def scaled(self, factor):
        """Linearly interpolate every sizeable component by ``factor``.

        Used to build the Equivalent-Area LockStep comparator (Sec. V-A):
        the paper scales down each configurable BOOM component through
        linear interpolation until two copies match MEEK's area budget.
        Unit counts never drop below one and queue sizes below the
        commit group, so the scaled core remains functional.
        """
        _require(0 < factor <= 1.0, f"scale factor must be in (0, 1], got {factor}")

        def scale(value, minimum=1):
            return max(minimum, int(round(value * factor)))

        def scale_cache(cache):
            # Shrink capacity through associativity so the set count
            # (and divisibility invariants) stay intact.
            ways = scale(cache.ways)
            return replace(cache,
                           ways=ways,
                           size_bytes=cache.num_sets * ways * cache.line_bytes,
                           mshrs=scale(cache.mshrs))

        memory = self.memory
        scaled_memory = replace(
            memory,
            l1i=scale_cache(memory.l1i),
            l1d=scale_cache(memory.l1d),
            l2=scale_cache(memory.l2),
            llc=scale_cache(memory.llc),
        )

        width = scale(self.fetch_width)
        return replace(
            self,
            name=f"{self.name}-x{factor:.2f}",
            fetch_width=width,
            commit_width=scale(self.commit_width),
            rob_entries=scale(self.rob_entries, minimum=width * 4),
            issue_queue_entries=scale(self.issue_queue_entries, minimum=width * 2),
            ldq_entries=scale(self.ldq_entries, minimum=4),
            stq_entries=scale(self.stq_entries, minimum=4),
            int_phys_regs=scale(self.int_phys_regs, minimum=48),
            fp_phys_regs=scale(self.fp_phys_regs, minimum=48),
            int_alus=scale(self.int_alus),
            fp_units=scale(self.fp_units),
            mem_units=scale(self.mem_units),
            jump_units=scale(self.jump_units),
            btb_entries=scale(self.btb_entries, minimum=16),
            ras_entries=scale(self.ras_entries, minimum=4),
            tage_tables=scale(self.tage_tables, minimum=2),
            memory=scaled_memory,
        )


@dataclass(frozen=True)
class LslConfig:
    """Load-Store Log: 4 KB with a 5000-instruction timeout (Table II)."""

    size_bytes: int = 4 * 1024
    instruction_timeout: int = DEFAULT_RCP_INSTRUCTION_TIMEOUT

    def __post_init__(self):
        _require(self.size_bytes >= LSL_ENTRY_BYTES,
                 "LSL must hold at least one entry")
        _require(self.instruction_timeout >= 1,
                 "instruction timeout must be >= 1")

    @property
    def entries(self):
        """Run-time data records the log can hold."""
        return self.size_bytes // LSL_ENTRY_BYTES


@dataclass(frozen=True)
class LittleCoreConfig:
    """Rocket-class in-order core (Table II, bottom half).

    ``div_unroll`` and ``fpu_stages`` are the two bottleneck components
    the paper widens to close the performance gap (Sec. III-C): the
    evaluated cores use an 8-unroll divider and a 3-stage (pipelined)
    FPU, versus a default Rocket with an iterative 1-bit/cycle divider
    and a blocking FPU.
    """

    name: str = "rocket-opt"
    frequency_hz: float = 1.6e9
    div_unroll: int = 8
    fpu_stages: int = 3
    fpu_pipelined: bool = True
    icache: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L1I-little", size_bytes=4 * 1024, ways=2, mshrs=2, hit_latency=1))
    dcache: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L1D-little", size_bytes=4 * 1024, ways=2, mshrs=2, hit_latency=2))
    lsl: LslConfig = field(default_factory=LslConfig)
    mul_latency: int = 4
    load_use_penalty: int = 1
    branch_penalty: int = 2

    def __post_init__(self):
        _require(self.div_unroll >= 1, "divider unroll must be >= 1")
        _require(self.fpu_stages >= 1, "FPU needs at least one stage")
        _require(self.frequency_hz > 0, "frequency must be positive")

    @property
    def div_latency(self):
        """Cycles for a 64-bit iterative divide at this unroll factor."""
        return max(2, 64 // self.div_unroll + 2)

    @property
    def fdiv_latency(self):
        """Cycles for a double-precision divide/sqrt.

        The mantissa divider iterates like the integer one but benefits
        from only half the unroll investment (separate datapath), plus
        the FPU pipeline depth for pack/round.  On the default Rocket
        this is a painful ~58 cycles; on the optimized core ~16 — the
        component the paper widens for swaptions-class workloads.
        """
        effective_unroll = max(1, self.div_unroll // 4)
        return max(8, 54 // effective_unroll) + self.fpu_stages

    @property
    def fp_latency(self):
        """Cycles a dependent instruction waits on an FP result."""
        return self.fpu_stages

    @property
    def fp_occupancy(self):
        """Cycles the FPU is busy per FP op (1 when pipelined)."""
        return 1 if self.fpu_pipelined else self.fpu_stages


def default_rocket_config():
    """The *default* Rocket used as the Fig. 10 baseline: iterative
    1-bit divider, blocking single-issue FPU."""
    return LittleCoreConfig(
        name="rocket-default",
        div_unroll=1,
        fpu_stages=4,
        fpu_pipelined=False,
    )


def optimized_rocket_config():
    """The optimized little core evaluated in the paper (Table II)."""
    return LittleCoreConfig(name="rocket-opt", div_unroll=8, fpu_stages=3,
                            fpu_pipelined=True)


@dataclass(frozen=True)
class FabricConfig:
    """F2: DC-Buffers plus the half-duplex multicast NoC (Sec. III-B)."""

    kind: str = "f2"
    width_bits: int = 256
    packets_per_cycle: int = 2
    status_fifo_depth: int = 16
    runtime_fifo_depth: int = 16
    hop_latency: int = 1
    multicast: bool = True

    def __post_init__(self):
        _require(self.kind in ("f2", "axi", "ideal"),
                 f"unknown fabric kind {self.kind!r}")
        _require(self.width_bits in (64, 128, 256, 512),
                 "fabric width must be a standard bus width")
        _require(self.packets_per_cycle >= 1, "need >= 1 packet per cycle")


@dataclass(frozen=True)
class AxiConfig(FabricConfig):
    """The full-featured AXI-Interconnect baseline of Fig. 9: a 128-bit
    narrow bus handling one packet per cycle, no multicast."""

    kind: str = "axi"
    width_bits: int = 128
    packets_per_cycle: int = 1
    multicast: bool = False
    arbitration_latency: int = 2


@dataclass(frozen=True)
class MeekConfig:
    """A complete MEEK system: one big core + N little cores + fabric."""

    big_core: BigCoreConfig = field(default_factory=BigCoreConfig)
    little_core: LittleCoreConfig = field(default_factory=optimized_rocket_config)
    num_little_cores: int = 4
    fabric: FabricConfig = field(default_factory=FabricConfig)
    checking_enabled: bool = True
    #: Keep the checker at least one instruction behind the main thread
    #: (the Fig. 5 (b) deadlock fix).  Disabled only to demonstrate the
    #: deadlock in the OS model.
    one_instruction_behind: bool = True

    def __post_init__(self):
        _require(self.num_little_cores >= 1, "need at least one little core")

    def with_little_cores(self, count):
        return replace(self, num_little_cores=count)

    def with_fabric(self, fabric):
        return replace(self, fabric=fabric)


def default_meek_config(num_little_cores=4, fabric_kind="f2"):
    """The paper's evaluated configuration (Table II): 4 optimized
    little cores behind the F2 fabric."""
    if fabric_kind == "axi":
        fabric = AxiConfig()
    elif fabric_kind == "ideal":
        fabric = FabricConfig(kind="ideal", width_bits=512,
                              packets_per_cycle=8,
                              status_fifo_depth=64, runtime_fifo_depth=64)
    else:
        fabric = FabricConfig()
    return MeekConfig(num_little_cores=num_little_cores, fabric=fabric)
