"""Two-domain clock model.

MEEK spans two clock domains (Fig. 2): the big core and the F2 fabric
run in the high-frequency domain (3.2 GHz in Table II) while the little
cores run in a low-frequency domain (1.6 GHz).  The simulator advances
in *big-core cycles*; a :class:`ClockDomain` answers whether a given
component ticks on the current global cycle and converts cycle counts
to wall-clock time.
"""

from repro.common.errors import ConfigError

PICOSECONDS_PER_SECOND = 1_000_000_000_000


class ClockDomain:
    """One clock domain, defined by its frequency in Hz."""

    def __init__(self, name, frequency_hz):
        if frequency_hz <= 0:
            raise ConfigError(f"clock {name}: frequency must be positive")
        self.name = name
        self.frequency_hz = frequency_hz

    @property
    def period_ps(self):
        """Clock period in picoseconds."""
        return PICOSECONDS_PER_SECOND / self.frequency_hz

    def cycles_to_ns(self, cycles):
        """Convert a cycle count in this domain to nanoseconds."""
        return cycles * 1e9 / self.frequency_hz

    def ns_to_cycles(self, ns):
        """Convert nanoseconds to (fractional) cycles in this domain."""
        return ns * self.frequency_hz / 1e9

    def __repr__(self):
        return f"ClockDomain({self.name!r}, {self.frequency_hz / 1e9:.2f} GHz)"


class Clock:
    """Global simulation clock, stepped at the fastest domain's rate.

    The fast (big-core) domain ticks every global cycle; each slower
    domain ticks once every ``ratio`` global cycles where ``ratio`` is
    the integer frequency ratio.  Table II's 3.2 GHz / 1.6 GHz pair
    gives a ratio of exactly 2, which keeps the model simple and is why
    non-integer ratios are rejected.
    """

    def __init__(self, fast_domain, slow_domains=()):
        self.fast = fast_domain
        self.cycle = 0
        self._ratios = {}
        for domain in slow_domains:
            self.add_domain(domain)

    def add_domain(self, domain):
        ratio = self.fast.frequency_hz / domain.frequency_hz
        if abs(ratio - round(ratio)) > 1e-9 or ratio < 1:
            raise ConfigError(
                f"domain {domain.name}: frequency ratio {ratio:.3f} to the fast "
                "domain must be a positive integer"
            )
        self._ratios[domain.name] = int(round(ratio))

    def tick(self):
        """Advance global time by one fast-domain cycle."""
        self.cycle += 1

    def domain_ticks(self, domain_name):
        """Whether the named slow domain has an edge on the current cycle."""
        return self.cycle % self._ratios[domain_name] == 0

    def ratio(self, domain_name):
        return self._ratios[domain_name]

    def now_ns(self):
        """Current simulated time in nanoseconds."""
        return self.fast.cycles_to_ns(self.cycle)
