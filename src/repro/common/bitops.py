"""Bit-manipulation helpers.

The ISA encoder, the parity protection modelled in the LSQ (Sec. III-A
of the paper) and the fault injector all operate on fixed-width
two's-complement integers.  Python integers are unbounded, so these
helpers make the 32/64-bit semantics explicit at every call site.
"""

from repro.common.errors import SimulationError

WORD_BITS = 64
_WORD_MASK = (1 << WORD_BITS) - 1


def mask(bits):
    """Return an all-ones mask of ``bits`` bits (``mask(4) == 0b1111``)."""
    if bits < 0:
        raise SimulationError(f"mask width must be non-negative, got {bits}")
    return (1 << bits) - 1


def to_unsigned(value, bits=WORD_BITS):
    """Interpret ``value`` as an unsigned ``bits``-wide integer."""
    return value & mask(bits)


def to_signed(value, bits=WORD_BITS):
    """Interpret the low ``bits`` bits of ``value`` as two's complement."""
    value &= mask(bits)
    sign_bit = 1 << (bits - 1)
    if value & sign_bit:
        return value - (1 << bits)
    return value


def sign_extend(value, from_bits, to_bits=WORD_BITS):
    """Sign-extend a ``from_bits``-wide value to ``to_bits`` bits."""
    if from_bits > to_bits:
        raise SimulationError(
            f"cannot sign-extend from {from_bits} to narrower {to_bits} bits"
        )
    return to_unsigned(to_signed(value, from_bits), to_bits)


def extract_bits(value, hi, lo):
    """Return bits ``hi:lo`` (inclusive, ``hi >= lo``) of ``value``."""
    if hi < lo:
        raise SimulationError(f"extract_bits needs hi >= lo, got {hi} < {lo}")
    return (value >> lo) & mask(hi - lo + 1)


def flip_bit(value, bit, bits=WORD_BITS):
    """Flip a single bit of ``value``, staying within ``bits`` width.

    This is the atomic fault operation used by the injection campaign:
    the paper injects single-bit upsets into data forwarded through F2.
    """
    if not 0 <= bit < bits:
        raise SimulationError(f"bit index {bit} out of range for {bits}-bit value")
    return (value ^ (1 << bit)) & mask(bits)


def parity(value, bits=WORD_BITS):
    """Even parity of the low ``bits`` bits (1 if an odd number of ones).

    The paper copies the cache's parity bits into the LSQ to close the
    unprotected window between cache read and LSL duplication.
    """
    if bits == WORD_BITS:  # the hot default: skip the mask() call
        return (value & _WORD_MASK).bit_count() & 1
    return (value & mask(bits)).bit_count() & 1


def bit_length64(value):
    """Number of significant bits in the unsigned 64-bit view of ``value``."""
    return to_unsigned(value).bit_length()


def popcount(value, bits=WORD_BITS):
    """Number of set bits in the low ``bits`` bits of ``value``."""
    if bits == WORD_BITS:
        return (value & _WORD_MASK).bit_count()
    return (value & mask(bits)).bit_count()
