"""The chained memory hierarchy: L1 → L2 → LLC → DRAM.

Each access walks down until it hits, accumulating the hit latency of
every level it touches plus MSHR queueing at the level that missed.
Fills happen on the way back up (inclusive hierarchy).  Instruction
and data accesses share L2 and below but use separate L1s, exactly as
in Table II.
"""

import enum

from repro.common.config import MemoryHierarchyConfig
from repro.mem.cache import CacheModel
from repro.mem.dram import DramModel


class AccessKind(enum.Enum):
    IFETCH = "ifetch"
    LOAD = "load"
    STORE = "store"


#: Tag-walk result codes: the level that served the access.  The code
#: is a pure function of cache *contents* (which evolve by access order
#: alone, never by access timing), so identically-ordered access
#: streams see identical codes — the invariant the batched campaign
#: kernel (:mod:`repro.perf.batch`) builds on.
L1_HIT = 0
L2_HIT = 1
LLC_HIT = 2
DRAM = 3


class MemoryHierarchy:
    """Timing for one core's view of the memory system.

    ``shared_l2`` lets several cores (the big core and the little
    cores' instruction paths) sit behind one L2/LLC/DRAM instance, as
    on the Rocket Chip SoC.
    """

    def __init__(self, config=None, shared_l2=None):
        self.config = config if config is not None else MemoryHierarchyConfig()
        self.l1i = CacheModel(self.config.l1i)
        self.l1d = CacheModel(self.config.l1d)
        if shared_l2 is not None:
            self.l2 = shared_l2.l2
            self.llc = shared_l2.llc
            self.dram = shared_l2.dram
        else:
            self.l2 = CacheModel(self.config.l2)
            self.llc = CacheModel(self.config.llc)
            self.dram = DramModel(self.config.dram_latency,
                                  self.config.dram_max_requests)
        # Hit latencies and line size are config constants; resolve the
        # attribute chains once instead of on every access.
        self._l1i_hit = self.l1i.config.hit_latency
        self._l1d_hit = self.l1d.config.hit_latency
        self._l2_hit = self.l2.config.hit_latency
        self._llc_hit = self.llc.config.hit_latency
        self._l1d_line = self.l1d.config.line_bytes

    def access(self, addr, now, kind=AccessKind.LOAD):
        """Latency in cycles of an access issued at cycle ``now``."""
        return self.latency_for_code(self.lookup_code(addr, kind), now, kind)

    def lookup_code(self, addr, kind=AccessKind.LOAD):
        """Walk the tags for one access and return the serving level.

        This is the *content* half of :meth:`access`: lookups, prefetch
        fills, and demand fills mutate LRU state exactly as the fused
        method always did, but nothing here depends on ``now`` — the
        result is determined by the access stream alone.  The *timing*
        half (DRAM queueing, MSHR backpressure) lives in
        :meth:`latency_for_code`.
        """
        if kind is AccessKind.IFETCH:
            l1 = self.l1i
        else:
            l1 = self.l1d
        if l1.lookup(addr):
            return L1_HIT
        l2 = self.l2
        llc = self.llc
        if kind is not AccessKind.IFETCH:
            # Next-line prefetcher: on a demand miss, pull the adjacent
            # line into the hierarchy so streaming patterns (libquantum,
            # streamcluster) hide most of their miss latency, as the
            # hardware prefetchers on BOOM-class cores do.  Pointer
            # chasing gets no benefit, exactly as on real hardware.
            line = self._l1d_line
            for ahead in (1, 2):
                next_line = addr + ahead * line
                llc.fill(next_line)
                l2.fill(next_line)
                l1.fill(next_line)
        if l2.lookup(addr):
            code = L2_HIT
        elif llc.lookup(addr):
            code = LLC_HIT
        else:
            code = DRAM
        # Fill upward (inclusive hierarchy).
        llc.fill(addr)
        l2.fill(addr)
        l1.fill(addr)
        return code

    def latency_for_code(self, code, now, kind=AccessKind.LOAD):
        """Latency of an access issued at ``now`` served at ``code``.

        Touches only per-core queueing state (DRAM window, L1 MSHRs) —
        never the tags — so a batch of lanes sharing one tag walk can
        each resolve their own latency here.
        """
        if kind is AccessKind.IFETCH:
            l1 = self.l1i
            latency = self._l1i_hit
        else:
            l1 = self.l1d
            latency = self._l1d_hit
        if code == L1_HIT:
            return latency
        # L1 miss: charge each level's hit latency on the way down.
        latency += self._l2_hit
        if code != L2_HIT:
            latency += self._llc_hit
            if code == DRAM:
                completion = self.dram.access(now + latency)
                latency = completion - now
        # Charge MSHR queueing at the L1.
        completion = l1.mshr_allocate(now, now + latency)
        return completion - now

    def load_latency(self, addr, now):
        return self.access(addr, now, AccessKind.LOAD)

    def store_latency(self, addr, now):
        return self.access(addr, now, AccessKind.STORE)

    def ifetch_latency(self, addr, now):
        return self.access(addr, now, AccessKind.IFETCH)

    def stats(self):
        return {
            "l1i": self.l1i.stats(),
            "l1d": self.l1d.stats(),
            "l2": self.l2.stats(),
            "llc": self.llc.stats(),
            "dram": self.dram.stats(),
        }
