"""Set-associative cache timing model with MSHR accounting.

This models *timing*, not data: the functional executor keeps the
authoritative memory contents, while the cache decides hit/miss and how
long a miss stalls.  MSHRs bound the number of misses in flight — when
all are busy a new miss queues behind the oldest, which is how the
narrow little-core caches (2 MSHRs) throttle and the big L2 (12 MSHRs)
does not.

MSHR completion times live in a min-heap: instead of rescanning and
rebuilding the in-flight list on every miss ("ticking" each entry), an
allocation fast-forwards by popping only the entries that have already
retired — the earliest outstanding completion is always ``heap[0]``.
"""

from heapq import heappop, heappush

from repro.common.errors import SimulationError


class CacheModel:
    """One cache level."""

    def __init__(self, config):
        self.config = config
        self.num_sets = config.num_sets
        self._offset_bits = config.line_bytes.bit_length() - 1
        # Per-set list of tags, most-recently-used last.
        self._sets = [[] for _ in range(self.num_sets)]
        # Completion cycles of in-flight misses (MSHR min-heap).
        self._mshr_busy_until = []
        self._ways = config.ways
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.mshr_stall_cycles = 0

    def _index_tag(self, addr):
        line = addr >> self._offset_bits
        return line % self.num_sets, line // self.num_sets

    def probe(self, addr):
        """Whether ``addr`` currently hits, without updating state."""
        index, tag = self._index_tag(addr)
        return tag in self._sets[index]

    def lookup(self, addr):
        """Access the cache: returns ``True`` on hit and updates LRU."""
        line = addr >> self._offset_bits
        tag, index = divmod(line, self.num_sets)
        ways = self._sets[index]
        if tag in ways:
            if ways[-1] != tag:
                ways.remove(tag)
                ways.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, addr):
        """Install the line containing ``addr``, evicting LRU if needed."""
        line = addr >> self._offset_bits
        tag, index = divmod(line, self.num_sets)
        ways = self._sets[index]
        if tag in ways:
            return
        if len(ways) >= self._ways:
            ways.pop(0)
            self.evictions += 1
        ways.append(tag)

    def invalidate(self, addr):
        index, tag = self._index_tag(addr)
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)

    def flush(self):
        for ways in self._sets:
            ways.clear()
        self._mshr_busy_until.clear()

    def mshr_allocate(self, now, completion):
        """Reserve an MSHR for a miss issued at ``now``.

        Returns the (possibly delayed) completion cycle: if every MSHR
        is still busy at ``now``, the miss waits for the earliest one
        to free.
        """
        if completion < now:
            raise SimulationError("miss cannot complete before it starts")
        busy = self._mshr_busy_until
        # Fast-forward: retire every miss already complete by ``now``.
        while busy and busy[0] <= now:
            heappop(busy)
        if len(busy) >= self.config.mshrs:
            earliest = busy[0]
            delay = earliest - now
            self.mshr_stall_cycles += delay
            completion += delay
        heappush(busy, completion)
        return completion

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def miss_rate(self):
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def stats(self):
        return {
            "name": self.config.name,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "miss_rate": self.miss_rate,
            "mshr_stall_cycles": self.mshr_stall_cycles,
        }
