"""DRAM timing model.

Table II: 16 GB DDR3 @ 1066 MHz with at most 32 outstanding requests.
The model charges a fixed access latency and, when the request window
is full, queues behind the oldest outstanding request — the same
shape of backpressure a real memory controller applies.
"""


class DramModel:
    """Fixed-latency DRAM with a bounded request window."""

    def __init__(self, latency_cycles=120, max_requests=32):
        self.latency_cycles = latency_cycles
        self.max_requests = max_requests
        self._busy_until = []
        self.requests = 0
        self.queue_stall_cycles = 0

    def access(self, now):
        """Issue a request at cycle ``now``; return its completion cycle."""
        self.requests += 1
        active = [t for t in self._busy_until if t > now]
        self._busy_until = active
        start = now
        if len(active) >= self.max_requests:
            earliest = min(active)
            self.queue_stall_cycles += earliest - now
            start = earliest
        completion = start + self.latency_cycles
        self._busy_until.append(completion)
        return completion

    def stats(self):
        return {
            "requests": self.requests,
            "queue_stall_cycles": self.queue_stall_cycles,
        }
