"""DRAM timing model.

Table II: 16 GB DDR3 @ 1066 MHz with at most 32 outstanding requests.
The model charges a fixed access latency and, when the request window
is full, queues behind the oldest outstanding request — the same
shape of backpressure a real memory controller applies.

Outstanding completions live in a min-heap so each access fast-forwards
past already-retired requests instead of filtering and rebuilding the
whole window (the earliest outstanding completion is ``heap[0]``).
"""

from heapq import heappop, heappush


class DramModel:
    """Fixed-latency DRAM with a bounded request window."""

    def __init__(self, latency_cycles=120, max_requests=32):
        self.latency_cycles = latency_cycles
        self.max_requests = max_requests
        self._busy_until = []
        self.requests = 0
        self.queue_stall_cycles = 0

    def access(self, now):
        """Issue a request at cycle ``now``; return its completion cycle."""
        self.requests += 1
        busy = self._busy_until
        while busy and busy[0] <= now:
            heappop(busy)
        start = now
        if len(busy) >= self.max_requests:
            earliest = busy[0]
            self.queue_stall_cycles += earliest - now
            start = earliest
        completion = start + self.latency_cycles
        heappush(busy, completion)
        return completion

    def stats(self):
        return {
            "requests": self.requests,
            "queue_stall_cycles": self.queue_stall_cycles,
        }
