"""Memory-hierarchy timing models (Table II, bottom half).

Set-associative caches with LRU replacement and MSHR-limited miss
concurrency, a fixed-latency DRAM with bounded outstanding requests,
and a :class:`~repro.mem.hierarchy.MemoryHierarchy` that chains
L1 → L2 → LLC → DRAM and answers "how many cycles does this access
take, starting now?" — which is all the core timing models need.
"""

from repro.mem.cache import CacheModel
from repro.mem.dram import DramModel
from repro.mem.hierarchy import AccessKind, MemoryHierarchy

__all__ = ["AccessKind", "CacheModel", "DramModel", "MemoryHierarchy"]
