"""Segment-granular memoization of checker replay bursts.

A clean (fault-free) segment replay is a pure function of:

* the decoded program (instruction semantics and timing classes),
* the SRCP architectural state it starts from (pc, registers, CSRs),
* the little-core pipeline configuration (latency products, icache
  geometry, clock ratio) and the one-instruction-behind rule,

provided none of the *ambient* pipeline state intrudes: the divider
and FPU must be free by segment start, every fetched icache line must
already be resident (and the last-fetched-line cell must match), and
no LSL entry may be delivered late enough to stall a load's data bind.
When those conditions hold, every per-instruction timestamp of the
replay is ``start + rel`` for constants ``rel`` recorded on the first
execution — so a repeat of the same segment skips re-execution
entirely: it validates the conditions entry-by-entry as the log
arrives, emits the same LSL consumption times, applies the final
pipeline/icache state at close, and reproduces the verdict,
bit-identical to the replay it skipped.

Nothing is mutated until the whole segment validates (consumption
times excepted — they are proven equal before emission), so any
failed condition — a corrupted entry, a late delivery, a diverged
segment boundary — falls back to the normal replay loop *from the
segment start* and produces exactly the scalar result, detections
included.  The register scoreboards are deliberately not restored on
a hit: every consumer (:meth:`CheckerRun.__init__` via ``reset_to``)
clears them before reading.

Campaigns are the customer: thousands of near-identical trials replay
the same clean segments, and the batched kernel
(:mod:`repro.perf.batch`) replays each of them once per *lane*.  The
store is keyed by decoded-program identity (lanes and pooled trials
share program objects through the campaign program cache), then by
the segment fingerprint.

``REPRO_NO_SEGMEMO=1`` disables the memo; the equivalence battery
pins memo-on and memo-off bit-identical.
"""

import os

#: Sentinel: the summary cannot describe this segment; re-execute.
FALLBACK = object()

_MAX_PROGRAMS = 16
_MAX_SUMMARIES = 8192

#: decoded-program object -> {segment fingerprint -> _Summary}
_store = {}

#: decoded-program object -> {segment fingerprint -> _Recording}.
#: In-flight recordings.  The batched kernel's lanes run in lockstep
#: with a stable lane order, so the first lane to open a segment (the
#: leader) replays and records each entry strictly before its sibling
#: lanes reach the same entry — siblings attach as *followers* and
#: validate against the growing recording instead of re-executing,
#: settling from the committed summary once the leader closes cleanly.
_inflight = {}


def memo_enabled():
    return os.environ.get("REPRO_NO_SEGMEMO", "") in ("", "0")


def clear():
    """Drop every recorded summary (test isolation)."""
    _store.clear()
    _inflight.clear()


def stats():
    """Summary counts per cached program (observability/tests)."""
    return {"programs": len(_store),
            "summaries": sum(len(t) for t in _store.values())}


class _Summary:
    """Everything a validated repeat needs to stand in for a replay."""

    __slots__ = (
        "n_instrs", "positions", "recs", "complete_rel", "is_load",
        "final_int_regs", "final_fp_regs", "final_csrs", "final_pc",
        "time_rel", "busy_rel", "div_final_rel", "fpu_final_rel",
        "touches", "same_line_hits", "final_line")


class _Recording:
    """In-flight capture of one segment's first (clean) replay."""

    __slots__ = ("key", "pcs", "positions", "recs", "complete_rel",
                 "is_load", "start", "entry_line", "div0", "fpu0",
                 "busy0", "misses0", "summary", "abandoned")

    def __init__(self, key, start, entry_line, pipeline):
        self.key = key
        self.summary = None
        self.abandoned = False
        self.pcs = []
        self.positions = []
        self.recs = []
        self.complete_rel = []
        self.is_load = []
        self.start = start
        self.entry_line = entry_line
        self.div0 = pipeline._div_free
        self.fpu0 = pipeline._fpu_free
        self.busy0 = pipeline.busy_cycles
        self.misses0 = pipeline.icache.misses


def _pipeline_key(pipeline):
    key = getattr(pipeline, "_memo_cfg_key", None)
    if key is None:
        icache = pipeline.icache
        key = (pipeline.ratio, pipeline._miss_penalty, pipeline._div_busy,
               pipeline._fdiv_busy, pipeline._fp_lat, pipeline._fp_occ,
               pipeline._mul_lat, pipeline._load_data_lat,
               pipeline._branch_pen, icache._offset_bits,
               icache.num_sets, icache._ways)
        pipeline._memo_cfg_key = key
    return key


def _segment_key(run):
    srcp = run.segment.srcp
    # Everything the replay reads from the SRCP: a corrupted snapshot
    # fingerprints differently and simply misses (normal replay then
    # detects it through the log/ERCP comparison as always).
    return (srcp.pc, srcp.int_regs, srcp.fp_regs,
            tuple(sorted(srcp.csrs.items())),
            run.one_behind, run.pipeline._ic_line[0],
            _pipeline_key(run.pipeline))


def prepare(run):
    """Arm ``run`` with a memo hit, or a recording, if eligible."""
    pipeline = run.pipeline
    start = run.start_cycle
    if pipeline._div_free > start or pipeline._fpu_free > start:
        # Ambient unit-busy state can stall replay issue: neither a
        # hit (the rels assume no stall) nor a recording (the rels
        # would bake the stall in) is sound.
        return
    key = _segment_key(run)
    table = _store.get(run._decoded)
    summary = table.get(key) if table is not None else None
    if summary is not None:
        probe = pipeline.icache.probe
        for pc in summary.touches:
            if not probe(pc):
                return
        # Resident lines stay resident: a hit performs no fills, so
        # the probe above holds for the whole segment.
        run._memo = summary
        return
    infl = _inflight.get(run._decoded)
    if infl is not None:
        rec = infl.get(key)
        if rec is not None and not rec.abandoned:
            run._follow = rec
            # Incremental icache-residency verification state: the
            # leader's relative schedule assumes every fetch hits, so
            # the follower probes each line transition in the leader's
            # pc trace before trusting a consume time derived from it.
            run._follow_i = 0
            run._follow_line = pipeline._ic_line[0]
            return
    if run._memo_record:
        rec = _Recording(key, start, pipeline._ic_line[0], pipeline)
        run._rec = rec
        if infl is None:
            infl = _inflight[run._decoded] = {}
        infl[key] = rec


def abandon(run):
    """Drop ``run``'s in-flight recording (detection, late load bind,
    lane eviction, empty trailing segment).  Followers already attached
    to it fall back to real replay at their next advance."""
    rec = run._rec
    run._rec = None
    if rec is None:
        return
    rec.abandoned = True
    _unregister(run._decoded, rec)


def _unregister(decoded, rec):
    infl = _inflight.get(decoded)
    if infl is not None and infl.get(rec.key) is rec:
        del infl[rec.key]
        if not infl:
            del _inflight[decoded]


def follow_advance(run):
    """Advance a follower against its leader's in-flight recording.

    Validates entries exactly as :func:`memo_advance` does — the
    leader has always replayed at least as far as the follower is
    allowed to, because lanes advance in a fixed order within each
    lockstep commit — and settles from the committed summary once the
    leader closes.  Any leader misadventure (abandoned recording,
    missing summary at close, diverged entry) returns
    :data:`FALLBACK`.
    """
    rec = run._follow
    pipeline = run.pipeline
    probe = pipeline.icache.probe
    if rec.summary is not None:
        # Leader closed cleanly.  Probe the whole touch set (tail
        # lines included) before adopting the summary, exactly as a
        # store hit would have at prepare time.
        m = rec.summary
        for pc in m.touches:
            if not probe(pc):
                return FALLBACK
        run._follow = None
        run._memo = m
        return memo_advance(run)
    if rec.abandoned:
        return FALLBACK
    seg = run.segment
    if seg.closed:
        # Our segment settled before the leader's: boundaries diverged.
        return FALLBACK
    allowed = run._allowed_count
    entries = seg.entries
    deliveries = seg.entry_deliveries
    num_avail = len(entries)
    positions = rec.positions
    recs = rec.recs
    complete_rel = rec.complete_rel
    is_load = rec.is_load
    pcs = rec.pcs
    total = len(positions)
    start = run.start_cycle
    record_consumption = run.lsl.record_consumption
    shift = pipeline.icache._offset_bits
    i = run._follow_i
    cur = run._follow_line
    k = run.next_entry
    while k < total and k < num_avail and positions[k] < allowed:
        entry = entries[k]
        r = recs[k]
        if (entry.rkind is not r[0] or entry.addr != r[1]
                or entry.data != r[2] or entry.size != r[3]):
            return FALLBACK
        # The consume time below embeds the leader's issue schedule,
        # which assumed all-hit fetches: verify residency of every
        # line fetched up to and including this entry's instruction.
        limit = positions[k]
        while i <= limit:
            pc_i = pcs[i]
            line = pc_i >> shift
            if line != cur:
                if not probe(pc_i):
                    return FALLBACK
                cur = line
            i += 1
        run._follow_i = i
        run._follow_line = cur
        delivery = deliveries[k]
        complete = start + complete_rel[k]
        if is_load[k]:
            if delivery > complete:
                return FALLBACK
            consume = complete
        else:
            consume = complete if complete > delivery else delivery
        k += 1
        run.next_entry = k
        record_consumption(consume)
    return None


def memo_advance(run):
    """Advance a memo-hit run without executing.

    Returns the final verdict, ``None`` (waiting on the main thread,
    exactly where the replay loop would wait), or :data:`FALLBACK`
    when the recording cannot describe this segment.
    """
    m = run._memo
    seg = run.segment
    n_instrs = m.n_instrs
    if seg.closed:
        if seg.instr_count != n_instrs:
            return FALLBACK  # segment boundary diverged
    elif seg.instr_count > n_instrs:
        return FALLBACK  # ran past the recorded boundary while open
    allowed = run._allowed_count
    entries = seg.entries
    deliveries = seg.entry_deliveries
    num_avail = len(entries)
    positions = m.positions
    recs = m.recs
    complete_rel = m.complete_rel
    is_load = m.is_load
    total = len(positions)
    start = run.start_cycle
    record_consumption = run.lsl.record_consumption
    k = run.next_entry
    while k < total and positions[k] < allowed:
        if k >= num_avail:
            if seg.closed:
                return FALLBACK  # replay would detect log-exhausted
            break  # entry not produced yet; wait
        entry = entries[k]
        rec = recs[k]
        if (entry.rkind is not rec[0] or entry.addr != rec[1]
                or entry.data != rec[2] or entry.size != rec[3]):
            return FALLBACK  # corrupted (or diverging) record
        delivery = deliveries[k]
        complete = start + complete_rel[k]
        if is_load[k]:
            if delivery > complete:
                return FALLBACK  # late data bind would stall the replay
            consume = complete
        else:
            consume = complete if complete > delivery else delivery
        k += 1
        run.next_entry = k
        # Proven equal to what the replay would emit: safe to record
        # even though the segment may still fall back later.
        record_consumption(consume)
    if not seg.closed or allowed < n_instrs:
        return None
    if k != total or num_avail != total:
        return FALLBACK  # the main thread logged a different stream
    # The whole segment matches: apply the deferred pipeline state
    # exactly as the replay would have left it, then settle.
    pipeline = run.pipeline
    lookup = pipeline.icache.lookup
    for pc in m.touches:
        lookup(pc)
    pipeline.icache.hits += m.same_line_hits
    pipeline._ic_line[0] = m.final_line
    pipeline.time = start + m.time_rel
    pipeline.instructions_retired += n_instrs
    pipeline.busy_cycles += m.busy_rel
    if m.div_final_rel is not None:
        pipeline._div_free = start + m.div_final_rel
    if m.fpu_final_rel is not None:
        pipeline._fpu_free = start + m.fpu_final_rel
    run.executed = n_instrs
    return run.finish_from_memo(m)


def commit_recording(run):
    """Store a finished recording (called on clean verdicts only)."""
    rec = run._rec
    run._rec = None
    pipeline = run.pipeline
    icache = pipeline.icache
    if icache.misses != rec.misses0:
        # A fetch missed: line residency cannot be promised.
        rec.abandoned = True
        _unregister(run._decoded, rec)
        return
    state = run.state
    m = _Summary()
    m.n_instrs = run.executed
    m.positions = rec.positions
    m.recs = rec.recs
    m.complete_rel = rec.complete_rel
    m.is_load = rec.is_load
    m.final_int_regs = tuple(state.int_regs)
    m.final_fp_regs = tuple(state.fp_regs)
    m.final_csrs = dict(state.csrs)
    m.final_pc = state.pc
    start = rec.start
    m.time_rel = pipeline.time - start
    m.busy_rel = pipeline.busy_cycles - rec.busy0
    div = pipeline._div_free
    m.div_final_rel = div - start if div != rec.div0 else None
    fpu = pipeline._fpu_free
    m.fpu_final_rel = fpu - start if fpu != rec.fpu0 else None
    shift = icache._offset_bits
    cur = rec.entry_line
    touches = []
    same_hits = 0
    for pc in rec.pcs:
        line = pc >> shift
        if line == cur:
            same_hits += 1
        else:
            touches.append(pc)
            cur = line
    m.touches = touches
    m.same_line_hits = same_hits
    m.final_line = cur
    # Publish to followers first (they hold the recording object),
    # then retire it from the in-flight registry and the store.
    rec.summary = m
    _unregister(run._decoded, rec)
    table = _store.get(run._decoded)
    if table is None:
        if len(_store) >= _MAX_PROGRAMS:
            _store.pop(next(iter(_store)))
        table = {}
        _store[run._decoded] = table
    if len(table) >= _MAX_SUMMARIES:
        table.pop(next(iter(table)))
    table[rec.key] = m
