"""MEEK commit-stage controller.

This is the orchestration glue the paper distributes between the DEU's
control circuits, the F2 scheduler and the OS-reserved LSLs: it watches
every big-core commit through the commit hook, forwards run-time data
to the active segment's little core, triggers RCPs (LSL full /
instruction timeout / kernel trap), selectively broadcasts status data
to the ERCP and SRCP consumers, schedules segments onto free little
cores, and — crucially for the evaluation — converts resource
exhaustion into commit stalls attributed to the three Fig. 9
categories: data collecting, data forwarding, and little-core
availability.
"""

import enum

from repro.bigcore.deu import DataExtractionUnit
from repro.common.errors import SimulationError
from repro.core.checker import CheckerRun
from repro.core.lsl import LoadStoreLog
from repro.core.segments import Segment, SegmentEndReason
from repro.fabric.dcbuffer import DcBufferModel
from repro.fabric.packets import Packet, PacketKind
from repro.perf.decode import slow_kernel_enabled

#: Inline budget meaning "never consult the controller" (checking
#: disabled): larger than any possible committed-instruction count.
_HOT_UNBOUNDED = 1 << 62


class StallReason(enum.Enum):
    COLLECTING = "data_collecting"
    FORWARDING = "data_forwarding"
    LITTLE_CORE = "little_core"


class MeekController:
    """Per-run MEEK orchestration state."""

    def __init__(self, config, program, state, fabric, pipelines, lsls=None,
                 injector=None):
        self.config = config
        self.program = program
        self.state = state
        self.fabric = fabric
        self.pipelines = pipelines
        self.num_cores = len(pipelines)
        self.lsls = lsls if lsls is not None else [
            LoadStoreLog(config.little_core.lsl, core_id=i)
            for i in range(self.num_cores)]
        self.injector = injector
        self.deu = DataExtractionUnit()
        self.deu.set_enabled(config.checking_enabled)
        width = config.big_core.commit_width
        self.dc_buffers = [
            DcBufferModel(config.fabric.status_fifo_depth,
                          config.fabric.runtime_fifo_depth,
                          name=f"dcbuf{i}")
            for i in range(width)]
        self._num_buffers = len(self.dc_buffers)
        # getattr: tests drive the controller with duck-typed injectors
        # that predate the dcbuf/fabric targets.
        if getattr(injector, "wants_dcbuf", False):
            for buffer in self.dc_buffers:
                buffer.fault_hook = self._dcbuf_fault
        if getattr(injector, "wants_fabric", False):
            fabric.fault_hook = self._fabric_fault
        self.segments = []
        self.active = None
        self.checkers = {}          # seg_id -> CheckerRun
        self.core_free = [0] * self.num_cores
        self.stall_cycles = {reason: 0 for reason in StallReason}
        self.detections = []        # (seg_id, cycle, reason)
        self.verdicts = []
        self._rcp_counter = 0
        self._next_core = 0
        self._pending_srcp = None   # (snapshot, delivery_cycle)
        self._timeout = config.little_core.lsl.instruction_timeout
        self._initialized = False
        # Fast kernel: batch checker replay.  The checker's progress is
        # only observable to the big core through LSL consumption times
        # (the credit-full check below) and the close-time verdict, and
        # neither depends on *when* advance() runs — the pipeline model
        # is driven by delivery times, not wall order.  So the fast
        # kernel advances only at log-producing commits and at segment
        # close, replaying whole runs of ALU work per call; the slow
        # kernel keeps the naive advance-every-commit loop.
        self._eager_advance = slow_kernel_enabled()
        # Hook-path elimination (fast kernel): the fused steppers share
        # this cell — ``[instr_count, close_budget]`` — and absorb
        # *dormant* commits (nothing to log, cannot trap) by bumping
        # ``_hot[0]`` inline while it stays below ``_hot[1]``, entering
        # fast_commit only for log-producing commits and segment
        # open/close.  fast_commit re-syncs ``seg.instr_count`` from
        # the cell on entry and republishes the budget on exit; while
        # no segment is active the budget is 0, so every commit reaches
        # the controller (which opens the segment — or raises if
        # initialize() was never called).
        self._hot = [0, 0]

    # -- lifecycle ---------------------------------------------------------

    def initialize(self, cycle=0):
        """Take the initial RCP (SRCP of segment 0) and forward it."""
        if not self.deu.enabled:
            # With checking off the hook is pure overhead; give the
            # inline path an unbounded budget so no commit ever pays
            # the controller call.
            self._hot[1] = _HOT_UNBOUNDED
            self._initialized = True
            return
        snapshot = self.deu.extract_status(self.state, self._rcp_counter,
                                           seg_id=0, next_pc=self.state.pc)
        self._rcp_counter += 1
        if self.injector is not None:
            self.injector.maybe_inject_status(snapshot, cycle, seg_id=0)
        packet = Packet(PacketKind.STATUS, snapshot, seg_id=0,
                        created_cycle=cycle, dests=(self._next_core,))
        report = self.fabric.send(packet, cycle)
        self._pending_srcp = (snapshot,
                              report.delivery_times[self._next_core])
        self._initialized = True

    # -- the commit hook (DEU observation channel) ---------------------------

    def commit_hook(self, event):
        """Observe one commit; return its (possibly stalled) cycle.

        A thin adapter: classifies the commit through the DEU and
        delegates to :meth:`fast_commit`, so the classic (slow-kernel /
        custom-hook) path and the JIT path share one implementation of
        the commit protocol.
        """
        result = event.result
        record = self.deu.classify(result)
        if record is None:
            rkind, addr, data, size = None, 0, 0, 0
        else:
            rkind, addr, data, size = record
        return self.fast_commit(event.index, event.pc, event.commit_cycle,
                                event.commit_slot, result.trap, rkind,
                                addr, data, size)

    def fast_commit(self, index, pc, t, slot, trap, rkind, addr, data, size,
                    prebuilt=None):
        """The commit protocol, on scalar commit facts.

        The fused big-core steppers (:mod:`repro.perf.jit`) call this
        directly, skipping the per-instruction CommitEvent/ExecResult;
        :meth:`commit_hook` adapts the classic event interface onto it.
        ``rkind`` is the RuntimeKind of a load/store/CSR commit or
        ``None``.
        """
        if not self._initialized:
            raise SimulationError("controller used before initialize()")
        if not self.deu.enabled:
            return t
        hot = self._hot
        if self.active is None:
            t = self._open_segment(t, pc)
            seg = self.active
        else:
            seg = self.active
            if hot[0] > seg.instr_count:
                # Commits the inline path absorbed since the last call.
                seg.instr_count = hot[0]

        if rkind is not None:
            if prebuilt is not None:
                entry = self.deu.adopt_runtime(prebuilt)
            else:
                entry = self.deu.record_runtime(rkind, addr, data, size)
            if self.injector is not None:
                # Unconditional call: the injector's own segment-gap
                # check subsumes the old ``not seg.injected`` gate
                # without extra RNG draws, and permanent (stuck-at)
                # lines must see every forwarded record.
                record = self.injector.maybe_inject_runtime(entry, t,
                                                            seg.seg_id)
                if record is not None:
                    seg.injected = True
            accept_times, delivery = self.fabric.send_runtime(
                seg.assigned_core, t)
            buffer = self.dc_buffers[slot % self._num_buffers]
            stall_until = buffer.push("runtime", accept_times, t,
                                      payload=entry)
            if stall_until > t:
                self.stall_cycles[StallReason.FORWARDING] += stall_until - t
                t = stall_until
            seg.add_entry(entry, delivery)
            self.lsls[seg.assigned_core].record_delivery(delivery)
            logged = True
        else:
            logged = False

        seg.instr_count += 1
        if logged or self._eager_advance:
            self.checkers[seg.seg_id].advance()

        reason = None
        if logged and self._lsl_credit_full(seg, t):
            reason = SegmentEndReason.LSL_FULL
        elif seg.instr_count >= self._timeout:
            reason = SegmentEndReason.TIMEOUT
        elif trap is not None:
            reason = SegmentEndReason.KERNEL_TRAP
        if reason is not None:
            t = self._close_segment(t, reason, slot)
        if self.active is None:
            hot[0] = 0
            hot[1] = 0
        else:
            hot[0] = seg.instr_count
            hot[1] = self._timeout
        return t

    def finalize(self, end_cycle):
        """Close the trailing partial segment and drain all checkers.

        Returns the cycle at which the last checker finished.
        """
        if not self.deu.enabled:
            return end_cycle
        if (self.active is not None
                and self._hot[0] > self.active.instr_count):
            # Trailing commits the inline fast path absorbed.
            self.active.instr_count = self._hot[0]
        if self.active is not None and self.active.instr_count > 0:
            self._close_segment(end_cycle, SegmentEndReason.PROGRAM_END, 0)
        elif self.active is not None:
            # An empty segment needs no verification.
            checker = self.checkers.get(self.active.seg_id)
            if checker is not None:
                checker.abandon_recording()
            self.active = None
        drain = max(self.core_free) if self.core_free else end_cycle
        return max(drain, end_cycle)

    # -- internals -------------------------------------------------------------

    def _dcbuf_fault(self, channel, payload, now):
        """DC-Buffer fault hook: corrupt a buffered run-time record."""
        if channel == "runtime" and self.active is not None:
            record = self.injector.maybe_inject_dcbuf(
                payload, now, self.active.seg_id)
            if record is not None:
                self.active.injected = True

    def _fabric_fault(self, packet, now):
        """Fabric fault hook: corrupt an in-flight status payload."""
        record = self.injector.maybe_inject_fabric(packet, now)
        if record is not None and self.active is not None:
            self.active.injected = True

    def _lsl_credit_full(self, seg, now):
        """LSL-full RCP trigger, credit-based: entries sent minus
        entries the checker has consumed by ``now``."""
        lsl = self.lsls[seg.assigned_core]
        return lsl.outstanding(now) >= lsl.capacity

    def _open_segment(self, t, start_pc):
        core = self._next_core
        free = self.core_free[core]
        if free > t:
            self.stall_cycles[StallReason.LITTLE_CORE] += free - t
            t = free
        snapshot, delivery = self._pending_srcp
        seg = Segment(seg_id=len(self.segments), start_pc=start_pc,
                      srcp=snapshot, srcp_delivery=delivery,
                      assigned_core=core, start_cycle=t)
        self.segments.append(seg)
        self.active = seg
        lsl = self.lsls[core]
        lsl.bind_segment()
        checker = CheckerRun(
            seg, self.program, self.pipelines[core], lsl,
            clock_ratio=2,
            one_instruction_behind=self.config.one_instruction_behind,
            # Segment boundaries drift once a detection has perturbed
            # checker timing, so post-detection segments key uniquely
            # per trial: recording them would only pollute the memo
            # store.  (Replaying *from* the store stays allowed.)
            memo_record=not self.detections)
        self.checkers[seg.seg_id] = checker
        return t

    def _choose_next_core(self, closing_core):
        if self.num_cores == 1:
            return 0
        candidates = [c for c in range(self.num_cores) if c != closing_core]
        return min(candidates, key=lambda c: (self.core_free[c], c))

    def _close_segment(self, t, reason, commit_slot):
        seg = self.active
        # Data collecting: the DEU preempts the PRF read ports for a
        # few cycles to capture the register files (Fig. 3c).
        extraction = self.deu.status_extraction_cycles
        self.stall_cycles[StallReason.COLLECTING] += extraction
        t += extraction

        snapshot = self.deu.extract_status(self.state, self._rcp_counter,
                                           seg_id=seg.seg_id + 1,
                                           next_pc=self.state.pc)
        self._rcp_counter += 1
        if self.injector is not None:
            record = self.injector.maybe_inject_status(snapshot, t,
                                                       seg.seg_id)
            if record is not None:
                seg.injected = True

        next_core = self._choose_next_core(seg.assigned_core)
        dests = (seg.assigned_core, next_core)
        if next_core == seg.assigned_core:
            dests = (seg.assigned_core,)
        packet = Packet(PacketKind.STATUS, snapshot, seg.seg_id, t,
                        dests=dests)
        report = self.fabric.send(packet, t)
        buffer = self.dc_buffers[commit_slot % self._num_buffers]
        stall_until = buffer.push("status", report.accept_times, t)
        if stall_until > t:
            self.stall_cycles[StallReason.FORWARDING] += stall_until - t
            t = stall_until

        seg.close(t, reason, ercp=snapshot,
                  ercp_delivery=report.delivery_times[seg.assigned_core],
                  end_pc=self.state.pc)
        checker = self.checkers[seg.seg_id]
        verdict = checker.advance()
        if verdict is None:
            raise SimulationError(
                f"checker for segment {seg.seg_id} did not finish at close")
        self.verdicts.append(verdict)
        self.core_free[seg.assigned_core] = verdict.finish_cycle
        if not verdict.ok:
            self.detections.append((seg.seg_id, verdict.detect_cycle,
                                    verdict.reason))

        self._pending_srcp = (snapshot, report.delivery_times[next_core])
        self._next_core = next_core
        self.active = None
        return t

    # -- reporting --------------------------------------------------------------

    def total_stall_cycles(self):
        return sum(self.stall_cycles.values())

    def stats(self):
        closed = [s for s in self.segments if s.closed]
        return {
            "segments": len(self.segments),
            "rcp_count": self._rcp_counter,
            "stall_cycles": {r.value: c for r, c in self.stall_cycles.items()},
            "end_reasons": {
                reason.value: sum(1 for s in closed if s.end_reason is reason)
                for reason in SegmentEndReason},
            "mean_segment_instrs": (
                sum(s.instr_count for s in closed) / len(closed)
                if closed else 0.0),
            "deu": self.deu.stats(),
            "fabric": self.fabric.stats(),
            "lsl_peak_occupancy": max(
                (lsl.peak_occupancy for lsl in self.lsls), default=0),
        }
