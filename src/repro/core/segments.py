"""Checkpoint segments.

An application thread is divided into discrete segments by Register
Checkpoints (Fig. 1).  A segment owns the SRCP that starts it, the
ordered run-time records produced while it was the active segment, and
the ERCP that closes it.  Three things close a segment (Sec. II):
the target LSL filling up, the instruction timeout, or a kernel trap.
"""

import enum


class SegmentEndReason(enum.Enum):
    LSL_FULL = "lsl_full"
    TIMEOUT = "timeout"
    KERNEL_TRAP = "kernel_trap"
    PROGRAM_END = "program_end"


class Segment:
    """One checkpointed slice of the application thread."""

    __slots__ = ("seg_id", "start_pc", "srcp", "srcp_delivery",
                 "assigned_core", "entries", "entry_deliveries",
                 "instr_count", "start_cycle", "close_cycle", "end_reason",
                 "ercp", "ercp_delivery", "closed", "end_pc", "injected")

    def __init__(self, seg_id, start_pc, srcp, srcp_delivery, assigned_core,
                 start_cycle):
        self.seg_id = seg_id
        self.start_pc = start_pc
        self.srcp = srcp
        self.srcp_delivery = srcp_delivery
        self.assigned_core = assigned_core
        self.entries = []
        self.entry_deliveries = []
        self.instr_count = 0
        self.start_cycle = start_cycle
        self.close_cycle = None
        self.end_reason = None
        self.ercp = None
        self.ercp_delivery = None
        self.closed = False
        self.end_pc = None
        self.injected = False

    def add_entry(self, entry, delivery_cycle):
        """Record a forwarded run-time entry and its LSL arrival time."""
        self.entries.append(entry)
        self.entry_deliveries.append(delivery_cycle)

    def close(self, cycle, reason, ercp, ercp_delivery, end_pc):
        self.closed = True
        self.close_cycle = cycle
        self.end_reason = reason
        self.ercp = ercp
        self.ercp_delivery = ercp_delivery
        self.end_pc = end_pc

    @property
    def num_entries(self):
        return len(self.entries)

    def __repr__(self):
        return (f"Segment({self.seg_id}, core={self.assigned_core}, "
                f"instrs={self.instr_count}, entries={self.num_entries}, "
                f"end={self.end_reason.value if self.end_reason else None})")
