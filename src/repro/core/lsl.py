"""Load-Store Log occupancy model.

The LSL is a dual-way FIFO bank in each little core (Sec. III-C) that
buffers forwarded run-time records and stands in for the D-cache during
replay.  Because F2 forwards records immediately on collection and the
checker consumes them while the segment is still running (footnote 4),
occupancy at any instant is::

    delivered(<= t)  -  consumed(<= t)

The controller asks :meth:`occupancy` at every potential push to decide
whether the log is full — the LSL-full RCP trigger.
"""

import bisect

from repro.common.errors import SimulationError


class LoadStoreLog:
    """Occupancy bookkeeping for one little core's LSL."""

    def __init__(self, config, core_id):
        self.config = config
        self.core_id = core_id
        self.capacity = config.entries
        self._delivery_times = []
        self._consume_times = []
        self.total_entries = 0
        self.peak_occupancy = 0

    def bind_segment(self):
        """Reset per-segment bookkeeping (the log is reserved for a
        single checker thread at a time, Sec. IV-B)."""
        self._delivery_times = []
        self._consume_times = []

    def record_delivery(self, cycle):
        """A forwarded entry arrives at ``cycle``."""
        if self._delivery_times and cycle < self._delivery_times[-1]:
            # Fabric preserves ordering; deliveries are monotonic.
            cycle = self._delivery_times[-1]
        self._delivery_times.append(cycle)
        self.total_entries += 1

    def record_consumption(self, cycle):
        """The checker consumed the next entry at ``cycle``."""
        if len(self._consume_times) >= len(self._delivery_times):
            raise SimulationError(
                f"LSL {self.core_id}: consumed more entries than delivered")
        if self._consume_times and cycle < self._consume_times[-1]:
            cycle = self._consume_times[-1]
        self._consume_times.append(cycle)

    def occupancy(self, now):
        """Unconsumed entries resident in the log at cycle ``now``."""
        delivered = bisect.bisect_right(self._delivery_times, now)
        consumed = bisect.bisect_right(self._consume_times, now)
        occupancy = delivered - consumed
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        return occupancy

    def would_overflow(self, now):
        """Whether accepting one more entry at ``now`` exceeds capacity."""
        return self.occupancy(now) >= self.capacity

    def outstanding(self, now):
        """Credit-based occupancy: every entry *sent* (even if still in
        flight) counts against capacity until the checker has consumed
        it by cycle ``now``.  This is the big core's flow-control view,
        used for the LSL-full RCP trigger."""
        consumed = bisect.bisect_right(self._consume_times, now)
        outstanding = len(self._delivery_times) - consumed
        if outstanding > self.peak_occupancy:
            self.peak_occupancy = outstanding
        return outstanding

    def stats(self):
        return {
            "core": self.core_id,
            "capacity": self.capacity,
            "total_entries": self.total_entries,
            "peak_occupancy": self.peak_occupancy,
        }
