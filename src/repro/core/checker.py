"""Checker-thread re-execution.

A :class:`CheckerRun` genuinely re-executes one segment on a little
core: the architectural state is reset from the (possibly corrupted)
SRCP packet, every load returns data from the Load-Store Log, every
store and CSR operation is compared entry-by-entry against the log,
and the ERCP closes with a full register-file comparison — so error
detection in this model happens by the same mechanism as in the
hardware, not by scripted outcomes.

The run is *incremental*: the controller calls :meth:`advance` each
time new run-time entries arrive or the segment closes, and the checker
executes as far as the log (and the one-instruction-behind rule of
Fig. 5b) allows.  All timestamps come from the little core's pipeline
model, in big-core cycles.
"""

from repro.common.bitops import mask
from repro.common.errors import SimulationError
from repro.core import segmemo
from repro.fabric.packets import RuntimeKind
from repro.isa.instructions import InstrClass
from repro.isa.semantics import execute
from repro.isa.state import ArchState, Memory
from repro.perf.decode import decode_program, slow_kernel_enabled


class SegmentVerdict:
    """Outcome of verifying one segment."""

    __slots__ = ("ok", "detect_cycle", "reason", "finish_cycle", "seg_id")

    def __init__(self, ok, finish_cycle, seg_id, detect_cycle=None,
                 reason=None):
        self.ok = ok
        self.finish_cycle = finish_cycle
        self.seg_id = seg_id
        self.detect_cycle = detect_cycle
        self.reason = reason

    def __repr__(self):
        if self.ok:
            return f"SegmentVerdict(seg={self.seg_id}, ok @ {self.finish_cycle})"
        return (f"SegmentVerdict(seg={self.seg_id}, ERROR {self.reason!r} "
                f"@ {self.detect_cycle})")


class _LslPort:
    """Memory interface that serves loads from, and compares stores
    against, the current LSL entry (Fig. 4b)."""

    __slots__ = ("entry", "mismatch")

    def __init__(self):
        self.entry = None
        self.mismatch = None

    def load(self, addr, size, signed=False):
        entry = self.entry
        if entry.rkind is not RuntimeKind.LOAD:
            self.mismatch = "lsl-kind-mismatch-on-load"
        elif entry.addr != addr or entry.size != size:
            self.mismatch = "load-address-mismatch"
        # Replay proceeds with the logged data either way; a detected
        # mismatch aborts the segment at this instruction.
        return entry.data

    def store(self, addr, value, size):
        entry = self.entry
        if entry.rkind is not RuntimeKind.STORE:
            self.mismatch = "lsl-kind-mismatch-on-store"
        elif entry.addr != addr or entry.size != size:
            self.mismatch = "store-address-mismatch"
        elif (value & mask(size * 8)) != entry.data:
            self.mismatch = "store-data-mismatch"


class CheckerRun:
    """Re-execution of one segment on one little core."""

    #: Little-core cycles of checker-loop runtime around a segment
    #: (Algorithm 2: l.record, busy-wait exit, l.jal redirect).
    STARTUP_CYCLES = 6

    #: Architectural registers applied/compared per little-core cycle.
    REGISTER_PORTS = 8

    def __init__(self, segment, program, pipeline, lsl, clock_ratio=2,
                 one_instruction_behind=True, memo_record=True):
        self.segment = segment
        self.program = program
        self.pipeline = pipeline
        self.lsl = lsl
        self.ratio = clock_ratio
        self.one_behind = one_instruction_behind
        self.verdict = None
        self.executed = 0
        self.next_entry = 0
        self._port = _LslPort()
        # Replay through the same decoded closure table as the big
        # core; the naive kernel re-decodes per instruction instead.
        if slow_kernel_enabled():
            self._decoded = None
            self._replay = None
        else:
            from repro.perf.jit import build_replay_steps
            self._decoded = decode_program(program)
            # Fused replay+timing closures, cached on the pipeline.
            self._replay = build_replay_steps(self._decoded, pipeline)

        srcp = segment.srcp
        # The checker's state comes from the forwarded SRCP — including
        # its PC.  A corrupted SRCP therefore really does start replay
        # in the wrong place, and is caught by log/ERCP comparison.
        self.state = ArchState(memory=Memory(), pc=srcp.pc)
        self.state.apply_register_snapshot(srcp.int_regs, srcp.fp_regs)
        self.state.csrs = dict(srcp.csrs)

        apply_cycles = -(-64 // self.REGISTER_PORTS)
        start = max(segment.srcp_delivery, pipeline.time)
        start += (self.STARTUP_CYCLES + apply_cycles) * clock_ratio
        pipeline.reset_to(start)
        self.start_cycle = start

        # Segment memoization (repro.core.segmemo): a previously seen
        # (program, SRCP, pipeline-config) segment replays from its
        # recorded summary; otherwise this run may record one.
        self._memo = None
        self._rec = None
        self._follow = None
        self._memo_record = memo_record
        self._skip_consume = 0
        if self._decoded is not None and segmemo.memo_enabled():
            segmemo.prepare(self)

    # -- helpers ---------------------------------------------------------

    @property
    def _allowed_count(self):
        """How many instructions the checker may have executed.

        While the segment is open the checker stays one instruction
        behind the main thread (the Fig. 5b deadlock fix); once closed
        it runs to the ERCP.
        """
        count = self.segment.instr_count
        if self.one_behind and not self.segment.closed:
            count -= 1
        return count

    def _detect(self, cycle, reason):
        if self._rec is not None:
            segmemo.abandon(self)
        self.verdict = SegmentVerdict(ok=False, finish_cycle=cycle,
                                      seg_id=self.segment.seg_id,
                                      detect_cycle=cycle, reason=reason)
        return self.verdict

    def abandon_recording(self):
        """Retire an in-flight memo recording without a verdict (lane
        eviction, empty trailing segment at program end)."""
        if self._rec is not None:
            segmemo.abandon(self)

    @property
    def compare_cycles(self):
        """ERCP register-file comparison latency, big cycles."""
        return (-(-64 // self.REGISTER_PORTS) + 1) * self.ratio

    # -- main loop -------------------------------------------------------

    def advance(self):
        """Execute as far as the log allows.  Returns the verdict once
        the segment is fully verified (or an error detected), else
        ``None``."""
        if self.verdict is not None:
            return self.verdict
        if self._memo is not None or self._follow is not None:
            if self._follow is not None:
                outcome = segmemo.follow_advance(self)
            else:
                outcome = segmemo.memo_advance(self)
            if outcome is not segmemo.FALLBACK:
                return outcome
            # The recording cannot describe this segment (corrupted
            # entry, diverged boundary, late load bind, leader gone):
            # replay it for real from the segment start.  Nothing was
            # mutated except consumption times already proven equal,
            # which the re-execution below must emit-skip rather than
            # repeat.
            self._memo = None
            self._follow = None
            self._skip_consume = self.next_entry
            self.next_entry = 0
        seg = self.segment
        decoded = self._decoded
        state = self.state
        pipeline = self.pipeline
        port = self._port
        # The allowed count and the entry log are fixed for the whole
        # call (the controller mutates them only between calls), so the
        # loop bounds hoist out: one batched replay burst per call.
        allowed = self._allowed_count
        entries = seg.entries
        deliveries = seg.entry_deliveries
        num_entries = len(entries)
        record_consumption = self.lsl.record_consumption

        if decoded is not None:
            # Fast kernel: fused replay+timing closures, one call per
            # instruction, batched across the whole allowed prefix.
            replay = self._replay
            dec_entries = decoded.entries
            base = decoded.base
            n = len(dec_entries)
            rec = self._rec
            cls_load = InstrClass.LOAD
            while True:
                executed = self.executed
                if executed >= allowed:
                    if seg.closed and executed >= seg.instr_count:
                        return self._final_compare()
                    return None  # wait for the main thread
                pc = state.pc
                offset = pc - base
                if offset < 0 or offset & 3:
                    return self._detect(pipeline.time, "pc-misaligned")
                idx = offset >> 2
                if idx >= n:
                    return self._detect(pipeline.time, "pc-out-of-program")
                if dec_entries[idx].needs_entry:
                    next_entry = self.next_entry
                    if next_entry >= num_entries:
                        if seg.closed:
                            return self._detect(pipeline.time,
                                                "log-exhausted")
                        return None  # entry not produced yet
                    entry = entries[next_entry]
                    delivery = deliveries[next_entry]
                    self.next_entry = next_entry + 1
                    complete, mismatch = replay[idx](state, pc, entry,
                                                     delivery)
                    self.executed = executed + 1
                    consume = complete if complete > delivery else delivery
                    if self._skip_consume:
                        # Re-execution after a memo fallback: this
                        # consumption was already emitted (and proven
                        # equal) by the validated memo prefix.
                        self._skip_consume -= 1
                    else:
                        record_consumption(consume)
                    if mismatch is not None:
                        return self._detect(consume, mismatch)
                    if rec is not None:
                        is_load = dec_entries[idx].iclass is cls_load
                        if is_load and delivery >= complete:
                            # The logged data arrived late enough to
                            # bind this load's completion to delivery
                            # time: the relative schedule is no longer
                            # a pure function of the segment key.
                            segmemo.abandon(self)
                            rec = None
                        else:
                            rec.pcs.append(pc)
                            rec.positions.append(executed)
                            rec.recs.append((entry.rkind, entry.addr,
                                             entry.data, entry.size))
                            rec.complete_rel.append(complete - rec.start)
                            rec.is_load.append(is_load)
                else:
                    replay[idx](state, pc, None, None)
                    self.executed = executed + 1
                    if rec is not None:
                        rec.pcs.append(pc)

        cls_load = InstrClass.LOAD
        while True:
            if self.executed >= allowed:
                if seg.closed and self.executed >= seg.instr_count:
                    return self._final_compare()
                return None  # wait for the main thread

            # Fetch from the shared program image (naive kernel).
            try:
                instr = self.program.fetch(state.pc)
            except SimulationError:
                return self._detect(pipeline.time, "pc-misaligned")
            if instr is None:
                return self._detect(pipeline.time, "pc-out-of-program")
            iclass = instr.spec.iclass
            needs_entry = iclass in (InstrClass.LOAD, InstrClass.STORE,
                                     InstrClass.CSR)

            entry = None
            delivery = None
            if needs_entry:
                if self.next_entry >= num_entries:
                    if seg.closed:
                        return self._detect(pipeline.time, "log-exhausted")
                    return None  # entry not produced yet
                entry = entries[self.next_entry]
                delivery = deliveries[self.next_entry]
                self.next_entry += 1

            pc = state.pc
            port.entry = entry
            port.mismatch = None
            result = execute(instr, state,
                             mem_port=port if needs_entry else None)
            complete = pipeline.step(
                instr, pc, taken_branch=result.taken,
                load_data_available=(delivery
                                     if iclass is cls_load else None))
            self.executed += 1

            if needs_entry:
                consume = max(complete, delivery)
                record_consumption(consume)
                if iclass is InstrClass.CSR:
                    if entry.rkind is not RuntimeKind.CSR:
                        self._port.mismatch = "lsl-kind-mismatch-on-csr"
                    elif (entry.addr != result.csr_addr
                          or entry.data != result.rd_value):
                        self._port.mismatch = "csr-mismatch"
                if self._port.mismatch is not None:
                    return self._detect(consume, self._port.mismatch)

    def _final_compare(self):
        seg = self.segment
        when = max(self.pipeline.time, seg.ercp_delivery)
        when += self.compare_cycles
        drained = self.next_entry == len(seg.entries)
        matches = seg.ercp.matches(self.state.int_regs, self.state.fp_regs,
                                   self.state.csrs, self.state.pc)
        if matches and drained:
            self.verdict = SegmentVerdict(ok=True, finish_cycle=when,
                                          seg_id=seg.seg_id)
            if self._rec is not None:
                # Only clean segments are worth remembering (faulty
                # ones are detection-dependent one-offs), and only
                # clean ones are *safe* to remember: the recorded
                # finals then equal the committed ERCP.
                segmemo.commit_recording(self)
        else:
            reason = "ercp-register-mismatch" if drained else "log-not-drained"
            self.verdict = self._detect(when, reason)
        return self.verdict

    def finish_from_memo(self, summary):
        """Settle a fully memoized segment: the same final comparison
        as :meth:`_final_compare`, against the recorded architectural
        state (which equals what re-execution would have produced).
        The log is drained by construction of the memo walk."""
        seg = self.segment
        when = max(self.pipeline.time, seg.ercp_delivery)
        when += self.compare_cycles
        if seg.ercp.matches(summary.final_int_regs, summary.final_fp_regs,
                            summary.final_csrs, summary.final_pc):
            self.verdict = SegmentVerdict(ok=True, finish_cycle=when,
                                          seg_id=seg.seg_id)
            return self.verdict
        return self._detect(when, "ercp-register-mismatch")
