"""The full MEEK system: big core + little cores + fabric + controller.

:class:`MeekSystem` assembles everything from a
:class:`~repro.common.config.MeekConfig`, runs a program, and returns a
:class:`MeekRunResult` with the big-core timing, segment/stall/fault
statistics, and (for campaigns) detection-latency samples.  A matching
:func:`run_vanilla` executes the same program on an unmodified big core
— the denominator of every slowdown number in the paper.
"""

from repro.bigcore.core import BigCore
from repro.common.clock import Clock, ClockDomain
from repro.common.config import default_meek_config
from repro.core.controller import MeekController, StallReason
from repro.fabric.base import build_fabric
from repro.isa.state import ArchState
from repro.littlecore.msu import Mode, ModeSwitchUnit
from repro.littlecore.pipeline import LittleCorePipeline


class MeekRunResult:
    """Everything one MEEK execution produced."""

    def __init__(self, big_result, controller, drain_cycle, injector,
                 frequency_hz):
        self.big = big_result
        self.controller = controller
        self.drain_cycle = drain_cycle
        self.injector = injector
        self.frequency_hz = frequency_hz

    @property
    def cycles(self):
        """Big-core cycles to commit the whole program (the paper's
        slowdown metric measures the big core, not the drain)."""
        return self.big.cycles

    @property
    def instructions(self):
        return self.big.instructions

    @property
    def segments(self):
        return self.controller.segments

    @property
    def verdicts(self):
        return self.controller.verdicts

    @property
    def detections(self):
        return self.controller.detections

    @property
    def all_segments_verified(self):
        return all(v.ok for v in self.controller.verdicts)

    def stall_cycles(self, reason=None):
        if reason is None:
            return self.controller.total_stall_cycles()
        return self.controller.stall_cycles[reason]

    def cycles_to_ns(self, cycles):
        return cycles * 1e9 / self.frequency_hz

    def detection_latencies_ns(self):
        """Injection-to-detection latencies, in nanoseconds."""
        if self.injector is None:
            return []
        return [self.cycles_to_ns(c)
                for c in self.injector.latencies_cycles()]

    def stats(self):
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.big.ipc,
            "drain_cycle": self.drain_cycle,
            # Fault outcomes ride along (zero without an injector) so
            # campaign rows carry them without reaching into the
            # injector object.
            "injections": (len(self.injector.injections)
                           if self.injector is not None else 0),
            "detected": (self.injector.detected_count
                         if self.injector is not None else 0),
            "controller": self.controller.stats(),
        }

    def __repr__(self):
        return (f"MeekRunResult({self.instructions} instrs, "
                f"{self.cycles} cycles, {len(self.segments)} segments)")


class MeekSystem:
    """One MEEK SoC instance.

    Build a fresh system per run: caches, predictor and fabric state are
    warm run state, exactly as a FireSim trial boots a fresh image.
    """

    def __init__(self, config=None, injector=None):
        self.config = config if config is not None else default_meek_config()
        self.injector = injector
        big = ClockDomain("big", self.config.big_core.frequency_hz)
        little = ClockDomain("little", self.config.little_core.frequency_hz)
        self.clock = Clock(big, [little])
        ratio = self.clock.ratio("little")
        self.big_core = BigCore(self.config.big_core)
        self.pipelines = [
            LittleCorePipeline(self.config.little_core, clock_ratio=ratio)
            for _ in range(self.config.num_little_cores)]
        self.msus = [ModeSwitchUnit(core_id=i)
                     for i in range(self.config.num_little_cores)]
        self.fabric = build_fabric(self.config.fabric,
                                   self.config.num_little_cores,
                                   clock_ratio=ratio)
        self.controller = None

    def hook_little_cores(self, big_core_id=0):
        """Model Algorithm 1's ``b.hook`` loop: reserve every little
        core for this big core and put it in check mode."""
        for msu in self.msus:
            msu.hook(big_core_id)
            msu.set_mode(Mode.CHECK)

    def attach(self, program, state, cycle=0):
        """Hook the little cores and stand up an initialized controller
        observing ``state``.

        The front half of :meth:`run`, split out so the batched kernel
        (:mod:`repro.perf.batch`) can assemble per-lane systems around
        a shared architectural state through the exact same path.
        """
        self.hook_little_cores()
        self.controller = MeekController(
            self.config, program, state, self.fabric, self.pipelines,
            injector=self.injector)
        self.controller.initialize(cycle=cycle)
        return self.controller

    def finish(self, big_result):
        """Drain the controller and package a :class:`MeekRunResult` —
        the back half of :meth:`run`."""
        drain = self.controller.finalize(big_result.cycles)
        if self.injector is not None:
            self.injector.resolve_detections(self.controller.detections)
        return MeekRunResult(big_result, self.controller, drain,
                             self.injector,
                             self.config.big_core.frequency_hz)

    def run(self, program, max_instructions=None):
        """Execute ``program`` under MEEK checking."""
        state = ArchState(pc=program.entry_pc)
        program.data.apply(state.memory)
        self.attach(program, state)
        big_result = self.big_core.run(
            program, max_instructions=max_instructions,
            commit_hook=self.controller.commit_hook, initial_state=state)
        return self.finish(big_result)


def run_vanilla(program, big_config=None, max_instructions=None):
    """Run ``program`` on an unmodified big core (no MEEK attached)."""
    core = BigCore(big_config)
    return core.run(program, max_instructions=max_instructions)


def slowdown(meek_result, vanilla_result):
    """The paper's slowdown metric: MEEK cycles over vanilla cycles."""
    if vanilla_result.cycles == 0:
        return 1.0
    return meek_result.cycles / vanilla_result.cycles
