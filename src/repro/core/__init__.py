"""MEEK's primary contribution: heterogeneous parallel error detection.

This package ties the substrates together:

* :class:`~repro.core.segments.Segment` — one checkpointed slice of the
  application thread, between a start RCP and an end RCP;
* :class:`~repro.core.lsl.LoadStoreLog` — the per-little-core log that
  replaces the D-cache during replay;
* :class:`~repro.core.checker.CheckerRun` — genuine re-execution of a
  segment on a little core, comparing loads/stores/CSRs against the log
  and the register files at the ERCP;
* :class:`~repro.core.controller.MeekController` — the commit-stage
  orchestration: RCP triggers, segment-to-core scheduling, DC-Buffer
  backpressure, and stall attribution (Fig. 9's decomposition);
* :class:`~repro.core.faults.FaultInjector` — single-bit upsets in
  forwarded data, the paper's Sec. V-B campaign;
* :class:`~repro.core.system.MeekSystem` — the full SoC: one big core,
  N little cores, a forwarding fabric, and the controller.
"""

from repro.core.checker import CheckerRun, SegmentVerdict
from repro.core.controller import MeekController, StallReason
from repro.core.faults import FaultInjector, FaultTarget, InjectionRecord
from repro.core.lsl import LoadStoreLog
from repro.core.segments import Segment, SegmentEndReason
from repro.core.system import MeekRunResult, MeekSystem

__all__ = [
    "CheckerRun",
    "FaultInjector",
    "FaultTarget",
    "InjectionRecord",
    "LoadStoreLog",
    "MeekController",
    "MeekRunResult",
    "MeekSystem",
    "Segment",
    "SegmentEndReason",
    "SegmentVerdict",
    "StallReason",
]
