"""Fault injection into forwarded data (Sec. V-B) — fault-model layer.

The paper injects errors "in the forwarded data from the F2 connected
to the big core, e.g., data and address of memory operations and
architectural register data, simulating the hardware faults without
disrupting the big core's normal execution".  This module does that —
and generalizes it into a pluggable **fault model** layer:

* ``single`` — independent single-bit upsets (the paper's model);
* ``burst:width=K`` — one multi-bit burst of K adjacent bits, the
  signature of a high-energy particle strike across neighbouring
  cells;
* ``correlated:span=N`` — a spatially-correlated upset: the *same*
  bit line flipped across N adjacent words of one record (both the
  address and data of a run-time record, or N adjacent registers of a
  status checkpoint), modelling a shared driver/line fault;
* ``stuckat[:bit=B,value=V]`` — a **permanent** stuck-at line: once
  armed, the chosen bit of the chosen structure is forced to V on
  every subsequent forwarded packet for the rest of the run.

Faults land on the *transmitted copies* of run-time records and status
snapshots — or, through the :class:`~repro.fabric.dcbuffer.DcBufferModel`
and :class:`~repro.fabric.base.ForwardingFabric` fault hooks, on
payloads traversing the DC-Buffer and fabric paths — leaving the big
core's architectural state untouched.  Detection then happens (or not)
through the normal checking machinery, and the campaign records
injection-to-detection latency per structure and per model (see
:mod:`repro.analysis.coverage`).

Determinism contract: every model draws from the injector's single
:class:`~repro.common.prng.DeterministicRng` stream in a fixed order,
so for a given seed the :class:`InjectionRecord` stream is identical
across kernels, shards, and serve/serial execution.  The default
``single`` model reproduces the historical draw sequence bit-for-bit.
"""

import enum

from repro.common.bitops import flip_bit
from repro.common.errors import ConfigError


class FaultTarget(enum.Enum):
    RUNTIME_ADDR = "runtime.addr"
    RUNTIME_DATA = "runtime.data"
    STATUS_INT_REG = "status.int_reg"
    STATUS_FP_REG = "status.fp_reg"
    STATUS_PC = "status.pc"
    #: Corruption of a run-time record while it waits in the DC-Buffer.
    DCBUF_RUNTIME = "dcbuf.runtime"
    #: Corruption of a status checkpoint traversing the fabric.
    FABRIC_STATUS = "fabric.status"


#: Campaign default: memory-operation faults dominate (they are the
#: bulk of forwarded traffic), with register-checkpoint faults mixed in.
#: The DC-Buffer/fabric targets are opt-in (``--fault-targets``) so the
#: historical injection streams stay bit-identical.
DEFAULT_TARGET_WEIGHTS = {
    FaultTarget.RUNTIME_ADDR: 3,
    FaultTarget.RUNTIME_DATA: 3,
    FaultTarget.STATUS_INT_REG: 2,
    FaultTarget.STATUS_FP_REG: 1,
    FaultTarget.STATUS_PC: 1,
}

#: Weights used when a target is named explicitly or through the
#: ``dcbuf``/``fabric``/``all`` groups.
ALL_TARGET_WEIGHTS = dict(DEFAULT_TARGET_WEIGHTS)
ALL_TARGET_WEIGHTS[FaultTarget.DCBUF_RUNTIME] = 2
ALL_TARGET_WEIGHTS[FaultTarget.FABRIC_STATUS] = 2

_TARGET_GROUPS = {
    "runtime": (FaultTarget.RUNTIME_ADDR, FaultTarget.RUNTIME_DATA),
    "status": (FaultTarget.STATUS_INT_REG, FaultTarget.STATUS_FP_REG,
               FaultTarget.STATUS_PC),
    "dcbuf": (FaultTarget.DCBUF_RUNTIME,),
    "fabric": (FaultTarget.FABRIC_STATUS,),
}

_RUNTIME_TARGETS = (FaultTarget.RUNTIME_ADDR, FaultTarget.RUNTIME_DATA)
_STATUS_TARGETS = (FaultTarget.STATUS_INT_REG, FaultTarget.STATUS_FP_REG,
                   FaultTarget.STATUS_PC)

#: The forwarded PC is a 32-bit instruction address; flips land inside
#: bits [2, 31] so the corrupted value stays a plausible PC.
PC_BIT_LO, PC_BIT_HI = 2, 31


def parse_fault_targets(text):
    """A target-weight dict from a declarative spec string.

    ``None``/``""``/``"default"`` is the historical five-target mix;
    otherwise a comma-separated list of group names (``runtime``,
    ``status``, ``dcbuf``, ``fabric``, ``all``) and/or exact target
    values (``runtime.addr``, ``fabric.status``, ...).
    """
    if not text or text == "default":
        return dict(DEFAULT_TARGET_WEIGHTS)
    if isinstance(text, dict):
        return dict(text)
    by_value = {t.value: t for t in FaultTarget}
    weights = {}
    for token in str(text).split(","):
        token = token.strip()
        if not token:
            continue
        if token == "all":
            weights.update(ALL_TARGET_WEIGHTS)
        elif token in _TARGET_GROUPS:
            for target in _TARGET_GROUPS[token]:
                weights[target] = ALL_TARGET_WEIGHTS[target]
        elif token in by_value:
            target = by_value[token]
            weights[target] = ALL_TARGET_WEIGHTS[target]
        else:
            raise ConfigError(
                f"unknown fault target {token!r}; choose groups "
                f"{sorted(_TARGET_GROUPS)} / 'all' or exact targets "
                f"{sorted(by_value)}")
    if not weights:
        raise ConfigError(f"fault target spec {text!r} names no targets")
    return weights


# -- fault models ----------------------------------------------------------

class FaultModel:
    """How one injection corrupts a word (or group of words).

    Models are stateless except for stuck-at arming; all randomness
    flows through the injector's RNG in a fixed draw order.
    """

    name = "model"
    #: Adjacent words of a record corrupted per injection (correlated
    #: models span several; everything else touches one word).
    span = 1
    #: Permanent models keep corrupting every later packet of the
    #: faulted structure after the single arming injection.
    permanent = False

    @property
    def spec(self):
        """Canonical declarative spec string (the coverage-map key)."""
        return self.name

    def plan_bits(self, rng, width=64):
        """Bit indices to flip in one ``width``-wide word."""
        raise NotImplementedError

    def plan_pc_bits(self, rng):
        """Bit indices for a PC flip (inside the 32-bit PC window)."""
        raise NotImplementedError

    def apply(self, value, bits, width=64):
        """Corrupt ``value`` at ``bits``; default is XOR (upset)."""
        for bit in bits:
            value = flip_bit(value, bit, width)
        return value

    def __repr__(self):
        return f"{type(self).__name__}({self.spec!r})"


class SingleBitModel(FaultModel):
    """Independent single-bit upsets — the paper's Sec. V-B model.

    Draw order is bit-for-bit identical to the historical injector.
    """

    name = "single"

    def plan_bits(self, rng, width=64):
        return (rng.bit_index(width),)

    def plan_pc_bits(self, rng):
        return (rng.randint(PC_BIT_LO, PC_BIT_HI),)


class BurstModel(FaultModel):
    """A multi-bit burst: ``width`` adjacent bits of one word flip
    together.  The burst always stays inside the declared word width."""

    name = "burst"

    def __init__(self, width=2):
        width = int(width)
        if not 1 <= width <= 64:
            raise ConfigError(f"burst width must be in [1, 64], "
                              f"got {width}")
        self.width = width

    @property
    def spec(self):
        return f"burst:width={self.width}"

    def plan_bits(self, rng, width=64):
        burst = min(self.width, width)
        start = rng.bit_index(width - burst + 1)
        return tuple(range(start, start + burst))

    def plan_pc_bits(self, rng):
        window = PC_BIT_HI - PC_BIT_LO + 1
        burst = min(self.width, window)
        start = rng.randint(PC_BIT_LO, PC_BIT_HI - burst + 1)
        return tuple(range(start, start + burst))


class CorrelatedModel(FaultModel):
    """A spatially-correlated upset: the same bit line flips across
    ``span`` adjacent words of one record — both fields of a run-time
    record, or ``span`` adjacent registers of a status checkpoint."""

    name = "correlated"

    def __init__(self, span=2):
        span = int(span)
        if not 2 <= span <= 32:
            raise ConfigError(f"correlated span must be in [2, 32], "
                              f"got {span}")
        self.span = span

    @property
    def spec(self):
        return f"correlated:span={self.span}"

    def plan_bits(self, rng, width=64):
        return (rng.bit_index(width),)

    def plan_pc_bits(self, rng):
        return (rng.randint(PC_BIT_LO, PC_BIT_HI),)


class StuckAtModel(FaultModel):
    """A permanent stuck-at line.

    The single arming injection chooses the structure, bit and level;
    from then on **every** forwarded packet of that structure has the
    bit forced (via the injector's stuck-line table) until the run
    ends.  ``bit=None`` draws the line position from the RNG.
    """

    name = "stuckat"
    permanent = True

    def __init__(self, bit=None, value=0):
        if bit is not None:
            bit = int(bit)
            if not 0 <= bit < 64:
                raise ConfigError(f"stuckat bit must be in [0, 64), "
                                  f"got {bit}")
        value = int(value)
        if value not in (0, 1):
            raise ConfigError(f"stuckat value must be 0 or 1, got {value}")
        self.bit = bit
        self.value = value

    @property
    def spec(self):
        if self.bit is None:
            return f"stuckat:value={self.value}"
        return f"stuckat:bit={self.bit},value={self.value}"

    def plan_bits(self, rng, width=64):
        if self.bit is not None:
            return (min(self.bit, width - 1),)
        return (rng.bit_index(width),)

    def plan_pc_bits(self, rng):
        if self.bit is not None:
            return (min(max(self.bit, PC_BIT_LO), PC_BIT_HI),)
        return (rng.randint(PC_BIT_LO, PC_BIT_HI),)

    def apply(self, value, bits, width=64):
        return force_bits(value, bits, self.value, width)


def force_bits(value, bits, level, width=64):
    """Force ``bits`` of ``value`` to ``level`` (stuck-at semantics)."""
    for bit in bits:
        if level:
            value |= (1 << bit)
        else:
            value &= ~(1 << bit)
    return value & ((1 << width) - 1)


#: Declarative model registry: name (plus aliases) -> constructor.
FAULT_MODELS = {
    "single": SingleBitModel,
    "single-bit": SingleBitModel,
    "burst": BurstModel,
    "correlated": CorrelatedModel,
    "stuckat": StuckAtModel,
    "stuck-at": StuckAtModel,
}

#: One canonical instance spec per model kind (CLI/docs/tests sweep).
CANONICAL_MODEL_SPECS = ("single", "burst:width=3", "correlated:span=2",
                         "stuckat:value=0")


def parse_fault_model(spec):
    """Build a :class:`FaultModel` from a declarative spec string.

    ``"burst:width=3"`` style: a registered model name, optionally
    followed by ``:key=value[,key=value...]``.  ``None``/``""`` is the
    ``single`` default.  An already-built model passes through.
    """
    if spec is None or spec == "":
        return SingleBitModel()
    if isinstance(spec, FaultModel):
        return spec
    text = str(spec).strip()
    name, _, params_text = text.partition(":")
    name = name.strip().lower()
    try:
        factory = FAULT_MODELS[name]
    except KeyError:
        raise ConfigError(
            f"unknown fault model {name!r}; "
            f"registered: {sorted(set(FAULT_MODELS))}") from None
    kwargs = {}
    if params_text:
        for pair in params_text.split(","):
            key, sep, value = pair.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ConfigError(
                    f"bad fault-model parameter {pair!r} in {text!r} "
                    f"(expected key=value)")
            try:
                kwargs[key] = int(value)
            except ValueError:
                raise ConfigError(
                    f"fault-model parameter {key}={value!r} is not an "
                    f"integer") from None
    try:
        return factory(**kwargs)
    except TypeError:
        raise ConfigError(
            f"fault model {name!r} does not accept parameters "
            f"{sorted(kwargs)}") from None


# -- injection records -----------------------------------------------------

class InjectionRecord:
    """One injected fault."""

    __slots__ = ("injection_id", "cycle", "seg_id", "target", "bit",
                 "detail", "detect_cycle", "detect_reason", "model",
                 "bits", "permanent")

    def __init__(self, injection_id, cycle, seg_id, target, bit, detail,
                 model="single", bits=None, permanent=False):
        self.injection_id = injection_id
        self.cycle = cycle
        self.seg_id = seg_id
        self.target = target
        self.bit = bit
        self.detail = detail
        self.model = model
        self.bits = tuple(bits) if bits is not None else (bit,)
        self.permanent = permanent
        self.detect_cycle = None
        self.detect_reason = None

    @property
    def structure(self):
        """The per-structure coverage key (``runtime.addr``, ...)."""
        return self.target.value

    @property
    def detected(self):
        return self.detect_cycle is not None

    @property
    def latency_cycles(self):
        if not self.detected:
            return None
        return self.detect_cycle - self.cycle

    def __repr__(self):
        status = (f"detected +{self.latency_cycles}cyc" if self.detected
                  else "undetected")
        return (f"InjectionRecord(seg={self.seg_id}, {self.target.value}, "
                f"model={self.model}, bits={self.bits}, {status})")


class FaultInjector:
    """Randomized fault campaign under one :class:`FaultModel`.

    ``rate`` is the injection probability per forwarded packet.  At
    most one fault lands per segment, with a guard gap of
    ``segment_gap`` segments after each injection so a corrupted SRCP
    propagating into the following segment cannot be confused with a
    fresh fault.  A permanent (stuck-at) model arms exactly once and
    then forces its line on every later packet of the same structure.
    """

    def __init__(self, rng, rate=0.0, targets=None, segment_gap=1,
                 model=None):
        self.rng = rng
        self.rate = rate
        self.model = parse_fault_model(model)
        weights = parse_fault_targets(targets)
        self._targets = list(weights.keys())
        self._weights = [weights[t] for t in self._targets]
        self.segment_gap = segment_gap
        self.injections = []
        self._last_injected_seg = None
        #: Armed permanent lines: target -> (detail-kind, bits, level).
        self._stuck_lines = {}

    # -- target topology --------------------------------------------------

    @property
    def wants_dcbuf(self):
        """Whether the DC-Buffer payload hook should be installed."""
        return FaultTarget.DCBUF_RUNTIME in self._targets

    @property
    def wants_fabric(self):
        """Whether the fabric payload hook should be installed."""
        return FaultTarget.FABRIC_STATUS in self._targets

    # -- eligibility ----------------------------------------------------

    def _eligible(self, seg_id):
        if self.rate <= 0.0:
            return False
        if self.model.permanent and self._stuck_lines:
            return False  # a permanent fault arms exactly once
        if self._last_injected_seg is not None:
            if seg_id - self._last_injected_seg <= self.segment_gap:
                return False
        return self.rng.bernoulli(self.rate)

    def _record(self, cycle, seg_id, target, bits, detail):
        record = InjectionRecord(len(self.injections), cycle, seg_id,
                                 target, bits[0], detail,
                                 model=self.model.spec, bits=bits,
                                 permanent=self.model.permanent)
        self.injections.append(record)
        self._last_injected_seg = seg_id
        return record

    def _choose(self, candidates):
        """Weighted target choice among ``candidates`` (``None`` when
        the configured target set excludes them all — the caller must
        skip injection, never index an empty draw)."""
        if not candidates:
            return None
        if len(candidates) == 1:
            # A degenerate choice is still a draw in random.Random's
            # choices(), so keep the call for stream stability.
            pass
        return self.rng.choices(
            candidates,
            weights=[self._weights[self._targets.index(t)]
                     for t in candidates])[0]

    # -- stuck-at line machinery -------------------------------------------

    def _arm_stuck(self, target, kind, bits):
        """Register a permanent line so later packets keep the fault."""
        self._stuck_lines[target] = (kind, bits, self.model.value)

    def _stuck_for(self, target):
        return self._stuck_lines.get(target)

    def _force_runtime(self, entry, target_pool):
        """Apply armed runtime-path stuck lines to ``entry``."""
        for target in target_pool:
            line = self._stuck_lines.get(target)
            if line is None:
                continue
            kind, bits, level = line
            if kind == "addr":
                entry.addr = force_bits(entry.addr, bits, level)
            else:
                entry.data = force_bits(entry.data, bits, level)

    def _force_status(self, snapshot, target_pool):
        """Apply armed status-path stuck lines to ``snapshot``."""
        for target in target_pool:
            line = self._stuck_lines.get(target)
            if line is None:
                continue
            kind, bits, level = line
            if kind == "pc":
                snapshot.pc = force_bits(snapshot.pc, bits, level)
            else:
                which, reg = kind
                regs = list(snapshot.int_regs if which == "int"
                            else snapshot.fp_regs)
                regs[reg] = force_bits(regs[reg], bits, level)
                if which == "int":
                    snapshot.int_regs = tuple(regs)
                else:
                    snapshot.fp_regs = tuple(regs)

    # -- injection points -------------------------------------------------

    def maybe_inject_runtime(self, entry, cycle, seg_id):
        """Possibly corrupt a run-time record at forward time."""
        if self._stuck_lines:
            self._force_runtime(entry, _RUNTIME_TARGETS)
        if not self._eligible(seg_id):
            return None
        target = self._choose([t for t in self._targets
                               if t in _RUNTIME_TARGETS])
        if target is None:
            return None
        bits = self.model.plan_bits(self.rng, 64)
        if self.model.span > 1:
            # Correlated within the record: the same line crosses both
            # the address and the data word.
            entry.addr = self.model.apply(entry.addr, bits)
            entry.data = self.model.apply(entry.data, bits)
            detail = f"{entry.rkind.value}#{entry.seq}+addr+data"
        elif target is FaultTarget.RUNTIME_ADDR:
            entry.addr = self.model.apply(entry.addr, bits)
            detail = f"{entry.rkind.value}#{entry.seq}"
        else:
            entry.data = self.model.apply(entry.data, bits)
            detail = f"{entry.rkind.value}#{entry.seq}"
        if self.model.permanent:
            kind = "addr" if target is FaultTarget.RUNTIME_ADDR else "data"
            self._arm_stuck(target, kind, bits)
        return self._record(cycle, seg_id, target, bits, detail)

    def maybe_inject_status(self, snapshot, cycle, seg_id):
        """Possibly corrupt a status (RCP) packet at forward time.

        The same wire feeds the ERCP consumer and the next segment's
        SRCP consumer, so one flip corrupts both views.
        """
        if self._stuck_lines:
            self._force_status(snapshot, _STATUS_TARGETS)
        if not self._eligible(seg_id):
            return None
        target = self._choose([t for t in self._targets
                               if t in _STATUS_TARGETS])
        if target is None:
            return None
        bits = self.model.plan_bits(self.rng, 64)
        if target is FaultTarget.STATUS_INT_REG:
            reg = self.rng.randint(0, 31)
            detail = self._corrupt_regs(snapshot, "int", reg, bits)
        elif target is FaultTarget.STATUS_FP_REG:
            reg = self.rng.randint(0, 31)
            detail = self._corrupt_regs(snapshot, "fp", reg, bits)
        else:
            # Corrupt plausible instruction-address bits so the flip
            # lands inside the 32-bit PC space.
            bits = self.model.plan_pc_bits(self.rng)
            snapshot.pc = self.model.apply(snapshot.pc, bits)
            detail = "pc"
            if self.model.permanent:
                self._arm_stuck(target, "pc", bits)
        return self._record(cycle, seg_id, target, bits, detail)

    def _corrupt_regs(self, snapshot, which, reg, bits):
        """Corrupt ``span`` adjacent registers starting at ``reg``."""
        regs = list(snapshot.int_regs if which == "int"
                    else snapshot.fp_regs)
        span = min(self.model.span, len(regs) - reg)
        for offset in range(span):
            regs[reg + offset] = self.model.apply(regs[reg + offset], bits)
        if which == "int":
            snapshot.int_regs = tuple(regs)
            prefix = "x"
            target = FaultTarget.STATUS_INT_REG
        else:
            snapshot.fp_regs = tuple(regs)
            prefix = "f"
            target = FaultTarget.STATUS_FP_REG
        if self.model.permanent:
            self._arm_stuck(target, (which, reg), bits)
        if span > 1:
            return f"{prefix}{reg}..{prefix}{reg + span - 1}"
        return f"{prefix}{reg}"

    def maybe_inject_dcbuf(self, entry, cycle, seg_id):
        """Possibly corrupt a run-time record waiting in the DC-Buffer.

        Reached through the :class:`~repro.fabric.dcbuffer.DcBufferModel`
        fault hook — the record was already captured correctly by the
        DEU; the upset happens while it sits buffered for the fabric.
        """
        if self._stuck_lines:
            self._force_runtime(entry, (FaultTarget.DCBUF_RUNTIME,))
        if not self._eligible(seg_id):
            return None
        target = self._choose([t for t in self._targets
                               if t is FaultTarget.DCBUF_RUNTIME])
        if target is None:
            return None
        bits = self.model.plan_bits(self.rng, 64)
        field = "addr" if self.rng.bernoulli(0.5) else "data"
        if self.model.span > 1:
            entry.addr = self.model.apply(entry.addr, bits)
            entry.data = self.model.apply(entry.data, bits)
            detail = f"dcbuf:{entry.rkind.value}#{entry.seq}+addr+data"
        elif field == "addr":
            entry.addr = self.model.apply(entry.addr, bits)
            detail = f"dcbuf:{entry.rkind.value}#{entry.seq}.addr"
        else:
            entry.data = self.model.apply(entry.data, bits)
            detail = f"dcbuf:{entry.rkind.value}#{entry.seq}.data"
        if self.model.permanent:
            self._arm_stuck(target, field, bits)
        return self._record(cycle, seg_id, target, bits, detail)

    def maybe_inject_fabric(self, packet, cycle):
        """Possibly corrupt a status checkpoint traversing the fabric.

        Reached through the :class:`~repro.fabric.base.ForwardingFabric`
        fault hook; corrupts one register lane of the in-flight
        :class:`~repro.fabric.packets.StatusSnapshot` payload.
        """
        snapshot = packet.payload
        if snapshot is None or not hasattr(snapshot, "int_regs"):
            return None
        if self._stuck_lines:
            line = self._stuck_lines.get(FaultTarget.FABRIC_STATUS)
            if line is not None:
                kind, bits, level = line
                _, reg = kind
                regs = list(snapshot.int_regs)
                regs[reg] = force_bits(regs[reg], bits, level)
                snapshot.int_regs = tuple(regs)
        seg_id = packet.seg_id
        if not self._eligible(seg_id):
            return None
        target = self._choose([t for t in self._targets
                               if t is FaultTarget.FABRIC_STATUS])
        if target is None:
            return None
        bits = self.model.plan_bits(self.rng, 64)
        reg = self.rng.randint(0, 31)
        regs = list(snapshot.int_regs)
        span = min(self.model.span, len(regs) - reg)
        for offset in range(span):
            regs[reg + offset] = self.model.apply(regs[reg + offset], bits)
        snapshot.int_regs = tuple(regs)
        if self.model.permanent:
            self._arm_stuck(target, ("int", reg), bits)
        detail = (f"fabric:x{reg}" if span == 1
                  else f"fabric:x{reg}..x{reg + span - 1}")
        return self._record(cycle, seg_id, target, bits, detail)

    # -- resolution --------------------------------------------------------

    def resolve_detections(self, detections):
        """Match detection events to injections.

        ``detections`` is a list of ``(seg_id, cycle, reason)``.  A
        detection matches the injection in the same or the following
        segment (a corrupted boundary RCP is both an ERCP and an
        SRCP).  A *permanent* fault keeps corrupting later segments,
        so any detection at or after its arming cycle matches.
        """
        events = sorted(detections, key=lambda d: d[1])
        used = set()
        for record in self.injections:
            for i, (seg_id, cycle, reason) in enumerate(events):
                if i in used:
                    continue
                if cycle < record.cycle:
                    continue
                if (record.permanent
                        or seg_id in (record.seg_id, record.seg_id + 1)):
                    record.detect_cycle = cycle
                    record.detect_reason = reason
                    used.add(i)
                    break
        return self.injections

    # -- summaries -----------------------------------------------------------

    @property
    def detected_count(self):
        return sum(1 for r in self.injections if r.detected)

    def latencies_cycles(self):
        return [r.latency_cycles for r in self.injections if r.detected]
