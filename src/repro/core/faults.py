"""Fault injection into forwarded data (Sec. V-B).

The paper injects errors "in the forwarded data from the F2 connected
to the big core, e.g., data and address of memory operations and
architectural register data, simulating the hardware faults without
disrupting the big core's normal execution".  This module does exactly
that: single-bit flips applied to the *transmitted copies* of run-time
records and status snapshots, leaving the big core's architectural
state untouched.  Detection then happens (or not) through the normal
checking machinery, and the campaign records injection-to-detection
latency.
"""

import enum

from repro.common.bitops import flip_bit


class FaultTarget(enum.Enum):
    RUNTIME_ADDR = "runtime.addr"
    RUNTIME_DATA = "runtime.data"
    STATUS_INT_REG = "status.int_reg"
    STATUS_FP_REG = "status.fp_reg"
    STATUS_PC = "status.pc"


#: Campaign default: memory-operation faults dominate (they are the
#: bulk of forwarded traffic), with register-checkpoint faults mixed in.
DEFAULT_TARGET_WEIGHTS = {
    FaultTarget.RUNTIME_ADDR: 3,
    FaultTarget.RUNTIME_DATA: 3,
    FaultTarget.STATUS_INT_REG: 2,
    FaultTarget.STATUS_FP_REG: 1,
    FaultTarget.STATUS_PC: 1,
}


class InjectionRecord:
    """One injected fault."""

    __slots__ = ("injection_id", "cycle", "seg_id", "target", "bit",
                 "detail", "detect_cycle", "detect_reason")

    def __init__(self, injection_id, cycle, seg_id, target, bit, detail):
        self.injection_id = injection_id
        self.cycle = cycle
        self.seg_id = seg_id
        self.target = target
        self.bit = bit
        self.detail = detail
        self.detect_cycle = None
        self.detect_reason = None

    @property
    def detected(self):
        return self.detect_cycle is not None

    @property
    def latency_cycles(self):
        if not self.detected:
            return None
        return self.detect_cycle - self.cycle

    def __repr__(self):
        status = (f"detected +{self.latency_cycles}cyc" if self.detected
                  else "undetected")
        return (f"InjectionRecord(seg={self.seg_id}, {self.target.value}, "
                f"bit={self.bit}, {status})")


class FaultInjector:
    """Randomized single-bit fault campaign.

    ``rate`` is the injection probability per forwarded packet.  At
    most one fault lands per segment, with a guard gap of
    ``segment_gap`` segments after each injection so a corrupted SRCP
    propagating into the following segment cannot be confused with a
    fresh fault.
    """

    def __init__(self, rng, rate=0.0, targets=None, segment_gap=1):
        self.rng = rng
        self.rate = rate
        weights = targets if targets is not None else DEFAULT_TARGET_WEIGHTS
        self._targets = list(weights.keys())
        self._weights = [weights[t] for t in self._targets]
        self.segment_gap = segment_gap
        self.injections = []
        self._last_injected_seg = None

    # -- eligibility ----------------------------------------------------

    def _eligible(self, seg_id):
        if self.rate <= 0.0:
            return False
        if self._last_injected_seg is not None:
            if seg_id - self._last_injected_seg <= self.segment_gap:
                return False
        return self.rng.bernoulli(self.rate)

    def _record(self, cycle, seg_id, target, bit, detail):
        record = InjectionRecord(len(self.injections), cycle, seg_id,
                                 target, bit, detail)
        self.injections.append(record)
        self._last_injected_seg = seg_id
        return record

    # -- injection points -------------------------------------------------

    def maybe_inject_runtime(self, entry, cycle, seg_id):
        """Possibly corrupt a run-time record at forward time."""
        if not self._eligible(seg_id):
            return None
        target = self.rng.choices(
            [t for t in self._targets
             if t in (FaultTarget.RUNTIME_ADDR, FaultTarget.RUNTIME_DATA)],
            weights=[self._weights[self._targets.index(t)]
                     for t in self._targets
                     if t in (FaultTarget.RUNTIME_ADDR,
                              FaultTarget.RUNTIME_DATA)])[0]
        bit = self.rng.bit_index(64)
        if target is FaultTarget.RUNTIME_ADDR:
            entry.addr = flip_bit(entry.addr, bit)
        else:
            entry.data = flip_bit(entry.data, bit)
        return self._record(cycle, seg_id, target, bit,
                            f"{entry.rkind.value}#{entry.seq}")

    def maybe_inject_status(self, snapshot, cycle, seg_id):
        """Possibly corrupt a status (RCP) packet at forward time.

        The same wire feeds the ERCP consumer and the next segment's
        SRCP consumer, so one flip corrupts both views.
        """
        if not self._eligible(seg_id):
            return None
        candidates = [t for t in self._targets
                      if t in (FaultTarget.STATUS_INT_REG,
                               FaultTarget.STATUS_FP_REG,
                               FaultTarget.STATUS_PC)]
        if not candidates:
            return None
        target = self.rng.choices(
            candidates,
            weights=[self._weights[self._targets.index(t)]
                     for t in candidates])[0]
        bit = self.rng.bit_index(64)
        if target is FaultTarget.STATUS_INT_REG:
            reg = self.rng.randint(0, 31)
            regs = list(snapshot.int_regs)
            regs[reg] = flip_bit(regs[reg], bit)
            snapshot.int_regs = tuple(regs)
            detail = f"x{reg}"
        elif target is FaultTarget.STATUS_FP_REG:
            reg = self.rng.randint(0, 31)
            regs = list(snapshot.fp_regs)
            regs[reg] = flip_bit(regs[reg], bit)
            snapshot.fp_regs = tuple(regs)
            detail = f"f{reg}"
        else:
            # Corrupt a plausible instruction-address bit so the flip
            # lands inside the 32-bit PC space.
            bit = self.rng.randint(2, 31)
            snapshot.pc = flip_bit(snapshot.pc, bit)
            detail = "pc"
        return self._record(cycle, seg_id, target, bit, detail)

    # -- resolution --------------------------------------------------------

    def resolve_detections(self, detections):
        """Match detection events to injections.

        ``detections`` is a list of ``(seg_id, cycle, reason)``.  A
        detection matches the injection in the same or the following
        segment (a corrupted boundary RCP is both an ERCP and an SRCP).
        """
        events = sorted(detections, key=lambda d: d[1])
        used = set()
        for record in self.injections:
            for i, (seg_id, cycle, reason) in enumerate(events):
                if i in used:
                    continue
                if cycle < record.cycle:
                    continue
                if seg_id in (record.seg_id, record.seg_id + 1):
                    record.detect_cycle = cycle
                    record.detect_reason = reason
                    used.add(i)
                    break
        return self.injections

    # -- summaries -----------------------------------------------------------

    @property
    def detected_count(self):
        return sum(1 for r in self.injections if r.detected)

    def latencies_cycles(self):
        return [r.latency_cycles for r in self.injections if r.detected]
